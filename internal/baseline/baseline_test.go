package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

var dyadic = []float64{1, 0.5, 0.25, 0.125}

func randomDyadic(n int, density float64, rng *rand.Rand) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, dyadic[rng.Intn(len(dyadic))])
			}
		}
	}
	return b.Build()
}

func TestNOIPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphas := []float64{0.5, 0.25, 0.125, 0.0625}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(9)
		g := randomDyadic(n, 0.5, rng)
		alpha := alphas[rng.Intn(len(alphas))]
		want := BruteForce(g, alpha)
		got := CollectNOIP(g, alpha)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d n=%d α=%v:\nNOIP  = %v\nbrute = %v\nedges = %v",
				trial, n, alpha, got, want, g.Edges())
		}
	}
}

func TestNOIPHandComputed(t *testing.T) {
	g, _ := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.25},
	})
	got := CollectNOIP(g, 0.125)
	want := [][]int{{0, 1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNOIPSingletons(t *testing.T) {
	g := uncertain.NewBuilder(3).Build()
	got := CollectNOIP(g, 0.5)
	want := [][]int{{0}, {1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("isolated vertices: got %v, want %v", got, want)
	}
}

func TestNOIPStatsCountWork(t *testing.T) {
	g := randomDyadic(20, 0.5, rand.New(rand.NewSource(1)))
	stats := EnumerateNOIP(g, 0.25, nil)
	if stats.Emitted == 0 {
		t.Fatal("nothing emitted")
	}
	if stats.ProbProducts == 0 || stats.MaximalityScan == 0 {
		t.Fatalf("work counters empty: %+v", stats)
	}
	if stats.Calls == 0 {
		t.Fatal("no recursive calls recorded")
	}
}

func TestNOIPEarlyStop(t *testing.T) {
	g := randomDyadic(20, 0.5, rand.New(rand.NewSource(2)))
	count := 0
	EnumerateNOIP(g, 0.25, func([]int, float64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestNOIPPanicsOnBadAlpha(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	for _, alpha := range []float64{0, 1, -1, 2} {
		func() {
			defer func() { recover() }()
			EnumerateNOIP(g, alpha, nil)
			t.Errorf("alpha=%v should panic", alpha)
		}()
	}
}

func TestBruteForceHandComputed(t *testing.T) {
	g, _ := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5},
	})
	// α=0.5: both edges qualify, vertex 1 in both; no triangle (no {0,2} edge).
	want := [][]int{{0, 1}, {1, 2}}
	if got := BruteForce(g, 0.5); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// α just above 0.5: nothing but singletons.
	want = [][]int{{0}, {1}, {2}}
	if got := BruteForce(g, 0.6); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBruteForcePanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 24")
		}
	}()
	BruteForce(uncertain.NewBuilder(25).Build(), 0.5)
}

func TestCanonicalize(t *testing.T) {
	cliques := [][]int{{3, 1}, {2}, {1, 2}, {1, 10}}
	Canonicalize(cliques)
	want := [][]int{{1, 2}, {1, 3}, {1, 10}, {2}}
	if !reflect.DeepEqual(cliques, want) {
		t.Fatalf("got %v, want %v", cliques, want)
	}
}

func TestNOIPReportedProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDyadic(12, 0.6, rng)
	EnumerateNOIP(g, 0.25, func(c []int, p float64) bool {
		if want := g.CliqueProb(c); want != p {
			t.Fatalf("clique %v: reported %v, true %v", c, p, want)
		}
		return true
	})
}
