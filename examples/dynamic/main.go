// Dynamic: maintain the α-maximal cliques of a drifting uncertain graph
// incrementally instead of re-enumerating after every change.
//
// The scenario is a protein-interaction network whose confidence scores are
// revised as new experimental evidence arrives — the exact setting the
// paper motivates with PPI data (§1), extended over time. Each revision
// touches one edge; the maintainer re-derives only the cliques through its
// endpoints and reports an exact diff of robust complexes gained and lost.
//
// Run with: go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	mule "github.com/uncertain-graphs/mule"
)

const (
	numProteins = 60
	alpha       = 0.4
)

func main() {
	ctx := context.Background()
	g, rng := buildInitialNetwork()
	m, err := mule.NewMaintainerContext(ctx, g, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %d proteins, %d interactions, %d α-maximal complexes (α=%g)\n\n",
		m.NumVertices(), m.NumEdges(), m.NumCliques(), alpha)

	// A stream of confidence revisions: strengthen some ties, weaken or
	// retract others.
	type revision struct {
		u, v   int
		p      float64 // 0 = retract
		reason string
	}
	revisions := []revision{
		{0, 5, 0.95, "new co-purification evidence"},
		{1, 5, 0.90, "replicated in a second assay"},
		{2, 7, 0.15, "suspected false positive downgraded"},
		{0, 1, 0, "interaction retracted"},
		{0, 1, 0.85, "...and reinstated after re-analysis"},
	}
	for _, r := range revisions {
		var diff mule.CliqueDiff
		var err error
		if r.p == 0 {
			diff, err = m.RemoveEdge(r.u, r.v)
		} else {
			diff, err = m.SetEdge(r.u, r.v, r.p)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("revise {%d,%d} → %.2f  (%s)\n", r.u, r.v, r.p, r.reason)
		for _, c := range diff.Added {
			fmt.Printf("  + complex %v\n", c)
		}
		for _, c := range diff.Removed {
			fmt.Printf("  - complex %v\n", c)
		}
		if len(diff.Added)+len(diff.Removed) == 0 {
			fmt.Println("  (no complex changed)")
		}
	}

	// Sustained drift: many random revisions, then audit against a full
	// enumeration.
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(numProteins), rng.Intn(numProteins)
		if u == v {
			continue
		}
		if _, err := m.SetEdge(u, v, 0.2+0.8*rng.Float64()); err != nil {
			log.Fatal(err)
		}
	}
	stats := m.Stats()
	fmt.Printf("\nafter %d revisions: %d complexes tracked (+%d/−%d across the run, %d neighborhood rebuilds)\n",
		stats.Updates, m.NumCliques(), stats.CliquesAdded, stats.CliquesRemoved, stats.Rebuilt)

	audit, err := mule.NewQuery(m.Graph(), alpha)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := audit.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: full re-enumeration finds %d complexes — %s\n",
		fresh, matchWord(int64(m.NumCliques()) == fresh))
}

func matchWord(ok bool) string {
	if ok {
		return "maintainer agrees exactly"
	}
	return "MISMATCH (bug!)"
}

// buildInitialNetwork plants a few confident complexes in sparse noise.
func buildInitialNetwork() (*mule.Graph, *rand.Rand) {
	rng := rand.New(rand.NewSource(11))
	b := mule.NewBuilder(numProteins)
	complexes := [][]int{{0, 1, 2, 3}, {5, 6, 7}, {10, 11, 12, 13, 14}}
	for _, cx := range complexes {
		for i := 0; i < len(cx); i++ {
			for j := i + 1; j < len(cx); j++ {
				if err := b.AddEdge(cx[i], cx[j], 0.7+0.3*rng.Float64()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 2*numProteins; i++ {
		u, v := rng.Intn(numProteins), rng.Intn(numProteins)
		if u == v {
			continue
		}
		if err := b.UpsertEdge(u, v, 0.1+0.5*rng.Float64()); err != nil {
			log.Fatal(err)
		}
	}
	return b.Build(), rng
}
