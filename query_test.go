package mule_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
)

// slowGraph returns a dense graph whose full enumeration takes hundreds of
// milliseconds — room to cancel mid-run on every engine.
func slowGraph(t testing.TB) *mule.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	edges := gen.GNP(110, 0.6, rng)
	g, err := gen.BuildUncertain(110, edges, gen.ConstProb(0.95), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// randomGraph returns a small random uncertain graph for equivalence tests.
func randomGraph(rng *rand.Rand) *mule.Graph {
	n := 15 + rng.Intn(25)
	edges := gen.GNP(n, 0.2+0.4*rng.Float64(), rng)
	g, err := gen.BuildUncertain(n, edges, gen.UniformRangeProb(0.3, 1.0), rng)
	if err != nil {
		panic(err)
	}
	return g
}

// engineOpts names the three engines of the cancellation matrix.
var engineOpts = []struct {
	name string
	opts []mule.Option
}{
	{"serial", nil},
	{"worksteal", []mule.Option{mule.WithWorkers(4), mule.WithParallelMode(mule.ParallelWorkStealing)}},
	{"toplevel", []mule.Option{mule.WithWorkers(4), mule.WithParallelMode(mule.ParallelTopLevel)}},
}

func collectStream(t *testing.T, q *mule.Query, ctx context.Context) []mule.Clique {
	t.Helper()
	var out []mule.Clique
	for c, err := range q.Cliques(ctx) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Vertices, out[j].Vertices
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// TestQueryCliquesMatchesCollect checks the acceptance property: on 50
// random graphs, ranging over q.Cliques yields exactly the clique set of
// Collect — for the serial stream and the channel-bridged parallel stream.
func TestQueryCliquesMatchesCollect(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		g := randomGraph(rng)
		alpha := []float64{0.05, 0.2, 0.5}[i%3]
		want, err := mule.Collect(g, alpha) // legacy wrapper, canonical order
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range engineOpts {
			q, err := mule.NewQuery(g, alpha, eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got := collectStream(t, q, ctx)
			if len(got) != len(want) {
				t.Fatalf("graph %d %s: stream yielded %d cliques, Collect %d", i, eng.name, len(got), len(want))
			}
			for j := range got {
				if !reflect.DeepEqual(got[j].Vertices, want[j]) {
					t.Fatalf("graph %d %s: clique %d = %v, want %v", i, eng.name, j, got[j].Vertices, want[j])
				}
				// The incremental kernel multiplies edge probabilities in a
				// different order than the reference predicate; allow float
				// rounding.
				if p := g.CliqueProb(got[j].Vertices); abs(p-got[j].Prob) > 1e-12*p {
					t.Fatalf("graph %d %s: clique %v prob %v, want %v", i, eng.name, got[j].Vertices, got[j].Prob, p)
				}
			}
			// Query.Collect agrees too, probabilities included.
			qc, err := q.Collect(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(qc, got) {
				t.Fatalf("graph %d %s: Query.Collect disagrees with the stream", i, eng.name)
			}
		}
	}
}

// waitNoExtraGoroutines fails the test if the goroutine count does not
// return to the baseline — the leak check of the cancellation matrix.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryCancellationMatrix runs every engine × {cancel before start,
// cancel mid-run, cancel after completion} and checks the contract: an
// already-dead context fails fast with zero work; a mid-run cancel stops
// the engine promptly with a wrapped context.Canceled, a truncated clique
// set, and no leaked goroutines; a cancel after the run changes nothing.
func TestQueryCancellationMatrix(t *testing.T) {
	g := slowGraph(t)
	const alpha = 1e-30
	full, err := mule.Count(g, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if full < 1000 {
		t.Fatalf("slow graph too easy: %d cliques", full)
	}
	for _, eng := range engineOpts {
		eng := eng
		t.Run(eng.name+"/before", func(t *testing.T) {
			base := runtime.NumGoroutine()
			q, err := mule.NewQuery(g, alpha, eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			stats, err := q.Run(ctx, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if stats.Status != mule.StatusCanceled {
				t.Fatalf("status = %v, want canceled", stats.Status)
			}
			if stats.Calls != 0 || stats.Emitted != 0 {
				t.Fatalf("pre-canceled run did work: %+v", stats)
			}
			waitNoExtraGoroutines(t, base)
		})
		t.Run(eng.name+"/mid", func(t *testing.T) {
			base := runtime.NumGoroutine()
			q, err := mule.NewQuery(g, alpha, eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var emitted int64
			stats, err := q.Run(ctx, func(c []int, p float64) bool {
				emitted++
				if emitted == 1 {
					cancel()
				}
				return true
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if stats.Status != mule.StatusCanceled {
				t.Fatalf("status = %v, want canceled", stats.Status)
			}
			if stats.Emitted >= full {
				t.Fatalf("cancel did not truncate the run: %d of %d cliques", stats.Emitted, full)
			}
			waitNoExtraGoroutines(t, base)
		})
		t.Run(eng.name+"/after", func(t *testing.T) {
			base := runtime.NumGoroutine()
			// A small graph that completes: cancel after Run returns.
			small, err := mule.FromEdges(4, []mule.Edge{
				{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9}, {U: 0, V: 2, P: 0.9},
			})
			if err != nil {
				t.Fatal(err)
			}
			q, err := mule.NewQuery(small, 0.5, eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			stats, err := q.Run(ctx, nil)
			cancel()
			if err != nil {
				t.Fatalf("completed run returned %v", err)
			}
			if stats.Status != mule.StatusComplete {
				t.Fatalf("status = %v, want complete", stats.Status)
			}
			waitNoExtraGoroutines(t, base)
		})
	}
}

// TestQueryDeadline bounds a heavy run with a context deadline; the run
// must abort with a wrapped context.DeadlineExceeded and StatusDeadline.
func TestQueryDeadline(t *testing.T) {
	g := slowGraph(t)
	for _, eng := range engineOpts {
		q, err := mule.NewQuery(g, 1e-30, eng.opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		stats, err := q.Run(ctx, nil)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want wrapped context.DeadlineExceeded", eng.name, err)
		}
		if stats.Status != mule.StatusDeadline {
			t.Fatalf("%s: status = %v, want deadline", eng.name, stats.Status)
		}
	}
}

// TestQueryBudget caps a heavy run by search nodes.
func TestQueryBudget(t *testing.T) {
	g := slowGraph(t)
	for _, eng := range engineOpts {
		opts := append([]mule.Option{mule.WithBudget(5000)}, eng.opts...)
		q, err := mule.NewQuery(g, 1e-30, opts...)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := q.Run(context.Background(), nil)
		if !errors.Is(err, mule.ErrBudget) {
			t.Fatalf("%s: err = %v, want wrapped ErrBudget", eng.name, err)
		}
		if stats.Status != mule.StatusBudget {
			t.Fatalf("%s: status = %v, want budget", eng.name, stats.Status)
		}
		// The budget is charged in per-worker interval batches; the
		// overshoot is bounded by workers × interval.
		if stats.Calls > 5000+5*2048 {
			t.Fatalf("%s: budget 5000 but %d calls", eng.name, stats.Calls)
		}
	}
}

// TestQueryLimit stops after n cliques with a nil error.
func TestQueryLimit(t *testing.T) {
	g := slowGraph(t)
	for _, eng := range engineOpts {
		opts := append([]mule.Option{mule.WithLimit(10)}, eng.opts...)
		q, err := mule.NewQuery(g, 1e-30, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var seen int64
		stats, err := q.Run(context.Background(), func(c []int, p float64) bool {
			seen++
			return true
		})
		if err != nil {
			t.Fatalf("%s: limit run returned %v", eng.name, err)
		}
		if seen != 10 || stats.Emitted != 10 {
			t.Fatalf("%s: limit 10 delivered %d cliques (stats %d)", eng.name, seen, stats.Emitted)
		}
		if stats.Status != mule.StatusStopped {
			t.Fatalf("%s: status = %v, want stopped", eng.name, stats.Status)
		}
	}
}

// TestQueryRunErrStopped: a visitor returning false surfaces ErrStopped
// from Query.Run, while the deprecated Enumerate wrapper still reports nil.
func TestQueryRunErrStopped(t *testing.T) {
	g := slowGraph(t)
	q, err := mule.NewQuery(g, 1e-30)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := q.Run(context.Background(), func(c []int, p float64) bool { return false })
	if !errors.Is(err, mule.ErrStopped) {
		t.Fatalf("Run err = %v, want wrapped ErrStopped", err)
	}
	if stats.Emitted != 1 || stats.Status != mule.StatusStopped {
		t.Fatalf("stopped run stats: %+v", stats)
	}
	if _, err := mule.Enumerate(g, 1e-30, func(c []int, p float64) bool { return false }); err != nil {
		t.Fatalf("legacy Enumerate surfaced the stop: %v", err)
	}
}

// TestQueryCliquesBreak: breaking out of the range loop stops the engines
// and leaks nothing, on the serial and the channel-bridged parallel path.
func TestQueryCliquesBreak(t *testing.T) {
	g := slowGraph(t)
	for _, eng := range engineOpts {
		base := runtime.NumGoroutine()
		q, err := mule.NewQuery(g, 1e-30, eng.opts...)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for c, err := range q.Cliques(context.Background()) {
			if err != nil {
				t.Fatalf("%s: stream error %v", eng.name, err)
			}
			if len(c.Vertices) == 0 {
				t.Fatalf("%s: empty clique", eng.name)
			}
			if n++; n == 5 {
				break
			}
		}
		if n != 5 {
			t.Fatalf("%s: loop saw %d cliques", eng.name, n)
		}
		waitNoExtraGoroutines(t, base)
		// The query is reusable after an abandoned stream.
		if _, err := q.TopK(context.Background(), 3, mule.ByProb); err != nil {
			t.Fatalf("%s: reuse after break: %v", eng.name, err)
		}
	}
}

// TestQueryCliquesStreamError: a canceled stream ends with one (Clique{},
// err) pair.
func TestQueryCliquesStreamError(t *testing.T) {
	g := slowGraph(t)
	for _, eng := range engineOpts {
		q, err := mule.NewQuery(g, 1e-30, eng.opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var streamErr error
		n := 0
		for c, err := range q.Cliques(ctx) {
			if err != nil {
				streamErr = err
				if len(c.Vertices) != 0 {
					t.Fatalf("%s: error pair carries a clique: %v", eng.name, c)
				}
				continue
			}
			if n++; n == 3 {
				cancel()
			}
		}
		cancel()
		if !errors.Is(streamErr, context.Canceled) {
			t.Fatalf("%s: stream error = %v, want wrapped context.Canceled", eng.name, streamErr)
		}
	}
}

// TestQueryTopK agrees with the deprecated top-level helpers.
func TestQueryTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng)
	q, err := mule.NewQuery(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []int{1, 3, 10} {
		got, err := q.TopK(ctx, k, mule.ByProb)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mule.TopKByProb(g, 0.1, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%d, ByProb) = %v, want %v", k, got, want)
		}
		gotS, err := q.TopK(ctx, k, mule.BySize)
		if err != nil {
			t.Fatal(err)
		}
		wantS, err := mule.TopKBySize(g, 0.1, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotS, wantS) {
			t.Fatalf("TopK(%d, BySize) = %v, want %v", k, gotS, wantS)
		}
	}
	if _, err := q.TopK(ctx, 0, mule.ByProb); err == nil {
		t.Fatal("TopK(0) should fail")
	}
}

// TestQueryMaximum agrees with the deprecated MaximumClique and honors ctx.
func TestQueryMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng)
	q, err := mule.NewQuery(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gotC, gotP, err := q.Maximum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantP, err := mule.MaximumClique(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, wantC) || gotP != wantP {
		t.Fatalf("Maximum = (%v, %v), want (%v, %v)", gotC, gotP, wantC, wantP)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := q.Maximum(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Maximum under dead ctx = %v, want wrapped context.Canceled", err)
	}
}

// TestNewQueryValidation: construction fails eagerly with typed sentinels.
func TestNewQueryValidation(t *testing.T) {
	g, err := mule.FromEdges(3, []mule.Edge{{U: 0, V: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		g      *mule.Graph
		alpha  float64
		opts   []mule.Option
		target error
	}{
		{"nil graph", nil, 0.5, nil, mule.ErrNilGraph},
		{"alpha zero", g, 0, nil, mule.ErrAlphaRange},
		{"alpha big", g, 1.5, nil, mule.ErrAlphaRange},
		{"negative workers", g, 0.5, []mule.Option{mule.WithWorkers(-1)}, mule.ErrConfig},
		{"negative minsize", g, 0.5, []mule.Option{mule.WithMinSize(-2)}, mule.ErrConfig},
		{"negative limit", g, 0.5, []mule.Option{mule.WithLimit(-1)}, mule.ErrConfig},
		{"negative budget", g, 0.5, []mule.Option{mule.WithBudget(-1)}, mule.ErrConfig},
		{"negative granularity", g, 0.5, []mule.Option{mule.WithStealGranularity(-1)}, mule.ErrConfig},
		{"bad ordering", g, 0.5, []mule.Option{mule.WithOrdering(mule.Ordering(99))}, mule.ErrConfig},
		{"bad engine", g, 0.5, []mule.Option{mule.WithParallelMode(mule.ParallelMode(9))}, mule.ErrConfig},
		{"bad intersect", g, 0.5, []mule.Option{mule.WithIntersect(mule.IntersectMode(9))}, mule.ErrConfig},
	}
	for _, tc := range cases {
		_, err := mule.NewQuery(tc.g, tc.alpha, tc.opts...)
		if !errors.Is(err, tc.target) {
			t.Errorf("%s: err = %v, want wrapped %v", tc.name, err, tc.target)
		}
	}
	if _, err := mule.NewQuery(g, 0.5, mule.WithWorkers(2), mule.WithMinSize(3), mule.WithSeed(1)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestLegacyWrappersShareQueryValidation pins that the deprecated flat
// functions funnel through the same constructor as NewQuery: every Config
// a NewQuery would reject is rejected by the wrappers with the same
// sentinel, so no entry point can run an invalid Query.
func TestLegacyWrappersShareQueryValidation(t *testing.T) {
	g, err := mule.FromEdges(3, []mule.Edge{{U: 0, V: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []mule.Config{
		{MinSize: -1},
		{Workers: -2},
		{Budget: -5},
		{StealGranularity: -1},
		{Parallel: mule.ParallelMode(9)},
		{Ordering: mule.Ordering(99)},
		{Intersect: mule.IntersectMode(9)},
	}
	for i, cfg := range bad {
		if _, err := mule.EnumerateWith(g, 0.5, nil, cfg); !errors.Is(err, mule.ErrConfig) {
			t.Errorf("bad config %d: EnumerateWith err = %v, want wrapped ErrConfig", i, err)
		}
	}
	if _, err := mule.Enumerate(nil, 0.5, nil); !errors.Is(err, mule.ErrNilGraph) {
		t.Errorf("Enumerate(nil): err = %v, want wrapped ErrNilGraph", err)
	}
	if _, err := mule.Count(g, 0); !errors.Is(err, mule.ErrAlphaRange) {
		t.Errorf("Count(α=0): err = %v, want wrapped ErrAlphaRange", err)
	}
	if _, err := mule.Collect(g, 1.01); !errors.Is(err, mule.ErrAlphaRange) {
		t.Errorf("Collect(α>1): err = %v, want wrapped ErrAlphaRange", err)
	}
	if _, err := mule.EnumerateLarge(g, 0.5, -3, nil); !errors.Is(err, mule.ErrConfig) {
		t.Errorf("EnumerateLarge(minSize<0): err = %v, want wrapped ErrConfig", err)
	}
}

// TestQueryOptionEquivalence: every option reproduces its Config-era
// semantics — same clique sets as the deprecated EnumerateWith.
func TestQueryOptionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		g := randomGraph(rng)
		cfgs := []struct {
			opts []mule.Option
			cfg  mule.Config
		}{
			{[]mule.Option{mule.WithMinSize(3)}, mule.Config{MinSize: 3}},
			{[]mule.Option{mule.WithOrdering(mule.OrderDegeneracy)}, mule.Config{Ordering: mule.OrderDegeneracy}},
			{[]mule.Option{mule.WithOrdering(mule.OrderRandom), mule.WithSeed(42)}, mule.Config{Ordering: mule.OrderRandom, Seed: 42}},
			{[]mule.Option{mule.WithWorkers(3), mule.WithStealGranularity(2)}, mule.Config{Workers: 3, StealGranularity: 2}},
			{[]mule.Option{mule.WithIntersect(mule.IntersectBitset)}, mule.Config{Intersect: mule.IntersectBitset}},
			{[]mule.Option{mule.WithIntersect(mule.IntersectSorted)}, mule.Config{Intersect: mule.IntersectSorted}},
		}
		for ci, tc := range cfgs {
			q, err := mule.NewQuery(g, 0.2, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Collect(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]int
			_, err = mule.EnumerateWith(g, 0.2, func(c []int, _ float64) bool {
				want = append(want, append([]int(nil), c...))
				return true
			}, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(want, func(a, b int) bool {
				x, y := want[a], want[b]
				for k := 0; k < len(x) && k < len(y); k++ {
					if x[k] != y[k] {
						return x[k] < y[k]
					}
				}
				return len(x) < len(y)
			})
			if len(got) != len(want) {
				t.Fatalf("graph %d cfg %d: %d cliques vs %d", i, ci, len(got), len(want))
			}
			for j := range got {
				if !reflect.DeepEqual(got[j].Vertices, want[j]) {
					t.Fatalf("graph %d cfg %d clique %d: %v vs %v", i, ci, j, got[j].Vertices, want[j])
				}
			}
		}
	}
}

// TestQueryCountAndStats: Count matches Collect length; Status is recorded.
func TestQueryCountAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng)
	q, err := mule.NewQuery(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n, err := q.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := q.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(cs)) != n {
		t.Fatalf("Count = %d, Collect = %d", n, len(cs))
	}
	stats, err := q.Run(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Status != mule.StatusComplete || stats.Emitted != n {
		t.Fatalf("Run stats %+v, want complete with %d cliques", stats, n)
	}
}

// TestQueryTopKIgnoresLimit: a WithLimit bound must not truncate the family
// TopK ranks over — the best of a prefix is not the best of the family.
func TestQueryTopKIgnoresLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng)
	ctx := context.Background()
	full, err := mule.NewQuery(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.TopK(ctx, 5, mule.ByProb)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := mule.NewQuery(g, 0.1, mule.WithLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := limited.TopK(ctx, 5, mule.ByProb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK under WithLimit(1) = %v, want the full-family answer %v", got, want)
	}
	// The limit still applies to the streaming methods of the same query.
	n, err := limited.Count(ctx)
	if err != nil || n != 1 {
		t.Fatalf("Count under WithLimit(1) = (%d, %v), want (1, nil)", n, err)
	}
}

// TestQueryMaximumHonorsBudget: WithBudget caps the branch-and-bound search
// too.
func TestQueryMaximumHonorsBudget(t *testing.T) {
	g := slowGraph(t)
	q, err := mule.NewQuery(g, 1e-30, mule.WithBudget(500))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Maximum(context.Background()); !errors.Is(err, mule.ErrBudget) {
		t.Fatalf("Maximum under budget returned %v, want wrapped ErrBudget", err)
	}
}

// TestExtensionSentinels: the biclique and maintainer surfaces classify
// invalid input with the same typed sentinels as the query surface.
func TestExtensionSentinels(t *testing.T) {
	if _, err := mule.EnumerateBicliques(nil, 0.5, nil); !errors.Is(err, mule.ErrNilGraph) {
		t.Fatalf("nil bipartite: %v", err)
	}
	bb := mule.NewBipartiteBuilder(2, 2)
	if err := bb.AddEdge(5, 0, 0.5); !errors.Is(err, mule.ErrVertexRange) {
		t.Fatalf("bipartite vertex range: %v", err)
	}
	if err := bb.AddEdge(0, 0, 7); !errors.Is(err, mule.ErrProbRange) {
		t.Fatalf("bipartite prob range: %v", err)
	}
	g := bb.Build()
	if _, err := mule.EnumerateBicliques(g, 0, nil); !errors.Is(err, mule.ErrAlphaRange) {
		t.Fatalf("bipartite alpha: %v", err)
	}
	if _, err := mule.NewMaintainer(nil, 0.5); !errors.Is(err, mule.ErrNilGraph) {
		t.Fatalf("maintainer nil graph: %v", err)
	}
	small, err := mule.FromEdges(2, []mule.Edge{{U: 0, V: 1, P: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mule.NewMaintainer(small, 9); !errors.Is(err, mule.ErrAlphaRange) {
		t.Fatalf("maintainer alpha: %v", err)
	}
	m, err := mule.NewMaintainer(small, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetEdge(0, 0, 0.5); !errors.Is(err, mule.ErrSelfLoop) {
		t.Fatalf("maintainer self-loop: %v", err)
	}
	if _, err := m.SetEdge(0, 5, 0.5); !errors.Is(err, mule.ErrVertexRange) {
		t.Fatalf("maintainer vertex range: %v", err)
	}
	if _, err := m.SetEdge(0, 1, 2); !errors.Is(err, mule.ErrProbRange) {
		t.Fatalf("maintainer prob range: %v", err)
	}
}
