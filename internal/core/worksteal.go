package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the default parallel engine: a work-stealing
// depth-first search over explicit, splittable frames.
//
// A wsFrame is one suspended invocation of Enum-Uncertain-MC (Algorithm 2):
// the working clique C with clq(C) = q, the node's full candidate set I,
// and the iteration range [next, end) of candidates this frame still has to
// expand. The witness set is maintained under the invariant
//
//	X == X₀ ++ I[:next]
//
// where X₀ is the witness set the node was created with. The serial loop
// maintains exactly this (it pushes every expanded candidate onto X), which
// makes a frame splittable at any iteration boundary: the witness set of
// iteration mid is X ++ I[next:mid], computable from the frame alone — the
// invariant holds lane-wise in the SoA layout, so a split copies both
// lanes. A thief can therefore take the upper half of a lone frame's
// pending range, or — the common case — half of the oldest (shallowest, and
// hence biggest) frames of a victim's deque.
//
// Ownership rules keep the engine race-free without fine-grained locking:
// a frame is mutated only by the worker currently holding it, and the only
// handoff points (deque push/pop/steal) are guarded by the deque mutex.
// C and I are read-only after frame creation and may be shared by a split;
// X is written by the owner, so a split gives the thief a private copy.
//
// Arena discipline: each worker's enumerator owns a private frame arena
// (arena.go) used for all within-node scratch — the I'/X' produced while
// expanding a frame's candidates, and the entire inline recursion below the
// steal granularity. Frames are the one thing that crosses workers, so
// frame state (C, I, X) always lives on the heap: a frame-worthy child
// copies its arena-built I'/X' lanes into fresh heap slices before the
// arena mark is released. A thief therefore never observes another worker's
// arena memory, keeping the engine -race clean with zero cross-worker
// synchronization beyond the deque mutexes.
//
// Accounting: everything a worker counts — search-tree stats and the
// steal/split counters its thieving increments — lives in the worker's own
// wsWorker (the stats block and the steals/splits fields), never in
// engine-wide memory. Per-worker blocks are merged in worker order after
// the run. Incrementing a shared counter from stealFrom after dropping the
// victim's deque mutex would race between two thieves robbing different
// victims; keeping the counters worker-private makes that impossible by
// construction (regression-tested by the steal-storm test under -race),
// and keeps the node-counting hot path free of cross-worker cache-line
// contention, which a flat []Stats slice of adjacent per-worker blocks
// would reintroduce as false sharing.
//
// Frame free list: the heap copies are the engine's one remaining steady-
// state allocation (frame struct + C + I/X lanes per frame-worthy node). A
// fully executed frame therefore goes onto the executing worker's private
// free list and the next frame-worthy child reuses its struct and slice
// capacity. The only frames excluded are those whose C/I became aliased by
// an iteration-level split (shared flag, set under the victim's deque mutex
// — the same mutex every ownership handoff goes through, so the owner
// always observes it): the thief's half-frame still reads those slices, so
// both aliases are left to the GC. Splits are rare (Stats.Splits), so in
// steady state frame churn recycles entirely within the free lists; a
// frame stolen wholesale is simply recycled by the thief that finishes it.

// defaultStealGranularity is the Config.StealGranularity used when the knob
// is zero: subtrees with fewer pending candidates than this run inline with
// the serial recursion instead of becoming stealable frames. A node with k
// candidates roots a subtree of at most 2^k set-visits, so 8 bounds an
// unstealable chunk to a few hundred cheap nodes.
const defaultStealGranularity = 8

// wsFreeListMax bounds a worker's frame free list. Deques are rarely more
// than a few dozen frames deep, so 64 recycled frames cover the working set
// without pinning arbitrarily large C/I/X capacities for the whole run.
const wsFreeListMax = 64

type wsFrame struct {
	C      []int32  // working clique; read-only once the frame exists
	q      float64  // clq(C)
	I      entrySet // full candidate set of the node; read-only
	X      entrySet // witness set, kept equal (lane-wise) to X₀ ++ I[:next]
	next   int      // first pending candidate index
	end    int      // one past the last candidate this frame owns
	shared bool     // C/I aliased by an iteration-level split; never recycle
}

// wsDeque is a mutex-guarded deque of frames. The owner pushes and pops at
// the tail (newest, deepest); thieves take from the head (oldest,
// shallowest — the frames with the most work under them).
type wsDeque struct {
	mu     sync.Mutex
	n      atomic.Int32 // mirror of len(frames) for lock-free peeking
	frames []*wsFrame
}

func (d *wsDeque) push(f *wsFrame) {
	d.mu.Lock()
	d.frames = append(d.frames, f)
	d.n.Store(int32(len(d.frames)))
	d.mu.Unlock()
}

func (d *wsDeque) pop() *wsFrame {
	d.mu.Lock()
	k := len(d.frames)
	if k == 0 {
		d.mu.Unlock()
		return nil
	}
	f := d.frames[k-1]
	d.frames[k-1] = nil
	d.frames = d.frames[:k-1]
	d.n.Store(int32(k - 1))
	d.mu.Unlock()
	return f
}

// popIf removes the newest frame iff it is exactly f. The owner calls it
// after returning from a child subtree: success means the continuation it
// exposed was not stolen and it may resume; failure means a thief owns f.
func (d *wsDeque) popIf(f *wsFrame) bool {
	d.mu.Lock()
	k := len(d.frames)
	if k == 0 || d.frames[k-1] != f {
		d.mu.Unlock()
		return false
	}
	d.frames[k-1] = nil
	d.frames = d.frames[:k-1]
	d.n.Store(int32(k - 1))
	d.mu.Unlock()
	return true
}

// wsShared is the state common to all workers of one run (and reused by the
// legacy top-level driver for its visitor wrapping). The stop flag lives in
// the run control so that visitor early-stop, context cancellation, and
// budget exhaustion all unwind every worker through the same latch.
type wsShared struct {
	ctl     *RunControl
	busy    atomic.Int32 // workers not parked in waitForWork
	visitMu sync.Mutex   // serializes user-visitor invocations
	visit   Visitor      // the user's visitor; nil = count only
	workers []*wsWorker
}

// wrapVisitor serializes the user visitor across workers and latches the
// early-stop: after any visitor invocation returns false, every later
// emission is swallowed, preserving the serial contract that no clique is
// delivered after the stop.
func (s *wsShared) wrapVisitor() Visitor {
	if s.visit == nil {
		return nil
	}
	return func(c []int, p float64) bool {
		s.visitMu.Lock()
		defer s.visitMu.Unlock()
		if s.ctl.stop.Load() {
			return false
		}
		if !s.visit(c, p) {
			s.ctl.stop.Store(true)
			return false
		}
		return true
	}
}

type wsWorker struct {
	id          int
	granularity int
	shared      *wsShared
	e           *enumerator // worker-local clone; private stats and emit buffer
	deque       wsDeque
	stats       Stats      // this worker's counters; merged after the run
	steals      int64      // successful steals by this worker (as the thief)
	splits      int64      // iteration-level splits by this worker (as the thief)
	scratch     []int32    // reusable C∪{u} buffer for leaf nodes
	free        []*wsFrame // recycled frames; reused for frame-worthy children
}

// takeFrame returns a recycled frame (slice capacities intact) or a fresh
// zero frame. The caller overwrites every field.
func (w *wsWorker) takeFrame() *wsFrame {
	n := len(w.free)
	if n == 0 {
		return &wsFrame{}
	}
	f := w.free[n-1]
	w.free[n-1] = nil
	w.free = w.free[:n-1]
	return f
}

// recycle puts a fully executed frame onto the worker's free list. A frame
// whose C/I are aliased by a split stays out — the other alias may still
// read them — as does anything beyond the list bound.
func (w *wsWorker) recycle(f *wsFrame) {
	if f.shared || len(w.free) >= wsFreeListMax {
		return
	}
	f.C, f.I, f.X = f.C[:0], f.I.reset(), f.X.reset()
	w.free = append(w.free, f)
}

// runWorkStealing executes the search with the work-stealing engine. Worker
// 0 is seeded with the root frame (all n vertices pending); the others
// start by stealing. Per-worker stats (including the steal/split counters,
// which a thief increments only on its own wsWorker) are merged in
// ascending worker order after the run, so the aggregate is deterministic
// for a deterministic workload split and reproducibly summed regardless of
// scheduling.
func (e *enumerator) runWorkStealing(workers, granularity int) {
	if granularity <= 0 {
		granularity = defaultStealGranularity
	}
	n := e.g.NumVertices()
	// The root call is accounted once, exactly as in the serial driver.
	e.stats.Calls++
	if n == 0 {
		return
	}
	rootI := entrySet{v: make([]int32, n), r: make([]float64, n)}
	for v := 0; v < n; v++ {
		rootI.v[v] = int32(v)
		rootI.r[v] = 1
	}
	s := &wsShared{ctl: e.ctl, visit: e.visit, workers: make([]*wsWorker, workers)}
	s.busy.Store(int32(workers))
	for i := range s.workers {
		w := &wsWorker{
			id:          i,
			granularity: granularity,
			shared:      s,
		}
		// Each worker counts into its own wsWorker block — separate heap
		// objects, not adjacent slots of one slice — so the per-node
		// Calls++ hot path and the thief-side steal counters are unlikely
		// to share a cache line with another worker's (a flat []Stats
		// would guarantee that they do).
		w.e = e.workerClone(&w.stats, s)
		s.workers[i] = w
	}
	root := &wsFrame{q: 1, I: rootI, end: n}
	var wg sync.WaitGroup
	for i := range s.workers {
		seed := (*wsFrame)(nil)
		if i == 0 {
			seed = root
		}
		wg.Add(1)
		go func(w *wsWorker, cur *wsFrame) {
			defer wg.Done()
			w.run(cur)
		}(s.workers[i], seed)
	}
	wg.Wait()
	for _, w := range s.workers {
		w.stats.Steals += w.steals
		w.stats.Splits += w.splits
		e.stats.merge(&w.stats)
	}
	e.stopped = e.ctl.stop.Load()
}

// run is the worker loop: drain the own deque, then steal, then park.
func (w *wsWorker) run(cur *wsFrame) {
	s := w.shared
	for {
		if s.ctl.stop.Load() || w.e.stopped {
			return
		}
		if cur == nil {
			cur = w.deque.pop()
		}
		if cur == nil {
			cur = w.steal()
		}
		if cur == nil {
			if !w.waitForWork() {
				return
			}
			continue
		}
		w.executeFrame(cur)
		cur = nil
	}
}

// executeFrame runs f's pending candidate range depth-first. Before
// descending into a non-final child it pushes the continuation of f so
// thieves can take the remaining iterations; on the way back, popIf tells
// it whether the continuation survived. A frame that runs dry is recycled
// onto the worker's free list on the spot.
func (w *wsWorker) executeFrame(f *wsFrame) {
	e := w.e
	s := w.shared
	for {
		if e.stopped || s.ctl.stop.Load() {
			return
		}
		if f.next >= f.end {
			w.recycle(f)
			return
		}
		j := f.next
		f.next = j + 1
		u, r := f.I.v[j], f.I.r[j]
		q2 := f.q * r
		m := e.arena.mark()
		tail := entrySet{f.I.v[j+1:], f.I.r[j+1:]}
		var I2, X2 entrySet
		e.generateI(&I2, &tail, u, q2)
		if e.minSize >= 2 && len(f.C)+1+I2.length() < e.minSize {
			e.stats.SizePruned++
			// The serial loop skips the witness push here; keeping it
			// preserves the X == X₀ ++ I[:next] split invariant and cannot
			// change the emitted set (see the note in large.go).
			f.X = f.X.push(u, r)
			e.arena.release(m)
			continue
		}
		e.generateX(&X2, &f.X, u, q2, I2.length())
		f.X = f.X.push(u, r)
		if I2.length() == 0 {
			// Leaf (emit) or dead end (witnessed): account for the node
			// without allocating a frame or recursing.
			if e.countNode() {
				e.arena.release(m)
				return
			}
			if d := len(f.C) + 1; d > e.stats.MaxDepth {
				e.stats.MaxDepth = d
			}
			w.scratch = append(append(w.scratch[:0], f.C...), u)
			if e.checkInv {
				e.verifyInvariants(w.scratch, q2, I2, X2)
			}
			if X2.length() == 0 {
				e.emit(w.scratch, q2)
			}
			e.arena.release(m)
			continue
		}
		if I2.length() < w.granularity {
			// Small subtree: run it inline with the serial recursion on
			// worker-private scratch. It accounts for its own nodes and is
			// never exposed for stealing, so the arena-backed I2/X2 and the
			// scratch clique stay owned by this worker throughout.
			w.scratch = append(append(w.scratch[:0], f.C...), u)
			e.recurse(w.scratch, q2, I2, X2)
			e.arena.release(m)
			continue
		}
		// Frame-worthy child: its state may be handed to a thief, so copy
		// the arena-built I2/X2 lanes (and the extended clique) out of the
		// arena before releasing the mark — into a recycled frame's slices
		// when the free list has one. X gets the push capacity its own
		// witness pushes will need.
		child := w.takeFrame()
		child.C = append(append(child.C[:0], f.C...), u)
		child.q = q2
		child.I.v = append(child.I.v[:0], I2.v...)
		child.I.r = append(child.I.r[:0], I2.r...)
		if need := X2.length() + I2.length(); cap(child.X.v) < need {
			child.X = entrySet{v: make([]int32, 0, need), r: make([]float64, 0, need)}
		}
		child.X.v = append(child.X.v[:0], X2.v...)
		child.X.r = append(child.X.r[:0], X2.r...)
		child.next, child.end, child.shared = 0, I2.length(), false
		e.arena.release(m)
		if e.countNode() {
			return
		}
		if d := len(child.C); d > e.stats.MaxDepth {
			e.stats.MaxDepth = d
		}
		if e.checkInv {
			e.verifyInvariants(child.C, q2, child.I, child.X)
		}
		if f.next >= f.end {
			// Final candidate: nothing left to expose, descend in place.
			w.recycle(f)
			f = child
			continue
		}
		w.deque.push(f)
		w.executeFrame(child)
		if !w.deque.popIf(f) {
			return // continuation stolen; the thief owns f now
		}
	}
}

// steal sweeps the other workers once, nearest id first.
func (w *wsWorker) steal() *wsFrame {
	p := len(w.shared.workers)
	for off := 1; off < p; off++ {
		if f := w.stealFrom(w.shared.workers[(w.id+off)%p]); f != nil {
			return f
		}
	}
	return nil
}

// stealFrom takes half of the oldest frames from v's deque. With two or
// more frames queued, the older half moves wholesale (all but one parked on
// the thief's own deque, so they stay stealable by others). A lone frame
// with at least two pending candidates is split at the iteration level:
// the thief receives the upper half of the range with private witness
// lanes reconstructed from the split invariant; both halves then alias the
// same C/I and are marked unrecyclable. The steal/split counters touched
// after dropping the victim's mutex are w's own (merged at run end), so
// concurrent thieves never write shared memory here.
func (w *wsWorker) stealFrom(v *wsWorker) *wsFrame {
	d := &v.deque
	if d.n.Load() == 0 {
		return nil
	}
	d.mu.Lock()
	k := len(d.frames)
	switch {
	case k == 0:
		d.mu.Unlock()
		return nil
	case k == 1:
		f := d.frames[0]
		if f.end-f.next >= 2 {
			mid := f.next + (f.end-f.next)/2
			X := entrySet{
				v: make([]int32, f.X.length(), f.X.length()+(mid-f.next)),
				r: make([]float64, f.X.length(), f.X.length()+(mid-f.next)),
			}
			copy(X.v, f.X.v)
			copy(X.r, f.X.r)
			X.v = append(X.v, f.I.v[f.next:mid]...)
			X.r = append(X.r, f.I.r[f.next:mid]...)
			g := &wsFrame{C: f.C, q: f.q, I: f.I, X: X, next: mid, end: f.end, shared: true}
			f.end = mid
			f.shared = true
			d.mu.Unlock()
			w.steals++
			w.splits++
			return g
		}
		d.frames[0] = nil
		d.frames = d.frames[:0]
		d.n.Store(0)
		d.mu.Unlock()
		w.steals++
		return f
	default:
		h := k / 2
		stolen := make([]*wsFrame, h)
		copy(stolen, d.frames[:h])
		m := copy(d.frames, d.frames[h:])
		for i := m; i < k; i++ {
			d.frames[i] = nil
		}
		d.frames = d.frames[:m]
		d.n.Store(int32(m))
		d.mu.Unlock()
		for _, f := range stolen[:h-1] {
			w.deque.push(f)
		}
		w.steals++
		return stolen[h-1]
	}
}

// waitForWork parks the worker until another deque shows work or the run
// ends. It returns false on termination. A worker is counted busy from the
// moment it claims work until its next failed pop+steal, and only the owner
// pushes to a deque, so busy == 0 implies every deque is empty and no frame
// is held: the run is complete.
func (w *wsWorker) waitForWork() bool {
	s := w.shared
	if s.busy.Add(-1) == 0 {
		return false
	}
	spins := 0
	for {
		if s.ctl.stop.Load() || s.busy.Load() == 0 {
			return false
		}
		for _, v := range s.workers {
			if v != w && v.deque.n.Load() > 0 {
				s.busy.Add(1)
				return true
			}
		}
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}
