// Package baseline implements the comparison algorithms of the paper's
// evaluation plus a brute-force oracle used by the test suite.
//
// DFS-NOIP ("DFS with NO Incremental Probability computation", Algorithm 7
// in the paper) walks the same ascending-vertex-ID search tree as MULE but
// recomputes clique probabilities from scratch at every step and tests
// maximality by scanning the whole vertex set, which is precisely the cost
// MULE's I/X bookkeeping removes. Figure 1 of the paper measures this gap.
package baseline

import (
	"sort"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Visitor receives each α-maximal clique as a sorted vertex slice. The slice
// is only valid during the call; copy it to retain it. Returning false stops
// the enumeration.
type Visitor func(clique []int, prob float64) bool

// NOIPStats counts the work done by a DFS-NOIP run.
type NOIPStats struct {
	Calls          int // recursive search-tree nodes
	ProbProducts   int // full clique-probability products computed
	MaximalityScan int // from-scratch maximality checks
	Emitted        int // α-maximal cliques reported
}

// EnumerateNOIP enumerates all α-maximal cliques of g using Algorithm 7.
// Edges with p(e) < alpha are pruned first (Observation 3), exactly as the
// paper's implementation does for both algorithms so that the comparison
// isolates the incremental-computation difference.
func EnumerateNOIP(g *uncertain.Graph, alpha float64, visit Visitor) NOIPStats {
	if alpha <= 0 || alpha >= 1 {
		panic("baseline: alpha must be in (0,1)")
	}
	pg := g.PruneAlpha(alpha)
	e := &noipEnum{g: pg, alpha: alpha, visit: visit}
	n := pg.NumVertices()
	initial := make([]int32, n)
	for i := range initial {
		initial[i] = int32(i)
	}
	e.recurse(nil, initial)
	return e.stats
}

type noipEnum struct {
	g       *uncertain.Graph
	alpha   float64
	visit   Visitor
	stats   NOIPStats
	stopped bool
}

// cliqueProbScratch recomputes clq(C, G) as the full product over all pairs
// — the non-incremental cost the baseline is defined by.
func (e *noipEnum) cliqueProbScratch(set []int) (float64, bool) {
	e.stats.ProbProducts++
	prob := 1.0
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			p, ok := e.g.Prob(set[i], set[j])
			if !ok {
				return 0, false
			}
			prob *= p
		}
	}
	return prob, true
}

// isAlphaMaximalScratch scans every vertex of the graph to decide whether
// any of them extends set into an α-clique.
func (e *noipEnum) isAlphaMaximalScratch(set []int, q float64) bool {
	e.stats.MaximalityScan++
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for u := 0; u < e.g.NumVertices(); u++ {
		if in[u] {
			continue
		}
		f := 1.0
		extends := true
		for _, v := range set {
			p, ok := e.g.Prob(u, v)
			if !ok {
				extends = false
				break
			}
			f *= p
		}
		if extends && q*f >= e.alpha {
			return false
		}
	}
	return true
}

func (e *noipEnum) emit(set []int, q float64) {
	e.stats.Emitted++
	if e.visit != nil && !e.visit(set, q) {
		e.stopped = true
	}
}

// recurse is Algorithm 7. C is sorted ascending; cand holds vertices
// adjacent (in the pruned support graph) to every vertex of C.
func (e *noipEnum) recurse(C []int, cand []int32) {
	if e.stopped {
		return
	}
	e.stats.Calls++
	maxC := -1
	if len(C) > 0 {
		maxC = C[len(C)-1]
	}
	// Line 1–4: drop candidates that are ≤ max(C) or do not keep C an
	// α-clique; each check is a from-scratch product.
	qC := 1.0
	if len(C) > 0 {
		q, ok := e.cliqueProbScratch(C)
		if !ok {
			return
		}
		qC = q
	}
	filtered := make([]int32, 0, len(cand))
	for _, u := range cand {
		if int(u) <= maxC {
			continue
		}
		q, ok := e.cliqueProbScratch(append(C, int(u)))
		if ok && q >= e.alpha {
			filtered = append(filtered, u)
		}
	}
	// Line 5–8: leaf — C may be α-maximal via vertices < max(C).
	if len(filtered) == 0 {
		if len(C) > 0 && e.isAlphaMaximalScratch(C, qC) {
			e.emit(C, qC)
		}
		return
	}
	// Line 9–15.
	for _, v := range filtered {
		if e.stopped {
			return
		}
		C2 := append(C, int(v))
		q2, _ := e.cliqueProbScratch(C2)
		if e.isAlphaMaximalScratch(C2, q2) {
			e.emit(C2, q2)
			continue
		}
		e.recurse(C2, intersectSorted(filtered, e.g, int(v)))
	}
}

// intersectSorted returns cand ∩ Γ(v), preserving ascending order.
func intersectSorted(cand []int32, g *uncertain.Graph, v int) []int32 {
	row, _ := g.Adjacency(v)
	out := make([]int32, 0, min(len(cand), len(row)))
	i, j := 0, 0
	for i < len(cand) && j < len(row) {
		switch {
		case cand[i] < row[j]:
			i++
		case cand[i] > row[j]:
			j++
		default:
			out = append(out, cand[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CollectNOIP runs EnumerateNOIP and returns all cliques in canonical order.
func CollectNOIP(g *uncertain.Graph, alpha float64) [][]int {
	var out [][]int
	EnumerateNOIP(g, alpha, func(c []int, _ float64) bool {
		cp := make([]int, len(c))
		copy(cp, c)
		out = append(out, cp)
		return true
	})
	Canonicalize(out)
	return out
}

// Canonicalize sorts each clique ascending and the collection
// lexicographically — the comparison form used by all cross-implementation
// tests.
func Canonicalize(cliques [][]int) {
	for _, c := range cliques {
		sort.Ints(c)
	}
	sort.Slice(cliques, func(i, j int) bool {
		a, b := cliques[i], cliques[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// BruteForce enumerates all α-maximal cliques by testing every subset of
// vertices against Definition 4 directly. Exponential: the independent
// oracle for graphs with at most ~16 vertices.
func BruteForce(g *uncertain.Graph, alpha float64) [][]int {
	n := g.NumVertices()
	if n > 24 {
		panic("baseline: BruteForce limited to n <= 24")
	}
	var out [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		set := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if g.IsAlphaMaximalClique(set, alpha) {
			out = append(out, set)
		}
	}
	Canonicalize(out)
	return out
}
