package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// The kernel experiment measures the enumeration kernel itself — ns/op,
// allocs/op and B/op for the serial driver and both parallel engines across
// the standard workloads — and appends the results to a machine-readable
// trajectory file (BENCH_kernel.json at the repo root). Every performance PR
// records a labeled run, so regressions and wins are visible across the
// repo's history rather than only in prose.

// KernelEntry is one measured (workload, engine) cell.
type KernelEntry struct {
	Workload    string  `json:"workload"`
	Alpha       float64 `json:"alpha"`
	MinSize     int     `json:"min_size,omitempty"`
	Engine      string  `json:"engine"` // serial | worksteal | toplevel
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cliques     int64   `json:"cliques"`
	Calls       int64   `json:"search_calls"`
}

// KernelRun is one labeled sweep of the kernel benchmark.
type KernelRun struct {
	Label     string         `json:"label"`
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	Quick     bool           `json:"quick"`
	Once      bool           `json:"once,omitempty"` // single-iteration smoke run
	Speedup   *KernelSpeedup `json:"speedup,omitempty"`
	Entries   []KernelEntry  `json:"entries"`
}

// KernelSpeedup is the trajectory form of the TestWorkStealingSpeedup
// acceptance measurement: serial vs both parallel engines on the skewed hub
// workload. Recorded only on machines with ≥4 usable CPUs — on smaller
// boxes no engine can demonstrate a speedup, so the block is omitted and
// rows stay comparable via the `num_cpu` key.
type KernelSpeedup struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	SerialNs    float64 `json:"serial_ns"`
	TopLevelNs  float64 `json:"toplevel_ns"`
	WorkStealNs float64 `json:"worksteal_ns"`
	Speedup     float64 `json:"worksteal_speedup"` // serial / worksteal
	Cliques     int64   `json:"cliques"`
}

// SpeedupCPUs returns the worker count the speedup cell runs with, or 0
// when the machine cannot demonstrate one (fewer than 4 usable CPUs).
func SpeedupCPUs() int {
	cpus := runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g < cpus {
		cpus = g
	}
	if cpus < 4 {
		return 0
	}
	return cpus
}

// MeasureSpeedup times serial, top-level and work-stealing once each on the
// skewed hub workload (after a warm-up pass) — the exact measurement
// TestWorkStealingSpeedup gates on, shared here so the acceptance numbers
// land in the trajectory file instead of only in transient test logs.
func MeasureSpeedup(cfg Config) (*KernelSpeedup, error) {
	cpus := SpeedupCPUs()
	if cpus == 0 {
		return nil, fmt.Errorf("bench: speedup cell needs ≥4 usable CPUs, have NumCPU=%d GOMAXPROCS=%d",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	cfg = cfg.withDefaults()
	ng := SkewedCliqueGraph(cfg)
	run := func(c core.Config) (time.Duration, int64, error) {
		r, err := TimedMULE(ng.G, SkewedAlpha, cfg, c)
		if err != nil {
			return 0, 0, err
		}
		if !r.Finished {
			return 0, 0, fmt.Errorf("bench: speedup cell %+v exceeded its budget", c)
		}
		return r.Elapsed, r.Cliques, nil
	}
	if _, _, err := run(core.Config{}); err != nil { // warm-up
		return nil, err
	}
	serial, cliques, err := run(core.Config{})
	if err != nil {
		return nil, err
	}
	topLevel, topCliques, err := run(core.Config{Workers: cpus, Parallel: core.ParallelTopLevel})
	if err != nil {
		return nil, err
	}
	workSteal, wsCliques, err := run(core.Config{Workers: cpus})
	if err != nil {
		return nil, err
	}
	if wsCliques != cliques || topCliques != cliques {
		return nil, fmt.Errorf("bench: speedup cell clique counts diverge: serial=%d toplevel=%d worksteal=%d",
			cliques, topCliques, wsCliques)
	}
	sp := &KernelSpeedup{
		Workload:    ng.Name,
		Workers:     cpus,
		SerialNs:    float64(serial.Nanoseconds()),
		TopLevelNs:  float64(topLevel.Nanoseconds()),
		WorkStealNs: float64(workSteal.Nanoseconds()),
		Cliques:     cliques,
	}
	if workSteal > 0 {
		sp.Speedup = float64(serial.Nanoseconds()) / float64(workSteal.Nanoseconds())
	}
	return sp, nil
}

// KernelReport is the on-disk trajectory: one run per measured kernel state,
// oldest first.
type KernelReport struct {
	Note string      `json:"note"`
	Runs []KernelRun `json:"runs"`
}

const kernelReportNote = "MULE kernel benchmark trajectory; append one labeled run per performance-relevant PR (cmd/experiments -exp kernel -kernel-out BENCH_kernel.json -kernel-label \"...\")"

// kernelWorkload is one input of the kernel sweep.
type kernelWorkload struct {
	ng      NamedGraph
	alpha   float64
	minSize int
}

// kernelWorkloads returns the sweep inputs: a Barabási–Albert power-law
// graph at a low threshold (deep search tree, long candidate lists), the
// skewed hub workload (one dominant subtree, hub rows ≫ tails — the shape
// the adaptive gallop intersection targets), a collaboration-like graph, a
// LARGE-MULE run exercising the size-pruned path and the CSR prefilter,
// and the dense G(n,p) cell at a high α (the shape the word-parallel
// bitset kernel targets — this is the cell the CI -kernel-diff smoke run
// relies on to exercise the bitset path).
func kernelWorkloads(cfg Config) []kernelWorkload {
	cfg = cfg.withDefaults()
	baN := 5000
	if cfg.Quick {
		baN = 800
	}
	ba := NamedGraph{baName(baN), gen.BA(baN, cfg.Seed)}
	collab := NamedGraph{"ca-GrQc", gen.CollaborationLikeN(1310, 7245, cfg.Seed)}
	if !cfg.Quick {
		collab = NamedGraph{"ca-GrQc", gen.CollaborationLike(cfg.Seed)}
	}
	return []kernelWorkload{
		{ba, 0.001, 0},
		{SkewedCliqueGraph(cfg), SkewedAlpha, 0},
		{collab, 0.0005, 0},
		{ba, 0.001, 3},
		{DenseGNPGraph(cfg), DenseAlpha, 0},
	}
}

// kernelEngines returns the engine grid: serial plus both parallel engines
// at the configured worker count (cfg.Workers when ≥ 2, else min(NumCPU, 4)
// to keep the numbers comparable across differently sized CI machines).
func kernelEngines(cfg Config) []core.Config {
	w := cfg.Workers
	if w < 2 {
		w = runtime.NumCPU()
		if w > 4 {
			w = 4
		}
	}
	engines := []core.Config{{}}
	if w >= 2 {
		engines = append(engines,
			core.Config{Workers: w, Parallel: core.ParallelWorkStealing},
			core.Config{Workers: w, Parallel: core.ParallelTopLevel})
	}
	return engines
}

func engineLabel(c core.Config) string {
	if c.Workers <= 1 {
		return "serial"
	}
	return c.Parallel.String()
}

// measureTimed times runOnce into e. With once set it performs a single
// timed iteration (CI smoke mode, equivalent in spirit to -benchtime=1x);
// otherwise it defers to testing.Benchmark's auto-scaling.
func measureTimed(e *KernelEntry, runOnce func(), once bool) {
	if once {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		runOnce()
		e.NsPerOp = float64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&after)
		e.AllocsPerOp = int64(after.Mallocs - before.Mallocs)
		e.BytesPerOp = int64(after.TotalAlloc - before.TotalAlloc)
	} else {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runOnce()
			}
		})
		e.NsPerOp = float64(r.NsPerOp())
		e.AllocsPerOp = r.AllocsPerOp()
		e.BytesPerOp = r.AllocedBytesPerOp()
	}
}

// measureKernel benchmarks one (workload, engine) cell.
func measureKernel(g *uncertain.Graph, alpha float64, coreCfg core.Config, once bool) (KernelEntry, error) {
	var stats core.Stats
	var runErr error
	ctx := context.Background()
	e := KernelEntry{
		Alpha:   alpha,
		MinSize: coreCfg.MinSize,
		Engine:  engineLabel(coreCfg),
		Workers: maxInt(coreCfg.Workers, 1),
	}
	measureTimed(&e, func() {
		// Measured through the public query API (runEnumeration), so the
		// trajectory reflects what callers of mule.NewQuery actually pay —
		// including the per-node cancellation accounting.
		stats, runErr = runEnumeration(ctx, g, alpha, coreCfg)
	}, once)
	if runErr != nil {
		return e, runErr
	}
	e.Cliques = stats.Emitted
	e.Calls = stats.Calls
	return e, nil
}

// extensionKernelCells returns the extension-path cells of the sweep: a
// small biclique enumeration, an η-truss decomposition, a
// component-sharded clique run, a densest-subgraph run, and a k-center
// clustering, all measured through the public
// prepared-query API so the trajectory catches regressions on the §6 query
// surface (run-control polling included). The cells are sized to stay
// 1-CPU-friendly per the trajectory-comparability convention (the sharded
// cell's two shard slots idle-wait rather than saturate). KernelEntry
// reuse: Alpha
// carries the miner's threshold (α / η), Cliques the emitted results
// (bicliques / edges), Calls the charged work units (search nodes / support
// checks).
func extensionKernelCells(cfg Config, once bool) ([]KernelEntry, error) {
	ctx := context.Background()
	out := make([]KernelEntry, 0, 5)

	bg := AffinityBipartite(200, 150, 6, cfg.Seed)
	be := KernelEntry{Workload: "biclique-aff200x150", Alpha: 0.2, Engine: "serial", Workers: 1}
	var bStats mule.BicliqueStats
	var runErr error
	bq, err := mule.NewBicliqueQuery(bg, be.Alpha, mule.WithSides(2, 2))
	if err != nil {
		return nil, err
	}
	measureTimed(&be, func() { bStats, runErr = bq.Run(ctx, nil) }, once)
	if runErr != nil {
		return nil, fmt.Errorf("bench: biclique kernel cell: %w", runErr)
	}
	be.Cliques = bStats.Emitted
	be.Calls = bStats.Calls
	out = append(out, be)

	tg := CommunityGraph(150, 8, 7, cfg.Seed)
	te := KernelEntry{Workload: "truss-community150", Alpha: 0.5, Engine: "serial", Workers: 1}
	var tStats mule.TrussStats
	tq, err := mule.NewTrussQuery(tg, te.Alpha)
	if err != nil {
		return nil, err
	}
	measureTimed(&te, func() { tStats, runErr = tq.Run(ctx, nil) }, once)
	if runErr != nil {
		return nil, fmt.Errorf("bench: truss kernel cell: %w", runErr)
	}
	te.Cliques = tStats.Emitted
	te.Calls = tStats.Checks
	out = append(out, te)

	// Component-sharded clique enumeration over the BA-800 workload: the
	// same graph and α as the quick sweep's first cell, but driven through
	// WithShards(2), so the trajectory catches regressions in the shard
	// driver itself (lazy component extraction, reorder buffer, stats
	// folding) rather than only in the per-shard engines.
	sg := gen.BA(800, cfg.Seed)
	se := KernelEntry{Workload: "sharded-ba800", Alpha: 0.001, Engine: "sharded", Workers: 2}
	var sStats mule.Stats
	sq, err := mule.NewQuery(sg, se.Alpha, mule.WithShards(2))
	if err != nil {
		return nil, err
	}
	measureTimed(&se, func() { sStats, runErr = sq.Run(ctx, nil) }, once)
	if runErr != nil {
		return nil, fmt.Errorf("bench: sharded kernel cell: %w", runErr)
	}
	se.Cliques = sStats.Emitted
	se.Calls = sStats.Calls
	out = append(out, se)

	// Most-probable densest subgraph over the BA-800 workload: the peel
	// walks every vertex and the scoring DP re-reads every edge per
	// candidate, so this cell covers both new udensest phases. Alpha is
	// unused by the miner; Cliques carries candidates emitted, Calls the
	// charged peel steps.
	dg := gen.BA(800, cfg.Seed)
	de := KernelEntry{Workload: "densest-ba800", Engine: "serial", Workers: 1}
	var dStats mule.DensestStats
	dq, err := mule.NewDensestQuery(dg)
	if err != nil {
		return nil, err
	}
	measureTimed(&de, func() { dStats, runErr = dq.Run(ctx, nil) }, once)
	if runErr != nil {
		return nil, fmt.Errorf("bench: densest kernel cell: %w", runErr)
	}
	de.Cliques = dStats.Emitted
	de.Calls = dStats.PeelSteps
	out = append(out, de)

	// k-center clustering over the community workload: seeding plus Lloyd
	// refinement exercise the reliability-Dijkstra sweep kernel. Cliques
	// carries clusters emitted, Calls the charged center sweeps.
	cg := CommunityGraph(150, 8, 7, cfg.Seed)
	ce := KernelEntry{Workload: "cluster-community150", Engine: "serial", Workers: 1}
	var cStats mule.ClusterStats
	cq, err := mule.NewClusterQuery(cg, mule.WithCenters(8))
	if err != nil {
		return nil, err
	}
	measureTimed(&ce, func() { cStats, runErr = cq.Run(ctx, nil) }, once)
	if runErr != nil {
		return nil, fmt.Errorf("bench: cluster kernel cell: %w", runErr)
	}
	ce.Cliques = cStats.Emitted
	ce.Calls = cStats.Sweeps
	out = append(out, ce)
	return out, nil
}

// runKernel executes the kernel benchmark sweep, renders the table, and —
// when cfg.KernelOut is set — merges the run into the trajectory file.
func runKernel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	run := KernelRun{
		Label:     cfg.KernelLabel,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     cfg.Quick,
		Once:      cfg.KernelOnce,
	}
	if run.Label == "" {
		run.Label = "unlabeled " + run.Date
	}
	t := NewTable(fmt.Sprintf("Kernel benchmark (%s): ns/op, allocs/op, B/op", run.Label),
		"workload", "α", "minsize", "engine", "workers", "ns/op", "allocs/op", "B/op", "cliques", "calls")
	for _, wl := range kernelWorkloads(cfg) {
		for _, ec := range kernelEngines(cfg) {
			ec.MinSize = wl.minSize
			e, err := measureKernel(wl.ng.G, wl.alpha, ec, cfg.KernelOnce)
			if err != nil {
				return fmt.Errorf("kernel %s/%s: %w", wl.ng.Name, engineLabel(ec), err)
			}
			e.Workload = wl.ng.Name
			run.Entries = append(run.Entries, e)
			t.Add(wl.ng.Name, fmt.Sprintf("%g", wl.alpha), fmt.Sprintf("%d", wl.minSize),
				e.Engine, fmt.Sprintf("%d", e.Workers),
				fmt.Sprintf("%.0f", e.NsPerOp), fmt.Sprintf("%d", e.AllocsPerOp),
				fmt.Sprintf("%d", e.BytesPerOp), fmt.Sprintf("%d", e.Cliques),
				fmt.Sprintf("%d", e.Calls))
		}
	}
	extCells, err := extensionKernelCells(cfg, cfg.KernelOnce)
	if err != nil {
		return err
	}
	for _, e := range extCells {
		run.Entries = append(run.Entries, e)
		t.Add(e.Workload, fmt.Sprintf("%g", e.Alpha), "0", e.Engine, fmt.Sprintf("%d", e.Workers),
			fmt.Sprintf("%.0f", e.NsPerOp), fmt.Sprintf("%d", e.AllocsPerOp),
			fmt.Sprintf("%d", e.BytesPerOp), fmt.Sprintf("%d", e.Cliques),
			fmt.Sprintf("%d", e.Calls))
	}
	if SpeedupCPUs() > 0 {
		sp, err := MeasureSpeedup(cfg)
		if err != nil {
			return err
		}
		run.Speedup = sp
		fmt.Fprintf(w, "speedup cell (%s, %d workers): serial %.0fms toplevel %.0fms worksteal %.0fms (%.2fx)\n",
			sp.Workload, sp.Workers, sp.SerialNs/1e6, sp.TopLevelNs/1e6, sp.WorkStealNs/1e6, sp.Speedup)
	} else {
		fmt.Fprintf(w, "speedup cell skipped: need ≥4 usable CPUs, have NumCPU=%d GOMAXPROCS=%d\n",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if cfg.KernelDiff != "" {
		if err := diffAgainstTrajectory(cfg, run, w); err != nil {
			return err
		}
	}
	if cfg.KernelOut == "" {
		return nil
	}
	if err := MergeKernelRun(cfg.KernelOut, run); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "kernel run %q appended to %s\n", run.Label, cfg.KernelOut)
	return err
}

// KernelRegression is one cell that got slower than the baseline run by
// more than the tolerance.
type KernelRegression struct {
	Workload string
	Engine   string
	MinSize  int
	OldNs    float64
	NewNs    float64
	Pct      float64 // percent slower than the baseline
}

// DiffKernelRuns compares cur against base cell-by-cell (matching workload,
// alpha, minsize, engine, and worker count; other cells are skipped) and
// returns the cells whose ns/op regressed by more than tolerancePct.
func DiffKernelRuns(base, cur KernelRun, tolerancePct float64) []KernelRegression {
	type cellKey struct {
		workload string
		alpha    float64
		minSize  int
		engine   string
		workers  int
	}
	baseline := make(map[cellKey]KernelEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseline[cellKey{e.Workload, e.Alpha, e.MinSize, e.Engine, e.Workers}] = e
	}
	var regs []KernelRegression
	for _, e := range cur.Entries {
		b, ok := baseline[cellKey{e.Workload, e.Alpha, e.MinSize, e.Engine, e.Workers}]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		pct := 100 * (e.NsPerOp - b.NsPerOp) / b.NsPerOp
		if pct > tolerancePct {
			regs = append(regs, KernelRegression{
				Workload: e.Workload, Engine: e.Engine, MinSize: e.MinSize,
				OldNs: b.NsPerOp, NewNs: e.NsPerOp, Pct: pct,
			})
		}
	}
	return regs
}

// baselineLabelMark tags trajectory rows pinned as CI diff baselines. When
// any row carries it, only the newest such row may anchor a -kernel-diff.
const baselineLabelMark = "ci-baseline"

// LatestComparableRun returns the baseline run in rep for diffing cur
// against. A candidate must be measured the same way as cur — same Quick and
// Once modes AND the same machine class (OS, architecture, CPU count):
// absolute ns/op across machine classes is not comparable, so a trajectory
// recorded on a developer container never produces false regressions against
// a differently-sized CI runner.
//
// Rows whose label contains "ci-baseline" are pinned baselines, and only the
// NEWEST of them is ever consulted: older pinned rows are stale by
// definition (re-baselining supersedes them), and silently falling back to
// one after a runner-class drift would diff today's numbers against a
// months-old machine profile. If the newest pinned row is incomparable the
// diff reports "no comparable run" instead — the trajectory needs a fresh
// baseline for the new runner class, not a quieter gate. Trajectories with
// no pinned rows keep the legacy behavior: newest comparable row wins.
func LatestComparableRun(rep KernelReport, cur KernelRun) (KernelRun, bool) {
	comparable := func(r KernelRun) bool {
		return r.Quick == cur.Quick && r.Once == cur.Once &&
			r.GOOS == cur.GOOS && r.GOARCH == cur.GOARCH && r.NumCPU == cur.NumCPU
	}
	for i := len(rep.Runs) - 1; i >= 0; i-- {
		r := rep.Runs[i]
		if r.Label == cur.Label || !strings.Contains(r.Label, baselineLabelMark) {
			continue // a re-measure must not diff against itself
		}
		if comparable(r) {
			return r, true
		}
		return KernelRun{}, false // newest pinned baseline is incomparable: no fallback
	}
	for i := len(rep.Runs) - 1; i >= 0; i-- {
		r := rep.Runs[i]
		if r.Label != cur.Label && comparable(r) {
			return r, true
		}
	}
	return KernelRun{}, false
}

// diffAgainstTrajectory flags >tolerance ns/op regressions of run against
// the latest comparable row of the trajectory at cfg.KernelDiff — the CI
// smoke job's guard rail. A missing or incomparable trajectory only notes
// the fact; a regression is an error.
func diffAgainstTrajectory(cfg Config, run KernelRun, w io.Writer) error {
	rep, err := LoadKernelReport(cfg.KernelDiff)
	if err != nil {
		return err
	}
	base, ok := LatestComparableRun(rep, run)
	if !ok {
		_, err := fmt.Fprintf(w, "kernel diff: no comparable prior run in %s (quick=%v once=%v), skipping\n",
			cfg.KernelDiff, run.Quick, run.Once)
		return err
	}
	tol := cfg.KernelDiffPct
	if tol <= 0 {
		tol = 25
	}
	regs := DiffKernelRuns(base, run, tol)
	if len(regs) == 0 {
		_, err := fmt.Fprintf(w, "kernel diff: no cell slower than %q by >%g%% ns/op\n", base.Label, tol)
		return err
	}
	for _, r := range regs {
		fmt.Fprintf(w, "kernel diff: REGRESSION %s/%s minsize=%d: %.0f → %.0f ns/op (+%.1f%%)\n",
			r.Workload, r.Engine, r.MinSize, r.OldNs, r.NewNs, r.Pct)
	}
	return fmt.Errorf("bench: %d kernel cell(s) regressed >%g%% ns/op vs %q", len(regs), tol, base.Label)
}

// LoadKernelReport reads a trajectory file; a missing file yields an empty
// report.
func LoadKernelReport(path string) (KernelReport, error) {
	var rep KernelReport
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// MergeKernelRun appends run to the trajectory at path, replacing any
// existing run with the same label so a re-measured PR overwrites itself
// instead of duplicating.
func MergeKernelRun(path string, run KernelRun) error {
	rep, err := LoadKernelReport(path)
	if err != nil {
		return err
	}
	rep.Note = kernelReportNote
	kept := rep.Runs[:0]
	for _, r := range rep.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	rep.Runs = append(kept, run)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
