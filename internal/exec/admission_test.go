package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmitInFlightCap: MaxInFlight with no queue rejects the over-cap
// query with ErrAdmission; releasing frees the seat.
func TestAdmitInFlightCap(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxInFlight: 2})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := x.Admit(ctx, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Admit(ctx, "t", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-cap admit: err = %v, want ErrAdmission", err)
	}
	r1()
	r3, err := x.Admit(ctx, "t", 0)
	if err != nil {
		t.Fatalf("post-release admit failed: %v", err)
	}
	r3()
	r2()
	r2() // release is idempotent
	s := x.AdmissionStats()
	if s.Admitted != 3 || s.Rejected != 1 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 rejected", s)
	}
	if s.InFlight["t"] != 0 || s.Peak["t"] != 2 {
		t.Fatalf("inflight/peak = %d/%d, want 0/2", s.InFlight["t"], s.Peak["t"])
	}
}

// TestAdmitBudgetCap: the aggregate budget cap counts admitted budgets; a
// single query over the whole cap is rejected outright, never queued.
func TestAdmitBudgetCap(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxBudget: 100, MaxQueued: 8})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "t", 60)
	if err != nil {
		t.Fatal(err)
	}
	// 60 + 50 > 100: would queue. 101 alone > 100: rejected immediately even
	// though the queue has room.
	if _, err := x.Admit(ctx, "t", 101); !errors.Is(err, ErrAdmission) {
		t.Fatalf("impossible budget: err = %v, want ErrAdmission", err)
	}
	r2, err := x.Admit(ctx, "t", 40)
	if err != nil {
		t.Fatalf("fitting budget rejected: %v", err)
	}
	r1()
	r2()
}

// TestAdmitTenantsIndependent: limits and accounting are per tenant; an
// unlimited tenant is never affected by another tenant's caps.
func TestAdmitTenantsIndependent(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("capped", Limits{MaxInFlight: 1})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "capped", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Admit(ctx, "capped", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("capped tenant over cap: %v", err)
	}
	for i := 0; i < 5; i++ {
		r, err := x.Admit(ctx, "free", 0)
		if err != nil {
			t.Fatalf("uncapped tenant rejected: %v", err)
		}
		defer r()
	}
	r1()
}

// TestAdmitDefaultLimits: SetDefaultLimits applies to tenants without an
// explicit entry, including the empty tenant once limits exist.
func TestAdmitDefaultLimits(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetDefaultLimits(Limits{MaxInFlight: 1})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "anyone", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Admit(ctx, "anyone", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("default limits not applied: %v", err)
	}
	// An explicit entry overrides the default.
	x.SetLimits("vip", Limits{MaxInFlight: 3})
	for i := 0; i < 3; i++ {
		r, err := x.Admit(ctx, "vip", 0)
		if err != nil {
			t.Fatalf("vip admit %d: %v", i, err)
		}
		defer r()
	}
	r1()
}

// TestAdmitQueueFIFO: waiters are granted strictly in arrival order — a
// release that could satisfy a later small waiter must not jump it past an
// earlier one, and fresh arrivals cannot jump the queue either.
func TestAdmitQueueFIFO(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxInFlight: 1, MaxQueued: 4})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	enqueue := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			release, err := x.Admit(ctx, "t", 0)
			if err != nil {
				t.Error(err)
				return
			}
			order <- id
			release()
		}()
	}
	enqueue(1)
	close(start)
	waitQueued(t, x, 1)
	enqueue(2) // arrives strictly after 1 is queued
	waitQueued(t, x, 2)
	r1()
	wg.Wait()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("grant order = %d,%d, want 1,2", a, b)
	}
}

// waitQueued blocks until the executor's enqueued counter reaches n.
func waitQueued(t *testing.T, x *Executor, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for x.AdmissionStats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d queued waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitQueueBound: a full wait queue rejects further arrivals instead
// of queueing them unboundedly.
func TestAdmitQueueBound(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxInFlight: 1, MaxQueued: 1})
	ctx := context.Background()
	r1, err := x.Admit(ctx, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		release, err := x.Admit(ctx, "t", 0)
		if err != nil {
			t.Error(err)
			return
		}
		release()
	}()
	waitQueued(t, x, 1)
	if _, err := x.Admit(ctx, "t", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("queue-full admit: err = %v, want ErrAdmission", err)
	}
	r1()
	<-done
}

// TestAdmitCancelWhileQueued: a context fired while waiting aborts with the
// context's error (not ErrAdmission), removes the waiter, and leaks no
// capacity — the freed seat goes to the next query.
func TestAdmitCancelWhileQueued(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxInFlight: 1, MaxQueued: 4})
	r1, err := x.Admit(context.Background(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := x.Admit(ctx, "t", 0)
		errc <- err
	}()
	waitQueued(t, x, 1)
	cancel()
	werr := <-errc
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", werr)
	}
	if errors.Is(werr, ErrAdmission) {
		t.Fatal("canceled waiter must not report ErrAdmission")
	}
	r1()
	// Capacity is intact: an immediate grant must succeed.
	r2, err := x.Admit(context.Background(), "t", 0)
	if err != nil {
		t.Fatalf("post-cancel admit: %v", err)
	}
	r2()
	if got := x.AdmissionStats().InFlight["t"]; got != 0 {
		t.Fatalf("in-flight after all releases = %d, want 0", got)
	}
}

// TestAdmitConcurrentStorm hammers one capped tenant from many goroutines
// under -race: the in-flight count observed inside the admitted section must
// never exceed the cap, and all accounting balances at the end.
func TestAdmitConcurrentStorm(t *testing.T) {
	x := New(1)
	defer x.Close()
	const maxIn = 3
	x.SetLimits("t", Limits{MaxInFlight: maxIn, MaxQueued: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	var inside, peak, violations int64
	var mu sync.Mutex
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := x.Admit(ctx, "t", 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inside++
			if inside > peak {
				peak = inside
			}
			if inside > maxIn {
				violations++
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inside--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if violations > 0 {
		t.Fatalf("%d cap violations (peak %d > %d)", violations, peak, maxIn)
	}
	s := x.AdmissionStats()
	if s.Admitted != 48 || s.Rejected != 0 {
		t.Fatalf("stats = %+v, want 48 admitted / 0 rejected", s)
	}
	if s.InFlight["t"] != 0 {
		t.Fatalf("in-flight after storm = %d, want 0", s.InFlight["t"])
	}
	if s.Peak["t"] > maxIn {
		t.Fatalf("peak %d exceeds cap %d", s.Peak["t"], maxIn)
	}
}

// FuzzAdmission drives a random admit/release schedule against random caps
// and checks the invariants the scheduler depends on: in-flight never
// exceeds MaxInFlight, admitted budget never exceeds MaxBudget, and the
// books balance once everything is released.
func FuzzAdmission(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint16(50), []byte{3, 7, 1, 0, 9, 2})
	f.Add(uint8(0), uint8(0), uint16(0), []byte{1, 2, 3})
	f.Add(uint8(1), uint8(3), uint16(10), []byte{255, 0, 128, 64})
	f.Fuzz(func(t *testing.T, maxIn, maxQ uint8, maxBudget uint16, ops []byte) {
		x := New(1)
		defer x.Close()
		l := Limits{MaxInFlight: int(maxIn), MaxQueued: int(maxQ), MaxBudget: int64(maxBudget)}
		x.SetLimits("t", l)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		type grant struct {
			release func()
			budget  int64
		}
		var grants []grant
		var budgetSum int64
		for _, op := range ops {
			if op%2 == 0 || len(grants) == 0 {
				budget := int64(op) % 97
				// Non-blocking probe: use an already-fired context when the
				// request would queue, so the fuzz never hangs.
				probeCtx := ctx
				if len(grants) > 0 {
					c, ccancel := context.WithCancel(ctx)
					ccancel()
					probeCtx = c
				}
				release, err := x.Admit(probeCtx, "t", budget)
				if err != nil {
					continue
				}
				grants = append(grants, grant{release, budget})
				budgetSum += budget
				if l.MaxInFlight > 0 && len(grants) > l.MaxInFlight {
					t.Fatalf("admitted %d > MaxInFlight %d", len(grants), l.MaxInFlight)
				}
				if l.MaxBudget > 0 && budgetSum > l.MaxBudget {
					t.Fatalf("admitted budget %d > MaxBudget %d", budgetSum, l.MaxBudget)
				}
			} else {
				g := grants[len(grants)-1]
				grants = grants[:len(grants)-1]
				budgetSum -= g.budget
				g.release()
			}
		}
		for _, g := range grants {
			g.release()
		}
		s := x.AdmissionStats()
		if s.InFlight["t"] != 0 {
			t.Fatalf("in-flight %d after releasing everything", s.InFlight["t"])
		}
	})
}
