// Package uquasi mines maximal γ-quasi-cliques from an uncertain graph — the
// second of the "various dense substructures" the paper's conclusion (§6)
// names as future work.
//
// A deterministic γ-quasi-clique is a vertex set S in which every vertex is
// adjacent to at least γ·(|S|−1) of the others. Two uncertain-graph readings
// are provided:
//
//   - The expected-degree (first-moment) reading used by Enumerate: S is an
//     expected γ-quasi-clique if for every v ∈ S the expected number of
//     present edges from v into S — the sum Σ p(u,v) over support neighbors
//     u ∈ S — is at least γ·(|S|−1). By linearity of expectation this is
//     exactly E[deg_S(v)] ≥ γ·(|S|−1). At γ = 1 it degenerates to cliques
//     over the certain (p = 1) edges, matching MULE at α = 1.
//   - The possible-world reading used by WorldProbExact / WorldProbMC: the
//     probability that a sampled world induces a deterministic
//     γ-quasi-clique on S. Computing it exactly costs 2^|E_S| (the joint
//     degree constraints do not factorize), so it serves as a verifier for
//     sets found under the first reading rather than as a mining objective.
//
// Quasi-cliques are not hereditary — subsets of a γ-quasi-clique need not be
// γ-quasi-cliques — so MULE's candidate/witness machinery does not apply and
// maximality means "no proper superset is an expected γ-quasi-clique" (the
// Liu–Wong convention). Enumerate therefore runs a Quick-style depth-first
// search with weighted-degree pruning bounds, restricted to γ ≥ 1/2, where
// every γ-quasi-clique is connected with diameter ≤ 2 (the classical
// structural result, which carries over because an expected γ-quasi-clique
// is in particular a support-graph γ-quasi-clique), followed by a
// containment filter that keeps only maximal sets.
package uquasi

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Config tunes a mining run.
type Config struct {
	// Gamma is the density threshold γ. Enumerate requires γ ∈ [0.5, 1];
	// the predicate and verifier functions accept any γ ∈ (0, 1].
	Gamma float64
	// MinSize is the smallest quasi-clique reported; at least 2 (a single
	// vertex vacuously satisfies any degree bound). Defaults to 3, the
	// smallest size for which a quasi-clique differs from an edge.
	MinSize int
	// MaxSize, when > 0, caps the search depth. Sets larger than MaxSize
	// are neither reported nor used to disqualify smaller sets, so the
	// output is "maximal among expected γ-quasi-cliques of size ≤ MaxSize".
	MaxSize int
	// Budget, when > 0, bounds the number of search-tree nodes the run may
	// expand before aborting with core.ErrBudget.
	Budget int64
	// Stall, when > 0, arms the stall watchdog: a run whose progress beacon
	// (stamped by every run-control poll) does not advance for this long is
	// aborted with an error wrapping core.ErrStalled.
	Stall time.Duration
}

func (c Config) withDefaults() Config {
	if c.MinSize == 0 {
		c.MinSize = 3
	}
	return c
}

// Stats reports the work performed by a mining run.
type Stats struct {
	Status    core.RunStatus // how the run ended (complete, stopped, canceled, …)
	Calls     int64          // search-tree nodes visited
	Found     int64          // expected γ-quasi-cliques encountered (pre-filter)
	Emitted   int64          // maximal expected γ-quasi-cliques reported
	Pruned    int64          // subtrees cut by the weighted-degree bounds
	MaxSize   int            // largest emitted set
	Universe  int64          // total anchored candidate-universe size across anchors
	FilterOps int64          // containment comparisons in the maximality filter
}

// ExpectedDegree returns E[deg_S(v)] = Σ_{u ∈ S, u ≠ v, {u,v} ∈ E} p(u,v):
// the expected number of present edges from v into set in a sampled world.
// v itself may appear in set and is skipped.
func ExpectedDegree(g *uncertain.Graph, set []int, v int) float64 {
	d := 0.0
	for _, u := range set {
		if u == v {
			continue
		}
		if p, ok := g.Prob(u, v); ok {
			d += p
		}
	}
	return d
}

// IsExpectedQuasiClique reports whether set (|set| ≥ 2, no duplicates) is an
// expected γ-quasi-clique: every member's expected degree into the set is at
// least γ·(|set|−1).
func IsExpectedQuasiClique(g *uncertain.Graph, set []int, gamma float64) bool {
	if len(set) < 2 {
		return false
	}
	need := gamma * float64(len(set)-1)
	for _, v := range set {
		if ExpectedDegree(g, set, v) < need-1e-12 {
			return false
		}
	}
	return true
}

// IsMaximalExpectedQuasiClique reports whether set is an expected
// γ-quasi-clique with no proper superset that is one. It checks every
// superset reachable by adding subsets of the diameter-2 ball, which is
// exponential; it exists as the reference predicate for tests on tiny
// graphs (n ≤ 20).
func IsMaximalExpectedQuasiClique(g *uncertain.Graph, set []int, gamma float64) bool {
	if g.NumVertices() > 20 {
		panic("uquasi: IsMaximalExpectedQuasiClique limited to 20 vertices")
	}
	if !IsExpectedQuasiClique(g, set, gamma) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	var rest []int
	for v := 0; v < g.NumVertices(); v++ {
		if !in[v] {
			rest = append(rest, v)
		}
	}
	// Any proper superset is set ∪ T for a non-empty subset T of rest.
	for mask := 1; mask < 1<<uint(len(rest)); mask++ {
		candidate := append([]int(nil), set...)
		for i, v := range rest {
			if mask&(1<<uint(i)) != 0 {
				candidate = append(candidate, v)
			}
		}
		if IsExpectedQuasiClique(g, candidate, gamma) {
			return false
		}
	}
	return true
}

// Visitor receives each maximal expected γ-quasi-clique as a sorted vertex
// slice. The slice is owned by the caller (freshly allocated). Returning
// false stops the report loop (the search itself has already completed;
// maximality requires global knowledge).
type Visitor func(set []int) bool

// Enumerate mines all maximal expected γ-quasi-cliques with at least
// cfg.MinSize vertices. cfg.Gamma must lie in [0.5, 1] (see the package
// comment for why the structural prunes need γ ≥ 1/2).
func Enumerate(g *uncertain.Graph, cfg Config, visit Visitor) (Stats, error) {
	return EnumerateContext(context.Background(), g, cfg, visit)
}

// EnumerateContext is Enumerate under ctx: the search polls the shared
// run-control block every abortCheckInterval nodes, so a canceled context,
// an expired deadline, or an exhausted Config.Budget unwinds the mining and
// returns an error wrapping the cause, with Stats.Status recording the
// terminal state. Because maximality needs global knowledge, the visitor
// only runs after the search completes; a visitor returning false stops the
// report loop and is a successful early stop (StatusStopped).
func EnumerateContext(ctx context.Context, g *uncertain.Graph, cfg Config, visit Visitor) (Stats, error) {
	sets, stats, err := CollectContext(ctx, g, cfg)
	if err != nil {
		return stats, err
	}
	for _, s := range sets {
		if visit != nil && !visit(s) {
			stats.Status = core.StatusStopped
			break
		}
	}
	return stats, nil
}

// Collect returns all maximal expected γ-quasi-cliques in canonical order
// (each sorted ascending; sets sorted lexicographically).
func Collect(g *uncertain.Graph, cfg Config) ([][]int, error) {
	sets, _, err := CollectContext(context.Background(), g, cfg)
	return sets, err
}

// Validate checks the (graph, config) pair that every mining entry point
// accepts, returning the first violation wrapped around the matching
// sentinel (core.ErrNilGraph, core.ErrGammaRange, core.ErrConfig). The
// MinSize default (3) is applied before checking, matching the run paths.
func Validate(g *uncertain.Graph, cfg Config) error {
	if g == nil {
		return fmt.Errorf("uquasi: %w", core.ErrNilGraph)
	}
	cfg = cfg.withDefaults()
	if !(cfg.Gamma >= 0.5 && cfg.Gamma <= 1) { // also rejects NaN
		return fmt.Errorf("uquasi: gamma %v outside [0.5, 1]: %w", cfg.Gamma, core.ErrGammaRange)
	}
	if cfg.MinSize < 2 {
		return fmt.Errorf("uquasi: MinSize %d below 2: %w", cfg.MinSize, core.ErrConfig)
	}
	if cfg.MaxSize != 0 && cfg.MaxSize < cfg.MinSize {
		return fmt.Errorf("uquasi: MaxSize %d below MinSize %d: %w", cfg.MaxSize, cfg.MinSize, core.ErrConfig)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("uquasi: negative Budget %d: %w", cfg.Budget, core.ErrConfig)
	}
	if cfg.Stall < 0 {
		return fmt.Errorf("uquasi: negative Stall %v: %w", cfg.Stall, core.ErrConfig)
	}
	return nil
}

// CollectContext is Collect under ctx, additionally returning the run's
// Stats. On an abort the partial stats are returned with the sets nil.
func CollectContext(ctx context.Context, g *uncertain.Graph, cfg Config) ([][]int, Stats, error) {
	var stats Stats
	if err := Validate(g, cfg); err != nil {
		return nil, stats, err
	}
	cfg = cfg.withDefaults()

	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return nil, stats, finish(ctl, &stats)
	}
	defer ctl.ArmStall(cfg.Stall)()
	m := &miner{g: g, cfg: cfg, stats: &stats, ctl: ctl, tick: abortCheckInterval}
	m.run()
	if err := finish(ctl, &stats); err != nil {
		return nil, stats, err
	}
	sets := maximalOnly(m.found, &stats)
	for _, s := range sets {
		if len(s) > stats.MaxSize {
			stats.MaxSize = len(s)
		}
	}
	stats.Emitted = int64(len(sets))
	sortSets(sets)
	return sets, stats, nil
}

// finish records the terminal status on stats and formats the abort error.
func finish(ctl *core.RunControl, stats *Stats) error {
	stats.Status = ctl.Status(false)
	err := ctl.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("uquasi: mining aborted after %d search calls: %w", stats.Calls, err)
}

// abortCheckInterval matches the clique kernel's polling cadence: one
// control poll per this many search nodes.
const abortCheckInterval = 1024

type miner struct {
	g       *uncertain.Graph
	cfg     Config
	stats   *Stats
	ctl     *core.RunControl
	tick    int
	stopped bool
	found   [][]int
}

// countNode accounts one search node and polls the run control on the
// interval; it returns true when the mining must unwind.
func (m *miner) countNode() bool {
	m.stats.Calls++
	m.tick--
	if m.tick > 0 {
		return false
	}
	m.tick = abortCheckInterval
	if m.ctl.Poll(abortCheckInterval) {
		m.stopped = true
		return true
	}
	return false
}

// run anchors the search at every vertex u in turn. A γ-quasi-clique with
// minimum vertex u lies, for γ ≥ 1/2, entirely inside u's distance-2 ball,
// so the anchored universe is ball2(u) ∩ {v : v > u}.
func (m *miner) run() {
	n := m.g.NumVertices()
	for u := 0; u < n && !m.stopped; u++ {
		universe := m.ballTwoAbove(u)
		m.stats.Universe += int64(len(universe))
		m.extend([]int{u}, universe)
	}
}

// ballTwoAbove returns the vertices v > u within support-graph distance 2 of
// u, ascending.
func (m *miner) ballTwoAbove(u int) []int {
	seen := map[int]bool{}
	m.g.ForEachNeighbor(u, func(w int, _ float64) bool {
		if w > u {
			seen[w] = true
		}
		m.g.ForEachNeighbor(w, func(x int, _ float64) bool {
			if x > u && x != u {
				seen[x] = true
			}
			return true
		})
		return true
	})
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// extend grows S with candidates from cand (all > max(S), ascending). The
// search must pass through non-quasi-clique intermediate sets — the property
// is not hereditary — so it records qualifying sets as it goes and recurses
// regardless, subject to the sound prunes below.
func (m *miner) extend(S []int, cand []int) {
	if m.stopped || m.countNode() {
		return
	}
	if len(S) >= m.cfg.MinSize && IsExpectedQuasiClique(m.g, S, m.cfg.Gamma) {
		m.stats.Found++
		m.found = append(m.found, append([]int(nil), S...))
	}
	if len(cand) == 0 {
		return
	}
	if m.cfg.MaxSize > 0 && len(S) >= m.cfg.MaxSize {
		return
	}
	cand = m.filterCandidates(S, cand)
	if m.sizeBoundPrunes(S, cand) {
		m.stats.Pruned++
		return
	}
	for i, v := range cand {
		if m.stopped {
			return
		}
		// Diameter-2 restriction: keep only candidates within distance 2 of
		// the newly added vertex (sound for γ ≥ 1/2, see package comment).
		next := make([]int, 0, len(cand)-i-1)
		for _, w := range cand[i+1:] {
			if m.withinTwo(v, w) {
				next = append(next, w)
			}
		}
		m.extend(append(S, v), next)
	}
}

// filterCandidates removes, to fixpoint, candidates whose best achievable
// expected degree cannot meet the γ requirement of even the smallest
// feasible superset. For candidate v joining a superset T ⊇ S∪{v} of size t,
// E[deg_T(v)] ≤ ExpectedDegree(S∪cand, v), while the requirement is
// γ·(t−1) ≥ γ·max(MinSize, |S|+1) − γ. Removing one candidate lowers the
// bound for others, hence the fixpoint loop.
func (m *miner) filterCandidates(S []int, cand []int) []int {
	tMin := m.cfg.MinSize
	if len(S)+1 > tMin {
		tMin = len(S) + 1
	}
	need := m.cfg.Gamma * float64(tMin-1)
	for {
		kept := cand[:0:0]
		for _, v := range cand {
			d := ExpectedDegree(m.g, S, v) + ExpectedDegree(m.g, cand, v)
			if d >= need-1e-12 {
				kept = append(kept, v)
			}
		}
		if len(kept) == len(cand) {
			return kept
		}
		cand = kept
	}
}

// sizeBoundPrunes reports whether no superset of S inside S∪cand can be an
// expected γ-quasi-clique of size ≥ MinSize. For each v ∈ S its expected
// degree in any such superset is at most d_v = E-deg into S∪cand, so the
// superset size t obeys γ·(t−1) ≤ d_v, i.e. t ≤ ⌊d_v/γ⌋ + 1; and t is also
// at most |S|+|cand|. If the resulting feasible ceiling is below
// max(MinSize, |S|) the subtree is dead. (S itself, if it qualified, has
// already been recorded.)
func (m *miner) sizeBoundPrunes(S []int, cand []int) bool {
	tCap := len(S) + len(cand)
	for _, v := range S {
		d := ExpectedDegree(m.g, S, v) + ExpectedDegree(m.g, cand, v)
		bound := int(d/m.cfg.Gamma+1e-12) + 1
		if bound < tCap {
			tCap = bound
		}
	}
	needed := m.cfg.MinSize
	if len(S)+1 > needed {
		needed = len(S) + 1
	}
	return tCap < needed
}

// withinTwo reports whether support-graph distance(u, v) ≤ 2.
func (m *miner) withinTwo(u, v int) bool {
	if m.g.HasEdge(u, v) {
		return true
	}
	found := false
	m.g.ForEachNeighbor(u, func(w int, _ float64) bool {
		if m.g.HasEdge(w, v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// maximalOnly keeps the sets with no proper superset in the collection.
// Because the search enumerates every expected γ-quasi-clique of size ≥
// MinSize (and supersets of a size-≥-MinSize set are themselves of size ≥
// MinSize), containment within the collection coincides with true
// maximality.
func maximalOnly(sets [][]int, stats *Stats) [][]int {
	if len(sets) == 0 {
		return nil
	}
	// Deduplicate (each set is found exactly once by the ascending-order
	// search, but be defensive) and sort by size descending so that any
	// superset of a set precedes it.
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) > len(sets[j]) })
	var kept [][]int
	for _, s := range sets {
		dominated := false
		for _, big := range kept {
			stats.FilterOps++
			if len(big) > len(s) && subsetOf(s, big) {
				dominated = true
				break
			}
			if len(big) == len(s) && equalSets(s, big) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, s)
		}
	}
	return kept
}

// subsetOf reports a ⊆ b for ascending-sorted slices.
func subsetOf(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortSets(sets [][]int) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
