package core

import (
	"sync"
	"sync/atomic"
)

// runTopLevel is the legacy parallel driver (ParallelTopLevel): it fans only
// the top-level branches of the search out across workers. It predates the
// work-stealing engine in worksteal.go and is kept because it is the natural
// comparison point: on skewed inputs where one top-level subtree dominates,
// this driver degenerates to serial execution while work stealing keeps
// subdividing the heavy branch.
//
// Soundness: at the root C = ∅, the branch for vertex u receives
// I_u = {(w, p(u,w)) : w ∈ Γ(u), w > u, p(u,w) ≥ α} and
// X_u = {(x, p(u,x)) : x ∈ Γ(u), x < u, p(u,x) ≥ α}, both of which depend
// only on u — not on how much of the loop has already run — because the
// root's X accumulates exactly the vertices smaller than u. Top-level
// subtrees are therefore mutually independent and can run concurrently;
// every deeper level keeps the sequential left-to-right dependency through
// X and stays inside one worker.
func (e *enumerator) runTopLevel(workers int) {
	n := e.g.NumVertices()
	s := &wsShared{ctl: e.ctl, visit: e.visit}
	// Per-worker stats are separate heap blocks rather than adjacent slots
	// of one slice, so the per-node counting is unlikely to false-share
	// across workers (separate allocations can still land on neighboring
	// cache lines; a flat []Stats guarantees that they do).
	locals := make([]*Stats, workers)

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		locals[i] = new(Stats)
		wg.Add(1)
		go func(local *enumerator) {
			defer wg.Done()
			for {
				u := next.Add(1)
				if int(u) >= n || s.ctl.stop.Load() {
					return
				}
				local.branch(int32(u))
				if local.stopped {
					return // the visitor or the run control latched the stop
				}
			}
		}(e.workerClone(locals[i], s))
	}
	wg.Wait()
	for i := range locals {
		e.stats.merge(locals[i])
	}
	e.stopped = e.ctl.stop.Load()
	// The root call itself is accounted once, as in the serial driver.
	e.stats.Calls++
}

// branch runs the top-level iteration for vertex u: it reproduces exactly
// the state the serial loop would pass to the recursive call for u. Like
// the serial driver, it builds I and X in the worker's arena — the row is
// sorted, so neighbors < u (the witnesses) form the prefix and neighbors
// > u (the candidates) the suffix.
func (e *enumerator) branch(u int32) {
	row, probs := e.g.Adjacency(int(u))
	irow, iprobs := e.g.AdjacencySuffix(int(u), u)
	k := len(row) - len(irow) // witnesses: row[:k]

	m := e.arena.mark()
	// X holds ≤ k filtered witnesses plus ≤ len(irow) pushes from the
	// recursion's loop, so the full row length bounds its capacity.
	X := e.arena.alloc(len(row))
	for i := 0; i < k; i++ {
		if p := probs[i]; p >= e.alpha {
			X = X.push(row[i], p)
		}
	}
	I := e.arena.alloc(len(irow))
	for i, w := range irow {
		if p := iprobs[i]; p >= e.alpha {
			I = I.push(w, p)
		}
	}
	e.arena.shrink(len(irow), I.length())
	// The p < α skips above are only reachable with SkipPrune.
	e.stats.CandidateOps += int64(I.length())
	e.stats.WitnessOps += int64(X.length())
	if e.minSize >= 2 && 1+I.length() < e.minSize {
		e.stats.SizePruned++
		e.arena.release(m)
		return
	}
	C := append(e.cbuf[:0], u)
	e.recurse(C, 1, I, X)
	e.arena.release(m)
}

// merge folds o into s. All counter fields are sums or maxes, so merging
// per-worker stats in ascending worker order yields a deterministic
// aggregate. Status is not merged: the terminal state is decided once by
// the run control after all workers have drained.
func (s *Stats) merge(o *Stats) {
	s.Calls += o.Calls
	s.Emitted += o.Emitted
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.CandidateOps += o.CandidateOps
	s.WitnessOps += o.WitnessOps
	s.BitsetOps += o.BitsetOps
	s.PrunedEdges += o.PrunedEdges
	s.SizePruned += o.SizePruned
	s.FilterRemoved += o.FilterRemoved
	s.Steals += o.Steals
	s.Splits += o.Splits
}
