package core

import "math/bits"

// Density-adaptive sorted-set intersection for GenerateI/GenerateX
// (Algorithms 3 and 4). Both algorithms intersect a sorted entry set
// (candidates or witnesses) with a sorted adjacency row, extending each
// surviving multiplier by the edge probability and filtering against the
// threshold.
//
// Three regimes, chosen per node:
//
//   - On balanced inputs a linear two-pointer merge is optimal.
//   - On hub-heavy power-law graphs the two sides routinely differ by
//     orders of magnitude — a short tail intersected with a hub's
//     multi-thousand-entry row — and the merge wastes its time stepping
//     through the long side one element at a time. When the lengths differ
//     by gallopRatio or more, the kernel instead walks the short side and
//     advances through the long side by galloping (exponential search
//     followed by binary search), making each step O(log gap).
//   - On dense neighborhoods — the entry set packed tightly into the
//     remaining vertex range, against a long row — both sorted kernels pay
//     per-element comparisons for members that almost all survive. There
//     the kernel switches representation: it scatters the entry set's
//     vertex lane into a worker-local bit mask and intersects with the
//     row's precomputed bit row (bitrows.go) by word-parallel AND, visiting
//     only the 64-element words the set occupies. Matches pop out of the
//     AND words via trailing-zero iteration; the multiplier comes from a
//     linear cursor over the (sorted) source lanes and the edge probability
//     from a galloping cursor over the row. This is the BBMC-style
//     bit-parallel kernel of the dense-graph clique literature, restricted
//     to the nodes where the density makes it pay.

// gallopRatio is the length disparity at which the merge switches to
// galloping. Below ~8× the branchy binary search costs more than the linear
// steps it replaces.
const gallopRatio = 8

const (
	// bitsetMinSrc is the smallest entry set routed to the bitset kernel
	// under the adaptive policy: below it the mask setup dominates and the
	// sorted kernels win.
	bitsetMinSrc = 4
	// bitsetRowRatio is the minimum row/src length ratio for the bitset
	// kernel: when the row is not meaningfully longer than the set, the
	// two-pointer merge is already near optimal.
	bitsetRowRatio = 1
	// bitsetSpanPerEntry bounds the vertex span the mask may cover per set
	// element (one 64-bit word each): the set must be dense relative to the
	// remaining vertex range or clearing and ANDing the span costs more
	// than the comparisons it saves.
	bitsetSpanPerEntry = 64
)

// useBitset is the per-node representation choice: it reports whether the
// (src, row) intersection should run on the word-parallel bitset kernel.
// rowBits availability is checked by the caller.
func (e *enumerator) useBitset(srcV []int32, nrow int) bool {
	if e.intersectMode == IntersectBitset {
		return true
	}
	ns := len(srcV)
	if ns < bitsetMinSrc || nrow < bitsetRowRatio*ns {
		return false
	}
	span := int(srcV[ns-1]) - int(srcV[0]) + 1
	return span <= ns*bitsetSpanPerEntry
}

// intersectSets appends to dst every vertex common to src (a sorted entry
// set) and row (sorted adjacency with parallel probs) whose extended
// multiplier src.r[i]·probs[j] still meets thr. dst must have capacity for
// min(src.length(), len(row)) pushes. rowBits, when non-nil, is the row's
// bit representation (bitrows.go) and enables the word-parallel kernel;
// the per-node policy is useBitset. dst and src are passed by pointer so
// the hot per-node call keeps its arguments in registers — by-value
// entrySets (six words each) spill to the stack on every search node.
//
// thr is the hoisted threshold α/clq(C∪{u}): comparing r' ≥ α/q' once per
// match replaces the q'·r' ≥ α multiply of the textbook formulation. The
// two comparisons can disagree by at most one ulp of rounding on the
// boundary; every ordering, engine, and representation uses the same rule,
// so results stay internally consistent.
func (e *enumerator) intersectSets(dst, src *entrySet, row []int32, probs []float64, rowBits []uint64, thr float64) {
	if len(src.v) == 0 || len(row) == 0 {
		return
	}
	if rowBits != nil && e.useBitset(src.v, len(row)) {
		e.stats.BitsetOps++
		e.intersectBitset(dst, src, row, probs, rowBits, thr)
		return
	}
	// Re-slicing the secondary lanes to the primary lane's length lets the
	// compiler drop their bounds checks inside the loops (the AoS layout
	// got that for free; SoA has to state the lane parallelism explicitly).
	// Survivors are written by index through the capacity-extended output
	// lanes — one cursor bump instead of two append length updates.
	srcV := src.v
	srcR := src.r[:len(srcV)]
	probs = probs[:len(row)]
	k := len(dst.v)
	dv := dst.v[:cap(dst.v)]
	dr := dst.r[:cap(dst.v)]
	switch {
	case len(row) >= gallopRatio*len(srcV):
		j := 0
		for i, v := range srcV {
			j = gallop32(row, j, v)
			if j == len(row) {
				break
			}
			if row[j] == v {
				if r2 := srcR[i] * probs[j]; r2 >= thr {
					dv[k] = v
					dr[k] = r2
					k++
				}
				j++
			}
		}
	case len(srcV) >= gallopRatio*len(row):
		i := 0
		for j, v := range row {
			i = gallop32(srcV, i, v)
			if i == len(srcV) {
				break
			}
			if srcV[i] == v {
				if r2 := srcR[i] * probs[j]; r2 >= thr {
					dv[k] = v
					dr[k] = r2
					k++
				}
				i++
			}
		}
	default:
		i, j := 0, 0
		for i < len(srcV) && j < len(row) {
			switch {
			case srcV[i] < row[j]:
				i++
			case srcV[i] > row[j]:
				j++
			default:
				if r2 := srcR[i] * probs[j]; r2 >= thr {
					dv[k] = srcV[i]
					dr[k] = r2
					k++
				}
				i++
				j++
			}
		}
	}
	dst.v, dst.r = dv[:k], dr[:k]
}

// intersectBitset is the word-parallel kernel. It scatters src's vertex
// lane into the worker-local mask (clearing only the words the set spans),
// ANDs the mask against the row's bit words, and walks the set bits of
// each AND word: a set bit is a match by construction, so the inner loop
// touches the multiplier lane and the probability array only for
// survivors. The mask covers exactly src's span, so per-node cost is
// O(span/64 + |src| + matches·log gap) independent of the row length.
func (e *enumerator) intersectBitset(dst, src *entrySet, row []int32, probs []float64, rowBits []uint64, thr float64) {
	mask := e.mask
	wlo := int(src.v[0]) >> 6
	whi := int(src.v[len(src.v)-1]) >> 6
	for k := wlo; k <= whi; k++ {
		mask[k] = 0
	}
	for _, v := range src.v {
		mask[v>>6] |= 1 << (uint32(v) & 63)
	}
	srcV := src.v
	srcR := src.r[:len(srcV)]
	n := len(dst.v)
	dv := dst.v[:cap(dst.v)]
	dr := dst.r[:cap(dst.v)]
	si, j := 0, 0
	for k := wlo; k <= whi; k++ {
		w := mask[k] & rowBits[k]
		for w != 0 {
			v := int32(k<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			for srcV[si] < v {
				si++
			}
			// The row bit is set, so v ∈ row and the gallop lands on it.
			j = gallop32(row, j, v)
			if r2 := srcR[si] * probs[j]; r2 >= thr {
				dv[n] = v
				dr[n] = r2
				n++
			}
			si++
			j++
		}
	}
	dst.v, dst.r = dv[:n], dr[:n]
}

// gallop32 returns the smallest k ≥ from with xs[k] ≥ v, or len(xs):
// exponential probes double the step until they overshoot, then a binary
// search pins the boundary inside the last doubling window.
func gallop32(xs []int32, from int, v int32) int {
	n := len(xs)
	if from >= n || xs[from] >= v {
		return from
	}
	lo, step := from, 1
	hi := from + step
	for hi < n && xs[hi] < v {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	// xs[lo] < v, and hi == n or xs[hi] ≥ v.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
