package bench

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
)

// TestSkewedWorkloadShape pins the property the parallel-scaling experiment
// depends on: the skewed hub workload concentrates nearly all α-maximal
// cliques in the top-level branch of vertex 0, the shape that starves the
// legacy fan-out.
func TestSkewedWorkloadShape(t *testing.T) {
	g := SkewedCliqueGraph(Config{Quick: true, Seed: 1}).G
	total, branch0 := 0, 0
	_, err := core.Enumerate(g, SkewedAlpha, func(c []int, _ float64) bool {
		total++
		if c[0] == 0 {
			branch0++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("skewed workload produced no cliques")
	}
	if share := float64(branch0) / float64(total); share < 0.9 {
		t.Fatalf("top-level branch 0 owns only %.1f%% of %d cliques; workload is not skewed",
			100*share, total)
	}
}

// TestParallelEnginesMatchSerialOnSkewed checks both engines emit the
// identical clique set as serial on the scaling workload, regardless of the
// machine's core count.
func TestParallelEnginesMatchSerialOnSkewed(t *testing.T) {
	g := SkewedCliqueGraph(Config{Quick: true, Seed: 1}).G
	want, _, err := core.CollectWith(g, SkewedAlpha, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Workers: 4},
		{Workers: 4, StealGranularity: 1},
		{Workers: 4, Parallel: core.ParallelTopLevel},
	} {
		got, _, err := core.CollectWith(g, SkewedAlpha, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("config %+v diverged from serial (%d vs %d cliques)", cfg, len(got), len(want))
		}
	}
}

// TestWorkStealingSpeedup is the acceptance benchmark: on a machine with at
// least 4 cores, the work-stealing engine must be ≥2× faster than serial on
// the skewed workload and strictly faster than the legacy top-level
// fan-out, with identical output. Skipped on smaller machines, where no
// engine can demonstrate a speedup.
func TestWorkStealingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup benchmark in -short mode")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 usable CPUs for a meaningful speedup, have NumCPU=%d GOMAXPROCS=%d",
			cpus, runtime.GOMAXPROCS(0))
	}
	if runtime.GOMAXPROCS(0) < cpus {
		cpus = runtime.GOMAXPROCS(0)
	}
	cfg := Config{Seed: 1, Budget: 10 * time.Minute}
	g := SkewedCliqueGraph(cfg).G

	run := func(c core.Config) (time.Duration, int64) {
		r, err := TimedMULE(g, SkewedAlpha, cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Finished {
			t.Fatalf("run %+v exceeded budget", c)
		}
		return r.Elapsed, r.Cliques
	}
	// Warm up caches, then measure each engine once on the ~0.5s workload.
	run(core.Config{})
	serial, serialCliques := run(core.Config{})
	topLevel, topCliques := run(core.Config{Workers: cpus, Parallel: core.ParallelTopLevel})
	workSteal, wsCliques := run(core.Config{Workers: cpus})

	if wsCliques != serialCliques || topCliques != serialCliques {
		t.Fatalf("clique counts diverge: serial=%d toplevel=%d worksteal=%d",
			serialCliques, topCliques, wsCliques)
	}
	t.Logf("serial=%v toplevel=%v worksteal=%v (%d cliques, %d workers)",
		serial, topLevel, workSteal, serialCliques, cpus)
	if workSteal > serial/2 {
		t.Errorf("work stealing %v is not ≥2x faster than serial %v", workSteal, serial)
	}
	if workSteal >= topLevel {
		t.Errorf("work stealing %v is not faster than top-level fan-out %v", workSteal, topLevel)
	}
}
