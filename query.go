package mule

import (
	"context"
	"fmt"
	"iter"
	"runtime/debug"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/topk"
)

// Clique is one α-maximal clique materialized by a Query: the vertex set in
// original IDs, sorted ascending, and its clique probability. Unlike the
// Visitor callback slice, Vertices is caller-owned and never reused.
type Clique struct {
	Vertices []int
	Prob     float64
}

// Query is a prepared enumeration of the α-maximal cliques of one graph at
// one threshold. Build it once with NewQuery and run it any number of ways:
// Run (callback), Collect (materialize), Count, TopK, Maximum, or Cliques
// (a range-over-func stream). Every run method takes a context.Context and
// honors cancellation and deadlines: the engines poll the context on a
// node-count interval, so a fired context unwinds serial and parallel
// searches alike within microseconds, returning an error that wraps
// context.Canceled or context.DeadlineExceeded.
//
// A Query is immutable after construction and safe for concurrent use; each
// run is independent.
type Query struct {
	g         *Graph
	alpha     float64
	cfg       core.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// queryKind is a bitmask naming the query surfaces an Option may configure.
type queryKind uint8

const (
	kindClique queryKind = 1 << iota
	kindBiclique
	kindQuasi
	kindTruss
	kindCore
	kindDensest
	kindCluster
	kindAll = kindClique | kindBiclique | kindQuasi | kindTruss | kindCore | kindDensest | kindCluster
)

// kindName names a query kind for ErrConfig messages.
func kindName(k queryKind) string {
	switch k {
	case kindClique:
		return "clique"
	case kindBiclique:
		return "biclique"
	case kindQuasi:
		return "quasi-clique"
	case kindTruss:
		return "truss"
	case kindCore:
		return "core"
	case kindDensest:
		return "densest"
	case kindCluster:
		return "cluster"
	default:
		return "unknown"
	}
}

// queryOptions is the union of every knob an Option can set; each query
// constructor reads the fields that apply to it (the scope check guarantees
// the others stay zero).
type queryOptions struct {
	cfg        core.Config // clique engine knobs, incl. shared Budget and MinSize
	limit      int64
	gamma      float64       // quasi: density threshold γ
	maxSize    int           // quasi: search-depth cap
	minL, minR int           // biclique: per-side minima
	centers    int           // cluster: center count k
	ex         *Executor     // shared scheduling/admission domain (nil = default)
	exSet      bool          // WithExecutor was passed (distinguishes explicit nil)
	tenant     string        // admission-control tenant ID ("" = untenanted)
	tenantSet  bool          // WithTenant was passed (distinguishes explicit "")
	stall      time.Duration // stall-watchdog window (0 = disarmed)
	retry      RetryPolicy   // admission retry/backoff policy
	retrySet   bool          // WithRetry was passed

	shards        int                   // component sharding: WithShards value (0 = off)
	shardsSet     bool                  // WithShards/WithAutoShard was passed
	shardsAuto    bool                  // WithAutoShard was passed (resolve at run time)
	shardProgress func(done, total int) // per-component completion callback (sharded runs)
}

// Option configures a prepared query. The same Option type serves every
// query constructor — NewQuery, NewBicliqueQuery, NewQuasiQuery,
// NewTrussQuery, NewCoreQuery — and each option names the surfaces it
// applies to; passing an option to a constructor outside its scope is
// reported eagerly as a wrapped ErrConfig (a truss query with WithGamma is
// a programming error, not a silent no-op). Options are applied in order;
// invalid values surface as wrapped ErrConfig errors from the constructor,
// not from the option itself.
type Option struct {
	name  string
	scope queryKind
	apply func(*queryOptions)
}

// applyOptions runs opts for the given query kind, rejecting out-of-scope
// options with a wrapped ErrConfig.
func applyOptions(kind queryKind, opts []Option) (queryOptions, error) {
	var o queryOptions
	for _, opt := range opts {
		if opt.apply == nil {
			return o, fmt.Errorf("mule: zero Option value: %w", ErrConfig)
		}
		if opt.scope&kind == 0 {
			return o, fmt.Errorf("mule: option %s does not apply to %s queries: %w", opt.name, kindName(kind), ErrConfig)
		}
		opt.apply(&o)
	}
	return o, nil
}

// WithMinSize restricts the enumeration to results with at least t
// vertices. For clique queries this is LARGE-MULE (Algorithm 5, with the
// shared-neighborhood prefilter) and values below 2 are the unrestricted
// default; for quasi-clique queries it is the smallest reported set (at
// least 2; the default is 3, the smallest size where a quasi-clique
// differs from an edge).
func WithMinSize(t int) Option {
	return Option{"WithMinSize", kindClique | kindQuasi, func(o *queryOptions) { o.cfg.MinSize = t }}
}

// WithOrdering selects the vertex numbering used by the search (the output
// set is always the same; the tree shape and therefore the wall-clock may
// differ). The default is OrderNatural, the paper's setting.
func WithOrdering(ord Ordering) Option {
	return Option{"WithOrdering", kindClique, func(o *queryOptions) { o.cfg.Ordering = ord }}
}

// WithSeed feeds OrderRandom; ignored by the other orderings.
func WithSeed(seed int64) Option {
	return Option{"WithSeed", kindClique, func(o *queryOptions) { o.cfg.Seed = seed }}
}

// WithWorkers enables the parallel search when w > 1 (the work-stealing
// engine by default; see WithParallelMode). The default is a serial search.
//
// Since the shared executor, w is the query's parallelism cap — at most w
// of the query's frames execute concurrently on the executor's worker pool
// — not a goroutine count; the pool is sized once per process (or per
// NewExecutor). Results and stats are identical for every w.
func WithWorkers(w int) Option {
	return Option{"WithWorkers", kindClique, func(o *queryOptions) { o.cfg.Workers = w }}
}

// WithParallelMode selects the engine used when WithWorkers enables
// parallelism: ParallelWorkStealing (the default) or the legacy
// ParallelTopLevel fan-out.
func WithParallelMode(m ParallelMode) Option {
	return Option{"WithParallelMode", kindClique, func(o *queryOptions) { o.cfg.Parallel = m }}
}

// WithStealGranularity sets the minimum number of candidate vertices a
// subtree must have before the work-stealing engine publishes it as a
// stealable frame; 0 selects the default (8).
func WithStealGranularity(k int) Option {
	return Option{"WithStealGranularity", kindClique, func(o *queryOptions) { o.cfg.StealGranularity = k }}
}

// WithLimit stops the enumeration after n results have been delivered.
// Reaching the limit is a successful run (nil error, Stats.Status ==
// StatusStopped); it is the streaming analogue of SQL's LIMIT, useful for
// sampling and pagination-style probes. It applies to the Run, Collect,
// Count, and Stream methods of every query kind; Query.TopK and
// Query.Maximum ignore it — their answers are only correct over the full
// family.
func WithLimit(n int64) Option {
	return Option{"WithLimit", kindAll, func(o *queryOptions) { o.limit = n }}
}

// WithBudget bounds the run to at most n units of search work; a run that
// exhausts the budget aborts with an error wrapping ErrBudget. The unit is
// the engine's dominant cost: search-tree node expansions for clique,
// biclique, and quasi-clique queries, support-probability evaluations for
// truss queries, η-degree recomputations for core queries, peel steps for
// densest queries, center sweeps for cluster queries. The budget is
// charged in batches, so runs can overshoot by a few thousand units. Use it
// to cap worst-case work on untrusted inputs, where the output count — and
// hence any time bound — is exponential in the worst case.
func WithBudget(n int64) Option {
	return Option{"WithBudget", kindAll, func(o *queryOptions) { o.cfg.Budget = n }}
}

// WithStallTimeout arms the stall watchdog: a run that makes no search
// progress for d — no run-control poll and no result emission — is aborted
// with an error wrapping ErrStalled and Stats.Status == StatusStalled.
// Unlike a context deadline, which fires on wall clock no matter how much
// work is getting done, the watchdog only fires on a run that has genuinely
// wedged (a visitor callback blocked forever, a starved worker). The engines
// cannot preempt a visitor that never returns — the abort latches and the
// run unwinds at the next cooperative point. d = 0 (the default) disarms.
func WithStallTimeout(d time.Duration) Option {
	return Option{"WithStallTimeout", kindAll, func(o *queryOptions) {
		o.stall = d
		o.cfg.StallTimeout = d
	}}
}

// WithIntersect selects the intersection kernel policy: IntersectAdaptive
// (the default — word-parallel bitset AND on dense nodes, merge/gallop
// elsewhere), or the forced IntersectSorted / IntersectBitset modes for
// equivalence testing and ablation benchmarks. The enumerated clique set
// is identical under every mode.
func WithIntersect(m IntersectMode) Option {
	return Option{"WithIntersect", kindClique, func(o *queryOptions) { o.cfg.Intersect = m }}
}

// WithGamma sets a quasi-clique query's density threshold γ: every member
// of a reported set has expected degree into the set at least γ·(|set|−1).
// The mining algorithm requires γ ∈ [0.5, 1] (its structural prunes rely on
// the diameter-≤-2 property that holds from one half up); the constructor
// rejects anything else with a wrapped ErrGammaRange. There is no default —
// a quasi-clique query without WithGamma fails eagerly.
func WithGamma(gamma float64) Option {
	return Option{"WithGamma", kindQuasi, func(o *queryOptions) { o.gamma = gamma }}
}

// WithMaxSize caps a quasi-clique query's search depth: sets larger than n
// are neither reported nor used to disqualify smaller sets, so the output
// is "maximal among expected γ-quasi-cliques of size ≤ n".
func WithMaxSize(n int) Option {
	return Option{"WithMaxSize", kindQuasi, func(o *queryOptions) { o.maxSize = n }}
}

// WithCenters sets a cluster query's center count k: the partition has
// exactly k clusters, each around one center vertex. It is required and
// must lie in [1, NumVertices]; anything else — including the zero value
// from omitting the option — is rejected by NewClusterQuery with a wrapped
// ErrCentersRange.
func WithCenters(k int) Option {
	return Option{"WithCenters", kindCluster, func(o *queryOptions) { o.centers = k }}
}

// WithSides restricts a biclique query to α-maximal bicliques with at least
// minL left and minR right vertices, pruning subtrees that cannot reach the
// requested shape (the LARGE-MULE analogue). Values ≤ 1 mean "non-empty",
// which every biclique already satisfies.
func WithSides(minL, minR int) Option {
	return Option{"WithSides", kindBiclique, func(o *queryOptions) { o.minL, o.minR = minL, minR }}
}

// newQuery is the single constructor behind NewQuery and every legacy
// wrapper: all Query invariants — the WithLimit bound and the full
// core.Validate contract — are enforced here, so no entry point can build
// a Query that another would reject.
func newQuery(g *Graph, alpha float64, cfg core.Config, limit int64) (*Query, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := core.Validate(g, alpha, cfg); err != nil {
		return nil, err
	}
	return &Query{g: g, alpha: alpha, cfg: cfg, limit: limit}, nil
}

// NewQuery prepares an enumeration of the α-maximal cliques of g. It
// validates eagerly: a nil graph, an alpha outside (0,1], or an invalid
// option combination is reported here (wrapping ErrNilGraph, ErrAlphaRange,
// or ErrConfig), so every run method on the returned Query starts from a
// well-formed question.
func NewQuery(g *Graph, alpha float64, opts ...Option) (*Query, error) {
	o, err := applyOptions(kindClique, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	q, err := newQuery(g, alpha, o.cfg, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	// The parallel engines submit their frames to the query's executor; the
	// serial path never touches one.
	q.cfg.Exec = ten.engineExec()
	return q, nil
}

// newQueryFromConfig adapts a legacy Config to a Query; the deprecated
// top-level functions funnel through it and inherit NewQuery's validation
// through the shared constructor.
func newQueryFromConfig(g *Graph, alpha float64, cfg Config) (*Query, error) {
	return newQuery(g, alpha, cfg, 0)
}

// run executes the query under its WithLimit bound, reporting whether the
// user-supplied visitor ended the run early (as opposed to the limit doing
// so). The closure flags are safe: the engines serialize visitor
// invocations and the run's completion happens-after the last call.
// Admission control gates the run before any search work; a rejected run
// reports StatusFailed with an error wrapping ErrAdmission.
func (q *Query) run(ctx context.Context, visit Visitor) (stats Stats, userStopped bool, err error) {
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return Stats{Status: StatusFailed}, false, err
	}
	defer release()
	wrapped := visit
	if q.limit > 0 {
		remaining := q.limit
		wrapped = func(c []int, p float64) bool {
			if visit != nil && !visit(c, p) {
				userStopped = true
				return false
			}
			remaining--
			return remaining > 0
		}
	} else if visit != nil {
		wrapped = func(c []int, p float64) bool {
			if !visit(c, p) {
				userStopped = true
				return false
			}
			return true
		}
	}
	stats, err = core.EnumerateContext(ctx, q.g, q.alpha, wrapped, q.cfg)
	return stats, userStopped, err
}

// Run enumerates the query's cliques, invoking visit for each (visit may be
// nil to only count; see Stats.Emitted). It returns an error wrapping
// context.Canceled or context.DeadlineExceeded if ctx fires mid-run, an
// error wrapping ErrBudget if a WithBudget bound runs out, and an error
// wrapping ErrStopped if visit returned false — so err == nil means the
// enumeration ran to completion (or to its WithLimit bound). In every
// abnormal case the returned Stats are valid for the work done up to the
// stop, with Stats.Status recording the terminal state.
func (q *Query) Run(ctx context.Context, visit Visitor) (Stats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect materializes the query's cliques in canonical order: each vertex
// set sorted ascending, cliques sorted lexicographically.
func (q *Query) Collect(ctx context.Context) ([]Clique, error) {
	var out []Clique
	_, _, err := q.run(ctx, func(c []int, p float64) bool {
		out = append(out, Clique{Vertices: append([]int(nil), c...), Prob: p})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i].Vertices, out[j].Vertices) })
	return out, nil
}

// Count returns the number of cliques the query enumerates, without
// materializing them.
func (q *Query) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// TopK returns the k best cliques of the query under the given criterion
// (ByProb: highest clique probability first; BySize: largest first), with
// deterministic tie-breaking. It enumerates the full α-maximal family once
// through a bounded min-heap — the threshold cannot be raised to the
// running k-th best, because α-maximality itself is defined relative to α.
// A WithLimit bound is ignored for the same reason: the best-of-a-prefix
// is not the best of the family. WithBudget still applies (an exhausted
// budget is an error, not a silently truncated answer).
func (q *Query) TopK(ctx context.Context, k int, by TopKCriterion) ([]ScoredClique, error) {
	col, err := topk.NewCollector(k, by)
	if err != nil {
		return nil, err
	}
	full := *q
	full.limit = 0
	if _, err := full.Run(ctx, col.Visit); err != nil {
		return nil, err
	}
	return col.Drain(), nil
}

// Maximum returns one maximum-cardinality α-clique of the query's graph and
// its probability, via branch-and-bound (see MaximumClique). It honors ctx
// and WithBudget like every other run method; the parallel, ordering, and
// WithLimit options do not apply to this search.
func (q *Query) Maximum(ctx context.Context) ([]int, float64, error) {
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	return core.MaximumCliqueBudget(ctx, q.g, q.alpha, q.cfg.Budget)
}

// Cliques returns the query's cliques as a Go 1.23 range-over-func stream:
//
//	for c, err := range q.Cliques(ctx) {
//		if err != nil {
//			return err // ctx fired or the budget ran out
//		}
//		use(c)
//	}
//
// Cliques are yielded as the engines find them (engine order, not canonical
// order), each with a nil error; if the run aborts, one final (Clique{},
// err) pair carries the wrapped cause and the stream ends. Breaking out of
// the loop stops the underlying enumeration — serial runs stop on the spot,
// parallel runs within one poll interval — and never leaks goroutines.
func (q *Query) Cliques(ctx context.Context) iter.Seq2[Clique, error] {
	if q.cfg.Workers > 1 {
		return q.cliquesParallel(ctx)
	}
	return func(yield func(Clique, error) bool) {
		consumerDone := false
		_, _, err := q.run(ctx, func(c []int, p float64) bool {
			if !yield(Clique{Vertices: append([]int(nil), c...), Prob: p}, nil) {
				consumerDone = true
				return false
			}
			return true
		})
		if err != nil && !consumerDone {
			yield(Clique{}, err)
		}
	}
}

// cliquesParallel bridges a parallel run to the consumer through a channel:
// the engines' visitor fires on worker goroutines, and a range-over-func
// yield must only be called on the consumer's goroutine. Breaking the loop
// cancels the producer's context; the producer unwinds within one poll
// interval and the drain below guarantees it is never left blocked on a
// send, so nothing outlives the loop.
func (q *Query) cliquesParallel(ctx context.Context) iter.Seq2[Clique, error] {
	return func(yield func(Clique, error) bool) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		cliques := make(chan Clique, 64)
		errc := make(chan error, 1)
		go func() {
			ctxStopped := false
			_, _, err := q.run(runCtx, func(c []int, p float64) bool {
				select {
				case cliques <- Clique{Vertices: append([]int(nil), c...), Prob: p}:
					return true
				case <-runCtx.Done():
					ctxStopped = true
					return false
				}
			})
			if err == nil && ctxStopped && ctx.Err() != nil {
				// The caller's context fired while the visitor was parked in
				// the select above, so the engines saw an ordinary visitor
				// stop before their next poll; report the true cause. Runs
				// that completed (or hit their WithLimit) before the context
				// fired keep their nil error.
				err = fmt.Errorf("mule: enumeration aborted: %w", ctx.Err())
			}
			close(cliques)
			errc <- err
		}()
		for c := range cliques {
			if !yield(c, nil) {
				cancel()
				for range cliques { // unblock the producer until it closes
				}
				<-errc
				return
			}
		}
		if err := <-errc; err != nil {
			yield(Clique{}, err)
		}
	}
}

// panicToError converts a value recovered at a query-layer containment
// boundary into the wrapped *PanicError the clique engines produce at
// theirs, so every surface reports panics identically. A re-thrown
// *PanicError (already converted below) passes through unchanged.
func panicToError(v any) error {
	if pe, ok := v.(*PanicError); ok {
		return fmt.Errorf("mule: run aborted: %w", pe)
	}
	return fmt.Errorf("mule: run aborted: %w", core.NewPanicError(v, debug.Stack()))
}

// lexLess orders vertex sets lexicographically (canonical collection
// order).
func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
