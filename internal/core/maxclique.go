package core

import (
	"fmt"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// MaximumClique returns one maximum-cardinality α-clique of g (ties broken
// by search order) together with its clique probability. It runs the MULE
// search with a dynamic LARGE-MULE-style bound: a branch is cut as soon as
// |C'| + |I'| cannot beat the best clique found so far, which is exactly the
// Algorithm 6 cut with a threshold that tightens during the search. For an
// empty graph it returns (nil, 1).
//
// Note the result is a maximum α-clique, which is necessarily α-maximal;
// enumerating all of them is possible with EnumerateWith and a MinSize of
// the returned size, but a single witness is the common query.
func MaximumClique(g *uncertain.Graph, alpha float64) ([]int, float64, error) {
	if g == nil {
		return nil, 0, fmt.Errorf("core: nil graph")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, 0, fmt.Errorf("core: alpha %v outside (0,1]", alpha)
	}
	work := g.PruneAlpha(alpha)
	// bestProb starts at 1: the empty clique has probability 1 by convention.
	m := &maxSearch{g: work, alpha: alpha, bestProb: 1}
	n := work.NumVertices()
	rootI := make([]entry, n)
	for v := 0; v < n; v++ {
		rootI[v] = entry{int32(v), 1}
	}
	m.recurse(nil, 1, rootI)
	return m.best, m.bestProb, nil
}

type maxSearch struct {
	g        *uncertain.Graph
	alpha    float64
	best     []int
	bestProb float64
}

// recurse explores like Enum-Uncertain-MC but only tracks the deepest
// α-clique; the X set is unnecessary because maximality testing is not —
// any clique larger than the incumbent improves it regardless of
// maximality status.
func (m *maxSearch) recurse(C []int32, q float64, I []entry) {
	if len(C) > len(m.best) {
		m.best = make([]int, len(C))
		for i, v := range C {
			m.best[i] = int(v)
		}
		m.bestProb = q
	}
	for idx := 0; idx < len(I); idx++ {
		// Bound: even taking every remaining candidate cannot beat best.
		if len(C)+len(I)-idx <= len(m.best) {
			return
		}
		u, r := I[idx].v, I[idx].r
		q2 := q * r
		C2 := append(C, u)
		I2 := m.generateI(I[idx+1:], u, q2)
		if len(C2)+len(I2) > len(m.best) {
			m.recurse(C2, q2, I2)
		}
	}
}

func (m *maxSearch) generateI(tail []entry, u int32, q2 float64) []entry {
	row, probs := m.g.Adjacency(int(u))
	j := 0
	for j < len(row) && row[j] <= u {
		j++
	}
	out := make([]entry, 0, minInt(len(tail), len(row)-j))
	i := 0
	for i < len(tail) && j < len(row) {
		switch {
		case tail[i].v < row[j]:
			i++
		case tail[i].v > row[j]:
			j++
		default:
			r2 := tail[i].r * probs[j]
			if q2*r2 >= m.alpha {
				out = append(out, entry{tail[i].v, r2})
			}
			i++
			j++
		}
	}
	return out
}
