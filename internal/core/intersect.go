package core

// Adaptive sorted-set intersection for GenerateI/GenerateX (Algorithms 3
// and 4). Both algorithms intersect a sorted entry list (candidates or
// witnesses) with a sorted adjacency row, extending each surviving
// multiplier by the edge probability and filtering against the threshold.
//
// On balanced inputs a linear two-pointer merge is optimal. On hub-heavy
// power-law graphs the two sides routinely differ by orders of magnitude —
// a short tail intersected with a hub's multi-thousand-entry row — and the
// merge wastes its time stepping through the long side one element at a
// time. When the lengths differ by gallopRatio or more, the kernel instead
// walks the short side and advances through the long side by galloping
// (exponential search followed by binary search), making each step
// O(log gap) instead of O(gap).

// gallopRatio is the length disparity at which the merge switches to
// galloping. Below ~8× the branchy binary search costs more than the linear
// steps it replaces.
const gallopRatio = 8

// intersectEntries appends to dst every vertex common to src (sorted
// entries) and row (sorted adjacency with parallel probs) whose extended
// multiplier src[i].r·probs[j] still meets thr, and returns dst. dst must
// have capacity for min(len(src), len(row)) appends.
//
// thr is the hoisted threshold α/clq(C∪{u}): comparing r' ≥ α/q' once per
// match replaces the q'·r' ≥ α multiply of the textbook formulation. The
// two comparisons can disagree by at most one ulp of rounding on the
// boundary; every ordering and engine uses the same rule, so results stay
// internally consistent.
func intersectEntries(dst, src []entry, row []int32, probs []float64, thr float64) []entry {
	switch {
	case len(src) == 0 || len(row) == 0:
		return dst
	case len(row) >= gallopRatio*len(src):
		j := 0
		for i := range src {
			j = gallopRow(row, j, src[i].v)
			if j == len(row) {
				break
			}
			if row[j] == src[i].v {
				if r2 := src[i].r * probs[j]; r2 >= thr {
					dst = append(dst, entry{src[i].v, r2})
				}
				j++
			}
		}
	case len(src) >= gallopRatio*len(row):
		i := 0
		for j := range row {
			i = gallopEntries(src, i, row[j])
			if i == len(src) {
				break
			}
			if src[i].v == row[j] {
				if r2 := src[i].r * probs[j]; r2 >= thr {
					dst = append(dst, entry{row[j], r2})
				}
				i++
			}
		}
	default:
		i, j := 0, 0
		for i < len(src) && j < len(row) {
			switch {
			case src[i].v < row[j]:
				i++
			case src[i].v > row[j]:
				j++
			default:
				if r2 := src[i].r * probs[j]; r2 >= thr {
					dst = append(dst, entry{src[i].v, r2})
				}
				i++
				j++
			}
		}
	}
	return dst
}

// gallopRow returns the smallest k ≥ from with row[k] ≥ v, or len(row):
// exponential probes double the step until they overshoot, then a binary
// search pins the boundary inside the last doubling window.
func gallopRow(row []int32, from int, v int32) int {
	n := len(row)
	if from >= n || row[from] >= v {
		return from
	}
	lo, step := from, 1
	hi := from + step
	for hi < n && row[hi] < v {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	// row[lo] < v, and hi == n or row[hi] ≥ v.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// gallopEntries is gallopRow over the vertex field of an entry list.
func gallopEntries(src []entry, from int, v int32) int {
	n := len(src)
	if from >= n || src[from].v >= v {
		return from
	}
	lo, step := from, 1
	hi := from + step
	for hi < n && src[hi].v < v {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if src[mid].v < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
