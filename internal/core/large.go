package core

import (
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Witness sets under size pruning, serial vs work stealing.
//
// Algorithm 6's serial loop skips the witness push for a size-pruned
// candidate u (recurse in mule.go): any clique u could witness against is
// itself below the size threshold t, so u can never block an emission. The
// work-stealing engine instead pushes u anyway, keeping the frame's
// witness set equal to X₀ ++ I[:next] so a frame can be split at any
// iteration boundary. This is safe: suppose u was pruned at clique C
// because |C|+1+|I_u| < t, and later some node C' ⊇ C in a sibling subtree
// still carries u in its witness set at emission time. Carrying u requires
// clq(C'∪{u}) ≥ α (generateX filters by α at every step), and every vertex
// of C'∖C is a candidate greater than u adjacent to u within the α budget —
// exactly the membership test of I_u. Hence |C'∪{u}| ≤ |C|+1+|I_u| < t,
// while LARGE-MULE only emits cliques of size ≥ t (the |C'|+|I'| ≥ t cut
// holds on every recursion edge). So u is never present in the witness set
// of an emitting node, and the emitted clique set is identical; only
// Stats.WitnessOps can differ from a serial run when MinSize ≥ 2.

// csrScratch is the mutable CSR the prefilter iterates on: each vertex owns
// the slice [start[u], end[u]) of nbrs/probs, sorted ascending; removals
// compact the row in place (end[u] shrinks, start[u] is fixed). No hash
// maps anywhere — common-neighbor counts run as sorted merges over the live
// row segments, so the whole fixpoint works on the four flat arrays below
// plus O(1) locals, keeping the LARGE path at the same ~0-alloc steady
// state as the enumeration kernel.
type csrScratch struct {
	start []int32
	end   []int32
	nbrs  []int32
	probs []float64
}

// newCSRScratch copies g's rows into a mutable CSR.
func newCSRScratch(g *uncertain.Graph) *csrScratch {
	n := g.NumVertices()
	s := &csrScratch{
		start: make([]int32, n),
		end:   make([]int32, n),
	}
	total := 2 * g.NumEdges()
	s.nbrs = make([]int32, 0, total)
	s.probs = make([]float64, 0, total)
	for u := 0; u < n; u++ {
		row, probs := g.Adjacency(u)
		s.start[u] = int32(len(s.nbrs))
		s.nbrs = append(s.nbrs, row...)
		s.probs = append(s.probs, probs...)
		s.end[u] = int32(len(s.nbrs))
	}
	return s
}

// row returns u's live neighbors.
func (s *csrScratch) row(u int32) []int32 { return s.nbrs[s.start[u]:s.end[u]] }

// degree returns u's live neighbor count.
func (s *csrScratch) degree(u int32) int { return int(s.end[u] - s.start[u]) }

// commonCount returns |Γ(u) ∩ Γ(v)| over the live rows by sorted merge.
func (s *csrScratch) commonCount(u, v int32) int {
	a, b := s.row(u), s.row(v)
	c, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// dropHalf removes v from u's row, compacting in place. It is a no-op if v
// is not present (already removed from this side).
func (s *csrScratch) dropHalf(u, v int32) {
	lo, hi := int(s.start[u]), int(s.end[u])
	// Binary search for v within the live row.
	i, j := lo, hi
	for i < j {
		mid := int(uint(i+j) >> 1)
		if s.nbrs[mid] < v {
			i = mid + 1
		} else {
			j = mid
		}
	}
	if i == hi || s.nbrs[i] != v {
		return
	}
	copy(s.nbrs[i:hi-1], s.nbrs[i+1:hi])
	copy(s.probs[i:hi-1], s.probs[i+1:hi])
	s.end[u] = int32(hi - 1)
}

// removeEdge removes {u,v} from both rows.
func (s *csrScratch) removeEdge(u, v int32) {
	s.dropHalf(u, v)
	s.dropHalf(v, u)
}

// clearVertex removes every edge incident to u: u is dropped from each
// neighbor's row, then u's own row is truncated wholesale.
func (s *csrScratch) clearVertex(u int32) {
	for _, v := range s.row(u) {
		s.dropHalf(v, u)
	}
	s.end[u] = s.start[u]
}

// build assembles the live rows into an immutable Graph. Rows stay sorted
// under compaction and removals are applied to both halves of an edge, so
// the result satisfies every Graph invariant; FromSortedAdjacency verifies
// them and reports an error instead of silently emitting a corrupt graph.
func (s *csrScratch) build() (*uncertain.Graph, error) {
	n := len(s.start)
	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + int32(s.degree(int32(u)))
	}
	nbrs := make([]int32, offsets[n])
	probs := make([]float64, offsets[n])
	for u := 0; u < n; u++ {
		copy(nbrs[offsets[u]:offsets[u+1]], s.nbrs[s.start[u]:s.end[u]])
		copy(probs[offsets[u]:offsets[u+1]], s.probs[s.start[u]:s.end[u]])
	}
	return uncertain.FromSortedAdjacency(n, offsets, nbrs, probs)
}

// sharedNeighborhoodFilter applies the Modani–Dey preprocessing the paper
// uses before LARGE-MULE (§4.3): repeatedly
//
//  1. drop every edge {u,v} whose endpoints share fewer than t-2 common
//     neighbors (a clique of size ≥ t containing the edge needs t-2 common
//     completions), and
//  2. drop every vertex (i.e. all its incident edges) that does not have at
//     least t-1 neighbors u with |Γ(u) ∩ Γ(v)| ≥ t-2,
//
// until a fixpoint. The filter runs on the α-pruned support graph, so it
// never removes an edge or vertex participating in an α-clique of size ≥ t;
// LARGE-MULE's output is therefore unaffected.
func sharedNeighborhoodFilter(g *uncertain.Graph, t int) (*uncertain.Graph, error) {
	if t < 3 {
		// t-2 ≤ 0: the common-neighbor constraints are vacuous.
		return g, nil
	}
	n := int32(g.NumVertices())
	s := newCSRScratch(g)

	for changed := true; changed; {
		changed = false
		// Edge rule. Rows are scanned back to front: removing the neighbor
		// at index i only shifts entries after i, so earlier indices stay
		// valid as the row compacts under the iteration.
		for u := int32(0); u < n; u++ {
			for i := int(s.end[u]) - 1; i >= int(s.start[u]); i-- {
				v := s.nbrs[i]
				if u < v && s.commonCount(u, v) < t-2 {
					s.removeEdge(u, v)
					changed = true
				}
			}
		}
		// Vertex rule.
		for u := int32(0); u < n; u++ {
			if s.degree(u) == 0 {
				continue
			}
			qualified := 0
			for _, v := range s.row(u) {
				if s.commonCount(u, v) >= t-2 {
					qualified++
				}
			}
			if qualified < t-1 {
				s.clearVertex(u)
				changed = true
			}
		}
	}
	return s.build()
}
