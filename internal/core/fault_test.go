package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/faultinject"
)

// faultCfgs is the engine grid every containment test sweeps: serial,
// work-stealing, and the legacy top-level fan-out.
func faultCfgs() []Config {
	return []Config{
		{},
		{Workers: 4},
		{Workers: 4, Parallel: ParallelTopLevel},
	}
}

// conserved asserts the global pools balanced across fn: every checkout made
// during the call was returned by the time it ended — the invariant the
// panic and stall unwind paths must preserve.
func conserved(t *testing.T, name string, fn func()) {
	t.Helper()
	c0, r0 := PoolCounters()
	fn()
	c1, r1 := PoolCounters()
	if c1-c0 != r1-r0 {
		t.Fatalf("%s: pool imbalance: %d checkouts vs %d returns", name, c1-c0, r1-r0)
	}
}

// TestVisitorPanicContained: a panicking visitor terminates only its own run
// with a typed, wrapped ErrPanic and StatusPanicked — on every engine — and
// the pools balance so the next run on the same process is exact.
func TestVisitorPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomDyadic(40, 0.55, rng)
	want := mustCollect(t, g, 1e-9, Config{})
	for _, cfg := range faultCfgs() {
		conserved(t, cfg.Parallel.String(), func() {
			stats, err := EnumerateContext(context.Background(), g, 1e-9, func([]int, float64) bool {
				panic("visitor bomb")
			}, cfg)
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("cfg %+v: err = %v, want wrapped ErrPanic", cfg, err)
			}
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value != "visitor bomb" || len(pe.Stack) == 0 {
				t.Fatalf("cfg %+v: PanicError not recoverable from %v", cfg, err)
			}
			if stats.Status != StatusPanicked {
				t.Fatalf("cfg %+v: status = %v, want panicked", cfg, stats.Status)
			}
		})
		// Containment proven end to end: the same engine still enumerates
		// the exact clique set afterwards.
		got := mustCollect(t, g, 1e-9, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cfg %+v: post-panic run diverged", cfg)
		}
	}
}

// TestInjectedFaultSites drives each panic-class injection site through the
// engine it instruments and checks the typed InjectedPanic value survives to
// the caller — distinguishing an injected fault from a genuine escape.
func TestInjectedFaultSites(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomDyadic(40, 0.55, rng)
	cases := []struct {
		site faultinject.Site
		cfg  Config
	}{
		{faultinject.PanicVisitor, Config{}},
		{faultinject.PanicVisitor, Config{Workers: 4}},
		{faultinject.PanicFrame, Config{Workers: 4}},
		{faultinject.FailCheckout, Config{Workers: 4}},
	}
	for _, tc := range cases {
		conserved(t, tc.site.String(), func() {
			plan := faultinject.NewPlan(1).Arm(tc.site, 1)
			restore := faultinject.Activate(plan)
			defer restore()
			stats, err := EnumerateContext(context.Background(), g, 1e-9,
				func([]int, float64) bool { return true }, tc.cfg)
			if !errors.Is(err, ErrPanic) || stats.Status != StatusPanicked {
				t.Fatalf("site %v cfg %+v: (%v, %v), want ErrPanic/panicked",
					tc.site, tc.cfg, err, stats.Status)
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("site %v: no PanicError in %v", tc.site, err)
			}
			ip, ok := pe.Value.(faultinject.InjectedPanic)
			if !ok || ip.Site != tc.site {
				t.Fatalf("site %v: panic value = %#v, want the injected marker", tc.site, pe.Value)
			}
			if plan.Fired(tc.site) == 0 {
				t.Fatalf("site %v: plan recorded no firings", tc.site)
			}
		})
	}
}

// TestStallWatchdog: a run whose polls are starved (SlowPoll freezes the
// beacon for longer than the window) is aborted with ErrStalled and
// StatusStalled — serial and work-stealing — while the pools balance.
func TestStallWatchdog(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomDyadic(40, 0.55, rng)
	for _, cfg := range []Config{
		{StallTimeout: 10 * time.Millisecond},
		{StallTimeout: 10 * time.Millisecond, Workers: 4},
	} {
		conserved(t, "stall", func() {
			// Every poll sleeps 60ms with a 10ms no-progress window: the
			// first armed poll freezes the beacon well past the window.
			restore := faultinject.Activate(
				faultinject.NewPlan(2).ArmDelay(faultinject.SlowPoll, 1, 60*time.Millisecond))
			defer restore()
			stats, err := EnumerateContext(context.Background(), g, 1e-9,
				func([]int, float64) bool { return true }, cfg)
			if !errors.Is(err, ErrStalled) {
				t.Fatalf("cfg %+v: err = %v, want wrapped ErrStalled", cfg, err)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("cfg %+v: stall must stay distinct from deadline", cfg)
			}
			if stats.Status != StatusStalled {
				t.Fatalf("cfg %+v: status = %v, want stalled", cfg, stats.Status)
			}
		})
	}
	// A healthy run under the same watchdog completes untouched.
	want := mustCollect(t, g, 1e-9, Config{})
	got := mustCollect(t, g, 1e-9, Config{StallTimeout: 5 * time.Second, Workers: 4})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("armed watchdog perturbed a healthy run")
	}
	// Negative windows are a configuration error, caught up front.
	if err := Validate(g, 0.5, Config{StallTimeout: -1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative StallTimeout: err = %v, want ErrConfig", err)
	}
}

// TestArmStallDirect exercises the watchdog latch on a bare RunControl: no
// progress → ErrStalled; steady progress → no abort; disarmed → no-op.
func TestArmStallDirect(t *testing.T) {
	c := NewRunControl(context.Background(), 0)
	stop := c.ArmStall(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired on a frozen beacon")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(c.Err(), ErrStalled) || c.Status(false) != StatusStalled {
		t.Fatalf("frozen control: (%v, %v)", c.Err(), c.Status(false))
	}

	// The window is deliberately generous: on a loaded single-CPU box the
	// progressing goroutine can be descheduled for tens of milliseconds,
	// which must not read as a stall.
	live := NewRunControl(context.Background(), 0)
	stopLive := live.ArmStall(time.Second)
	for i := 0; i < 25; i++ {
		live.Progress()
		time.Sleep(4 * time.Millisecond)
	}
	stopLive()
	if live.Err() != nil {
		t.Fatalf("live control aborted despite progress: %v", live.Err())
	}

	off := NewRunControl(context.Background(), 0)
	off.ArmStall(0)() // disarmed: stop func is a no-op, no goroutine
	if off.Err() != nil {
		t.Fatalf("disarmed watchdog aborted: %v", off.Err())
	}
}
