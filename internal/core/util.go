package core

import "sort"

func sortInts(a []int) { sort.Ints(a) }

func sortSliceOfSlices(cliques [][]int) {
	sort.Slice(cliques, func(i, j int) bool {
		a, b := cliques[i], cliques[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// isIdentityOrder reports whether the permutation maps every index to
// itself (a strictly increasing permutation is necessarily the identity).
func isIdentityOrder(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
