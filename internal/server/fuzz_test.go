package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"

	mule "github.com/uncertain-graphs/mule"
)

// canonicalValues re-encodes parsed params in the canonical spelling. If the
// canonicalization is sound, reparsing this must reproduce the same cache
// key — that is what makes the cache unable to alias two different questions
// or split one question across two keys.
func canonicalValues(p *qparams) url.Values {
	ff := func(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }
	v := url.Values{"miner": {p.miner}}
	switch p.miner {
	case "cliques":
		v.Set("alpha", ff(p.alpha))
		v.Set("minsize", strconv.Itoa(p.minSize))
		v.Set("workers", strconv.Itoa(p.workers))
	case "bicliques":
		v.Set("alpha", ff(p.alpha))
		v.Set("minl", strconv.Itoa(p.minL))
		v.Set("minr", strconv.Itoa(p.minR))
	case "quasi":
		v.Set("gamma", ff(p.gamma))
		v.Set("minsize", strconv.Itoa(p.minSize))
		v.Set("maxsize", strconv.Itoa(p.maxSize))
	case "truss", "core":
		v.Set("eta", ff(p.eta))
	}
	v.Set("limit", strconv.FormatInt(p.limit, 10))
	v.Set("budget", strconv.FormatInt(p.budget, 10))
	if p.timeout > 0 {
		v.Set("timeout", p.timeout.String())
	}
	if p.tenant != "" {
		v.Set("tenant", p.tenant)
	}
	if p.nocache {
		v.Set("nocache", "true")
	}
	return v
}

// fuzzServer is one tiny in-process server shared by every fuzz execution:
// graph "g" (a triangle) and bipartite "b", so arbitrary query strings can
// be driven through the real handler.
var fuzzServer = sync.OnceValue(func() *Server {
	s := New(Config{Workers: 1, CacheEntries: 16})
	g, err := mule.FromEdges(3, []mule.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 0, V: 2, P: 0.9}, {U: 1, V: 2, P: 0.9},
	})
	if err != nil {
		panic(err)
	}
	if err := s.Install("g", &Snapshot{Graph: g}); err != nil {
		panic(err)
	}
	b, err := mule.BipartiteFromEdges(2, 2, []mule.BipartiteEdge{
		{L: 0, R: 0, P: 0.9}, {L: 0, R: 1, P: 0.9}, {L: 1, R: 0, P: 0.9},
	})
	if err != nil {
		panic(err)
	}
	if err := s.Install("b", &Snapshot{Bipartite: b}); err != nil {
		panic(err)
	}
	return s
})

// FuzzQueryParams drives arbitrary query strings through parsing,
// canonicalization, and the live query handler. Invariants: parsing never
// panics; an accepted request's canonical re-encoding parses back to the
// identical cache key; and the server answers every spelling with a
// client-side status — 400 for the malformed ones, never a 500.
func FuzzQueryParams(f *testing.F) {
	f.Add("miner=cliques&alpha=0.5")
	f.Add("miner=cliques&alpha=5e-1&minsize=2&workers=4&limit=10")
	f.Add("miner=bicliques&alpha=0.25&minl=2&minr=3")
	f.Add("miner=quasi&gamma=0.6&minsize=3&maxsize=0")
	f.Add("miner=truss&eta=0.9&budget=100")
	f.Add("miner=core&eta=1&timeout=5ms&tenant=acme&nocache=true")
	f.Add("miner=cliques&alpha=0.5&alpha=0.5")
	f.Add("miner=cliques&alpha=NaN")
	f.Add("miner=wat&eta=bad&%%%")
	f.Add("alpha=0.5")

	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		p, perr := parseQueryParams(v)
		if perr == nil {
			key := p.cacheKey("g", 7)
			p2, err := parseQueryParams(canonicalValues(p))
			if err != nil {
				t.Fatalf("canonical form of %q rejected: %v", raw, err)
			}
			if key2 := p2.cacheKey("g", 7); key != key2 {
				t.Fatalf("cache key not stable under canonicalization:\n%q\n%q", key, key2)
			}
		}

		for _, graph := range []string{"g", "b"} {
			req := httptest.NewRequest("GET", "/graphs/"+graph+"/query", nil)
			req.URL.RawQuery = raw
			rec := httptest.NewRecorder()
			fuzzServer().Handler().ServeHTTP(rec, req)
			if rec.Code == http.StatusInternalServerError {
				t.Fatalf("query %q on %q returned 500: %s", raw, graph, rec.Body.Bytes())
			}
			if perr != nil && rec.Code != http.StatusBadRequest {
				t.Fatalf("unparsable query %q on %q: got %d, want 400 (%s)", raw, graph, rec.Code, rec.Body.Bytes())
			}
			if rec.Code == http.StatusOK && !bytes.Contains(rec.Body.Bytes(), []byte(`"results"`)) {
				t.Fatalf("200 without results array: %s", rec.Body.Bytes())
			}
		}
	})
}
