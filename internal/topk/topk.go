// Package topk ranks α-maximal cliques. The most closely related prior work
// to the paper (Zou, Li, Gao, Zhang; ICDE 2010) mines the k maximal cliques
// of highest probability; this package provides that query surface on top of
// MULE: among all α-maximal cliques of the graph, return the k with the
// highest clique probability (or the k largest).
//
// Note that the threshold α cannot simply be raised to the running k-th best
// probability during the search: α-maximality is defined relative to α, so a
// larger threshold changes which vertex sets are maximal at all (a large
// clique that fails a higher α splinters into smaller maximal cliques).
// TopK therefore enumerates the full α-maximal family once and maintains a
// bounded min-heap, which is exact and costs O(output · log k) beyond the
// enumeration itself.
package topk

import (
	"container/heap"
	"fmt"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// ScoredClique is an α-maximal clique with its clique probability.
type ScoredClique struct {
	Vertices []int
	Prob     float64
}

// Criterion selects the ranking used by a top-k query.
type Criterion int

const (
	// CriterionProb ranks by clique probability, highest first; ties break
	// toward larger cliques, then lexicographically smaller vertex sets.
	CriterionProb Criterion = iota
	// CriterionSize ranks by clique size, largest first; ties break toward
	// higher probability, then lexicographically smaller vertex sets.
	CriterionSize
)

// String names the criterion for logs and error messages.
func (c Criterion) String() string {
	switch c {
	case CriterionProb:
		return "prob"
	case CriterionSize:
		return "size"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Collector keeps the k best cliques seen so far in a bounded min-heap.
// Feed it as a core.Visitor (Visit) and finish with Drain; it composes with
// any enumeration driver, which is how the query layer runs top-k under a
// context without this package knowing about cancellation.
type Collector struct {
	h *cliqueHeap
	k int
}

// NewCollector returns a collector retaining the k best cliques under the
// criterion. k must be positive; parameter violations wrap core.ErrConfig
// like every other query-surface validation failure.
func NewCollector(k int, by Criterion) (*Collector, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topk: k must be positive, got %d: %w", k, core.ErrConfig)
	}
	var less func(a, b ScoredClique) bool
	switch by {
	case CriterionProb:
		less = lessByProb
	case CriterionSize:
		less = lessBySize
	default:
		return nil, fmt.Errorf("topk: unknown criterion %d: %w", int(by), core.ErrConfig)
	}
	return &Collector{h: &cliqueHeap{less: less}, k: k}, nil
}

// Visit offers one clique to the collector; it always returns true (a top-k
// query must see the whole family). It has the core.Visitor signature.
func (c *Collector) Visit(clique []int, p float64) bool {
	pushBounded(c.h, ScoredClique{Vertices: copyInts(clique), Prob: p}, c.k)
	return true
}

// Drain removes and returns the retained cliques, best-first. The collector
// is empty afterwards.
func (c *Collector) Drain() []ScoredClique {
	return drainDescending(c.h)
}

// ByProb returns the k α-maximal cliques with the highest clique
// probability, ordered best-first. Ties break toward larger cliques, then
// lexicographically smaller vertex sets, making the result deterministic.
func ByProb(g *uncertain.Graph, alpha float64, k int) ([]ScoredClique, error) {
	return collect(g, alpha, k, CriterionProb)
}

// BySize returns the k largest α-maximal cliques, ordered largest-first.
// Ties break toward higher probability, then lexicographically.
func BySize(g *uncertain.Graph, alpha float64, k int) ([]ScoredClique, error) {
	return collect(g, alpha, k, CriterionSize)
}

func collect(g *uncertain.Graph, alpha float64, k int, by Criterion) ([]ScoredClique, error) {
	col, err := NewCollector(k, by)
	if err != nil {
		return nil, err
	}
	if _, err := core.Enumerate(g, alpha, col.Visit); err != nil {
		return nil, err
	}
	return col.Drain(), nil
}

func copyInts(a []int) []int {
	cp := make([]int, len(a))
	copy(cp, a)
	return cp
}

// lessByProb orders worse-first (heap root = worst retained clique).
func lessByProb(a, b ScoredClique) bool {
	if a.Prob != b.Prob {
		return a.Prob < b.Prob
	}
	if len(a.Vertices) != len(b.Vertices) {
		return len(a.Vertices) < len(b.Vertices)
	}
	return lexGreater(a.Vertices, b.Vertices)
}

func lessBySize(a, b ScoredClique) bool {
	if len(a.Vertices) != len(b.Vertices) {
		return len(a.Vertices) < len(b.Vertices)
	}
	if a.Prob != b.Prob {
		return a.Prob < b.Prob
	}
	return lexGreater(a.Vertices, b.Vertices)
}

// lexGreater reports a > b lexicographically; used so that the heap evicts
// lexicographically larger sets first, keeping results deterministic.
func lexGreater(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return len(a) > len(b)
}

type cliqueHeap struct {
	items []ScoredClique
	less  func(a, b ScoredClique) bool
}

func (h cliqueHeap) Len() int           { return len(h.items) }
func (h cliqueHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h cliqueHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *cliqueHeap) Push(x any)        { h.items = append(h.items, x.(ScoredClique)) }
func (h *cliqueHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func pushBounded(h *cliqueHeap, sc ScoredClique, k int) {
	if h.Len() < k {
		heap.Push(h, sc)
		return
	}
	if h.less(h.items[0], sc) {
		h.items[0] = sc
		heap.Fix(h, 0)
	}
}

func drainDescending(h *cliqueHeap) []ScoredClique {
	out := make([]ScoredClique, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(ScoredClique)
	}
	return out
}
