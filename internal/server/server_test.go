package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/faultinject"
	"github.com/uncertain-graphs/mule/internal/graphio"
)

// testGraphText encodes a small uncertain graph in the text format:
// a triangle {0,1,2}, an edge {3,4}, and an isolated vertex 5.
func testGraphText(t *testing.T) []byte {
	t.Helper()
	g, err := mule.FromEdges(6, []mule.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 0, V: 2, P: 0.9}, {U: 1, V: 2, P: 0.9},
		{U: 3, V: 4, P: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a server with cache warming disabled, so tests that
// assert a post-apply cache miss stay deterministic; TestCacheWarming turns
// warming on explicitly.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServerCfg(t, Config{Workers: 2, CacheEntries: 64, WarmKeys: -1})
}

func newTestServerCfg(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues one request and returns the status code and body.
func do(t *testing.T, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return qr
}

// TestServerEndToEnd walks the acceptance scenario: load a graph, prove the
// cache serves repeat queries byte-identically, prove an Apply bumps the
// epoch and invalidates the cache, prove per-tenant admission returns 429
// for the capped tenant while others succeed, and prove a panicking visitor
// maps to 500 with the run status while the server keeps serving.
func TestServerEndToEnd(t *testing.T) {
	s, ts := newTestServer(t)

	// Load via POST body.
	code, body, _ := do(t, "POST", ts.URL+"/graphs/prot", testGraphText(t))
	if code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	var info graphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch == 0 || info.Vertices != 6 || info.Edges != 4 {
		t.Fatalf("load info: %+v", info)
	}

	queryURL := ts.URL + "/graphs/prot/query?miner=cliques&alpha=0.5"

	// (a) Repeat query is served from cache, byte-identical.
	code, first, _ := do(t, "GET", queryURL, nil)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, first)
	}
	qr1 := decodeQuery(t, first)
	if qr1.Cached || qr1.Status != "complete" || qr1.Count == 0 {
		t.Fatalf("first query: %+v", qr1)
	}
	code, second, _ := do(t, "GET", queryURL, nil)
	if code != http.StatusOK {
		t.Fatalf("repeat query: %d %s", code, second)
	}
	qr2 := decodeQuery(t, second)
	if !qr2.Cached {
		t.Fatalf("repeat query not served from cache: %+v", qr2)
	}
	if !bytes.Equal(qr1.Results, qr2.Results) {
		t.Fatalf("cached results differ:\n%s\n%s", qr1.Results, qr2.Results)
	}
	if got := s.cache.stats(); got.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (%+v)", got.Hits, got)
	}

	// (b) Apply bumps the epoch; the next query misses the cache and sees
	// the update (edge 2-3 creates the new maximal clique {2,3}).
	code, body, _ = do(t, "POST", ts.URL+"/graphs/prot/apply",
		[]byte(`{"updates":[{"u":2,"v":3,"p":0.9}]}`))
	if code != http.StatusOK {
		t.Fatalf("apply: %d %s", code, body)
	}
	var ar applyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch <= qr1.Epoch || ar.Updates != 1 {
		t.Fatalf("apply response: %+v (query epoch %d)", ar, qr1.Epoch)
	}
	code, third, _ := do(t, "GET", queryURL, nil)
	if code != http.StatusOK {
		t.Fatalf("post-apply query: %d %s", code, third)
	}
	qr3 := decodeQuery(t, third)
	if qr3.Cached {
		t.Fatal("post-apply query served from stale cache")
	}
	if qr3.Epoch != ar.Epoch {
		t.Fatalf("post-apply query epoch = %d, want %d", qr3.Epoch, ar.Epoch)
	}
	if qr3.Count != qr1.Count+1 {
		t.Fatalf("post-apply count = %d, want %d", qr3.Count, qr1.Count+1)
	}
	if !strings.Contains(string(qr3.Results), `"vertices":[2,3]`) {
		t.Fatalf("post-apply results missing clique {2,3}: %s", qr3.Results)
	}

	// (c) The capped tenant's over-budget query gets 429 with Retry-After;
	// an uncapped tenant runs the same query fine.
	code, body, _ = do(t, "PUT", ts.URL+"/tenants/capped/limits",
		[]byte(`{"max_inflight":0,"max_queued":0,"max_budget":5}`))
	if code != http.StatusOK {
		t.Fatalf("set limits: %d %s", code, body)
	}
	code, body, hdr := do(t, "GET", queryURL+"&tenant=capped&budget=100&nocache=true", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("capped tenant: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" {
		t.Fatalf("429 without error detail: %s", body)
	}
	code, body, _ = do(t, "GET", queryURL+"&tenant=open&budget=100&nocache=true", nil)
	if code != http.StatusOK {
		t.Fatalf("uncapped tenant: %d %s", code, body)
	}
	stats := statsOf(t, ts)
	if stats.Admission.RejectedBudget != 1 || stats.Admission.Rejected != 1 {
		t.Fatalf("admission stats: %+v", stats.Admission)
	}

	// (d) A panicking visitor maps to 500 with the run status — and the
	// server keeps serving afterwards.
	restore := faultinject.Activate(faultinject.NewPlan(1).Arm(faultinject.PanicVisitor, 1))
	code, body, _ = do(t, "GET", queryURL+"&nocache=true", nil)
	restore()
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking query: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != mule.StatusPanicked.String() {
		t.Fatalf("panicking query status = %q, want %q (%s)", er.Status, mule.StatusPanicked, body)
	}
	code, body, _ = do(t, "GET", queryURL+"&nocache=true", nil)
	if code != http.StatusOK {
		t.Fatalf("query after contained panic: %d %s", code, body)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight = %d after all queries returned", s.InFlight())
	}
}

func statsOf(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	code, body, _ := do(t, "GET", ts.URL+"/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	var sr statsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestServerAllMiners runs one query per family, covering the bipartite
// load path and the graph-kind mismatch rejection.
func TestServerAllMiners(t *testing.T) {
	_, ts := newTestServer(t)

	if code, body, _ := do(t, "POST", ts.URL+"/graphs/g", testGraphText(t)); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	bip := []byte("bipartite 2 2\n0 0 0.9\n0 1 0.9\n1 0 0.9\n1 1 0.9\n")
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/b?kind=bipartite", bip); code != http.StatusOK {
		t.Fatalf("load bipartite: %d %s", code, body)
	}

	for _, tc := range []struct {
		name  string
		query string
	}{
		{"cliques", "/graphs/g/query?miner=cliques&alpha=0.5"},
		{"quasi", "/graphs/g/query?miner=quasi&gamma=0.6&minsize=2"},
		{"truss", "/graphs/g/query?miner=truss&eta=0.5"},
		{"core", "/graphs/g/query?miner=core&eta=0.5"},
		{"bicliques", "/graphs/b/query?miner=bicliques&alpha=0.5&minl=2&minr=2"},
		{"densest", "/graphs/g/query?miner=densest"},
		{"cluster", "/graphs/g/query?miner=cluster&centers=3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, body, _ := do(t, "GET", ts.URL+tc.query, nil)
			if code != http.StatusOK {
				t.Fatalf("%s: %d %s", tc.query, code, body)
			}
			qr := decodeQuery(t, body)
			if qr.Status != "complete" || qr.Count == 0 {
				t.Fatalf("%s: %+v", tc.query, qr)
			}
		})
	}

	// Kind mismatches are 400, not 500.
	if code, body, _ := do(t, "GET", ts.URL+"/graphs/g/query?miner=bicliques&alpha=0.5", nil); code != http.StatusBadRequest {
		t.Fatalf("bicliques on graph: %d %s", code, body)
	}
	if code, body, _ := do(t, "GET", ts.URL+"/graphs/b/query?miner=cliques&alpha=0.5", nil); code != http.StatusBadRequest {
		t.Fatalf("cliques on bipartite: %d %s", code, body)
	}
	// Updates apply to regular graphs only.
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/b/apply", []byte(`{"updates":[{"u":0,"v":1,"p":0.5}]}`)); code != http.StatusBadRequest {
		t.Fatalf("apply on bipartite: %d %s", code, body)
	}
}

// TestServerValidation pins the 4xx surface: unknown graphs, malformed
// parameters, out-of-scope parameters, and invalid thresholds all map to
// client errors, never 500.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/g", testGraphText(t)); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/graphs/nope/query?miner=cliques&alpha=0.5", http.StatusNotFound},
		{"/graphs/nope", http.StatusNotFound},
		{"/graphs/g/query", http.StatusBadRequest},                                   // no miner
		{"/graphs/g/query?miner=wat&alpha=0.5", http.StatusBadRequest},               // unknown miner
		{"/graphs/g/query?miner=cliques", http.StatusBadRequest},                     // missing alpha
		{"/graphs/g/query?miner=cliques&alpha=nope", http.StatusBadRequest},          // malformed alpha
		{"/graphs/g/query?miner=cliques&alpha=7", http.StatusBadRequest},             // alpha out of range
		{"/graphs/g/query?miner=cliques&alpha=0.5&gamma=0.6", http.StatusBadRequest}, // out of scope
		{"/graphs/g/query?miner=cliques&alpha=0.5&alpha=0.6", http.StatusBadRequest}, // repeated
		{"/graphs/g/query?miner=quasi&gamma=0.2", http.StatusBadRequest},             // gamma out of range
		{"/graphs/g/query?miner=cliques&alpha=0.5&limit=-3", http.StatusBadRequest},
		{"/graphs/g/query?miner=cliques&alpha=0.5&timeout=banana", http.StatusBadRequest},
		{"/graphs/g/query?miner=cluster", http.StatusBadRequest},             // missing centers
		{"/graphs/g/query?miner=cluster&centers=99", http.StatusBadRequest},  // centers out of range (6 vertices)
		{"/graphs/g/query?miner=densest&centers=2", http.StatusBadRequest},   // out of scope
		{"/graphs/g/query?miner=densest&alpha=0.5", http.StatusBadRequest},   // out of scope
		{"/graphs/g/query?miner=cluster&centers=wat", http.StatusBadRequest}, // malformed centers
	} {
		code, body, _ := do(t, "GET", ts.URL+tc.path, nil)
		if code != tc.want {
			t.Errorf("%s: got %d, want %d (%s)", tc.path, code, tc.want, body)
		}
	}

	// Malformed apply bodies.
	for _, body := range []string{"", "{", `{"updates":[]}`, `{"wat":1}`} {
		code, out, _ := do(t, "POST", ts.URL+"/graphs/g/apply", []byte(body))
		if code != http.StatusBadRequest {
			t.Errorf("apply %q: got %d, want 400 (%s)", body, code, out)
		}
	}
	// Invalid update inside a batch is a 400 too (validation sentinel).
	code, out, _ := do(t, "POST", ts.URL+"/graphs/g/apply", []byte(`{"updates":[{"u":0,"v":0,"p":0.5}]}`))
	if code != http.StatusBadRequest {
		t.Errorf("self-loop apply: got %d, want 400 (%s)", code, out)
	}
}

// TestServerLimitTruncation pins the limit → 200 + truncated mapping and
// that truncated limit runs are cached under their own key.
func TestServerLimitTruncation(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/g", testGraphText(t)); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	u := ts.URL + "/graphs/g/query?miner=cliques&alpha=0.5&limit=1"
	code, body, _ := do(t, "GET", u, nil)
	if code != http.StatusOK {
		t.Fatalf("limited query: %d %s", code, body)
	}
	qr := decodeQuery(t, body)
	if !qr.Truncated || qr.Count != 1 || qr.Status != "stopped" {
		t.Fatalf("limited query: %+v", qr)
	}
	code, body, _ = do(t, "GET", u, nil)
	if code != http.StatusOK {
		t.Fatalf("repeat limited query: %d %s", code, body)
	}
	if qr2 := decodeQuery(t, body); !qr2.Cached || !qr2.Truncated {
		t.Fatalf("repeat limited query: %+v", qr2)
	}
}

// TestServerGraphLifecycle covers list, info, reload (epoch bump), and
// delete.
func TestServerGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	g := testGraphText(t)
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/a", g); code != http.StatusOK {
		t.Fatalf("load a: %d %s", code, body)
	}
	code, body, _ := do(t, "POST", ts.URL+"/graphs/b", g)
	if code != http.StatusOK {
		t.Fatalf("load b: %d %s", code, body)
	}
	var infoB graphInfo
	if err := json.Unmarshal(body, &infoB); err != nil {
		t.Fatal(err)
	}

	code, body, _ = do(t, "GET", ts.URL+"/graphs", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 2 || list.Graphs[0].Name != "a" || list.Graphs[1].Name != "b" {
		t.Fatalf("list: %s", body)
	}

	// Reloading replaces the graph under a strictly newer epoch.
	code, body, _ = do(t, "PUT", ts.URL+"/graphs/b", g)
	if code != http.StatusOK {
		t.Fatalf("reload b: %d %s", code, body)
	}
	var infoB2 graphInfo
	if err := json.Unmarshal(body, &infoB2); err != nil {
		t.Fatal(err)
	}
	if infoB2.Epoch <= infoB.Epoch {
		t.Fatalf("reload epoch %d not past %d", infoB2.Epoch, infoB.Epoch)
	}

	if code, body, _ := do(t, "DELETE", ts.URL+"/graphs/a", nil); code != http.StatusOK {
		t.Fatalf("delete a: %d %s", code, body)
	}
	if code, _, _ := do(t, "DELETE", ts.URL+"/graphs/a", nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/graphs/a", nil); code != http.StatusNotFound {
		t.Fatalf("info after delete: %d", code)
	}
}

// TestServerDeadline pins the deadline → 504 mapping using a microscopic
// per-query timeout against a graph big enough to not finish instantly.
func TestServerDeadline(t *testing.T) {
	_, ts := newTestServer(t)

	// A denser random-ish graph so the run cannot finish in a nanosecond.
	var buf bytes.Buffer
	n := 60
	var edges []mule.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u*31+v*17)%3 != 0 {
				edges = append(edges, mule.Edge{U: u, V: v, P: 0.9})
			}
		}
	}
	g, err := mule.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/big", buf.Bytes()); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}

	u := ts.URL + "/graphs/big/query?miner=cliques&alpha=0.1&timeout=" + url.QueryEscape("1ns")
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body, _ := do(t, "GET", u, nil)
		if code == http.StatusGatewayTimeout {
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatal(err)
			}
			if er.Status != mule.StatusDeadline.String() {
				t.Fatalf("deadline status = %q (%s)", er.Status, body)
			}
			return
		}
		// A 1ns deadline can in principle still let a run finish; retry
		// briefly rather than flake.
		if time.Now().After(deadline) {
			t.Fatalf("never saw 504, last: %d %s", code, body)
		}
	}
}

// TestInstall covers the programmatic preload path used by cmd/muled.
func TestInstall(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g, err := mule.FromEdges(2, []mule.Edge{{U: 0, V: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install("", &Snapshot{Graph: g}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Install("g", &Snapshot{}); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if err := s.Install("g", &Snapshot{Graph: g}); err != nil {
		t.Fatal(err)
	}
	e := s.reg.get("g")
	if e == nil || e.snapshot().Epoch == 0 {
		t.Fatalf("install did not publish: %+v", e)
	}
}

// TestCacheWarming pins satellite behavior: after a committed Apply, the
// server re-issues recently hit query shapes against the new epoch in the
// background, so the next client query is a cache hit that already reflects
// the update — and the warming work is observable in /stats.
func TestCacheWarming(t *testing.T) {
	s, ts := newTestServerCfg(t, Config{Workers: 2, CacheEntries: 64, WarmKeys: 2})

	if code, body, _ := do(t, "POST", ts.URL+"/graphs/prot", testGraphText(t)); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	queryURL := ts.URL + "/graphs/prot/query?miner=cliques&alpha=0.5"

	// Miss, then hit: the hit records the shape for warming.
	code, body, _ := do(t, "GET", queryURL, nil)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	if code, body, _ = do(t, "GET", queryURL, nil); code != http.StatusOK || !decodeQuery(t, body).Cached {
		t.Fatalf("repeat query not cached: %d %s", code, body)
	}
	if got := s.warm.tracked(); got != 1 {
		t.Fatalf("tracked shapes = %d, want 1", got)
	}

	code, body, _ = do(t, "POST", ts.URL+"/graphs/prot/apply",
		[]byte(`{"updates":[{"u":2,"v":3,"p":0.9}]}`))
	if code != http.StatusOK {
		t.Fatalf("apply: %d %s", code, body)
	}
	var ar applyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}

	// The warm pass runs in the background; wait for it to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := s.warmStatsSnapshot()
		if ws.Completed >= 1 && ws.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warming never completed: %+v", ws)
		}
		time.Sleep(time.Millisecond)
	}
	ws := s.warmStatsSnapshot()
	if ws.Scheduled != 1 || ws.Completed != 1 || ws.Failed != 0 {
		t.Fatalf("warm stats: %+v", ws)
	}

	// The next query hits the warmed entry — fresh epoch, updated answer.
	code, body, _ = do(t, "GET", queryURL, nil)
	if code != http.StatusOK {
		t.Fatalf("post-apply query: %d %s", code, body)
	}
	qr := decodeQuery(t, body)
	if !qr.Cached {
		t.Fatalf("post-apply query not served from warmed cache: %+v", qr)
	}
	if qr.Epoch != ar.Epoch {
		t.Fatalf("warmed entry epoch = %d, want %d", qr.Epoch, ar.Epoch)
	}
	if !strings.Contains(string(qr.Results), `"vertices":[2,3]`) {
		t.Fatalf("warmed results missing clique {2,3}: %s", qr.Results)
	}

	// Deleting the graph purges its warm shapes.
	if code, body, _ = do(t, "DELETE", ts.URL+"/graphs/prot", nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if got := s.warm.tracked(); got != 0 {
		t.Fatalf("tracked shapes after delete = %d, want 0", got)
	}
}
