package uncertain

import (
	"fmt"
	"math"
	"strings"
)

// Stats summarizes structural and probabilistic properties of an uncertain
// graph; cmd/experiments prints these rows for the Table 1 reproduction.
type Stats struct {
	Vertices      int
	Edges         int
	MinDegree     int
	MaxDegree     int
	AvgDegree     float64
	MinProb       float64
	MaxProb       float64
	MeanProb      float64
	ExpectedM     float64 // expected number of edges in a sampled world: Σ p(e)
	IsolatedVerts int
}

// ComputeStats scans the graph once and returns its summary.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		MinProb:  math.Inf(1),
		MaxProb:  math.Inf(-1),
	}
	if s.Vertices == 0 {
		s.MinProb, s.MaxProb = 0, 0
		return s
	}
	s.MinDegree = math.MaxInt
	totalDeg := 0
	for u := 0; u < g.NumVertices(); u++ {
		d := g.Degree(u)
		totalDeg += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.IsolatedVerts++
		}
	}
	s.AvgDegree = float64(totalDeg) / float64(s.Vertices)
	sum := 0.0
	for _, e := range g.Edges() {
		if e.P < s.MinProb {
			s.MinProb = e.P
		}
		if e.P > s.MaxProb {
			s.MaxProb = e.P
		}
		sum += e.P
	}
	if s.Edges == 0 {
		s.MinProb, s.MaxProb = 0, 0
	} else {
		s.MeanProb = sum / float64(s.Edges)
	}
	s.ExpectedM = sum
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d deg[min=%d avg=%.2f max=%d] p[min=%.3f mean=%.3f max=%.3f] E[m']=%.1f",
		s.Vertices, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.MinProb, s.MeanProb, s.MaxProb, s.ExpectedM)
	if s.IsolatedVerts > 0 {
		fmt.Fprintf(&b, " isolated=%d", s.IsolatedVerts)
	}
	return b.String()
}

// ProbHistogram bins edge probabilities into k equal-width buckets over
// (0, 1] and returns the counts. Used by dataset synthesizers' tests to
// check that generated confidence distributions have the intended shape.
func ProbHistogram(g *Graph, k int) []int {
	if k <= 0 {
		return nil
	}
	h := make([]int, k)
	for _, e := range g.Edges() {
		i := int(e.P * float64(k))
		if i >= k {
			i = k - 1
		}
		h[i]++
	}
	return h
}
