package mule_test

import (
	"context"
	"errors"
	"fmt"

	mule "github.com/uncertain-graphs/mule"
)

// ExampleNewQuery mirrors the package quick start: prepare a query and
// enumerate every α-maximal clique through a visitor.
func ExampleNewQuery() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(0, 2, 0.8)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(2, 3, 0.5)
	g := b.Build()

	q, err := mule.NewQuery(g, 0.5)
	if err != nil {
		panic(err)
	}
	_, _ = q.Run(context.Background(), func(clique []int, prob float64) bool {
		fmt.Printf("%v %.3f\n", clique, prob)
		return true
	})
	// Output:
	// [0 1 2] 0.648
	// [2 3] 0.500
}

// ExampleQuery_cliques streams the cliques with Go 1.23 range-over-func:
// each iteration yields one Clique (caller-owned, unlike the reused visitor
// slice), and a break simply stops the underlying search.
func ExampleQuery_cliques() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(0, 2, 0.8)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(2, 3, 0.5)
	g := b.Build()

	q, _ := mule.NewQuery(g, 0.5)
	for c, err := range q.Cliques(context.Background()) {
		if err != nil {
			fmt.Println("aborted:", err)
			return
		}
		fmt.Printf("%v %.3f\n", c.Vertices, c.Prob)
	}
	// Output:
	// [0 1 2] 0.648
	// [2 3] 0.500
}

// ExampleQuery_timeout bounds an enumeration with a context deadline. An
// expired context aborts the run — serial or parallel — within one poll
// interval; the error wraps context.DeadlineExceeded and the stats record
// how far the search got.
func ExampleQuery_timeout() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(0, 2, 0.9)
	g := b.Build()

	q, _ := mule.NewQuery(g, 0.5)
	ctx, cancel := context.WithTimeout(context.Background(), 0) // already expired
	defer cancel()
	stats, err := q.Run(ctx, nil)
	fmt.Println(errors.Is(err, context.DeadlineExceeded), stats.Status)
	// Output:
	// true deadline
}

// ExampleQuery_parallel runs a query on the work-stealing engine. Workers
// emit cliques in a scheduling-dependent order, so the example materializes
// with Collect, which returns canonical order; the set is identical to a
// serial run.
func ExampleQuery_parallel() {
	b := mule.NewBuilder(6)
	// Two overlapping triangles sharing vertex 2, plus a pendant edge.
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(0, 2, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(2, 3, 0.8)
	_ = b.AddEdge(2, 4, 0.8)
	_ = b.AddEdge(3, 4, 0.8)
	_ = b.AddEdge(4, 5, 0.7)
	g := b.Build()

	q, _ := mule.NewQuery(g, 0.5, mule.WithWorkers(4))
	cliques, _ := q.Collect(context.Background())
	for _, c := range cliques {
		fmt.Println(c.Vertices)
	}
	// Output:
	// [0 1 2]
	// [2 3 4]
	// [4 5]
}

// ExampleQuery_topK selects the k most probable α-maximal cliques without
// materializing the full output.
func ExampleQuery_topK() {
	b := mule.NewBuilder(5)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(0, 2, 0.8)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(2, 3, 0.6)
	_ = b.AddEdge(3, 4, 0.95)
	g := b.Build()

	q, _ := mule.NewQuery(g, 0.5)
	top, _ := q.TopK(context.Background(), 2, mule.ByProb)
	for _, sc := range top {
		fmt.Printf("%v %.3f\n", sc.Vertices, sc.Prob)
	}
	// Output:
	// [3 4] 0.950
	// [0 1 2] 0.648
}

// ExampleEnumerate shows the original callback entry point, which survives
// as a deprecated thin wrapper over NewQuery with identical behavior.
func ExampleEnumerate() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(0, 2, 0.8)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(2, 3, 0.5)
	g := b.Build()

	_, _ = mule.Enumerate(g, 0.5, func(clique []int, prob float64) bool {
		fmt.Printf("%v %.3f\n", clique, prob)
		return true
	})
	// Output:
	// [0 1 2] 0.648
	// [2 3] 0.500
}

// ExampleNewBicliqueQuery_stream streams the α-maximal bicliques of an
// uncertain bipartite graph with the same range-over-func contract as
// Query.Cliques: results arrive as the search finds them, a non-nil error
// ends the stream with the abort cause, and breaking the loop stops the
// engine with nothing leaked.
func ExampleNewBicliqueQuery_stream() {
	b := mule.NewBipartiteBuilder(3, 3)
	// A strong 2×2 user-product block plus one weak pendant edge.
	_ = b.AddEdge(0, 0, 0.9)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 0, 0.9)
	_ = b.AddEdge(1, 1, 0.9)
	_ = b.AddEdge(2, 2, 0.5)
	g := b.Build()

	q, err := mule.NewBicliqueQuery(g, 0.6)
	if err != nil {
		panic(err)
	}
	for bc, err := range q.Stream(context.Background()) {
		if err != nil {
			fmt.Println("aborted:", err)
			return
		}
		fmt.Printf("%v x %v %.4f\n", bc.Left, bc.Right, bc.Prob)
	}
	// Output:
	// [0 1] x [0 1] 0.6561
}

// ExampleNewTrussQuery computes the (k,η)-truss of an uncertain graph: the
// maximal subgraph whose every edge is supported by at least k−2 triangles
// with probability ≥ η.
func ExampleNewTrussQuery() {
	b := mule.NewBuilder(5)
	// A certain triangle plus a pendant path.
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(2, 3, 0.6)
	_ = b.AddEdge(3, 4, 0.4)
	g := b.Build()

	q, err := mule.NewTrussQuery(g, 0.9)
	if err != nil {
		panic(err)
	}
	tr, err := q.Truss(context.Background(), 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("edges in the (3,0.9)-truss:", tr.NumEdges())
	// Output:
	// edges in the (3,0.9)-truss: 3
}

// ExampleMaintainer_Apply applies a batch of edge updates atomically per
// update and receives the net clique-set diff: a clique that appears and
// then disappears within the batch cancels out.
func ExampleMaintainer_Apply() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	g := b.Build()

	m, _ := mule.NewMaintainerContext(context.Background(), g, 0.5)
	fmt.Println("cliques:", m.NumCliques())

	diff, stats, err := m.Apply(context.Background(), []mule.EdgeUpdate{
		{U: 0, V: 2, P: 0.9},       // close the triangle
		{U: 2, V: 3, P: 0.8},       // attach a pendant
		{U: 2, V: 3, Remove: true}, // …and detach it again (cancels out)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("added:", len(diff.Added), "removed:", len(diff.Removed), "updates:", stats.Updates)
	fmt.Println("cliques:", m.NumCliques())
	// Output:
	// cliques: 3
	// added: 1 removed: 2 updates: 3
	// cliques: 2
}

// ExampleNewMaintainer keeps the α-maximal clique set in sync across edge
// updates, receiving an exact diff per change. NewMaintainerContext bounds
// the seeding enumeration with a context.
func ExampleNewMaintainer() {
	b := mule.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	g := b.Build()

	m, _ := mule.NewMaintainerContext(context.Background(), g, 0.5)
	fmt.Println("cliques:", m.NumCliques())

	// Closing the triangle replaces {0,1} and {1,2} with {0,1,2}.
	diff, _ := m.SetEdge(0, 2, 0.9)
	fmt.Println("added:", len(diff.Added), "removed:", len(diff.Removed))
	fmt.Println("cliques:", m.NumCliques())
	// Output:
	// cliques: 3
	// added: 1 removed: 2
	// cliques: 2
}
