// Package core implements MULE (Maximal Uncertain cLique Enumeration), the
// primary contribution of "Mining Maximal Cliques from an Uncertain Graph"
// (Mukherjee, Xu, Tirthapura; ICDE 2015): depth-first enumeration of all
// α-maximal cliques of an uncertain graph with
//
//   - incremental clique-probability maintenance: each candidate vertex u
//     carries the multiplier r such that clq(C ∪ {u}) = clq(C)·r, so
//     extending a clique costs O(1) probability work instead of Θ(|C|)
//     (Algorithm 3/4, GenerateI/GenerateX);
//   - O(1) maximality detection: a clique is emitted exactly when both the
//     forward candidate set I and the backward witness set X are empty
//     (Algorithm 2, line 1);
//   - ascending-vertex-ID search so every vertex set is visited at most once.
//
// The package also implements LARGE-MULE (Algorithm 5/6) for enumerating
// only α-maximal cliques with at least MinSize vertices, with the
// Modani–Dey shared-neighborhood prefilter.
//
// Two parallel engines are available when Config.Workers > 1, both running
// on the shared process-wide work-stealing executor (internal/exec) — no
// run ever spawns its own goroutines. The default work-stealing engine
// (worksteal.go) turns the recursion into explicit, splittable search
// frames: pool workers run subtrees depth-first from shared deques and
// steal half of the oldest frames from a victim when they drain, so a
// single heavy subtree — the norm on skewed power-law inputs — is
// subdivided on demand instead of pinning one worker, and frames of many
// concurrent queries interleave on one pool without mixing their stats.
// Workers is the run's parallelism cap on that pool, not a goroutine
// count. The legacy top-level fan-out (parallel.go) that only distributes
// the provably independent root branches is kept as ParallelTopLevel for
// comparison benchmarks. Per-run scratch memory (entry arenas, bitset
// scatter masks, bit-row mirrors) comes from size-classed pools (pools.go)
// checked out per query-slot pair and returned on every terminal path.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"github.com/uncertain-graphs/mule/internal/exec"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Visitor receives each α-maximal clique as a vertex slice sorted ascending,
// together with its clique probability. The slice is reused between calls;
// copy it to retain it. Returning false stops the enumeration.
type Visitor func(clique []int, prob float64) bool

// Ordering selects how vertices are renumbered before the search. MULE's
// search tree visits vertex sets in ascending-ID order, so the numbering
// changes the tree shape (but never the output set).
type Ordering int

const (
	// OrderNatural keeps the input numbering (the paper's setting).
	OrderNatural Ordering = iota
	// OrderDegree numbers vertices by ascending support degree.
	OrderDegree
	// OrderDegeneracy numbers vertices in degeneracy (core) order of the
	// support graph, the ordering used by Eppstein–Strash for deterministic
	// clique enumeration.
	OrderDegeneracy
	// OrderRandom applies a seeded random permutation (ablation baseline).
	OrderRandom
)

// String names the ordering for logs and benchmark labels.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderDegree:
		return "degree"
	case OrderDegeneracy:
		return "degeneracy"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// IntersectMode selects how the kernel's candidate/witness intersections
// are computed. The default is density-adaptive; the forced modes exist for
// equivalence tests and ablation benchmarks — the output set is identical
// under every mode.
type IntersectMode int

const (
	// IntersectAdaptive (the default) chooses per node: word-parallel
	// bitset AND when the candidate set is dense relative to the remaining
	// vertex range and the row has a bit mirror, merge/gallop otherwise.
	IntersectAdaptive IntersectMode = iota
	// IntersectSorted disables the bitset path entirely (no bit rows are
	// built): every intersection runs on the sorted merge/gallop kernels.
	IntersectSorted
	// IntersectBitset forces the bitset path wherever a bit row can exist
	// (every row of a graph within the bitsetMaxVertices gate is mirrored);
	// intersections on larger graphs fall back to the sorted kernels.
	IntersectBitset
)

// String names the intersect mode for logs and benchmark labels.
func (m IntersectMode) String() string {
	switch m {
	case IntersectAdaptive:
		return "adaptive"
	case IntersectSorted:
		return "sorted"
	case IntersectBitset:
		return "bitset"
	default:
		return fmt.Sprintf("IntersectMode(%d)", int(m))
	}
}

// ParallelMode selects the engine used when Config.Workers > 1.
type ParallelMode int

const (
	// ParallelWorkStealing (the default) executes the search over
	// per-worker deques of splittable frames with work stealing. It keeps
	// all workers busy even when one subtree dominates the search tree.
	ParallelWorkStealing ParallelMode = iota
	// ParallelTopLevel is the legacy driver that only fans out the
	// independent top-level branches; on skewed inputs most workers idle
	// while one owns the heavy subtree. Kept for comparison benchmarks.
	ParallelTopLevel
)

// String names the parallel engine for logs and benchmark labels.
func (m ParallelMode) String() string {
	switch m {
	case ParallelWorkStealing:
		return "worksteal"
	case ParallelTopLevel:
		return "toplevel"
	default:
		return fmt.Sprintf("ParallelMode(%d)", int(m))
	}
}

// Config tunes an enumeration run. The zero value reproduces the paper's
// plain MULE: all α-maximal cliques, natural ordering, single-threaded.
type Config struct {
	// MinSize, when ≥ 2, switches to LARGE-MULE: only α-maximal cliques
	// with at least MinSize vertices are enumerated, using the
	// shared-neighborhood prefilter and the |C|+|I| < t search-space cut.
	MinSize int
	// Ordering renumbers vertices before the search; results are always
	// reported in original IDs.
	Ordering Ordering
	// Seed feeds OrderRandom.
	Seed int64
	// Workers > 1 enables a parallel engine: the run is submitted to the
	// shared executor with Workers as its parallelism cap — up to that many
	// pool slots execute the run's frames at once. It is not a goroutine
	// count; the pool is sized once per process (or per Exec).
	Workers int
	// Exec selects the executor parallel runs are submitted to; nil means
	// the process-wide shared pool (exec.Default()). Serial runs (Workers
	// ≤ 1) never touch an executor.
	Exec *exec.Executor
	// Parallel selects the engine used when Workers > 1: work stealing
	// (the default) or the legacy top-level fan-out.
	Parallel ParallelMode
	// StealGranularity is the minimum number of candidate vertices a
	// subtree must have before the work-stealing engine publishes it as a
	// stealable frame; smaller subtrees run inline with the serial
	// recursion. Lower values balance load at finer grain but pay more
	// synchronization; 0 selects the default (8). Ignored unless the
	// work-stealing engine runs.
	StealGranularity int
	// Budget, when > 0, bounds the number of search-tree nodes the run may
	// expand before aborting with ErrBudget. The budget is charged in
	// batches of abortCheckInterval nodes per worker, so a parallel run can
	// overshoot by up to Workers×interval nodes.
	Budget int64
	// Intersect selects the intersection kernel policy: density-adaptive
	// (the default), or forced sorted/bitset for tests and ablations. The
	// enumerated clique set is identical under every mode.
	Intersect IntersectMode
	// StallTimeout, when > 0, arms the stall watchdog: a run whose progress
	// beacon (stamped by every poll and every emission) does not advance for
	// this long is aborted with an error wrapping ErrStalled and
	// Stats.Status == StatusStalled. Distinct from a context deadline, which
	// fires on wall clock regardless of progress.
	StallTimeout time.Duration
	// SkipPrune disables the α-edge-pruning preprocessing step
	// (Observation 3). Only useful for ablation benchmarks; the output is
	// identical either way.
	SkipPrune bool
	// CheckInvariants verifies the Lemma 6/7 invariants of every recursive
	// call against from-scratch recomputation. Massively slow; test-only.
	CheckInvariants bool
}

// Stats reports the work performed by an enumeration run.
type Stats struct {
	Status        RunStatus // how the run ended (complete, stopped, canceled, …)
	Calls         int64     // Enum-Uncertain-MC invocations (search-tree nodes)
	Emitted       int64     // α-maximal cliques reported
	MaxDepth      int       // deepest recursion (= largest working clique)
	MaxCliqueSize int       // largest emitted clique
	CandidateOps  int64     // candidate entries produced across all GenerateI calls
	WitnessOps    int64     // witness entries produced across all GenerateX calls
	BitsetOps     int64     // intersections routed to the word-parallel bitset kernel
	PrunedEdges   int       // edges removed by α-pruning (Observation 3)
	SizePruned    int64     // LARGE-MULE: branches cut by |C'|+|I'| < MinSize
	FilterRemoved int       // LARGE-MULE: edges removed by shared-neighborhood filtering
	Steals        int64     // work-stealing: successful steal operations
	Splits        int64     // work-stealing: lone frames split at the iteration level
}

// Enumerate runs plain MULE (Algorithm 1): it enumerates every α-maximal
// clique of g, invoking visit for each. visit may be nil to count only.
// alpha must lie in (0, 1]; at alpha = 1 the semantics coincide with
// deterministic maximal clique enumeration over the p(e)=1 edges.
func Enumerate(g *uncertain.Graph, alpha float64, visit Visitor) (Stats, error) {
	return EnumerateContext(context.Background(), g, alpha, visit, Config{})
}

// EnumerateLarge runs LARGE-MULE (Algorithm 5): it enumerates every
// α-maximal clique with at least minSize vertices.
func EnumerateLarge(g *uncertain.Graph, alpha float64, minSize int, visit Visitor) (Stats, error) {
	return EnumerateContext(context.Background(), g, alpha, visit, Config{MinSize: minSize})
}

// EnumerateWith runs MULE with explicit configuration and no cancellation.
func EnumerateWith(g *uncertain.Graph, alpha float64, visit Visitor, cfg Config) (Stats, error) {
	return EnumerateContext(context.Background(), g, alpha, visit, cfg)
}

// Validate checks the (graph, alpha, config) triple that every enumeration
// entry point accepts, returning the first violation wrapped around the
// matching sentinel (ErrNilGraph, ErrAlphaRange, ErrConfig).
func Validate(g *uncertain.Graph, alpha float64, cfg Config) error {
	if g == nil {
		return fmt.Errorf("core: %w", ErrNilGraph)
	}
	if !(alpha > 0 && alpha <= 1) { // also rejects NaN
		return fmt.Errorf("core: alpha %v: %w", alpha, ErrAlphaRange)
	}
	if cfg.MinSize < 0 {
		return fmt.Errorf("core: negative MinSize %d: %w", cfg.MinSize, ErrConfig)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d: %w", cfg.Workers, ErrConfig)
	}
	if cfg.StealGranularity < 0 {
		return fmt.Errorf("core: negative StealGranularity %d: %w", cfg.StealGranularity, ErrConfig)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("core: negative Budget %d: %w", cfg.Budget, ErrConfig)
	}
	if cfg.StallTimeout < 0 {
		return fmt.Errorf("core: negative StallTimeout %v: %w", cfg.StallTimeout, ErrConfig)
	}
	if cfg.Parallel != ParallelWorkStealing && cfg.Parallel != ParallelTopLevel {
		return fmt.Errorf("core: unknown parallel mode %d: %w", int(cfg.Parallel), ErrConfig)
	}
	if cfg.Intersect != IntersectAdaptive && cfg.Intersect != IntersectSorted &&
		cfg.Intersect != IntersectBitset {
		return fmt.Errorf("core: unknown intersect mode %d: %w", int(cfg.Intersect), ErrConfig)
	}
	if cfg.Ordering != OrderNatural && cfg.Ordering != OrderDegree &&
		cfg.Ordering != OrderDegeneracy && cfg.Ordering != OrderRandom {
		return fmt.Errorf("core: unknown ordering %d: %w", int(cfg.Ordering), ErrConfig)
	}
	return nil
}

// EnumerateContext runs MULE with explicit configuration under ctx. The
// engines poll ctx every abortCheckInterval search nodes; on cancellation or
// deadline expiry every worker unwinds within one interval and the call
// returns an error wrapping context.Canceled or context.DeadlineExceeded,
// with Stats.Status recording the terminal state and the stats counters
// covering the work done up to the abort. A visitor returning false is a
// successful early stop (Stats.Status == StatusStopped, nil error).
func EnumerateContext(ctx context.Context, g *uncertain.Graph, alpha float64, visit Visitor, cfg Config) (Stats, error) {
	if err := Validate(g, alpha, cfg); err != nil {
		return Stats{}, err
	}
	ctl := NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		var stats Stats
		return stats, ctl.finish(&stats, false)
	}

	work := g
	var stats Stats
	if !cfg.SkipPrune {
		before := work.NumEdges()
		work = work.PruneAlpha(alpha)
		stats.PrunedEdges = before - work.NumEdges()
	}
	if cfg.MinSize >= 2 {
		before := work.NumEdges()
		filtered, ferr := sharedNeighborhoodFilter(work, cfg.MinSize)
		if ferr != nil {
			return stats, ferr
		}
		work = filtered
		stats.FilterRemoved = before - work.NumEdges()
	}

	// Renumber vertices; newToOld translates results back. An ordering
	// that resolves to the identity permutation — always for OrderNatural,
	// coincidentally for the others (e.g. degree order on an input already
	// numbered by degree) — skips both the relabel and the per-emission
	// sort, since original IDs then come out ascending by construction.
	newToOld, err := buildOrder(work, cfg.Ordering, cfg.Seed)
	if err != nil {
		return stats, err
	}
	identity := isIdentityOrder(newToOld)
	if !identity {
		relabeled, _, rerr := work.Relabel(newToOld)
		if rerr != nil {
			return stats, rerr
		}
		work = relabeled
	}

	// The bit-row index mirrors dense adjacency rows of the final working
	// graph (post-prune, post-filter, post-relabel) for the word-parallel
	// intersection kernel; nil when the graph or policy rules it out. Its
	// row storage is pooled and returned when the run ends.
	bits := buildBitAdjacency(work, cfg.Intersect)
	defer bits.release()

	e := &enumerator{
		g:             work,
		alpha:         alpha,
		minSize:       cfg.MinSize,
		visit:         visit,
		newToOld:      newToOld,
		identity:      identity,
		checkInv:      cfg.CheckInvariants,
		intersectMode: cfg.Intersect,
		bits:          bits,
		mask:          bits.checkoutMask(),
		stats:         &stats,
		ctl:           ctl,
		tick:          abortCheckInterval,
		arena:         checkoutArena(work.NumVertices()),
		emitBuf:       make([]int, 0, 64),
		cbuf:          make([]int32, 0, 128),
	}
	// The deferred release covers every exit — including cancel, budget,
	// limit, panic, and stall unwinds, which return through finish like a
	// completed run.
	defer e.releasePooled()
	defer ctl.ArmStall(cfg.StallTimeout)()
	// Containment boundary for the serial engine and the submitting
	// goroutine of the parallel ones (pool workers have their own boundary
	// in the executor): a panic anywhere below terminates this run with
	// StatusPanicked instead of unwinding the caller — the deferred pool
	// releases above still run, so conservation holds.
	func() {
		defer func() {
			if v := recover(); v != nil {
				ctl.Abort(NewPanicError(v, debug.Stack()))
			}
		}()
		switch {
		case cfg.Workers > 1 && cfg.Parallel == ParallelTopLevel:
			e.runTopLevel(executorFor(cfg), cfg.Workers)
		case cfg.Workers > 1:
			e.runWorkStealing(executorFor(cfg), cfg.Workers, cfg.StealGranularity)
		default:
			e.runSerial()
		}
	}()
	return stats, ctl.finish(&stats, e.stopped)
}

// executorFor resolves the executor a parallel run submits to: an explicit
// Config.Exec, or the process-wide shared pool.
func executorFor(cfg Config) *exec.Executor {
	if cfg.Exec != nil {
		return cfg.Exec
	}
	return exec.Default()
}

// Collect runs Enumerate and returns all cliques in canonical order (each
// sorted ascending, collection sorted lexicographically), with probabilities
// parallel to the cliques.
func Collect(g *uncertain.Graph, alpha float64) ([][]int, error) {
	cliques, _, err := CollectWith(g, alpha, Config{})
	return cliques, err
}

// CollectWith is Collect with explicit configuration. It returns the cliques
// in canonical order and the run's stats.
func CollectWith(g *uncertain.Graph, alpha float64, cfg Config) ([][]int, Stats, error) {
	return CollectContext(context.Background(), g, alpha, cfg)
}

// CollectContext is CollectWith under a context.
func CollectContext(ctx context.Context, g *uncertain.Graph, alpha float64, cfg Config) ([][]int, Stats, error) {
	var out [][]int
	stats, err := EnumerateContext(ctx, g, alpha, func(c []int, _ float64) bool {
		cp := make([]int, len(c))
		copy(cp, c)
		out = append(out, cp)
		return true
	}, cfg)
	if err != nil {
		return nil, stats, err
	}
	canonicalize(out)
	return out, stats, nil
}

// Count returns the number of α-maximal cliques without materializing them.
func Count(g *uncertain.Graph, alpha float64) (int64, error) {
	stats, err := Enumerate(g, alpha, nil)
	return stats.Emitted, err
}

// CountContext is Count under a context and explicit configuration.
func CountContext(ctx context.Context, g *uncertain.Graph, alpha float64, cfg Config) (int64, error) {
	stats, err := EnumerateContext(ctx, g, alpha, nil, cfg)
	return stats.Emitted, err
}

func canonicalize(cliques [][]int) {
	for _, c := range cliques {
		sortInts(c)
	}
	sortSliceOfSlices(cliques)
}
