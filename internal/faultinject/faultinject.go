// Package faultinject provides deterministic, seedable fault injection for
// the executor and the mining engines — the instrument behind the fault-storm
// soak tests. Injection sites are compiled into the production binary (no
// build tags: the tested code is the shipped code), but the disarmed fast
// path is one atomic pointer load and a nil check, so leaving the hooks in
// the hot paths costs nothing measurable.
//
// A test arms a Plan (per-site firing rates derived from one seed) with
// Activate and restores the previous plan — normally nil — when done. Firing
// is deterministic for a fixed seed and invocation interleaving: each site
// keeps an atomic invocation counter, and an invocation fires iff a hash mix
// of the seed, the site, and the counter value lands in the configured rate
// window. Concurrency moves which goroutine draws which counter value, but
// the multiset of fired invocations per site is a pure function of the seed
// and the counts, which is what the storm's accounting assertions need.
package faultinject

import (
	"sync/atomic"
	"time"
)

// Site names one injection point threaded through exec/core.
type Site int

const (
	// PanicFrame panics at the top of a work-stealing frame execution —
	// a stand-in for a latent kernel bug on a pool worker.
	PanicFrame Site = iota
	// PanicVisitor panics inside the clique emission path, immediately
	// before the user visitor would run — a misbehaving callback.
	PanicVisitor
	// DelaySteal sleeps before a steal attempt locks the victim's deque,
	// widening steal/abort race windows.
	DelaySteal
	// FailCheckout panics at a worker-clone pool checkout — a resource
	// acquisition failing mid-run, before anything was checked out.
	FailCheckout
	// SlowPoll sleeps inside RunControl.Poll, starving the progress beacon
	// (the deterministic stall-watchdog trigger).
	SlowPoll

	numSites
)

// String names the site for test diagnostics.
func (s Site) String() string {
	switch s {
	case PanicFrame:
		return "panic-frame"
	case PanicVisitor:
		return "panic-visitor"
	case DelaySteal:
		return "delay-steal"
	case FailCheckout:
		return "fail-checkout"
	case SlowPoll:
		return "slow-poll"
	default:
		return "unknown-site"
	}
}

// InjectedPanic is the distinctive value injected panics carry, so tests can
// tell an injected fault from a genuine bug escaping containment.
type InjectedPanic struct {
	Site Site
}

func (p InjectedPanic) Error() string { return "faultinject: injected panic at " + p.Site.String() }

// site is one site's armed state inside a Plan.
type site struct {
	every int64         // fire every n-th hash window; 0 = disarmed
	delay time.Duration // for the delay sites
	calls atomic.Int64  // invocations seen
	fired atomic.Int64  // invocations that fired
}

// Plan is one armed configuration: a seed plus per-site rates. Build it with
// NewPlan, arm sites with Arm/ArmDelay, install it with Activate.
type Plan struct {
	seed  uint64
	sites [numSites]site
}

// NewPlan creates a disarmed plan for the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: uint64(seed)}
}

// Arm makes s fire roughly once per every invocations (deterministically in
// the hash sense described in the package comment). every < 1 disarms.
func (p *Plan) Arm(s Site, every int) *Plan {
	if every < 1 {
		every = 0
	}
	p.sites[s].every = int64(every)
	return p
}

// ArmDelay arms a delay site (DelaySteal, SlowPoll) with the sleep applied
// on each firing. Panic sites ignore the delay.
func (p *Plan) ArmDelay(s Site, every int, d time.Duration) *Plan {
	p.Arm(s, every)
	p.sites[s].delay = d
	return p
}

// Fired reports how many invocations of s fired under this plan.
func (p *Plan) Fired(s Site) int64 { return p.sites[s].fired.Load() }

// Calls reports how many invocations of s were observed under this plan.
func (p *Plan) Calls(s Site) int64 { return p.sites[s].calls.Load() }

// active is the process-wide armed plan; nil (the default) disarms every
// site, reducing Fire to one atomic load.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide plan and returns a restore
// function reinstating the previous one. Tests must not run concurrently
// with other faultinject-using tests (the plan is global).
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Swap(prev) }
}

// mix is a splitmix64-style finalizer: a cheap, well-distributed hash of the
// (seed, site, counter) triple that decides whether an invocation fires.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fire is the injection hook compiled into the hot paths. Disarmed (the
// production state) it is one atomic load and a nil check. Armed, it decides
// deterministically whether this invocation fires: panic sites panic with an
// InjectedPanic, delay sites sleep their configured duration.
func Fire(s Site) {
	p := active.Load()
	if p == nil {
		return
	}
	st := &p.sites[s]
	every := st.every
	if every == 0 {
		return
	}
	n := st.calls.Add(1)
	if mix(p.seed^uint64(s)<<32^uint64(n))%uint64(every) != 0 {
		return
	}
	st.fired.Add(1)
	switch s {
	case DelaySteal, SlowPoll:
		if st.delay > 0 {
			time.Sleep(st.delay)
		}
	default:
		panic(InjectedPanic{Site: s})
	}
}
