package server

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	mule "github.com/uncertain-graphs/mule"
)

// maxWorkersParam bounds the per-query parallelism cap a client may request;
// the executor pool is sized at startup, so larger values buy nothing and
// only inflate per-run bookkeeping.
const maxWorkersParam = 256

// qparams is one query request, parsed and normalized. Two requests that
// mean the same question — whatever the textual spelling or parameter order
// of their URLs — parse to equal qparams and therefore equal cache keys;
// anything malformed, unknown, out of range, or inapplicable to the chosen
// miner is rejected at parse time with an error the handler maps to 400.
type qparams struct {
	miner   string  // cliques | bicliques | quasi | truss | core | densest | cluster
	alpha   float64 // cliques, bicliques
	gamma   float64 // quasi
	eta     float64 // truss, core
	minSize int     // cliques, quasi
	maxSize int     // quasi
	minL    int     // bicliques
	minR    int     // bicliques
	centers int     // cluster
	workers int     // cliques; results are worker-count-invariant

	limit   int64
	budget  int64
	timeout time.Duration
	tenant  string
	nocache bool

	shards     int  // component-sharded execution: WithShards value (0 = off)
	shardsAuto bool // shards=auto → WithAutoShard
}

// sharded reports whether the request asked for component-sharded execution.
func (p *qparams) sharded() bool { return p.shards > 0 || p.shardsAuto }

// paramScope names which keys each miner accepts beyond the common set.
var paramScope = map[string]map[string]bool{
	"cliques":   {"alpha": true, "minsize": true, "workers": true},
	"bicliques": {"alpha": true, "minl": true, "minr": true},
	"quasi":     {"gamma": true, "minsize": true, "maxsize": true},
	"truss":     {"eta": true},
	"core":      {"eta": true},
	"densest":   {},
	"cluster":   {"centers": true},
}

// commonParams are accepted by every miner.
var commonParams = map[string]bool{
	"miner": true, "limit": true, "budget": true, "timeout": true,
	"tenant": true, "nocache": true, "shards": true,
}

// parseQueryParams validates and normalizes a query-string into qparams.
// The contract is strict on purpose: repeated keys, unknown keys, and keys
// outside the chosen miner's scope are errors, so every accepted request has
// exactly one canonical form and the cache can never alias two different
// questions — or split one question across two keys.
func parseQueryParams(v url.Values) (*qparams, error) {
	single := func(key string) (string, bool, error) {
		vals, ok := v[key]
		if !ok {
			return "", false, nil
		}
		if len(vals) != 1 {
			return "", false, fmt.Errorf("parameter %q repeated %d times", key, len(vals))
		}
		return vals[0], true, nil
	}

	miner, ok, err := single("miner")
	if err != nil {
		return nil, err
	}
	if !ok || miner == "" {
		return nil, fmt.Errorf("missing required parameter %q (cliques|bicliques|quasi|truss|core|densest|cluster)", "miner")
	}
	scope, known := paramScope[miner]
	if !known {
		return nil, fmt.Errorf("unknown miner %q (want cliques|bicliques|quasi|truss|core|densest|cluster)", miner)
	}
	for key := range v {
		if !commonParams[key] && !scope[key] {
			return nil, fmt.Errorf("parameter %q does not apply to miner %q", key, miner)
		}
	}

	p := &qparams{miner: miner}
	parseFloat := func(key string, dst *float64) error {
		raw, ok, err := single(key)
		if err != nil || !ok {
			return err
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("parameter %q: %q is not a number", key, raw)
		}
		*dst = f
		return nil
	}
	parseInt := func(key string, dst *int, min, max int) error {
		raw, ok, err := single(key)
		if err != nil || !ok {
			return err
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			return fmt.Errorf("parameter %q: %q is not an integer", key, raw)
		}
		if n < min || n > max {
			return fmt.Errorf("parameter %q: %d outside [%d, %d]", key, n, min, max)
		}
		*dst = n
		return nil
	}
	parseInt64 := func(key string, dst *int64) error {
		raw, ok, err := single(key)
		if err != nil || !ok {
			return err
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("parameter %q: %q is not a non-negative integer", key, raw)
		}
		*dst = n
		return nil
	}

	for _, step := range []error{
		parseFloat("alpha", &p.alpha),
		parseFloat("gamma", &p.gamma),
		parseFloat("eta", &p.eta),
		parseInt("minsize", &p.minSize, 0, 1<<30),
		parseInt("maxsize", &p.maxSize, 0, 1<<30),
		parseInt("minl", &p.minL, 0, 1<<30),
		parseInt("minr", &p.minR, 0, 1<<30),
		parseInt("centers", &p.centers, 0, 1<<30),
		parseInt("workers", &p.workers, 0, maxWorkersParam),
		parseInt64("limit", &p.limit),
		parseInt64("budget", &p.budget),
	} {
		if step != nil {
			return nil, step
		}
	}
	if raw, ok, err := single("timeout"); err != nil {
		return nil, err
	} else if ok {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("parameter %q: %q is not a non-negative duration", "timeout", raw)
		}
		p.timeout = d
	}
	if raw, ok, err := single("tenant"); err != nil {
		return nil, err
	} else if ok {
		if raw == "" {
			return nil, fmt.Errorf("parameter %q must not be empty", "tenant")
		}
		p.tenant = raw
	}
	// shards: a positive count, "auto" (GOMAXPROCS at run time), or 0 /
	// absent for unsharded execution.
	if raw, ok, err := single("shards"); err != nil {
		return nil, err
	} else if ok {
		if raw == "auto" {
			p.shardsAuto = true
		} else {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("parameter %q: %q is not a non-negative integer or %q", "shards", raw, "auto")
			}
			p.shards = n
		}
	}
	if raw, ok, err := single("nocache"); err != nil {
		return nil, err
	} else if ok {
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %q is not a boolean", "nocache", raw)
		}
		p.nocache = b
	}

	// Required per-miner threshold: requiring it here (rather than
	// defaulting) keeps the canonical form unique and mirrors the library,
	// where NewQuasiQuery without WithGamma is an eager error.
	switch miner {
	case "cliques", "bicliques":
		if _, ok := v["alpha"]; !ok {
			return nil, fmt.Errorf("miner %q requires parameter %q", miner, "alpha")
		}
	case "quasi":
		if _, ok := v["gamma"]; !ok {
			return nil, fmt.Errorf("miner %q requires parameter %q", miner, "gamma")
		}
	case "truss", "core":
		if _, ok := v["eta"]; !ok {
			return nil, fmt.Errorf("miner %q requires parameter %q", miner, "eta")
		}
	case "cluster":
		if _, ok := v["centers"]; !ok {
			return nil, fmt.Errorf("miner %q requires parameter %q", miner, "centers")
		}
	}
	return p, nil
}

// cacheKey builds the canonical result-cache key: graph name and epoch plus
// exactly the fields that determine the result set. Budget, timeout, tenant,
// and workers are deliberately excluded — only complete (or limit-truncated)
// runs are cached, and for those the result is invariant under all four
// (the engines guarantee worker-count-identical output). A nocache request
// returns "" and bypasses the cache entirely.
func (p *qparams) cacheKey(graph string, epoch uint64) string {
	if p.nocache {
		return ""
	}
	ff := func(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }
	var b strings.Builder
	// The graph name is user-controlled: length-prefix it so a crafted name
	// cannot collide with another key's field encoding.
	fmt.Fprintf(&b, "%d:%s|e=%d|m=%s", len(graph), graph, epoch, p.miner)
	switch p.miner {
	case "cliques":
		fmt.Fprintf(&b, "|a=%s|ms=%d", ff(p.alpha), p.minSize)
	case "bicliques":
		fmt.Fprintf(&b, "|a=%s|ml=%d|mr=%d", ff(p.alpha), p.minL, p.minR)
	case "quasi":
		fmt.Fprintf(&b, "|g=%s|ms=%d|xs=%d", ff(p.gamma), p.minSize, p.maxSize)
	case "truss", "core":
		fmt.Fprintf(&b, "|h=%s", ff(p.eta))
	case "cluster":
		fmt.Fprintf(&b, "|k=%d", p.centers)
		// "densest" has no per-miner parameters: the graph and epoch alone
		// determine the candidate family.
	}
	fmt.Fprintf(&b, "|l=%d", p.limit)
	// The result set is shard-invariant, so sharded and unsharded runs share
	// cache entries — except under a limit, where the truncated prefix
	// follows the delivery order: engine order unsharded, component order
	// sharded. The component order is the same for every shard setting, so
	// one flag (not the shard count) splits the key space.
	if p.sharded() && p.limit > 0 {
		b.WriteString("|s=1")
	}
	return b.String()
}

// commonOptions assembles the option set shared by every miner. prog, when
// non-nil and the request is sharded, receives per-component progress.
func (p *qparams) commonOptions(ex *mule.Executor, prog func(done, total int)) []mule.Option {
	opts := []mule.Option{mule.WithExecutor(ex)}
	if p.tenant != "" {
		opts = append(opts, mule.WithTenant(p.tenant))
	}
	if p.limit > 0 {
		opts = append(opts, mule.WithLimit(p.limit))
	}
	if p.budget > 0 {
		opts = append(opts, mule.WithBudget(p.budget))
	}
	if p.shardsAuto {
		opts = append(opts, mule.WithAutoShard())
	} else if p.shards > 0 {
		opts = append(opts, mule.WithShards(p.shards))
	}
	if prog != nil && p.sharded() {
		opts = append(opts, mule.WithShardProgress(prog))
	}
	return opts
}

// runOutcome is what a runner produces: the accumulated results (in
// canonical order, JSON-marshalable), the terminal status, the miner's
// stats struct, and the run error, if any. On a budget abort the results
// hold the partial prefix delivered before the abort.
type runOutcome struct {
	results any
	count   int64
	status  mule.RunStatus
	stats   any
	err     error
}

// runner executes one prepared query against one snapshot.
type runner func(ctx context.Context) runOutcome

// cliqueJSON & friends are the wire shapes of the seven result families.
type cliqueJSON struct {
	Vertices []int   `json:"vertices"`
	Prob     float64 `json:"prob"`
}

type bicliqueJSON struct {
	Left  []int   `json:"left"`
	Right []int   `json:"right"`
	Prob  float64 `json:"prob"`
}

type edgeTrussJSON struct {
	U     int `json:"u"`
	V     int `json:"v"`
	Truss int `json:"truss"`
}

type vertexCoreJSON struct {
	V    int `json:"v"`
	Core int `json:"core"`
}

type denseSubgraphJSON struct {
	Vertices []int   `json:"vertices"`
	Density  float64 `json:"density"`
	Prob     float64 `json:"prob"`
}

type clusterJSON struct {
	Center  int     `json:"center"`
	Members []int   `json:"members"`
	Prob    float64 `json:"prob"`
}

// newRunner builds the prepared query for p against snap on ex, validating
// eagerly — a bad threshold, an out-of-scope option, or a miner/graph-kind
// mismatch surfaces here, before the cache is consulted or any work runs.
// prog, when non-nil, receives per-component progress on sharded requests.
func (p *qparams) newRunner(snap *Snapshot, ex *mule.Executor, prog func(done, total int)) (runner, error) {
	if p.miner == "bicliques" {
		if snap.Bipartite == nil {
			return nil, fmt.Errorf("miner %q needs a bipartite graph: %w", p.miner, mule.ErrConfig)
		}
	} else if snap.Graph == nil {
		return nil, fmt.Errorf("miner %q needs a regular graph, not bipartite: %w", p.miner, mule.ErrConfig)
	}

	opts := p.commonOptions(ex, prog)
	switch p.miner {
	case "cliques":
		if p.minSize > 0 {
			opts = append(opts, mule.WithMinSize(p.minSize))
		}
		if p.workers > 1 {
			opts = append(opts, mule.WithWorkers(p.workers))
		}
		q, err := mule.NewQuery(snap.Graph, p.alpha, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			out := []cliqueJSON{}
			stats, err := q.Run(ctx, func(c []int, prob float64) bool {
				out = append(out, cliqueJSON{Vertices: append([]int(nil), c...), Prob: prob})
				return true
			})
			sort.Slice(out, func(i, j int) bool { return lexLess(out[i].Vertices, out[j].Vertices) })
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "bicliques":
		if p.minL > 1 || p.minR > 1 {
			opts = append(opts, mule.WithSides(p.minL, p.minR))
		}
		q, err := mule.NewBicliqueQuery(snap.Bipartite, p.alpha, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			out := []bicliqueJSON{}
			stats, err := q.Run(ctx, func(l, r []int, prob float64) bool {
				out = append(out, bicliqueJSON{
					Left:  append([]int(nil), l...),
					Right: append([]int(nil), r...),
					Prob:  prob,
				})
				return true
			})
			sort.Slice(out, func(i, j int) bool {
				if !slicesEqual(out[i].Left, out[j].Left) {
					return lexLess(out[i].Left, out[j].Left)
				}
				return lexLess(out[i].Right, out[j].Right)
			})
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "quasi":
		opts = append(opts, mule.WithGamma(p.gamma))
		if p.minSize > 0 {
			opts = append(opts, mule.WithMinSize(p.minSize))
		}
		if p.maxSize > 0 {
			opts = append(opts, mule.WithMaxSize(p.maxSize))
		}
		q, err := mule.NewQuasiQuery(snap.Graph, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			out := [][]int{}
			stats, err := q.Run(ctx, func(s []int) bool {
				out = append(out, append([]int(nil), s...))
				return true
			})
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "truss":
		q, err := mule.NewTrussQuery(snap.Graph, p.eta, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			out := []edgeTrussJSON{}
			stats, err := q.Run(ctx, func(e mule.EdgeTruss) bool {
				out = append(out, edgeTrussJSON{U: e.U, V: e.V, Truss: e.Truss})
				return true
			})
			sort.Slice(out, func(i, j int) bool {
				if out[i].U != out[j].U {
					return out[i].U < out[j].U
				}
				return out[i].V < out[j].V
			})
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "core":
		q, err := mule.NewCoreQuery(snap.Graph, p.eta, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			out := []vertexCoreJSON{}
			stats, err := q.Run(ctx, func(vc mule.VertexCore) bool {
				out = append(out, vertexCoreJSON{V: vc.V, Core: vc.Core})
				return true
			})
			sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "densest":
		q, err := mule.NewDensestQuery(snap.Graph, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			// The engine's best-first order is canonical; keep it, like quasi.
			out := []denseSubgraphJSON{}
			stats, err := q.Run(ctx, func(c mule.DenseSubgraph) bool {
				out = append(out, denseSubgraphJSON{
					Vertices: append([]int(nil), c.Vertices...),
					Density:  c.ExpectedDensity,
					Prob:     c.Probability,
				})
				return true
			})
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil

	case "cluster":
		opts = append(opts, mule.WithCenters(p.centers))
		q, err := mule.NewClusterQuery(snap.Graph, opts...)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context) runOutcome {
			// Ascending center order is canonical; keep it.
			out := []clusterJSON{}
			stats, err := q.Run(ctx, func(c mule.ClusterSet) bool {
				out = append(out, clusterJSON{
					Center:  c.Center,
					Members: append([]int(nil), c.Members...),
					Prob:    c.Probability,
				})
				return true
			})
			return runOutcome{results: out, count: int64(len(out)), status: stats.Status, stats: stats, err: err}
		}, nil
	}
	return nil, fmt.Errorf("unknown miner %q: %w", p.miner, mule.ErrConfig)
}

// lexLess orders int slices lexicographically.
func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
