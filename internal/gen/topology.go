package gen

import (
	"math"
	"math/rand"
	"sort"
)

// pairKey encodes the unordered pair {u,v} (u ≠ v) as a single int64.
func pairKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// GNP returns the edge set of an Erdős–Rényi G(n, p) graph. Implemented with
// geometric skip sampling (Batagelj–Brandes), O(n + m) expected, so sparse
// graphs with large n are cheap.
func GNP(n int, p float64, rng *rand.Rand) [][2]int {
	var edges [][2]int
	if p <= 0 || n < 2 {
		return edges
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
		return edges
	}
	lq := math.Log(1 - p)
	// Walk the implicit index of all C(n,2) pairs in row-major order,
	// skipping a geometric number of non-edges each step.
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		for r == 0 {
			r = rng.Float64()
		}
		w += 1 + int(math.Log(r)/lq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			edges = append(edges, [2]int{w, v})
		}
	}
	return edges
}

// GNM returns m distinct uniformly random edges on n vertices. It panics if
// m exceeds C(n,2), which indicates a malformed workload.
func GNM(n, m int, rng *rand.Rand) [][2]int {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic("gen: GNM requested more edges than C(n,2)")
	}
	seen := make(map[int64]struct{}, m)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		k := pairKey(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, [2]int{u, v})
	}
	return edges
}

// BarabasiAlbert grows a preferential-attachment graph: m0 = m seed vertices,
// then each new vertex attaches to m distinct existing vertices chosen
// proportionally to degree (the first attachment round is uniform). This is
// the process behind the paper's BA5000–BA10000 inputs (m = 10 reproduces
// their edge counts). Returns the edge list.
func BarabasiAlbert(n, m int, rng *rand.Rand) [][2]int {
	if m < 1 || n <= m {
		panic("gen: BarabasiAlbert requires 1 <= m < n")
	}
	var edges [][2]int
	// repeated holds each endpoint once per incident edge; sampling a
	// uniform element of it is preferential attachment.
	repeated := make([]int, 0, 2*(n-m)*m)
	targets := make(map[int]struct{}, m)
	targetList := make([]int, 0, m)
	for v := m; v < n; v++ {
		for t := range targets {
			delete(targets, t)
		}
		targetList = targetList[:0]
		sample := func() int {
			if len(repeated) == 0 {
				// First incoming vertex: attach uniformly to the seeds.
				return rng.Intn(v)
			}
			return repeated[rng.Intn(len(repeated))]
		}
		for len(targetList) < m {
			t := sample()
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			targetList = append(targetList, t)
		}
		// Append in draw order (not map order) so the growth process — and
		// therefore the whole graph — is a deterministic function of the
		// seed.
		for _, t := range targetList {
			edges = append(edges, [2]int{t, v})
			repeated = append(repeated, t, v)
		}
	}
	sortEdges(edges)
	return edges
}

// HolmeKim grows a power-law-cluster graph: Barabási–Albert attachment where
// each subsequent link of a new vertex is, with probability pt, a "triad
// formation" step connecting to a random neighbor of the previous target
// (creating a triangle). High pt yields the clustered, clique-rich structure
// of collaboration networks such as ca-GrQc.
func HolmeKim(n, m int, pt float64, rng *rand.Rand) [][2]int {
	if m < 1 || n <= m {
		panic("gen: HolmeKim requires 1 <= m < n")
	}
	// Adjacency as append-ordered lists so neighbor sampling is
	// deterministic for a given seed (map iteration order is not).
	adjList := make([][]int, n)
	seen := make(map[int64]struct{}, (n-m)*m)
	var edges [][2]int
	repeated := make([]int, 0, 2*(n-m)*m)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		if _, dup := seen[pairKey(u, v)]; dup {
			return false
		}
		seen[pairKey(u, v)] = struct{}{}
		adjList[u] = append(adjList[u], v)
		adjList[v] = append(adjList[v], u)
		edges = append(edges, [2]int{u, v})
		repeated = append(repeated, u, v)
		return true
	}
	randomNeighbor := func(u int) int {
		if len(adjList[u]) == 0 {
			return -1
		}
		return adjList[u][rng.Intn(len(adjList[u]))]
	}
	for v := m; v < n; v++ {
		prev := -1
		links := 0
		// failures counts consecutive unsuccessful attempts for the current
		// link; after a burst of collisions (e.g. the first arriving vertex,
		// whose preferential pool contains only itself and its first target)
		// fall back to uniform sampling over the existing vertices, which
		// always makes progress because v has fewer than m < v+1 neighbors.
		failures := 0
		for links < m {
			if prev >= 0 && failures < 16 && rng.Float64() < pt {
				// Triad formation: close a triangle through prev.
				if w := randomNeighbor(prev); w >= 0 && addEdge(w, v) {
					prev = w
					links++
					failures = 0
					continue
				}
			}
			var t int
			if len(repeated) == 0 || failures >= 16 {
				t = rng.Intn(v)
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if addEdge(t, v) {
				prev = t
				links++
				failures = 0
			} else {
				failures++
			}
		}
	}
	sortEdges(edges)
	return edges
}

// WattsStrogatz builds a small-world ring lattice on n vertices with k
// neighbors per vertex (k even), each edge rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) [][2]int {
	if k%2 != 0 || k >= n || k < 2 {
		panic("gen: WattsStrogatz requires even k with 2 <= k < n")
	}
	seen := make(map[int64]struct{}, n*k/2)
	var edges [][2]int
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		key := pairKey(u, v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, [2]int{u, v})
		return true
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniformly random non-duplicate endpoint.
				for tries := 0; tries < 100; tries++ {
					w := rng.Intn(n)
					if add(u, w) {
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			add(u, v)
		}
	}
	sortEdges(edges)
	return edges
}

// PlantedCliques overlays numCliques vertex subsets of size cliqueSize, made
// complete, on a sparse G(n, pBackground) background. Returns the combined
// deduplicated edge list and the planted vertex sets; handy for tests that
// need graphs with known dense substructure.
func PlantedCliques(n, numCliques, cliqueSize int, pBackground float64, rng *rand.Rand) ([][2]int, [][]int) {
	if cliqueSize > n {
		panic("gen: planted clique larger than graph")
	}
	seen := make(map[int64]struct{})
	var edges [][2]int
	add := func(u, v int) {
		key := pairKey(u, v)
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, [2]int{u, v})
	}
	for _, e := range GNP(n, pBackground, rng) {
		add(e[0], e[1])
	}
	planted := make([][]int, numCliques)
	for c := range planted {
		perm := rng.Perm(n)[:cliqueSize]
		sort.Ints(perm)
		planted[c] = perm
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				add(perm[i], perm[j])
			}
		}
	}
	sortEdges(edges)
	return edges, planted
}

// CompletePairs returns all C(n,2) pairs.
func CompletePairs(n int) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// TrimEdges returns a copy of edges with exactly target edges, dropping a
// uniformly random subset. If target ≥ len(edges) the input is returned
// unchanged. Dataset synthesizers use this to hit the exact edge counts of
// Table 1.
func TrimEdges(edges [][2]int, target int, rng *rand.Rand) [][2]int {
	if target >= len(edges) {
		return edges
	}
	cp := make([][2]int, len(edges))
	copy(cp, edges)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	cp = cp[:target]
	sortEdges(cp)
	return cp
}

func sortEdges(edges [][2]int) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
}
