package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/uncertain-graphs/mule/internal/exec"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// These tests target the parallel engines specifically. They are meant to
// run under -race (see .github/workflows/ci.yml): StealGranularity 1 forces
// every internal node through the deque, maximizing steal traffic and
// handoff interleavings.

// TestWorkStealingMatchesSerialRandom checks, on 50 random graphs, that the
// work-stealing engine emits the identical clique set as the serial driver,
// visits the identical search tree (Calls), and does the identical candidate
// work (CandidateOps) — in both plain-MULE and LARGE-MULE modes.
func TestWorkStealingMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	densities := []float64{0.15, 0.3, 0.5, 0.8}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDyadic(n, densities[trial%len(densities)], rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		for _, minSize := range []int{0, 3} {
			serial, sstats, err := CollectWith(g, alpha, Config{MinSize: minSize})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{MinSize: minSize, Workers: 4, StealGranularity: 1}
			par, pstats, err := CollectWith(g, alpha, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, serial) {
				t.Fatalf("trial %d (n=%d, α=%v, minSize=%d): clique sets diverge\nserial = %v\nws     = %v",
					trial, n, alpha, minSize, serial, par)
			}
			if pstats.Calls != sstats.Calls || pstats.Emitted != sstats.Emitted ||
				pstats.CandidateOps != sstats.CandidateOps || pstats.SizePruned != sstats.SizePruned {
				t.Fatalf("trial %d (minSize=%d): stats diverge\nserial = %+v\nws     = %+v",
					trial, minSize, sstats, pstats)
			}
		}
	}
}

// TestStealCounterStorm drives a steal-heavy workload through a private
// executor with far more pool workers than CPUs — the exact interleaving
// where incrementing engine-wide counters from Split/NoteSteal after the
// victim's deque mutex drops would race (two thieves robbing different
// victims increment concurrently). The counters live on slot-private
// wsWorker fields, so this test under -race is the regression guard
// against moving them back onto shared stats; output equivalence and the
// Steals ≥ Splits invariant cross-check that no increment was lost. (The
// container-level steal storm with synthetic frames lives in internal/exec,
// which owns the deques now.)
func TestStealCounterStorm(t *testing.T) {
	x := exec.New(16)
	defer x.Close()
	rng := rand.New(rand.NewSource(409))
	g := randomDyadic(44, 0.55, rng)
	serial := mustCollect(t, g, 0.0625, Config{})
	var steals int64
	for round := 0; round < 6; round++ {
		// The visitor yields on every emission so the surplus pool workers
		// actually get scheduled to thieve on a single-CPU box (a run that
		// never yields executes its whole tree before any thief wakes).
		var got [][]int
		stats, err := EnumerateWith(g, 0.0625, func(c []int, _ float64) bool {
			cp := make([]int, len(c))
			copy(cp, c)
			got = append(got, cp)
			runtime.Gosched()
			return true
		}, Config{Workers: 16, StealGranularity: 1, Exec: x})
		if err != nil {
			t.Fatal(err)
		}
		canonicalize(got)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("round %d: steal-storm run diverged from serial", round)
		}
		if stats.Steals < stats.Splits {
			t.Fatalf("round %d: %d splits but only %d steals (every split is a steal)",
				round, stats.Splits, stats.Steals)
		}
		steals += stats.Steals
	}
	if steals == 0 {
		t.Fatal("storm exercised no steals across 6 steal-greedy rounds")
	}
}

// TestWorkStealingStatsAggregate checks that the merged engine stats keep
// the Steals ≥ Splits invariant and the output stays equivalent under a
// steal-heavy configuration (granularity 1, many workers).
func TestWorkStealingStatsAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	g := randomDyadic(42, 0.55, rng)
	serial := mustCollect(t, g, 0.0625, Config{})
	for round := 0; round < 4; round++ {
		got, stats, err := CollectWith(g, 0.0625, Config{Workers: 16, StealGranularity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("round %d: steal-heavy run diverged from serial", round)
		}
		if stats.Steals < stats.Splits {
			t.Fatalf("round %d: %d splits but only %d steals", round, stats.Splits, stats.Steals)
		}
	}
}

// TestWorkStealingInvariants runs the Lemma 6/7 invariant checker inside the
// work-stealing executor, including on frame nodes and split frames.
func TestWorkStealingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	for trial := 0; trial < 10; trial++ {
		g := randomDyadic(4+rng.Intn(16), 0.5, rng)
		cfg := Config{Workers: 4, StealGranularity: 1, CheckInvariants: true}
		if _, _, err := CollectWith(g, 0.25, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkStealingTinyGraphs covers the degenerate shapes: the empty graph,
// a single vertex, an edgeless graph, and a single edge.
func TestWorkStealingTinyGraphs(t *testing.T) {
	cfg := Config{Workers: 8, StealGranularity: 1}

	empty := uncertain.NewBuilder(0).Build()
	got := mustCollect(t, empty, 0.5, cfg)
	if len(got) != 0 {
		t.Fatalf("empty graph emitted %v", got)
	}

	one := uncertain.NewBuilder(1).Build()
	got = mustCollect(t, one, 0.5, cfg)
	if !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("single-vertex graph: got %v, want [[0]]", got)
	}

	edgeless := uncertain.NewBuilder(5).Build()
	got = mustCollect(t, edgeless, 0.5, cfg)
	if len(got) != 5 {
		t.Fatalf("edgeless graph: got %v, want 5 singletons", got)
	}

	b := uncertain.NewBuilder(2)
	_ = b.AddEdge(0, 1, 0.75)
	got = mustCollect(t, b.Build(), 0.5, cfg)
	if !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Fatalf("single-edge graph: got %v, want [[0 1]]", got)
	}
}

// TestWorkStealingWorkersExceedBranches starts far more workers than the
// search has top-level branches; the surplus must park and terminate.
func TestWorkStealingWorkersExceedBranches(t *testing.T) {
	b := uncertain.NewBuilder(3)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(0, 2, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	for _, workers := range []int{2, 16, 32} {
		got := mustCollect(t, g, 0.125, Config{Workers: workers, StealGranularity: 1})
		if !reflect.DeepEqual(got, [][]int{{0, 1, 2}}) {
			t.Fatalf("workers=%d: got %v, want [[0 1 2]]", workers, got)
		}
	}
}

// TestWorkStealingEarlyStopMidSteal aborts the enumeration from the visitor
// while steals are in flight: after the first false return, no further
// clique may be delivered, from any worker.
func TestWorkStealingEarlyStopMidSteal(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	g := randomDyadic(48, 0.5, rng)
	for trial := 0; trial < 20; trial++ {
		limit := 1 + trial%7
		var visits, afterStop atomic.Int64
		stopped := false
		stats, err := EnumerateWith(g, 0.0625, func(c []int, p float64) bool {
			if stopped {
				afterStop.Add(1)
			}
			if visits.Add(1) >= int64(limit) {
				stopped = true
				return false
			}
			return true
		}, Config{Workers: 8, StealGranularity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := visits.Load(); got != int64(limit) {
			t.Fatalf("trial %d: visitor called %d times, want exactly %d", trial, got, limit)
		}
		if n := afterStop.Load(); n != 0 {
			t.Fatalf("trial %d: %d visits delivered after the visitor returned false", trial, n)
		}
		if stats.Emitted < int64(limit) {
			t.Fatalf("trial %d: Emitted %d < %d visits", trial, stats.Emitted, limit)
		}
	}
}

// TestStealGranularityVariants checks that the granularity knob changes only
// scheduling, never the result.
func TestStealGranularityVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	g := randomDyadic(36, 0.4, rng)
	want := mustCollect(t, g, 0.125, Config{})
	for _, gran := range []int{1, 2, 8, 64, 1 << 20} {
		got := mustCollect(t, g, 0.125, Config{Workers: 4, StealGranularity: gran})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("granularity %d diverged from serial", gran)
		}
	}
}

// TestTopLevelEngineEquivalent keeps the legacy fan-out driver correct: it
// remains selectable for comparison benchmarks.
func TestTopLevelEngineEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	for trial := 0; trial < 12; trial++ {
		g := randomDyadic(2+rng.Intn(30), 0.4, rng)
		alpha := dyadicAlphas[trial%len(dyadicAlphas)]
		want := mustCollect(t, g, alpha, Config{})
		got := mustCollect(t, g, alpha, Config{Workers: 4, Parallel: ParallelTopLevel})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: top-level engine diverged from serial", trial)
		}
	}
}

// TestParallelModeValidation rejects unknown engines and negative knobs.
func TestParallelModeValidation(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	if _, err := EnumerateWith(g, 0.5, nil, Config{Workers: 2, Parallel: ParallelMode(9)}); err == nil {
		t.Error("unknown ParallelMode should fail")
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{Workers: 2, StealGranularity: -1}); err == nil {
		t.Error("negative StealGranularity should fail")
	}
	if ParallelWorkStealing.String() != "worksteal" || ParallelTopLevel.String() != "toplevel" {
		t.Error("ParallelMode.String misnames the engines")
	}
}

// TestExecutorDomainsEquivalent pins down that the executor a run is
// submitted to is pure scheduling policy: on 50 random graphs, both parallel
// engines produce output (and, for work stealing, search-tree stats)
// identical to serial whether they run on the process-wide shared pool or on
// private executors of different widths. This is the shared-vs-private half
// of the PR-6 equivalence suite; the mule-layer soak covers the same
// property under cross-query contention.
func TestExecutorDomainsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	priv4 := exec.New(4)
	defer priv4.Close()
	priv1 := exec.New(1)
	defer priv1.Close()
	domains := []struct {
		name string
		x    *exec.Executor
	}{
		{"shared", nil}, // Config.Exec nil → exec.Default()
		{"private4", priv4},
		{"private1", priv1},
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(35)
		g := randomDyadic(n, 0.2+0.5*rng.Float64(), rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		serial, sstats, err := CollectWith(g, alpha, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range domains {
			ws := Config{Workers: 4, StealGranularity: 1, Exec: d.x}
			got, gstats, err := CollectWith(g, alpha, ws)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("trial %d (n=%d, α=%v) %s worksteal: clique sets diverge", trial, n, alpha, d.name)
			}
			if gstats.Calls != sstats.Calls || gstats.Emitted != sstats.Emitted ||
				gstats.CandidateOps != sstats.CandidateOps {
				t.Fatalf("trial %d %s worksteal: stats diverge\nserial = %+v\ngot    = %+v",
					trial, d.name, sstats, gstats)
			}
			tl := Config{Workers: 4, Parallel: ParallelTopLevel, Exec: d.x}
			got, _, err = CollectWith(g, alpha, tl)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("trial %d (n=%d, α=%v) %s toplevel: clique sets diverge", trial, n, alpha, d.name)
			}
		}
	}
}
