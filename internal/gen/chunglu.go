package gen

import (
	"math"
	"math/rand"
	"sort"
)

// ChungLu generates a random graph whose expected degree sequence matches
// the given weights: the pair {u,v} becomes an edge with probability
// min(1, w_u·w_v / Σw). Implemented with the Miller–Hagberg skip-sampling
// refinement over weight-sorted vertices, which runs in O(n + m) expected
// time instead of O(n²).
//
// Vertices in the returned edge list are in weight-rank order (vertex 0 has
// the largest weight); callers that care can shuffle labels afterwards.
func ChungLu(weights []float64, rng *rand.Rand) [][2]int {
	n := len(weights)
	if n < 2 {
		return nil
	}
	// Sort weights descending; remember nothing (labels are rank order).
	w := make([]float64, n)
	copy(w, weights)
	sortDescending(w)
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic("gen: ChungLu weight must be non-negative")
		}
		total += x
	}
	if total == 0 {
		return nil
	}
	var edges [][2]int
	for u := 0; u < n-1; u++ {
		v := u + 1
		// Upper bound on edge probability for this row; true probability
		// only decreases as v grows (weights sorted descending).
		p := math.Min(1, w[u]*w[v]/total)
		for v < n && p > 0 {
			if p < 1 {
				r := rng.Float64()
				for r == 0 {
					r = rng.Float64()
				}
				v += int(math.Log(r) / math.Log(1-p))
			}
			if v < n {
				q := math.Min(1, w[u]*w[v]/total)
				if rng.Float64() < q/p {
					edges = append(edges, [2]int{u, v})
				}
				p = q
				v++
			}
		}
	}
	sortEdges(edges)
	return edges
}

// PowerLawWeights returns n expected-degree weights following a power law
// with exponent gamma and average degree avgDeg: w_i ∝ (i+i0)^{-1/(gamma-1)}
// rescaled so the mean weight is avgDeg. This is the standard way to target
// a power-law degree distribution with a Chung–Lu model.
func PowerLawWeights(n int, gamma, avgDeg float64) []float64 {
	if gamma <= 1 {
		panic("gen: power-law exponent must exceed 1")
	}
	w := make([]float64, n)
	exp := -1.0 / (gamma - 1)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

func sortDescending(w []float64) {
	sort.Sort(sort.Reverse(sort.Float64Slice(w)))
}
