// Package exec implements the process-wide work-stealing executor that every
// MULE engine submits to. Instead of spawning goroutines per enumeration run,
// a fixed pool of workers executes frames — opaque, engine-defined units of
// suspended search — from per-worker deques and a shared inbox. Frames are
// tagged with the Run that owns them, so a worker's deque may interleave
// frames of many concurrent queries and a steal can cross query boundaries
// without mixing their accounting: the engine callbacks (Execute, Split,
// NoteSteal) always carry the slot identity, and each Run's engine keeps its
// counters in slot-private state merged after the run.
//
// Scheduling shape: the owner of a deque pushes and pops at the tail (newest,
// deepest frame — depth-first order), thieves take the older half from the
// head, and a lone queued frame is offered to the owning engine's Split hook
// so one heavy subtree can be subdivided in place. Submitted roots and
// overflow re-entries go through the shared inbox (FIFO), so concurrent
// queries are served fairly rather than last-in-first-out.
//
// Termination is per run, by frame conservation: a Run's live count is the
// number of frames residing in any container (inbox, deque, overflow) plus
// the number currently being executed. Every transfer keeps the count, every
// retirement decrements it, and the run's Done channel closes exactly when it
// reaches zero.
//
// Wait lends the waiting goroutine to its run as a helper: while blocked it
// claims the run's own frames from the inbox or steals them from worker
// deques and executes them in place. That keeps a run live even when every
// pool worker is busy with other queries (or the pool is smaller than the
// submission rate), and makes waiting deadlock-free for nested submissions.
//
// Admission control (admission.go) sits in front of Submit at the query
// layer: per-tenant in-flight and aggregate-budget caps with a bounded FIFO
// wait queue, rejecting overload with ErrAdmission instead of executing it.
package exec

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/uncertain-graphs/mule/internal/faultinject"
)

// Engine is the per-run adapter between the executor and a search engine.
// Frames are opaque to the executor; they must be comparable values (pointer
// types in practice — Slot.PopIf relies on identity comparison).
//
// Slot IDs passed to the callbacks range over [0, Parallelism()]: one ID per
// pool worker plus one for the run's helper (the goroutine blocked in Wait).
// Calls for one slot ID are never concurrent with each other, so engines key
// slot-private state (arenas, counters) by ID without locking; calls for
// different IDs do run concurrently.
type Engine interface {
	// Execute runs frame f to completion on slot s, pushing any stealable
	// continuations through s.
	Execute(s *Slot, f any)
	// Split subdivides a lone queued frame: it returns a new frame covering
	// part of f's remaining work (shrinking f accordingly) or nil when f is
	// not worth splitting. It is called with the victim's deque lock held,
	// which serializes it against every other mutation of f; any split/steal
	// counters it touches must be private to the thief slot.
	Split(thief int, f any) any
	// NoteSteal records one successful wholesale steal operation by the
	// thief slot (Split-derived steals are counted by Split itself).
	NoteSteal(thief int)
}

// RunOpts configures one Submit.
type RunOpts struct {
	// MaxParallel caps how many slots may execute this run's frames at the
	// same time (the query-level "workers" knob). Frames beyond the cap are
	// parked on the run's overflow list and re-queued as slots free up.
	// Values < 1 mean unlimited.
	MaxParallel int
	// Stopped, when non-nil, is the run's latched stop predicate (visitor
	// early-stop, cancellation, budget). Once it reports true, workers
	// discard the run's frames instead of executing them and the executor
	// purges whatever is still queued.
	Stopped func() bool
	// OnPanic, when non-nil, is invoked exactly once if a panic is recovered
	// while executing, splitting, or accounting one of this run's frames —
	// with the panic value and the stack captured at the recovery point. The
	// run is already latched stopped when it fires; the hook's job is to
	// record the cause (typically an engine-level abort). It may run on any
	// worker goroutine and must not block.
	OnPanic func(value any, stack []byte)
}

// tagged is a frame bound to its owning run — the unit stored in every
// container.
type tagged struct {
	run *Run
	f   any
}

// frameQueue is a mutex-guarded slice of tagged frames with an atomic length
// mirror for lock-free emptiness peeks. It serves both as a worker deque
// (owner at the tail, thieves at the head) and as the shared FIFO inbox.
type frameQueue struct {
	mu    sync.Mutex
	n     atomic.Int32
	items []tagged
}

func (q *frameQueue) pushTail(t tagged) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.n.Store(int32(len(q.items)))
	q.mu.Unlock()
}

func (q *frameQueue) popTail() (tagged, bool) {
	if q.n.Load() == 0 {
		return tagged{}, false
	}
	q.mu.Lock()
	k := len(q.items)
	if k == 0 {
		q.mu.Unlock()
		return tagged{}, false
	}
	t := q.items[k-1]
	q.items[k-1] = tagged{}
	q.items = q.items[:k-1]
	q.n.Store(int32(k - 1))
	q.mu.Unlock()
	return t, true
}

func (q *frameQueue) popHead() (tagged, bool) {
	if q.n.Load() == 0 {
		return tagged{}, false
	}
	q.mu.Lock()
	k := len(q.items)
	if k == 0 {
		q.mu.Unlock()
		return tagged{}, false
	}
	t := q.items[0]
	m := copy(q.items, q.items[1:])
	q.items[m] = tagged{}
	q.items = q.items[:m]
	q.n.Store(int32(m))
	q.mu.Unlock()
	return t, true
}

// popTailIf removes the newest frame iff it belongs to r and is exactly f
// (identity). The run check matters on the shared inbox, where frames of many
// runs interleave and value-comparable frames of different runs could
// otherwise compare equal. The continuation-reclaim primitive behind
// Slot.PopIf.
func (q *frameQueue) popTailIf(r *Run, f any) bool {
	q.mu.Lock()
	k := len(q.items)
	if k == 0 || q.items[k-1].run != r || q.items[k-1].f != f {
		q.mu.Unlock()
		return false
	}
	q.items[k-1] = tagged{}
	q.items = q.items[:k-1]
	q.n.Store(int32(k - 1))
	q.mu.Unlock()
	return true
}

// takeRun removes the oldest frame owned by r, if any.
func (q *frameQueue) takeRun(r *Run) (tagged, bool) {
	if q.n.Load() == 0 {
		return tagged{}, false
	}
	q.mu.Lock()
	for i, t := range q.items {
		if t.run != r {
			continue
		}
		m := copy(q.items[i:], q.items[i+1:]) + i
		q.items[m] = tagged{}
		q.items = q.items[:m]
		q.n.Store(int32(m))
		q.mu.Unlock()
		return t, true
	}
	q.mu.Unlock()
	return tagged{}, false
}

// filterRun removes every frame owned by r, returning how many were removed.
func (q *frameQueue) filterRun(r *Run) int {
	if q.n.Load() == 0 {
		return 0
	}
	q.mu.Lock()
	kept := q.items[:0]
	for _, t := range q.items {
		if t.run == r {
			continue
		}
		kept = append(kept, t)
	}
	removed := len(q.items) - len(kept)
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = tagged{}
	}
	q.items = kept
	q.n.Store(int32(len(kept)))
	q.mu.Unlock()
	return removed
}

type worker struct {
	id    int
	x     *Executor
	deque frameQueue
}

// Executor is a fixed pool of worker goroutines executing frames from many
// concurrent runs. Create one with New, or share the process-wide Default.
type Executor struct {
	workers []*worker
	inbox   frameQueue
	wg      sync.WaitGroup

	mu         sync.Mutex // guards gen and closed
	cond       *sync.Cond
	gen        uint64 // wake generation: bumped on every wake-worthy event
	closed     bool
	closedFlag atomic.Bool  // lock-free mirror of closed for the claim loop
	idle       atomic.Int32 // workers published as idle (paring down to cond.Wait)

	// Admission state (admission.go).
	amu       sync.Mutex
	limited   atomic.Bool // fast path: true once any Limits were configured
	defLimits Limits
	limits    map[string]Limits
	tenants   map[string]*tenantState
	admitted  int64
	rejected  int64
	enqueued  int64
	// rejected broken out by cause (budget cap, full queue, in-flight cap
	// with queueing disabled) plus AdmitWithRetry accounting.
	rejectedBudget   int64
	rejectedQueue    int64
	rejectedInFlight int64
	rejectedClosed   int64
	retried          int64
	retryExhausted   int64
}

// New starts an executor with the given number of pool workers (at least 1).
// The worker count may exceed GOMAXPROCS; tests use that to force real
// interleaving on small machines.
func New(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	x := &Executor{workers: make([]*worker, workers)}
	x.cond = sync.NewCond(&x.mu)
	for i := range x.workers {
		x.workers[i] = &worker{id: i, x: x}
	}
	for _, w := range x.workers {
		x.wg.Add(1)
		go func(w *worker) {
			defer x.wg.Done()
			for {
				t, ok := w.next()
				if !ok {
					return
				}
				x.runFrame(w, w.id, t)
			}
		}(w)
	}
	return x
}

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor, created on first use with one
// worker per GOMAXPROCS.
func Default() *Executor {
	defaultOnce.Do(func() {
		defaultExec = New(runtime.GOMAXPROCS(0))
	})
	return defaultExec
}

// Parallelism returns the pool worker count. Slot IDs handed to engines
// range over [0, Parallelism()] — the extra ID belongs to run helpers.
func (x *Executor) Parallelism() int { return len(x.workers) }

// helperID is the slot ID used by a run's Wait helper.
func (x *Executor) helperID() int { return len(x.workers) }

// Close stops the pool: workers finish their current frame and exit. Runs
// still in flight are not abandoned — their Wait helpers keep executing
// queued frames to completion — but no pool worker will pick up new work.
// Queries parked in an admission queue are failed with a wrapped
// ErrAdmission rather than left waiting for capacity that will never free
// up, and later attempts to queue reject the same way (immediate grants
// still succeed — a run on a closed executor completes through its Wait
// helper). Close is idempotent and safe to call concurrently; the
// process-wide Default executor is never closed.
func (x *Executor) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		x.wg.Wait()
		return
	}
	x.closed = true
	x.closedFlag.Store(true)
	x.gen++
	x.mu.Unlock()
	x.cond.Broadcast()
	x.failQueuedAdmissions()
	x.wg.Wait()
}

// wake bumps the generation and broadcasts iff any worker is parked (or
// about to park). The fast path is one atomic load, so pushing work while
// the pool is saturated costs no lock traffic.
func (x *Executor) wake() {
	if x.idle.Load() == 0 {
		return
	}
	x.mu.Lock()
	x.gen++
	x.mu.Unlock()
	x.cond.Broadcast()
}

// enqueue adds a frame (whose live count is already held) to the inbox and
// wakes a consumer: idle pool workers, and the owning run's parked helper.
func (x *Executor) enqueue(t tagged) {
	x.inbox.pushTail(t)
	t.run.pokeHelper()
	x.wake()
}

// Submit starts a run of the given engine seeded with the root frames and
// returns its Run handle. Each root is queued on the shared inbox; an empty
// root set completes immediately. Callers must eventually Wait on the run.
func (x *Executor) Submit(e Engine, opts RunOpts, roots ...any) *Run {
	maxPar := int32(opts.MaxParallel)
	if maxPar < 1 {
		maxPar = int32(x.Parallelism() + 1)
	}
	r := &Run{
		x:       x,
		engine:  e,
		maxPar:  maxPar,
		stop:    opts.Stopped,
		onPanic: opts.OnPanic,
		done:    make(chan struct{}),
		wakeCh:  make(chan struct{}, 1),
	}
	if len(roots) == 0 {
		close(r.done)
		return r
	}
	r.live.Store(int64(len(roots)))
	for _, f := range roots {
		x.inbox.pushTail(tagged{run: r, f: f})
	}
	x.wake()
	return r
}

// runFrame executes one claimed frame: the claim carries the frame's live
// count, retired exactly once here (or transferred to the overflow list when
// the run is at its parallelism cap).
//
// The Execute call is the panic-containment boundary for the pool: a panic in
// an engine or a visitor callback is recovered here and latched against the
// owning run only. Seat release, frame retirement, and the purge of the run's
// remaining frames all happen after the recovery, so conservation holds on
// the unwind path and no other run — sharing this worker or not — observes
// anything.
func (x *Executor) runFrame(w *worker, slotID int, t tagged) {
	r := t.run
	if r.isStopped() {
		x.purgeRun(r)
		r.retire(1)
		return
	}
	if !r.acquire() {
		r.park(t.f)
		return
	}
	func() {
		defer func() {
			if v := recover(); v != nil {
				r.notePanic(v, debug.Stack())
			}
		}()
		s := Slot{id: slotID, run: r, w: w}
		r.engine.Execute(&s, t.f)
	}()
	r.release()
	r.retire(1)
	if r.isStopped() {
		x.purgeRun(r)
	}
}

// splitGuard calls the engine's Split hook, containing a panic: on recovery
// the run is latched, the victim's frame is left queued (it purges at its
// next claim), and panicked is reported so the caller abandons the steal.
// The caller holds d's lock; the guard releases it on the panic path — an
// unwind holding a deque mutex would deadlock every future steal and push on
// that deque, pool-wide.
func splitGuard(r *Run, d *frameQueue, thief int, f any) (g any, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			r.notePanic(v, debug.Stack())
			d.mu.Unlock()
			g, panicked = nil, true
		}
	}()
	return r.engine.Split(thief, f), false
}

// noteStealGuard calls the engine's NoteSteal hook, containing a panic by
// latching it against the run. NoteSteal is pure accounting, so the steal
// itself still succeeds; the stolen frames purge when claimed.
func noteStealGuard(r *Run, thief int) {
	defer func() {
		if v := recover(); v != nil {
			r.notePanic(v, debug.Stack())
		}
	}()
	r.engine.NoteSteal(thief)
}

// purgeRun drops every queued frame of a stopped run — inbox, all worker
// deques, and the overflow list — retiring each so the run can complete.
func (x *Executor) purgeRun(r *Run) {
	n := x.inbox.filterRun(r)
	for _, w := range x.workers {
		n += w.deque.filterRun(r)
	}
	r.omu.Lock()
	n += len(r.overflow)
	r.overflow = nil
	r.omu.Unlock()
	if n > 0 {
		r.retire(n)
	}
}

// next claims the worker's next frame: own deque tail first (depth-first),
// then the shared inbox, then a steal sweep; with nothing found it parks on
// the executor condition until the wake generation moves. The publish-then-
// re-sweep order makes the park race-free against the wake fast path: a
// pusher that misses this worker's idle increment pushed before the re-sweep
// (queue mutex order), so the re-sweep finds the frame.
func (w *worker) next() (tagged, bool) {
	x := w.x
	for {
		if x.closedFlag.Load() {
			return tagged{}, false
		}
		if t, ok := w.deque.popTail(); ok {
			return t, true
		}
		if t, ok := x.inbox.popHead(); ok {
			return t, true
		}
		if t, ok := w.trySteal(); ok {
			return t, true
		}
		// Park: capture the generation, publish idleness, re-sweep, wait.
		// The capture precedes the re-sweep, so any push the re-sweep missed
		// bumps the generation afterwards and the wait guard catches it.
		x.mu.Lock()
		gen := x.gen
		x.mu.Unlock()
		x.idle.Add(1)
		if t, ok := w.deque.popTail(); ok {
			x.idle.Add(-1)
			return t, true
		}
		if t, ok := x.inbox.popHead(); ok {
			x.idle.Add(-1)
			return t, true
		}
		if t, ok := w.trySteal(); ok {
			x.idle.Add(-1)
			return t, true
		}
		x.mu.Lock()
		for x.gen == gen && !x.closed {
			x.cond.Wait()
		}
		closed := x.closed
		x.mu.Unlock()
		x.idle.Add(-1)
		if closed {
			return tagged{}, false
		}
	}
}

// trySteal sweeps the other workers once, nearest ID first.
func (w *worker) trySteal() (tagged, bool) {
	ws := w.x.workers
	p := len(ws)
	for off := 1; off < p; off++ {
		if t, ok := w.stealFrom(ws[(w.id+off)%p]); ok {
			return t, true
		}
	}
	return tagged{}, false
}

// stealFrom takes half of the oldest frames from v's deque. With two or more
// frames queued the older half moves wholesale (all but one parked on the
// thief's own deque, where they stay stealable by others). A lone frame is
// offered to its engine's Split hook — under the deque lock, so the split is
// serialized against every other mutation of the frame — and stolen whole
// only if the engine declines; a lone frame of a run already at its
// parallelism cap is left alone (stealing it could only park it again).
// Steal attribution is per run: each run robbed in one operation gets one
// NoteSteal (or the Split-internal accounting), always against the thief's
// slot ID, so concurrent thieves never share counter memory.
func (w *worker) stealFrom(v *worker) (tagged, bool) {
	d := &v.deque
	if d.n.Load() == 0 {
		return tagged{}, false
	}
	faultinject.Fire(faultinject.DelaySteal)
	d.mu.Lock()
	k := len(d.items)
	switch {
	case k == 0:
		d.mu.Unlock()
		return tagged{}, false
	case k == 1:
		t := d.items[0]
		r := t.run
		if r.isStopped() || r.atCapacity() {
			d.mu.Unlock()
			return tagged{}, false
		}
		g, panicked := splitGuard(r, d, w.id, t.f)
		if panicked {
			// splitGuard already unlocked; the victim frame stays queued and
			// purges at its next claim now that the run is latched.
			return tagged{}, false
		}
		if g != nil {
			// Count the minted frame before releasing the lock: while the lock
			// pins the narrowed victim frame in the deque, live stays ≥ 1, so
			// the run cannot be observed complete with the split half still
			// unaccounted (retiring live to zero would release the run's
			// pooled resources under the thief).
			r.live.Add(1)
			d.mu.Unlock()
			return tagged{run: r, f: g}, true
		}
		d.items[0] = tagged{}
		d.items = d.items[:0]
		d.n.Store(0)
		d.mu.Unlock()
		noteStealGuard(r, w.id)
		return t, true
	default:
		h := k / 2
		stolen := make([]tagged, h)
		copy(stolen, d.items[:h])
		m := copy(d.items, d.items[h:])
		for i := m; i < k; i++ {
			d.items[i] = tagged{}
		}
		d.items = d.items[:m]
		d.n.Store(int32(m))
		d.mu.Unlock()
		var noted *Run
		for _, t := range stolen {
			if t.run != noted {
				noted = t.run
				noteStealGuard(noted, w.id)
			}
		}
		for _, t := range stolen[:h-1] {
			w.deque.pushTail(t)
			t.run.pokeHelper()
		}
		w.x.wake()
		return stolen[h-1], true
	}
}

// Slot is the executor-side identity an engine executes under: a stable slot
// ID for slot-private state, plus the push/reclaim interface for stealable
// continuations. Pool workers push to their own deque; a run helper (Wait)
// pushes to the shared inbox, so its continuations stay visible to the pool.
type Slot struct {
	id  int
	run *Run
	w   *worker // nil for a run helper
}

// ID returns the slot ID, in [0, Parallelism()].
func (s *Slot) ID() int { return s.id }

// Push publishes f as a stealable frame of this slot's run.
func (s *Slot) Push(f any) {
	s.run.live.Add(1)
	t := tagged{run: s.run, f: f}
	if s.w != nil {
		s.w.deque.pushTail(t)
	} else {
		s.run.x.inbox.pushTail(t)
	}
	s.run.pokeHelper()
	s.run.x.wake()
}

// PopIf reclaims f iff it is still the newest frame this slot pushed:
// success means no thief took it and the caller resumes executing it;
// failure means another slot owns it now.
func (s *Slot) PopIf(f any) bool {
	var ok bool
	if s.w != nil {
		ok = s.w.deque.popTailIf(s.run, f)
	} else {
		ok = s.run.x.inbox.popTailIf(s.run, f)
	}
	if ok {
		s.run.retire(1)
	}
	return ok
}
