package mule_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	mule "github.com/uncertain-graphs/mule"
)

// multiComponentGraph builds a graph of several random connected components
// whose vertex IDs are scattered across the ID space, so the sharded path's
// relabeling and remapping is exercised non-trivially.
func multiComponentGraph(t testing.TB, rng *rand.Rand) *mule.Graph {
	t.Helper()
	parts := 2 + rng.Intn(5)
	sizes := make([]int, parts)
	n := 0
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(9)
		n += sizes[i]
	}
	perm := rng.Perm(n)
	b := mule.NewBuilder(n)
	at := 0
	for _, sz := range sizes {
		ids := perm[at : at+sz]
		at += sz
		for j := 1; j < sz; j++ {
			k := rng.Intn(j)
			if err := b.AddEdge(ids[j], ids[k], 0.3+0.7*rng.Float64()); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
		for extra := rng.Intn(2 * sz); extra > 0; extra-- {
			j, k := rng.Intn(sz), rng.Intn(sz)
			if j != k {
				_ = b.UpsertEdge(ids[j], ids[k], 0.3+0.7*rng.Float64())
			}
		}
	}
	return b.Build()
}

// multiComponentBipartite builds a bipartite graph with several components
// (including, often, isolated vertices on either side).
func multiComponentBipartite(t testing.TB, rng *rand.Rand) *mule.Bipartite {
	t.Helper()
	nL, nR := 2+rng.Intn(9), 2+rng.Intn(9)
	b := mule.NewBipartiteBuilder(nL, nR)
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Float64() < 0.18 {
				_ = b.AddEdge(l, r, 0.3+0.7*rng.Float64())
			}
		}
	}
	return b.Build()
}

// shardSettings is the matrix every equivalence test runs: sequential,
// fixed concurrency, and auto.
var shardSettings = []struct {
	name string
	opt  mule.Option
}{
	{"shards=1", mule.WithShards(1)},
	{"shards=3", mule.WithShards(3)},
	{"auto", mule.WithAutoShard()},
}

// TestShardedEquivalence proves the headline contract on 50 random
// multi-component graphs: for cliques, trusses, and cores, every WithShards
// setting collects exactly what the unsharded run collects.
func TestShardedEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 50; trial++ {
		g := multiComponentGraph(t, rng)

		base, err := mule.NewQuery(g, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		wantCliques, err := base.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		baseTruss, err := mule.NewTrussQuery(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantTruss, err := baseTruss.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantMaxTruss, err := baseTruss.MaxTruss(ctx)
		if err != nil {
			t.Fatal(err)
		}
		baseCore, err := mule.NewCoreQuery(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantCore, err := baseCore.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}

		for _, s := range shardSettings {
			q, err := mule.NewQuery(g, 0.1, s.opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Collect(ctx)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.name, err)
			}
			if !reflect.DeepEqual(got, wantCliques) {
				t.Fatalf("trial %d %s: cliques %v, want %v", trial, s.name, got, wantCliques)
			}
			count, err := q.Count(ctx)
			if err != nil || count != int64(len(wantCliques)) {
				t.Fatalf("trial %d %s: Count = %d, %v; want %d", trial, s.name, count, err, len(wantCliques))
			}

			tq, err := mule.NewTrussQuery(g, 0.3, s.opt)
			if err != nil {
				t.Fatal(err)
			}
			gotTruss, err := tq.Collect(ctx)
			if err != nil {
				t.Fatalf("trial %d %s truss: %v", trial, s.name, err)
			}
			if !reflect.DeepEqual(gotTruss, wantTruss) {
				t.Fatalf("trial %d %s: truss %v, want %v", trial, s.name, gotTruss, wantTruss)
			}
			gotMax, err := tq.MaxTruss(ctx)
			if err != nil || gotMax != wantMaxTruss {
				t.Fatalf("trial %d %s: MaxTruss = %d, %v; want %d", trial, s.name, gotMax, err, wantMaxTruss)
			}

			cq, err := mule.NewCoreQuery(g, 0.3, s.opt)
			if err != nil {
				t.Fatal(err)
			}
			gotCore, err := cq.Collect(ctx)
			if err != nil {
				t.Fatalf("trial %d %s core: %v", trial, s.name, err)
			}
			if !reflect.DeepEqual(gotCore, wantCore) {
				t.Fatalf("trial %d %s: cores %v, want %v", trial, s.name, gotCore, wantCore)
			}
		}
	}
}

// TestShardedBicliqueQuasiEquivalence extends the equivalence matrix to the
// remaining two prepared-query families.
func TestShardedBicliqueQuasiEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(277))
	for trial := 0; trial < 20; trial++ {
		bg := multiComponentBipartite(t, rng)
		baseB, err := mule.NewBicliqueQuery(bg, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := baseB.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}

		g := multiComponentGraph(t, rng)
		baseQ, err := mule.NewQuasiQuery(g, mule.WithGamma(0.6))
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := baseQ.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}

		for _, s := range shardSettings {
			qb, err := mule.NewBicliqueQuery(bg, 0.05, s.opt)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := qb.Collect(ctx)
			if err != nil {
				t.Fatalf("trial %d %s biclique: %v", trial, s.name, err)
			}
			if !reflect.DeepEqual(gotB, wantB) {
				t.Fatalf("trial %d %s: bicliques %v, want %v", trial, s.name, gotB, wantB)
			}

			qq, err := mule.NewQuasiQuery(g, mule.WithGamma(0.6), s.opt)
			if err != nil {
				t.Fatal(err)
			}
			gotQ, err := qq.Collect(ctx)
			if err != nil {
				t.Fatalf("trial %d %s quasi: %v", trial, s.name, err)
			}
			if !reflect.DeepEqual(gotQ, wantQ) {
				t.Fatalf("trial %d %s: quasi %v, want %v", trial, s.name, gotQ, wantQ)
			}
		}
	}
}

// shardedRunOrder collects a sharded run's delivery order.
func shardedRunOrder(t *testing.T, g *mule.Graph, opts ...mule.Option) ([]mule.Clique, mule.Stats, error) {
	t.Helper()
	q, err := mule.NewQuery(g, 0.1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var out []mule.Clique
	stats, err := q.Run(context.Background(), func(c []int, p float64) bool {
		out = append(out, mule.Clique{Vertices: append([]int(nil), c...), Prob: p})
		return true
	})
	return out, stats, err
}

// TestShardedStreamOrderDeterministic: the delivered order is component
// order and does not depend on the shard concurrency, so a WithLimit bound
// keeps the same prefix under every setting.
func TestShardedStreamOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(283))
	for trial := 0; trial < 10; trial++ {
		g := multiComponentGraph(t, rng)
		ref, stats, err := shardedRunOrder(t, g, mule.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Status != mule.StatusComplete {
			t.Fatalf("trial %d: status %v", trial, stats.Status)
		}
		for _, s := range shardSettings[1:] {
			got, _, err := shardedRunOrder(t, g, s.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d %s: stream order differs from shards=1", trial, s.name)
			}
		}
		if len(ref) < 2 {
			continue
		}
		limit := 1 + rng.Intn(len(ref)-1)
		for _, s := range shardSettings {
			got, stats, err := shardedRunOrder(t, g, s.opt, mule.WithLimit(int64(limit)))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Status != mule.StatusStopped || stats.Emitted != int64(limit) {
				t.Fatalf("trial %d %s: limited run status %v emitted %d, want stopped/%d",
					trial, s.name, stats.Status, stats.Emitted, limit)
			}
			if !reflect.DeepEqual(got, ref[:limit]) {
				t.Fatalf("trial %d %s: limited prefix differs", trial, s.name)
			}
		}
	}
}

// TestShardedBudget: a tiny budget aborts a sharded run with ErrBudget; a
// generous one completes with the unsharded answer. The budget is shared
// across components, not per component.
func TestShardedBudget(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(293))
	g := multiComponentGraph(t, rng)
	for _, s := range shardSettings {
		q, err := mule.NewQuery(g, 0.1, s.opt, mule.WithBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := q.Run(ctx, nil)
		if !errors.Is(err, mule.ErrBudget) {
			t.Fatalf("%s: tiny budget err = %v, want ErrBudget", s.name, err)
		}
		if stats.Status != mule.StatusBudget {
			t.Fatalf("%s: tiny budget status %v", s.name, stats.Status)
		}

		base, err := mule.NewQuery(g, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		qBig, err := mule.NewQuery(g, 0.1, s.opt, mule.WithBudget(1<<40))
		if err != nil {
			t.Fatal(err)
		}
		got, err := qBig.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: budgeted sharded collect differs", s.name)
		}
	}
}

// TestShardedVisitorStop: a visitor stop surfaces as ErrStopped with
// StatusStopped, the delivered prefix matches the deterministic order, and
// no goroutines leak from the concurrent driver.
func TestShardedVisitorStop(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	g := multiComponentGraph(t, rng)
	ref, _, err := shardedRunOrder(t, g, mule.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 2 {
		t.Skip("graph draw too small")
	}
	stop := len(ref) / 2
	for _, s := range shardSettings {
		base := runtime.NumGoroutine()
		q, err := mule.NewQuery(g, 0.1, s.opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []mule.Clique
		stats, err := q.Run(context.Background(), func(c []int, p float64) bool {
			got = append(got, mule.Clique{Vertices: append([]int(nil), c...), Prob: p})
			return len(got) < stop
		})
		if !errors.Is(err, mule.ErrStopped) {
			t.Fatalf("%s: err = %v, want ErrStopped", s.name, err)
		}
		if stats.Status != mule.StatusStopped || stats.Emitted != int64(stop) {
			t.Fatalf("%s: status %v emitted %d, want stopped/%d", s.name, stats.Status, stats.Emitted, stop)
		}
		if !reflect.DeepEqual(got, ref[:stop]) {
			t.Fatalf("%s: stopped prefix differs", s.name)
		}
		waitNoExtraGoroutines(t, base)
	}
}

// TestShardedCancellation: a context canceled mid-run aborts every shard
// and joins the driver's goroutines.
func TestShardedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	g := multiComponentGraph(t, rng)
	for _, s := range shardSettings {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		q, err := mule.NewQuery(g, 0.1, s.opt)
		if err != nil {
			t.Fatal(err)
		}
		first := true
		_, err = q.Run(ctx, func(c []int, p float64) bool {
			if first {
				first = false
				cancel()
			}
			return true
		})
		cancel()
		// A run that finished its last component before noticing the cancel
		// may legitimately return nil; anything else must wrap the context.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled or nil", s.name, err)
		}
		waitNoExtraGoroutines(t, base)
	}
}

// TestShardedPanicContainment: a panicking visitor is contained to the run
// and reported as a wrapped ErrPanic with StatusPanicked, matching the
// unsharded surfaces; the driver's goroutines are joined on the way out.
func TestShardedPanicContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	g := multiComponentGraph(t, rng)
	for _, s := range shardSettings {
		base := runtime.NumGoroutine()
		q, err := mule.NewQuery(g, 0.1, s.opt)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := q.Run(context.Background(), func(c []int, p float64) bool {
			panic("visitor boom")
		})
		if !errors.Is(err, mule.ErrPanic) {
			t.Fatalf("%s: err = %v, want ErrPanic", s.name, err)
		}
		if stats.Status != mule.StatusPanicked {
			t.Fatalf("%s: status %v, want StatusPanicked", s.name, stats.Status)
		}
		waitNoExtraGoroutines(t, base)
	}
}

// TestShardedProgress: the progress callback fires (0, total) first, then
// once per component in order, ending at (total, total) on a complete run.
func TestShardedProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	g := multiComponentGraph(t, rng)
	total := g.NumComponents()
	for _, s := range shardSettings {
		var calls [][2]int
		q, err := mule.NewQuery(g, 0.1, s.opt,
			mule.WithShardProgress(func(done, tot int) { calls = append(calls, [2]int{done, tot}) }))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Run(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		if len(calls) != total+1 {
			t.Fatalf("%s: %d progress calls, want %d", s.name, len(calls), total+1)
		}
		for i, c := range calls {
			if c != [2]int{i, total} {
				t.Fatalf("%s: call %d = %v, want {%d, %d}", s.name, i, c, i, total)
			}
		}
	}
}

// TestShardOptionValidation: option misuse is rejected eagerly at
// construction with wrapped ErrConfig, on every query family.
func TestShardOptionValidation(t *testing.T) {
	g := mule.NewBuilder(2)
	_ = g.AddEdge(0, 1, 0.5)
	graph := g.Build()
	for _, n := range []int{0, -2} {
		if _, err := mule.NewQuery(graph, 0.5, mule.WithShards(n)); !errors.Is(err, mule.ErrConfig) {
			t.Fatalf("WithShards(%d): err = %v, want ErrConfig", n, err)
		}
	}
	if _, err := mule.NewQuery(graph, 0.5, mule.WithShardProgress(func(int, int) {})); !errors.Is(err, mule.ErrConfig) {
		t.Fatalf("lone WithShardProgress: err = %v, want ErrConfig", err)
	}
	if _, err := mule.NewTrussQuery(graph, 0.5, mule.WithShards(0)); !errors.Is(err, mule.ErrConfig) {
		t.Fatal("truss query accepted WithShards(0)")
	}
	if _, err := mule.NewCoreQuery(graph, 0.5, mule.WithShards(-1)); !errors.Is(err, mule.ErrConfig) {
		t.Fatal("core query accepted WithShards(-1)")
	}
}

// TestShardedStreamBreak: breaking a sharded range-over-func stream stops
// the run and leaks nothing.
func TestShardedStreamBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	g := multiComponentGraph(t, rng)
	for _, s := range shardSettings {
		base := runtime.NumGoroutine()
		q, err := mule.NewQuery(g, 0.1, s.opt)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, err := range q.Cliques(context.Background()) {
			if err != nil {
				t.Fatalf("%s: stream error %v", s.name, err)
			}
			seen++
			break
		}
		if seen != 1 {
			t.Fatalf("%s: saw %d cliques after break", s.name, seen)
		}
		waitNoExtraGoroutines(t, base)
	}
}

// ExampleWithShards demonstrates component-sharded mining: the collected
// result set is identical to an unsharded run.
func ExampleWithShards() {
	b := mule.NewBuilder(6)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 2, 0.9)
	_ = b.AddEdge(0, 2, 0.9)
	_ = b.AddEdge(3, 4, 0.8) // second component
	g := b.Build()
	q, _ := mule.NewQuery(g, 0.5, mule.WithShards(2))
	cliques, _ := q.Collect(context.Background())
	for _, c := range cliques {
		fmt.Println(c.Vertices)
	}
	// Output:
	// [0 1 2]
	// [3 4]
	// [5]
}
