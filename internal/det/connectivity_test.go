package det

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestComponents(t *testing.T) {
	g := mustGraph(t, 7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	got := g.Components()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
}

func TestComponentsCompleteAndEmpty(t *testing.T) {
	if got := Complete(5).Components(); len(got) != 1 || len(got[0]) != 5 {
		t.Fatalf("K5 components = %v", got)
	}
	if got := NewBuilder(0).Build().Components(); len(got) != 0 {
		t.Fatalf("empty graph components = %v", got)
	}
}

func TestIsConnectedSubset(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	cases := []struct {
		set  []int
		want bool
	}{
		{nil, true},
		{[]int{2}, true},
		{[]int{0, 1, 2}, true},
		{[]int{0, 2}, false}, // connected only through 1, which is excluded
		{[]int{0, 1, 3}, false},
		{[]int{3, 4}, true},
		{[]int{0, 5}, false},
	}
	for _, c := range cases {
		if got := g.IsConnectedSubset(c.set); got != c.want {
			t.Errorf("IsConnectedSubset(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestIsConnectedSubsetMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(20, 0.08, rng)
		for _, comp := range g.Components() {
			if !g.IsConnectedSubset(comp) {
				t.Fatalf("component %v not connected per IsConnectedSubset", comp)
			}
		}
	}
}
