package server

import (
	"sort"
	"sync"
)

// shardRunInfo is the /stats view of one in-flight sharded query: which
// graph and miner it is running, and how many of the graph's components
// have been mined and delivered so far.
type shardRunInfo struct {
	ID    int64  `json:"id"`
	Graph string `json:"graph"`
	Miner string `json:"miner"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// progressTable tracks the per-shard progress of every in-flight sharded
// query. Entries are registered when a sharded run starts, updated from the
// query's WithShardProgress callback, and removed when the run finishes —
// /stats reports only live runs.
type progressTable struct {
	mu   sync.Mutex
	next int64
	runs map[int64]*shardRunInfo
}

func newProgressTable() *progressTable {
	return &progressTable{runs: make(map[int64]*shardRunInfo)}
}

// register adds a run and returns its ID plus the update callback to hand
// to WithShardProgress. The callback is safe to invoke from the run's
// goroutine while /stats reads concurrently.
func (t *progressTable) register(graph, miner string) (int64, func(done, total int)) {
	t.mu.Lock()
	t.next++
	id := t.next
	t.runs[id] = &shardRunInfo{ID: id, Graph: graph, Miner: miner}
	t.mu.Unlock()
	return id, func(done, total int) {
		t.mu.Lock()
		if r, ok := t.runs[id]; ok {
			r.Done, r.Total = done, total
		}
		t.mu.Unlock()
	}
}

// unregister removes a finished run.
func (t *progressTable) unregister(id int64) {
	t.mu.Lock()
	delete(t.runs, id)
	t.mu.Unlock()
}

// list snapshots the live runs in registration order.
func (t *progressTable) list() []shardRunInfo {
	t.mu.Lock()
	out := make([]shardRunInfo, 0, len(t.runs))
	for _, r := range t.runs {
		out = append(out, *r)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
