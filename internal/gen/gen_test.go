package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func checkEdgeList(t *testing.T, n int, edges [][2]int) {
	t.Helper()
	seen := make(map[int64]struct{}, len(edges))
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			t.Fatalf("edge %v out of range [0,%d)", e, n)
		}
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized (u < v)", e)
		}
		k := pairKey(e[0], e[1])
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = struct{}{}
	}
}

func TestGNPBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, p := 300, 0.05
	edges := GNP(n, p, rng)
	checkEdgeList(t, n, edges)
	want := p * float64(n*(n-1)/2)
	got := float64(len(edges))
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("GNP edge count %v, expected ≈ %v", got, want)
	}
}

func TestGNPEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if len(GNP(10, 0, rng)) != 0 {
		t.Error("p=0 should give no edges")
	}
	if len(GNP(1, 0.5, rng)) != 0 {
		t.Error("n=1 should give no edges")
	}
	if got := len(GNP(10, 1, rng)); got != 45 {
		t.Errorf("p=1 should give complete graph, got %d edges", got)
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	edges := GNM(100, 500, rng)
	checkEdgeList(t, 100, edges)
	if len(edges) != 500 {
		t.Fatalf("GNM returned %d edges, want 500", len(edges))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GNM should panic when m > C(n,2)")
		}
	}()
	GNM(4, 7, rng)
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 500, 10
	edges := BarabasiAlbert(n, m, rng)
	checkEdgeList(t, n, edges)
	if want := (n - m) * m; len(edges) != want {
		t.Fatalf("BA edge count %d, want %d", len(edges), want)
	}
	// Every arriving vertex v ≥ m has degree ≥ m.
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v := m; v < n; v++ {
		if deg[v] < m {
			t.Fatalf("vertex %d has degree %d < m", v, deg[v])
		}
	}
	// Preferential attachment yields a heavy tail: max degree well above m.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 3*m {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", maxDeg)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bad := range [][2]int{{10, 0}, {10, 10}, {5, 9}} {
		func() {
			defer func() { recover() }()
			BarabasiAlbert(bad[0], bad[1], rng)
			t.Errorf("BarabasiAlbert(%d,%d) should panic", bad[0], bad[1])
		}()
	}
}

// globalClustering returns 3·triangles / open-triads of the edge list.
func globalClustering(n int, edges [][2]int) float64 {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, e := range edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	triangles, triads := 0, 0
	for u := 0; u < n; u++ {
		nbrs := make([]int, 0, len(adj[u]))
		for v := range adj[u] {
			nbrs = append(nbrs, v)
		}
		d := len(nbrs)
		triads += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if adj[nbrs[i]][nbrs[j]] {
					triangles++
				}
			}
		}
	}
	if triads == 0 {
		return 0
	}
	return float64(triangles) / float64(triads) // triangles already counted 3×
}

func TestHolmeKimClustersMoreThanBA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 800, 4
	ba := BarabasiAlbert(n, m, rand.New(rand.NewSource(4)))
	hk := HolmeKim(n, m, 0.8, rng)
	checkEdgeList(t, n, hk)
	if want := (n - m) * m; len(hk) != want {
		t.Fatalf("HolmeKim edge count %d, want %d", len(hk), want)
	}
	cBA := globalClustering(n, ba)
	cHK := globalClustering(n, hk)
	if cHK < 2*cBA {
		t.Fatalf("HolmeKim clustering %.4f not clearly above BA %.4f", cHK, cBA)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, k := 200, 6
	// beta=0: exact ring lattice.
	edges := WattsStrogatz(n, k, 0, rng)
	checkEdgeList(t, n, edges)
	if len(edges) != n*k/2 {
		t.Fatalf("ring lattice has %d edges, want %d", len(edges), n*k/2)
	}
	// beta=0.3: same order of magnitude, valid edges.
	edges = WattsStrogatz(n, k, 0.3, rng)
	checkEdgeList(t, n, edges)
	if len(edges) < n*k/2-n/10 {
		t.Fatalf("rewired lattice lost too many edges: %d", len(edges))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd k should panic")
		}
	}()
	WattsStrogatz(10, 3, 0.1, rng)
}

func TestPlantedCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 60
	edges, planted := PlantedCliques(n, 3, 6, 0.05, rng)
	checkEdgeList(t, n, edges)
	if len(planted) != 3 {
		t.Fatalf("planted %d cliques", len(planted))
	}
	adj := make(map[int64]bool)
	for _, e := range edges {
		adj[pairKey(e[0], e[1])] = true
	}
	for _, clique := range planted {
		if len(clique) != 6 {
			t.Fatalf("planted clique size %d", len(clique))
		}
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				if !adj[pairKey(clique[i], clique[j])] {
					t.Fatalf("planted pair {%d,%d} missing", clique[i], clique[j])
				}
			}
		}
	}
}

func TestChungLuDegreeTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	weights := PowerLawWeights(n, 2.3, 12)
	edges := ChungLu(weights, rng)
	checkEdgeList(t, n, edges)
	// Total degree should be near Σw (up to clamping loss at hubs).
	want := 0.0
	for _, w := range weights {
		want += w
	}
	got := float64(2 * len(edges))
	if got < want*0.75 || got > want*1.1 {
		t.Fatalf("ChungLu total degree %v, expected near %v", got, want)
	}
}

func TestPowerLawWeightsMean(t *testing.T) {
	w := PowerLawWeights(1000, 2.5, 8)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if mean := sum / 1000; math.Abs(mean-8) > 1e-9 {
		t.Fatalf("mean weight %v, want 8", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("gamma <= 1 should panic")
		}
	}()
	PowerLawWeights(10, 1.0, 5)
}

func TestTrimEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := CompletePairs(10)
	trimmed := TrimEdges(edges, 20, rng)
	checkEdgeList(t, 10, trimmed)
	if len(trimmed) != 20 {
		t.Fatalf("trimmed to %d, want 20", len(trimmed))
	}
	if got := TrimEdges(edges, 100, rng); len(got) != len(edges) {
		t.Fatal("trim above size should be identity")
	}
}

func TestUniformProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pf := UniformProb()
	for i := 0; i < 10000; i++ {
		p := pf(rng, 0, 1)
		if p <= 0 || p > 1 {
			t.Fatalf("UniformProb emitted %v outside (0,1]", p)
		}
	}
	pf2 := UniformRangeProb(0.4, 0.9)
	for i := 0; i < 10000; i++ {
		p := pf2(rng, 0, 1)
		if p <= 0.4 || p > 0.9 {
			t.Fatalf("UniformRangeProb emitted %v outside (0.4,0.9]", p)
		}
	}
}

func TestDyadicProb(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pf := DyadicProb(3)
	allowed := map[float64]bool{1: true, 0.5: true, 0.25: true, 0.125: true}
	for i := 0; i < 1000; i++ {
		if p := pf(rng, 0, 0); !allowed[p] {
			t.Fatalf("DyadicProb emitted %v", p)
		}
	}
}

func TestConstProb(t *testing.T) {
	pf := ConstProb(0.42)
	if pf(nil, 3, 4) != 0.42 {
		t.Fatal("ConstProb wrong")
	}
}

func TestBetaProbDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pf := BetaProb(2, 5)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		p := pf(rng, 0, 0)
		if p <= 0 || p > 1 {
			t.Fatalf("BetaProb emitted %v", p)
		}
		sum += p
	}
	mean := sum / trials
	if math.Abs(mean-2.0/7.0) > 0.02 {
		t.Fatalf("Beta(2,5) sample mean %v, want ≈ %v", mean, 2.0/7.0)
	}
}

func TestMixtureProb(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pf := MixtureProb(
		MixtureComponent{Weight: 1, F: ConstProb(0.2)},
		MixtureComponent{Weight: 3, F: ConstProb(0.8)},
	)
	lo, hi := 0, 0
	for i := 0; i < 10000; i++ {
		switch pf(rng, 0, 0) {
		case 0.2:
			lo++
		case 0.8:
			hi++
		default:
			t.Fatal("unexpected mixture value")
		}
	}
	ratio := float64(hi) / float64(lo)
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("mixture ratio %v, want ≈ 3", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight mixture should panic")
		}
	}()
	MixtureProb(MixtureComponent{Weight: 0, F: ConstProb(0.5)})
}

func TestGammaSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []float64{0.5, 1, 2, 7.5} {
		sum := 0.0
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += sampleGamma(rng, shape)
		}
		mean := sum / trials
		if math.Abs(mean-shape) > 0.08*shape+0.03 {
			t.Fatalf("Gamma(%v) sample mean %v", shape, mean)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive shape should panic")
		}
	}()
	sampleGamma(rng, 0)
}

func TestTeamModel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	model := TeamModel{Members: 200, Teams: 300, ActivityExp: 0.8,
		SizeDist: []float64{0.2, 0.4, 0.3, 0.1}}
	counts := model.CollabCounts(rng)
	if len(counts) == 0 {
		t.Fatal("no collaborations generated")
	}
	for pair, c := range counts {
		if pair[0] >= pair[1] {
			t.Fatalf("pair %v not normalized", pair)
		}
		if c < 1 {
			t.Fatalf("count %d < 1", c)
		}
	}
}

func TestCoauthorshipProb(t *testing.T) {
	if got := CoauthorshipProb(10); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("CoauthorshipProb(10) = %v", got)
	}
	if CoauthorshipProb(1) >= CoauthorshipProb(5) {
		t.Fatal("probability must grow with collaboration count")
	}
}

func TestBuildUncertain(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g, err := BuildUncertain(5, [][2]int{{0, 1}, {1, 2}}, ConstProb(0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumVertices() != 5 {
		t.Fatal("BuildUncertain wrong shape")
	}
	if _, err := BuildUncertain(5, [][2]int{{0, 0}}, ConstProb(0.5), rng); err == nil {
		t.Fatal("self-loop should propagate error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := BarabasiAlbert(300, 5, rand.New(rand.NewSource(99)))
	b := BarabasiAlbert(300, 5, rand.New(rand.NewSource(99)))
	if len(a) != len(b) {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func sameGraph(a, b *uncertain.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func TestDatasetScalesAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset synthesis in -short mode")
	}
	cases := []struct {
		name   string
		build  func(int64) *uncertain.Graph
		n, m   int
		exactM bool
	}{
		{"PPILike", PPILike, 3751, 3692, true},
		{"Gnutella08Like", Gnutella08Like, 6301, 20777, true},
		{"CollaborationLike", CollaborationLike, 5242, 28980, true},
		{"WikiVoteLike", WikiVoteLike, 7118, 103689, true},
	}
	for _, c := range cases {
		g := c.build(1)
		if g.NumVertices() != c.n {
			t.Errorf("%s: n = %d, want %d", c.name, g.NumVertices(), c.n)
		}
		if c.exactM && g.NumEdges() != c.m {
			t.Errorf("%s: m = %d, want %d", c.name, g.NumEdges(), c.m)
		}
		if !sameGraph(g, c.build(1)) {
			t.Errorf("%s: not deterministic for equal seeds", c.name)
		}
		if sameGraph(g, c.build(2)) {
			t.Errorf("%s: identical graphs for different seeds", c.name)
		}
	}
}

func TestDBLPLikeScaled(t *testing.T) {
	dblpTestScale := 0.005
	g := DBLPLike(dblpTestScale, 7) // ≈ 3424 authors
	want := int(684911 * dblpTestScale)
	if got := g.NumVertices(); got != want {
		t.Fatalf("DBLPLike vertices = %d, want %d", got, want)
	}
	if g.NumEdges() == 0 {
		t.Fatal("DBLPLike generated no edges")
	}
	// Probabilities must follow the 1-e^{-c/10} law: all values in the
	// discrete set {CoauthorshipProb(1), CoauthorshipProb(2), ...}.
	valid := map[float64]bool{}
	for c := 1; c <= 200; c++ {
		valid[CoauthorshipProb(c)] = true
	}
	for _, e := range g.Edges() {
		if !valid[e.P] {
			t.Fatalf("edge probability %v not on the co-authorship law", e.P)
		}
	}
}

func TestPPIConfidencesBimodal(t *testing.T) {
	g := PPILike(3)
	h := uncertain.ProbHistogram(g, 10)
	low := h[1] + h[2] + h[3] + h[4] // (0.1, 0.5]
	high := h[7] + h[8] + h[9]       // (0.7, 1.0]
	if low == 0 || high == 0 {
		t.Fatalf("expected bimodal confidences, histogram %v", h)
	}
	if float64(high) < 0.15*float64(g.NumEdges()) {
		t.Fatalf("high-confidence mode too small: %v of %d", high, g.NumEdges())
	}
}

func TestTable1Registry(t *testing.T) {
	ds := Table1(0.05)
	if len(ds) != 13 {
		t.Fatalf("Table1 has %d entries, want 13", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
		if d.Build == nil || d.PaperN <= 0 || d.PaperM <= 0 {
			t.Fatalf("dataset %s malformed", d.Name)
		}
	}
	for _, want := range []string{"Fruit-Fly", "DBLP10", "ca-GrQc", "wiki-vote", "BA5000", "BA10000"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
}
