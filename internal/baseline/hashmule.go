package baseline

import (
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// HashMULE is the ablation of DESIGN.md §6 item 4: the exact MULE recursion
// (incremental multipliers, I/X maximality test) but with the GenerateI /
// GenerateX filters implemented as per-vertex hash-map probability lookups
// instead of two-pointer merges over the sorted CSR rows. The outputs are
// identical; only the constant factors differ, which the ablation benchmark
// measures.

// HashStats counts the work of a HashMULE run.
type HashStats struct {
	Calls   int64 // search-tree nodes
	Lookups int64 // hash-map probability lookups
	Emitted int64 // α-maximal cliques reported
}

// EnumerateHashMULE enumerates all α-maximal cliques of g with the
// hash-lookup variant of MULE. alpha must lie in (0, 1].
func EnumerateHashMULE(g *uncertain.Graph, alpha float64, visit Visitor) HashStats {
	if !(alpha > 0 && alpha <= 1) {
		panic("baseline: alpha must be in (0,1]")
	}
	pg := g.PruneAlpha(alpha)
	n := pg.NumVertices()
	e := &hashEnum{alpha: alpha, visit: visit, adj: make([]map[int32]float64, n)}
	for u := 0; u < n; u++ {
		row, probs := pg.Adjacency(u)
		m := make(map[int32]float64, len(row))
		for i, v := range row {
			m[v] = probs[i]
		}
		e.adj[u] = m
	}
	rootI := make([]hashEntry, n)
	for v := 0; v < n; v++ {
		rootI[v] = hashEntry{int32(v), 1}
	}
	e.recurse(nil, 1, rootI, nil)
	return e.stats
}

// CollectHashMULE runs EnumerateHashMULE and returns the cliques in
// canonical order.
func CollectHashMULE(g *uncertain.Graph, alpha float64) [][]int {
	var out [][]int
	EnumerateHashMULE(g, alpha, func(c []int, _ float64) bool {
		cp := make([]int, len(c))
		copy(cp, c)
		out = append(out, cp)
		return true
	})
	Canonicalize(out)
	return out
}

type hashEntry struct {
	v int32
	r float64
}

type hashEnum struct {
	adj     []map[int32]float64
	alpha   float64
	visit   Visitor
	stats   HashStats
	stopped bool
	emitBuf []int
}

func (e *hashEnum) recurse(C []int32, q float64, I, X []hashEntry) {
	if e.stopped {
		return
	}
	e.stats.Calls++
	if len(I) == 0 && len(X) == 0 {
		if len(C) > 0 {
			e.emit(C, q)
		}
		return
	}
	for idx := 0; idx < len(I); idx++ {
		if e.stopped {
			return
		}
		u, r := I[idx].v, I[idx].r
		q2 := q * r
		C2 := append(C, u)
		I2 := e.filter(I[idx+1:], u, q2)
		X2 := e.filter(X, u, q2)
		e.recurse(C2, q2, I2, X2)
		X = append(X, hashEntry{u, r})
	}
}

// filter keeps the entries adjacent to u whose extended product still meets
// the threshold — one hash lookup per entry, the data-structure choice this
// variant ablates.
func (e *hashEnum) filter(entries []hashEntry, u int32, q2 float64) []hashEntry {
	row := e.adj[u]
	out := make([]hashEntry, 0, len(entries))
	for _, en := range entries {
		e.stats.Lookups++
		p, ok := row[en.v]
		if !ok {
			continue
		}
		r2 := en.r * p
		if q2*r2 >= e.alpha {
			out = append(out, hashEntry{en.v, r2})
		}
	}
	return out
}

func (e *hashEnum) emit(C []int32, q float64) {
	buf := e.emitBuf[:0]
	for _, v := range C {
		buf = append(buf, int(v))
	}
	e.emitBuf = buf
	e.stats.Emitted++
	if e.visit != nil && !e.visit(buf, q) {
		e.stopped = true
	}
}
