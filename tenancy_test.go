package mule_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/faultinject"
	"github.com/uncertain-graphs/mule/internal/gen"
)

// soakGraph builds one of the small fixed graphs the soak queries cycle
// through — small enough that a single query is microseconds of work, dense
// enough that every miner has something to find.
func soakGraph(n int, p float64, seed int64) *mule.Graph {
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.BuildUncertain(n, gen.GNP(n, p, rng), gen.UniformRangeProb(0.4, 1.0), rng)
	if err != nil {
		panic(err)
	}
	return g
}

// soakBaseline holds the serial ground truth one soak graph is checked
// against on every concurrent run.
type soakBaseline struct {
	g       *mule.Graph
	alpha   float64
	eta     float64
	cliques []mule.Clique
	cstats  mule.Stats // serial clique stats: the anti-bleed reference
	truss   []mule.EdgeTruss
	cores   []mule.VertexCore
}

func buildSoakBaselines(t *testing.T) []soakBaseline {
	t.Helper()
	ctx := context.Background()
	shapes := []struct {
		n    int
		p    float64
		seed int64
	}{
		{18, 0.35, 1}, {24, 0.3, 2}, {20, 0.45, 3}, {16, 0.55, 4},
	}
	out := make([]soakBaseline, len(shapes))
	for i, s := range shapes {
		b := soakBaseline{g: soakGraph(s.n, s.p, s.seed), alpha: 0.125, eta: 0.5}
		q, err := mule.NewQuery(b.g, b.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if b.cliques, err = q.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		if b.cstats, err = q.Run(ctx, nil); err != nil {
			t.Fatal(err)
		}
		tq, err := mule.NewTrussQuery(b.g, b.eta)
		if err != nil {
			t.Fatal(err)
		}
		if b.truss, err = tq.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		cq, err := mule.NewCoreQuery(b.g, b.eta)
		if err != nil {
			t.Fatal(err)
		}
		if b.cores, err = cq.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// TestExecutorSoak is the PR's concurrency acceptance test: thousands of
// small mixed-miner queries across 64 goroutines, all through ONE shared
// executor with eight admission-limited tenants. Run with -race. It asserts,
// per query:
//
//   - results identical to the serial baseline (shared-executor scheduling
//     never changes any miner's output);
//   - parallel clique Stats identical to the serial run's Calls/Emitted/
//     CandidateOps/SizePruned — the zero-stats-bleed property across
//     cross-query steals;
//
// and, at the end: pooled-arena conservation (checkouts == returns), no
// goroutine leaks after broken parallel streams, per-tenant peaks within
// their caps, and zero rejections (the queue absorbs over-cap bursts).
// Every seventh query is a panic-containment probe — a visitor that panics
// mid-run — which must surface as a typed ErrPanic/StatusPanicked failure
// confined to its own query.
func TestExecutorSoak(t *testing.T) {
	bases := buildSoakBaselines(t)

	ex := mule.NewExecutor(8)
	const tenants = 8
	for i := 0; i < tenants; i++ {
		ex.SetTenantLimits("t"+strconv.Itoa(i), mule.Limits{MaxInFlight: 4, MaxQueued: 64})
	}

	total := 2000
	workers := 64
	if testing.Short() {
		total = 240
		workers = 16
	}

	// Warm the executor and the pools, then snapshot the leak/conservation
	// baselines: pool workers are persistent by design and must not count.
	{
		q, err := mule.NewQuery(bases[0].g, bases[0].alpha,
			mule.WithWorkers(4), mule.WithExecutor(ex))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Collect(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	checkouts0, returns0 := core.PoolCounters()
	baseGoroutines := runtime.NumGoroutine()

	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				b := &bases[i%len(bases)]
				tenant := mule.WithTenant("t" + strconv.Itoa(i%tenants))
				var err error
				if i%7 == 0 {
					// Every seventh query is the panic-containment probe: a
					// visitor that panics mid-run must fail with the typed
					// sentinel while its neighbors stay exact.
					if err = soakPanicProbe(ctx, b, mule.WithExecutor(ex), tenant); err != nil {
						select {
						case errc <- fmt.Errorf("query %d: %w", i, err):
						default:
						}
						return
					}
					continue
				}
				switch i % 5 {
				case 0: // serial clique query, admission-gated
					err = soakCliqueCollect(ctx, b, mule.WithExecutor(ex), tenant)
				case 1: // parallel clique query on the shared pool + stats parity
					err = soakCliqueParallel(ctx, b, mule.WithExecutor(ex), tenant)
				case 2: // broken parallel stream: the leak probe
					err = soakBrokenStream(ctx, b, mule.WithExecutor(ex), tenant)
				case 3:
					err = soakTruss(ctx, b, mule.WithExecutor(ex), tenant)
				case 4:
					err = soakCore(ctx, b, mule.WithExecutor(ex), tenant)
				}
				if err != nil {
					select {
					case errc <- fmt.Errorf("query %d: %w", i, err):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// No goroutine may outlive its query (broken streams included).
	waitNoExtraGoroutines(t, baseGoroutines)

	// Pooled scratch conservation: everything checked out during the soak
	// went back to its pool, on normal and broken-stream unwinds alike.
	checkouts1, returns1 := core.PoolCounters()
	if d1, d2 := checkouts1-checkouts0, returns1-returns0; d1 != d2 {
		t.Fatalf("pool conservation: %d checkouts vs %d returns during soak", d1, d2)
	}

	s := ex.AdmissionStats()
	var admitted int64
	for i := 0; i < tenants; i++ {
		id := "t" + strconv.Itoa(i)
		if s.InFlight[id] != 0 {
			t.Errorf("tenant %s: %d still in flight after the soak", id, s.InFlight[id])
		}
		if s.Peak[id] > 4 {
			t.Errorf("tenant %s: peak %d exceeds its MaxInFlight 4", id, s.Peak[id])
		}
	}
	admitted = s.Admitted
	if s.Rejected != 0 {
		t.Errorf("%d rejections despite queue capacity", s.Rejected)
	}
	if admitted < int64(total) {
		t.Errorf("admitted %d < %d queries", admitted, total)
	}
	ex.Close()
}

func soakCliqueCollect(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	q, err := mule.NewQuery(b.g, b.alpha, opts...)
	if err != nil {
		return err
	}
	got, err := q.Collect(ctx)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, b.cliques) {
		return fmt.Errorf("serial clique run diverged from baseline")
	}
	return nil
}

func soakCliqueParallel(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	opts = append(opts, mule.WithWorkers(4), mule.WithStealGranularity(1))
	q, err := mule.NewQuery(b.g, b.alpha, opts...)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	n := 0
	stats, err := q.Run(ctx, func(c []int, p float64) bool {
		mu.Lock()
		n++
		mu.Unlock()
		return true
	})
	if err != nil {
		return err
	}
	if int64(n) != b.cstats.Emitted {
		return fmt.Errorf("parallel run delivered %d cliques, want %d", n, b.cstats.Emitted)
	}
	// The anti-bleed check: steals from concurrent foreign queries must not
	// perturb this query's counters in any direction.
	if stats.Calls != b.cstats.Calls || stats.Emitted != b.cstats.Emitted ||
		stats.CandidateOps != b.cstats.CandidateOps || stats.SizePruned != b.cstats.SizePruned {
		return fmt.Errorf("stats bleed: got %+v, want %+v", stats, b.cstats)
	}
	return nil
}

func soakBrokenStream(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	opts = append(opts, mule.WithWorkers(4))
	q, err := mule.NewQuery(b.g, b.alpha, opts...)
	if err != nil {
		return err
	}
	seen := 0
	for _, err := range q.Cliques(ctx) {
		if err != nil {
			return err
		}
		seen++
		if seen >= 2 {
			break // abandon the stream mid-flight
		}
	}
	return nil
}

func soakTruss(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	q, err := mule.NewTrussQuery(b.g, b.eta, opts...)
	if err != nil {
		return err
	}
	got, err := q.Collect(ctx)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, b.truss) {
		return fmt.Errorf("truss run diverged from baseline")
	}
	return nil
}

// soakPanicProbe runs a parallel clique query whose visitor panics on its
// first emission and asserts the full containment contract: a wrapped
// ErrPanic carrying a *PanicError with the panic value and a stack, and
// StatusPanicked on the stats. Under an active fault-injection plan an
// injected panic may win the first-cause latch instead, so the probe accepts
// the injected marker value too — the sentinel contract is identical.
func soakPanicProbe(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	opts = append(opts, mule.WithWorkers(4))
	q, err := mule.NewQuery(b.g, b.alpha, opts...)
	if err != nil {
		return err
	}
	stats, err := q.Run(ctx, func([]int, float64) bool { panic("storm") })
	if !errors.Is(err, mule.ErrPanic) {
		return fmt.Errorf("panic probe: err = %v, want wrapped ErrPanic", err)
	}
	var pe *mule.PanicError
	if !errors.As(err, &pe) {
		return fmt.Errorf("panic probe: no *PanicError in %v", err)
	}
	if _, injected := pe.Value.(faultinject.InjectedPanic); !injected && pe.Value != "storm" {
		return fmt.Errorf("panic probe: unexpected panic value %#v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		return fmt.Errorf("panic probe: empty stack capture")
	}
	if stats.Status != mule.StatusPanicked {
		return fmt.Errorf("panic probe: status %v, want panicked", stats.Status)
	}
	return nil
}

func soakCore(ctx context.Context, b *soakBaseline, opts ...mule.Option) error {
	q, err := mule.NewCoreQuery(b.g, b.eta, opts...)
	if err != nil {
		return err
	}
	got, err := q.Collect(ctx)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, b.cores) {
		return fmt.Errorf("core run diverged from baseline")
	}
	return nil
}

// TestTenancySentinelTable pins the typed-sentinel contract of the admission
// layer across all five prepared-query constructors: WithTenant("") and
// WithExecutor(nil) are eager ErrConfig at construction, and a budget that
// can never fit its tenant's aggregate cap is ErrAdmission at run time —
// for every surface, including the non-streaming extras.
func TestTenancySentinelTable(t *testing.T) {
	ctx := context.Background()
	g, err := mule.FromEdges(3, []mule.Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := mule.BipartiteFromEdges(2, 2, []mule.BipartiteEdge{{L: 0, R: 0, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	ex := mule.NewExecutor(1)
	defer ex.Close()
	// Aggregate budget cap of 10: any WithBudget(100) query of this tenant
	// is rejected outright — deterministically, with nothing else running.
	ex.SetTenantLimits("capped", mule.Limits{MaxBudget: 10})
	gated := []mule.Option{mule.WithExecutor(ex), mule.WithTenant("capped"), mule.WithBudget(100)}

	construction := []struct {
		name   string
		err    func() error
		target error
	}{
		{"clique empty tenant", func() error { _, err := mule.NewQuery(g, 0.5, mule.WithTenant("")); return err }, mule.ErrConfig},
		{"clique nil executor", func() error { _, err := mule.NewQuery(g, 0.5, mule.WithExecutor(nil)); return err }, mule.ErrConfig},
		{"biclique empty tenant", func() error { _, err := mule.NewBicliqueQuery(bg, 0.5, mule.WithTenant("")); return err }, mule.ErrConfig},
		{"biclique nil executor", func() error { _, err := mule.NewBicliqueQuery(bg, 0.5, mule.WithExecutor(nil)); return err }, mule.ErrConfig},
		{"quasi empty tenant", func() error {
			_, err := mule.NewQuasiQuery(g, mule.WithGamma(0.5), mule.WithTenant(""))
			return err
		}, mule.ErrConfig},
		{"quasi nil executor", func() error {
			_, err := mule.NewQuasiQuery(g, mule.WithGamma(0.5), mule.WithExecutor(nil))
			return err
		}, mule.ErrConfig},
		{"truss empty tenant", func() error { _, err := mule.NewTrussQuery(g, 0.5, mule.WithTenant("")); return err }, mule.ErrConfig},
		{"truss nil executor", func() error { _, err := mule.NewTrussQuery(g, 0.5, mule.WithExecutor(nil)); return err }, mule.ErrConfig},
		{"core empty tenant", func() error { _, err := mule.NewCoreQuery(g, 0.5, mule.WithTenant("")); return err }, mule.ErrConfig},
		{"core nil executor", func() error { _, err := mule.NewCoreQuery(g, 0.5, mule.WithExecutor(nil)); return err }, mule.ErrConfig},
	}
	for _, tc := range construction {
		if err := tc.err(); !errors.Is(err, tc.target) {
			t.Errorf("%s: err = %v, want wrapped %v", tc.name, err, tc.target)
		}
	}

	admission := []struct {
		name string
		err  func() error
	}{
		{"clique Run", func() error {
			q, err := mule.NewQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			stats, err := q.Run(ctx, nil)
			if err != nil && stats.Status != mule.StatusFailed {
				return fmt.Errorf("status %v, want failed (err %w)", stats.Status, err)
			}
			return err
		}},
		{"clique Maximum", func() error {
			q, err := mule.NewQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, _, err = q.Maximum(ctx)
			return err
		}},
		{"biclique Run", func() error {
			q, err := mule.NewBicliqueQuery(bg, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Run(ctx, nil)
			return err
		}},
		{"quasi Collect", func() error {
			q, err := mule.NewQuasiQuery(g, append([]mule.Option{mule.WithGamma(0.5)}, gated...)...)
			if err != nil {
				return err
			}
			_, err = q.Collect(ctx)
			return err
		}},
		{"truss Run", func() error {
			q, err := mule.NewTrussQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Run(ctx, nil)
			return err
		}},
		{"truss Truss", func() error {
			q, err := mule.NewTrussQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Truss(ctx, 2)
			return err
		}},
		{"core Run", func() error {
			q, err := mule.NewCoreQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Run(ctx, nil)
			return err
		}},
		{"core Decompose", func() error {
			q, err := mule.NewCoreQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Decompose(ctx)
			return err
		}},
		{"core Core", func() error {
			q, err := mule.NewCoreQuery(g, 0.5, gated...)
			if err != nil {
				return err
			}
			_, err = q.Core(ctx, 1)
			return err
		}},
	}
	for _, tc := range admission {
		if err := tc.err(); !errors.Is(err, mule.ErrAdmission) {
			t.Errorf("%s: err = %v, want wrapped ErrAdmission", tc.name, err)
		}
	}

	// A fitting budget on the same capped tenant still runs: the cap gates
	// aggregates, not existence.
	q, err := mule.NewQuery(g, 0.5, mule.WithExecutor(ex), mule.WithTenant("capped"), mule.WithBudget(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(ctx, nil); err != nil {
		t.Fatalf("fitting budget rejected: %v", err)
	}
}

// TestAdmissionCancelWhileQueued is the new cancellation-matrix cell: a
// query whose context fires while it waits in the admission queue returns a
// wrapped context.Canceled (not ErrAdmission), leaks nothing, and leaves the
// tenant's capacity intact for the next run.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	ex := mule.NewExecutor(2)
	defer ex.Close()
	ex.SetTenantLimits("q", mule.Limits{MaxInFlight: 1, MaxQueued: 4})
	g := soakGraph(18, 0.35, 9)
	base := runtime.NumGoroutine()

	// Hold the tenant's only seat: a run parked inside its visitor.
	hold := make(chan struct{})
	entered := make(chan struct{})
	holder, err := mule.NewQuery(g, 0.125, mule.WithExecutor(ex), mule.WithTenant("q"))
	if err != nil {
		t.Fatal(err)
	}
	var holderErr error
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		first := true
		_, holderErr = holder.Run(context.Background(), func([]int, float64) bool {
			if first {
				first = false
				close(entered)
				<-hold
			}
			return true
		})
	}()
	<-entered

	// The queued query: cancel it mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	queued, err := mule.NewQuery(g, 0.125, mule.WithExecutor(ex), mule.WithTenant("q"))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		stats, err := queued.Run(ctx, nil)
		if err != nil && stats.Status != mule.StatusFailed {
			err = fmt.Errorf("queued run status %v, want failed: %w", stats.Status, err)
		}
		errc <- err
	}()
	waitAdmissionQueued(t, ex, 1)
	cancel()
	qerr := <-errc
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("cancel-while-queued: err = %v, want wrapped context.Canceled", qerr)
	}
	if errors.Is(qerr, mule.ErrAdmission) {
		t.Fatal("cancel-while-queued must not report ErrAdmission")
	}

	// Release the holder; the seat must be reusable immediately.
	close(hold)
	<-holderDone
	if holderErr != nil {
		t.Fatal(holderErr)
	}
	after, err := mule.NewQuery(g, 0.125, mule.WithExecutor(ex), mule.WithTenant("q"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := after.Run(context.Background(), nil); err != nil {
		t.Fatalf("post-cancel run rejected: %v", err)
	}
	waitNoExtraGoroutines(t, base)
}

// waitAdmissionQueued blocks until the executor reports n queued waiters.
func waitAdmissionQueued(t *testing.T, ex *mule.Executor, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ex.AdmissionStats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d admission waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWithTenantOnDefaultExecutor: a tenant without WithExecutor is
// accounted on the process-wide DefaultExecutor.
func TestWithTenantOnDefaultExecutor(t *testing.T) {
	g := soakGraph(16, 0.4, 11)
	q, err := mule.NewQuery(g, 0.25, mule.WithTenant("default-exec-probe"))
	if err != nil {
		t.Fatal(err)
	}
	before := mule.DefaultExecutor().AdmissionStats().Admitted
	if _, err := q.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	s := mule.DefaultExecutor().AdmissionStats()
	if s.Admitted != before+1 {
		t.Fatalf("default executor admitted %d runs, want %d", s.Admitted, before+1)
	}
	if s.InFlight["default-exec-probe"] != 0 {
		t.Fatal("tenant still accounted in flight after the run")
	}
}

// ExampleWithTenant shows admission control end to end: a private Executor,
// a tenant capped at one concurrent query with no wait queue, and the typed
// ErrAdmission rejection an over-cap run observes.
func ExampleWithTenant() {
	g, _ := mule.FromEdges(3, []mule.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9}, {U: 0, V: 2, P: 0.9},
	})
	ex := mule.NewExecutor(2)
	defer ex.Close()
	// At most one of acme's queries may hold a node budget at a time, and
	// the aggregate budget of its admitted queries may not exceed 1000.
	ex.SetTenantLimits("acme", mule.Limits{MaxInFlight: 1, MaxBudget: 1000})

	q, _ := mule.NewQuery(g, 0.5,
		mule.WithExecutor(ex),
		mule.WithTenant("acme"),
		mule.WithBudget(5000), // exceeds the tenant's aggregate cap
	)
	_, err := q.Run(context.Background(), nil)
	fmt.Println(errors.Is(err, mule.ErrAdmission))

	q2, _ := mule.NewQuery(g, 0.5,
		mule.WithExecutor(ex),
		mule.WithTenant("acme"),
		mule.WithBudget(500), // fits
	)
	stats, err := q2.Run(context.Background(), nil)
	fmt.Println(err == nil, stats.Emitted)
	// Output:
	// true
	// true 1
}
