package mule

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uquasi"
	"github.com/uncertain-graphs/mule/internal/utruss"
)

// This file gives every §6 dense-substructure miner the same prepared-query
// ergonomics as NewQuery: an immutable, concurrency-safe query value
// validated eagerly against the shared typed sentinels, context-aware run
// methods (Run / Collect / Count plus per-miner extras), and a Stream
// range-over-func with the same break-stops-the-engine, no-goroutine-leak
// contract as Query.Cliques. The deprecated flat functions in extensions.go
// funnel through these constructors, so no entry point can run a
// configuration the query surface would reject.

// streamOf adapts a visitor-driven run to a range-over-func stream with
// the Query.Cliques contract: runFn invokes emit once per result and
// returns the run's error; results are yielded with a nil error, an
// aborted run ends the stream with one final (zero, err) pair, and a
// consumer break makes emit return false so the engine stops on the spot.
// Every extension Stream method routes through this one adapter, so the
// break/error shape cannot drift between miners.
func streamOf[T any](runFn func(emit func(T) bool) error) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		consumerDone := false
		err := runFn(func(v T) bool {
			if !yield(v, nil) {
				consumerDone = true
				return false
			}
			return true
		})
		if err != nil && !consumerDone {
			var zero T
			yield(zero, err)
		}
	}
}

// limitVisitor wraps a single-argument visitor with the WithLimit bound,
// reporting through userStopped whether the user's visitor (as opposed to
// the limit) ended the run. A nil visit with no limit stays nil so the
// engines skip the callback entirely.
func limitVisitor[T any](visit func(T) bool, limit int64, userStopped *bool) func(T) bool {
	if limit > 0 {
		remaining := limit
		return func(v T) bool {
			if visit != nil && !visit(v) {
				*userStopped = true
				return false
			}
			remaining--
			return remaining > 0
		}
	}
	if visit == nil {
		return nil
	}
	return func(v T) bool {
		if !visit(v) {
			*userStopped = true
			return false
		}
		return true
	}
}

// --- Biclique queries ---

// BicliqueQuery is a prepared enumeration of the α-maximal bicliques of one
// uncertain bipartite graph at one threshold. Build it with
// NewBicliqueQuery; it is immutable after construction and safe for
// concurrent use, and every run method honors its context exactly like a
// clique Query (the search polls on a node-count interval).
type BicliqueQuery struct {
	g         *Bipartite
	alpha     float64
	cfg       ubiclique.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewBicliqueQuery prepares an enumeration of the α-maximal bicliques of g.
// It validates eagerly: a nil graph, an alpha outside (0,1], or an invalid
// option combination is reported here (wrapping ErrNilGraph, ErrAlphaRange,
// or ErrConfig). Applicable options: WithSides, WithLimit, WithBudget.
func NewBicliqueQuery(g *Bipartite, alpha float64, opts ...Option) (*BicliqueQuery, error) {
	o, err := applyOptions(kindBiclique, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	cfg := ubiclique.Config{MinLeft: o.minL, MinRight: o.minR, Budget: o.cfg.Budget, Stall: o.stall}
	q, err := newBicliqueQuery(g, alpha, cfg, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newBicliqueQuery is the single constructor behind NewBicliqueQuery and
// the deprecated wrappers; all invariants are enforced here.
func newBicliqueQuery(g *Bipartite, alpha float64, cfg ubiclique.Config, limit int64) (*BicliqueQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := ubiclique.Validate(g, alpha, cfg); err != nil {
		return nil, err
	}
	return &BicliqueQuery{g: g, alpha: alpha, cfg: cfg, limit: limit}, nil
}

// run executes the query under its WithLimit bound, reporting whether the
// user-supplied visitor ended the run early (as opposed to the limit).
func (q *BicliqueQuery) run(ctx context.Context, visit BicliqueVisitor) (stats BicliqueStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return BicliqueStats{Status: StatusFailed}, false, err
	}
	defer release()
	wrapped := visit
	if q.limit > 0 {
		remaining := q.limit
		wrapped = func(l, r []int, p float64) bool {
			if visit != nil && !visit(l, r, p) {
				userStopped = true
				return false
			}
			remaining--
			return remaining > 0
		}
	} else if visit != nil {
		wrapped = func(l, r []int, p float64) bool {
			if !visit(l, r, p) {
				userStopped = true
				return false
			}
			return true
		}
	}
	stats, err = ubiclique.EnumerateContext(ctx, q.g, q.alpha, wrapped, q.cfg)
	return stats, userStopped, err
}

// Run enumerates the query's bicliques, invoking visit for each (visit may
// be nil to only count; see BicliqueStats.Emitted). Like Query.Run it
// returns an error wrapping context.Canceled / context.DeadlineExceeded on
// a fired context, ErrBudget on an exhausted WithBudget bound, and
// ErrStopped when visit returned false — err == nil means the enumeration
// ran to completion or to its WithLimit bound, with Stats.Status recording
// the terminal state either way.
func (q *BicliqueQuery) Run(ctx context.Context, visit BicliqueVisitor) (BicliqueStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect materializes the query's bicliques in canonical order (each side
// sorted ascending; bicliques sorted by left side, ties by right).
func (q *BicliqueQuery) Collect(ctx context.Context) ([]Biclique, error) {
	var out []Biclique
	_, _, err := q.run(ctx, func(l, r []int, p float64) bool {
		out = append(out, Biclique{
			Left:  append([]int(nil), l...),
			Right: append([]int(nil), r...),
			Prob:  p,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	ubiclique.SortBicliques(out)
	return out, nil
}

// Count returns the number of bicliques the query enumerates, without
// materializing them.
func (q *BicliqueQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the query's bicliques as a range-over-func stream:
//
//	for b, err := range q.Stream(ctx) {
//		if err != nil {
//			return err // ctx fired or the budget ran out
//		}
//		use(b)
//	}
//
// Bicliques are yielded as the search finds them, each with a nil error; if
// the run aborts, one final (Biclique{}, err) pair carries the wrapped
// cause and the stream ends. Breaking out of the loop stops the underlying
// enumeration on the spot and never leaks goroutines (the search is
// single-threaded, so nothing outlives the loop).
func (q *BicliqueQuery) Stream(ctx context.Context) iter.Seq2[Biclique, error] {
	return streamOf(func(emit func(Biclique) bool) error {
		_, _, err := q.run(ctx, func(l, r []int, p float64) bool {
			return emit(Biclique{
				Left:  append([]int(nil), l...),
				Right: append([]int(nil), r...),
				Prob:  p,
			})
		})
		return err
	})
}

// --- Quasi-clique queries ---

// QuasiVisitor receives each maximal expected γ-quasi-clique as a sorted
// vertex slice (caller-owned); returning false stops the report loop.
type QuasiVisitor = uquasi.Visitor

// QuasiQuery is a prepared mining run for the maximal expected
// γ-quasi-cliques of one uncertain graph. Build it with NewQuasiQuery; it
// is immutable after construction and safe for concurrent use.
//
// Quasi-cliques are not hereditary, so maximality needs global knowledge:
// the search must complete before anything is reported. Run, Stream, and
// the WithLimit bound therefore apply to the report loop over the finished
// result — cancellation and WithBudget still abort the mining itself
// mid-search.
type QuasiQuery struct {
	g         *Graph
	cfg       uquasi.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewQuasiQuery prepares a mining run for the maximal expected
// γ-quasi-cliques of g. The density threshold γ comes from WithGamma and is
// required: the mining algorithm supports γ ∈ [0.5, 1], and anything else —
// including the zero value from omitting WithGamma — is rejected here with
// a wrapped ErrGammaRange. Applicable options: WithGamma, WithMinSize,
// WithMaxSize, WithLimit, WithBudget.
func NewQuasiQuery(g *Graph, opts ...Option) (*QuasiQuery, error) {
	o, err := applyOptions(kindQuasi, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	cfg := uquasi.Config{Gamma: o.gamma, MinSize: o.cfg.MinSize, MaxSize: o.maxSize, Budget: o.cfg.Budget, Stall: o.stall}
	q, err := newQuasiQuery(g, cfg, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newQuasiQuery is the single constructor behind NewQuasiQuery and the
// deprecated wrappers; all invariants are enforced here.
func newQuasiQuery(g *Graph, cfg uquasi.Config, limit int64) (*QuasiQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := uquasi.Validate(g, cfg); err != nil {
		return nil, err
	}
	return &QuasiQuery{g: g, cfg: cfg, limit: limit}, nil
}

// run mines the sets and reports them through visit under the WithLimit
// bound. Stats.Emitted reflects the delivered count when a limit or early
// stop truncates the report loop.
func (q *QuasiQuery) run(ctx context.Context, visit QuasiVisitor) (stats QuasiStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return QuasiStats{Status: StatusFailed}, false, err
	}
	defer release()
	sets, stats, err := uquasi.CollectContext(ctx, q.g, q.cfg)
	if err != nil {
		return stats, false, err
	}
	delivered := int64(0)
	for _, s := range sets {
		// Count before invoking the visitor, like every other miner: a set
		// that reached the visitor is emitted even if it stopped the run.
		delivered++
		if visit != nil && !visit(s) {
			userStopped = true
			stats.Status = StatusStopped
			break
		}
		if q.limit > 0 && delivered >= q.limit {
			// Matching Query's WithLimit contract, hitting the bound is a
			// stop even when it lands on the final set.
			stats.Status = StatusStopped
			break
		}
	}
	stats.Emitted = delivered
	return stats, userStopped, err
}

// Run mines the query's quasi-cliques and reports each to visit (visit may
// be nil to only count). The error contract matches Query.Run: wrapped
// context/budget causes for aborts, ErrStopped when visit returned false,
// nil for complete runs and WithLimit truncation.
func (q *QuasiQuery) Run(ctx context.Context, visit QuasiVisitor) (QuasiStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect returns the maximal expected γ-quasi-cliques in canonical order
// (each sorted ascending; sets sorted lexicographically).
func (q *QuasiQuery) Collect(ctx context.Context) ([][]int, error) {
	var out [][]int
	_, _, err := q.run(ctx, func(s []int) bool {
		out = append(out, append([]int(nil), s...))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of maximal expected γ-quasi-cliques, without
// materializing them (subject to WithLimit, like every run method).
func (q *QuasiQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the query's quasi-cliques as a range-over-func stream with
// the same contract as Query.Cliques: each set is yielded with a nil error,
// an aborted run ends with one final (nil, err) pair, and breaking the loop
// stops the report immediately with nothing leaked. Because maximality
// needs global knowledge, the mining runs to completion when the first
// element is requested; sets then stream in canonical order.
func (q *QuasiQuery) Stream(ctx context.Context) iter.Seq2[[]int, error] {
	return streamOf(func(emit func([]int) bool) error {
		_, _, err := q.run(ctx, func(s []int) bool {
			return emit(append([]int(nil), s...))
		})
		return err
	})
}

// --- Truss queries ---

// TrussVisitor receives one edge with its final η-truss number, in peel
// order; returning false stops the decomposition early.
type TrussVisitor = utruss.Visitor

// TrussStats reports the work performed by a truss computation.
type TrussStats = utruss.Stats

// TrussQuery is a prepared (k,η)-truss decomposition of one uncertain
// graph at one confidence threshold η. Build it with NewTrussQuery; it is
// immutable after construction and safe for concurrent use. The peeling
// polls its context between support-probability evaluations, so
// cancellation, deadlines, and WithBudget bounds abort mid-decomposition.
type TrussQuery struct {
	g         *Graph
	eta       float64
	cfg       utruss.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewTrussQuery prepares the η-truss decomposition of g. It validates
// eagerly: a nil graph wraps ErrNilGraph, an eta outside (0,1] wraps
// ErrEtaRange. Applicable options: WithLimit, WithBudget.
func NewTrussQuery(g *Graph, eta float64, opts ...Option) (*TrussQuery, error) {
	o, err := applyOptions(kindTruss, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	q, err := newTrussQuery(g, eta, utruss.Config{Budget: o.cfg.Budget, Stall: o.stall}, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newTrussQuery is the single constructor behind NewTrussQuery and the
// deprecated wrappers; all invariants are enforced here.
func newTrussQuery(g *Graph, eta float64, cfg utruss.Config, limit int64) (*TrussQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := utruss.Validate(g, eta, cfg); err != nil {
		return nil, err
	}
	return &TrussQuery{g: g, eta: eta, cfg: cfg, limit: limit}, nil
}

// run executes the decomposition under the WithLimit bound.
func (q *TrussQuery) run(ctx context.Context, visit TrussVisitor) (stats TrussStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return TrussStats{Status: StatusFailed}, false, err
	}
	defer release()
	stats, err = utruss.RunContext(ctx, q.g, q.eta, q.cfg, limitVisitor(visit, q.limit, &userStopped))
	return stats, userStopped, err
}

// Run performs the decomposition, streaming every edge with its final
// η-truss number to visit in peel order (visit may be nil to only count;
// see TrussStats.Emitted). The error contract matches Query.Run.
func (q *TrussQuery) Run(ctx context.Context, visit TrussVisitor) (TrussStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect returns the full decomposition — every edge with its η-truss
// number — sorted by (U, V).
func (q *TrussQuery) Collect(ctx context.Context) ([]EdgeTruss, error) {
	var out []EdgeTruss
	_, _, err := q.run(ctx, func(e EdgeTruss) bool {
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out, nil
}

// Count returns the number of edges the decomposition assigns a truss
// number (the graph's edge count on a complete run, fewer under WithLimit).
func (q *TrussQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the decomposition as a range-over-func stream in peel
// order, with the same contract as Query.Cliques: each edge is yielded with
// a nil error, an aborted run ends with one final (EdgeTruss{}, err) pair,
// and breaking the loop stops the peeling on the spot with nothing leaked.
func (q *TrussQuery) Stream(ctx context.Context) iter.Seq2[EdgeTruss, error] {
	return streamOf(func(emit func(EdgeTruss) bool) error {
		_, _, err := q.run(ctx, emit)
		return err
	})
}

// Truss returns the (k,η)-truss of the query's graph: the unique maximal
// subgraph whose every edge has probability ≥ η of being supported by at
// least k−2 triangles within the subgraph. k below 2 wraps ErrKRange. The
// result preserves the graph's vertex set; only edges are removed.
// WithLimit does not apply (the truss is one subgraph, not a stream).
func (q *TrussQuery) Truss(ctx context.Context, k int) (tr *Graph, err error) {
	defer func() {
		if v := recover(); v != nil {
			tr, err = nil, panicToError(v)
		}
	}()
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return nil, err
	}
	defer release()
	tr, _, err = utruss.TrussContext(ctx, q.g, k, q.eta, q.cfg)
	return tr, err
}

// MaxTruss returns the largest k for which the (k,η)-truss is non-empty,
// or 0 for an edgeless graph.
func (q *TrussQuery) MaxTruss(ctx context.Context) (int, error) {
	full := *q
	full.limit = 0
	stats, err := full.Run(ctx, nil)
	if err != nil {
		return 0, err
	}
	return stats.MaxTruss, nil
}

// --- Core queries ---

// CoreVisitor receives one vertex with its final η-core number, in peel
// order; returning false stops the decomposition early.
type CoreVisitor = ucore.Visitor

// CoreStats reports the work performed by a core decomposition run.
type CoreStats = ucore.Stats

// VertexCore reports the η-core number of one vertex.
type VertexCore = ucore.VertexCore

// CoreQuery is a prepared (k,η)-core decomposition of one uncertain graph
// at one confidence threshold η. Build it with NewCoreQuery; it is
// immutable after construction and safe for concurrent use. The min-peeling
// polls its context between η-degree recomputations, so cancellation,
// deadlines, and WithBudget bounds abort mid-decomposition.
type CoreQuery struct {
	g         *Graph
	eta       float64
	cfg       ucore.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewCoreQuery prepares the η-core decomposition of g. It validates
// eagerly: a nil graph wraps ErrNilGraph, an eta outside (0,1] wraps
// ErrEtaRange. Applicable options: WithLimit, WithBudget.
func NewCoreQuery(g *Graph, eta float64, opts ...Option) (*CoreQuery, error) {
	o, err := applyOptions(kindCore, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	q, err := newCoreQuery(g, eta, ucore.Config{Budget: o.cfg.Budget, Stall: o.stall}, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newCoreQuery is the single constructor behind NewCoreQuery and the
// deprecated wrappers; all invariants are enforced here.
func newCoreQuery(g *Graph, eta float64, cfg ucore.Config, limit int64) (*CoreQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := ucore.Validate(g, eta, cfg); err != nil {
		return nil, err
	}
	return &CoreQuery{g: g, eta: eta, cfg: cfg, limit: limit}, nil
}

// run executes the decomposition under the WithLimit bound.
func (q *CoreQuery) run(ctx context.Context, visit CoreVisitor) (stats CoreStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return CoreStats{Status: StatusFailed}, false, err
	}
	defer release()
	stats, err = ucore.RunContext(ctx, q.g, q.eta, q.cfg, limitVisitor(visit, q.limit, &userStopped))
	return stats, userStopped, err
}

// Run performs the decomposition, streaming every vertex with its final
// η-core number to visit in peel order (visit may be nil to only count;
// see CoreStats.Emitted). The error contract matches Query.Run.
func (q *CoreQuery) Run(ctx context.Context, visit CoreVisitor) (CoreStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect returns the full decomposition — every vertex with its η-core
// number — sorted by vertex ID.
func (q *CoreQuery) Collect(ctx context.Context) ([]VertexCore, error) {
	var out []VertexCore
	_, _, err := q.run(ctx, func(vc VertexCore) bool {
		out = append(out, vc)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out, nil
}

// Count returns the number of vertices the decomposition assigns a core
// number (the graph's vertex count on a complete run, fewer under
// WithLimit).
func (q *CoreQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the decomposition as a range-over-func stream in peel
// order (non-decreasing core number), with the same contract as
// Query.Cliques: each vertex is yielded with a nil error, an aborted run
// ends with one final (VertexCore{}, err) pair, and breaking the loop stops
// the peeling on the spot with nothing leaked.
func (q *CoreQuery) Stream(ctx context.Context) iter.Seq2[VertexCore, error] {
	return streamOf(func(emit func(VertexCore) bool) error {
		_, _, err := q.run(ctx, emit)
		return err
	})
}

// Decompose returns the decomposition in its classical form: per-vertex
// core numbers, the degeneracy, and the peel order. WithLimit does not
// apply — the arrays are only meaningful complete.
func (q *CoreQuery) Decompose(ctx context.Context) (dec CoreDecomposition, err error) {
	defer func() {
		if v := recover(); v != nil {
			dec, err = CoreDecomposition{}, panicToError(v)
		}
	}()
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return CoreDecomposition{}, err
	}
	defer release()
	dec, _, err = ucore.DecomposeContext(ctx, q.g, q.eta, q.cfg)
	return dec, err
}

// Core returns the vertices of the (k,η)-core: the maximal induced
// subgraph where every vertex keeps η-degree ≥ k within it. Negative k
// wraps ErrKRange. WithLimit does not apply.
func (q *CoreQuery) Core(ctx context.Context, k int) (verts []int, err error) {
	defer func() {
		if v := recover(); v != nil {
			verts, err = nil, panicToError(v)
		}
	}()
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return nil, err
	}
	defer release()
	verts, _, err = ucore.CoreContext(ctx, q.g, k, q.eta, q.cfg)
	return verts, err
}
