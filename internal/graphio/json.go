package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// jsonGraph is the JSON wire form (extension .json):
//
//	{"vertices": 4, "edges": [{"u": 0, "v": 1, "p": 0.5}, …]}
//
// It exists for interchange with tooling outside this repository; the text
// format remains the human-editable default and the binary format the
// compact one.
type jsonGraph struct {
	Vertices int        `json:"vertices"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	P float64 `json:"p"`
}

// WriteJSON writes g in the JSON format, edges sorted by (U, V).
func WriteJSON(w io.Writer, g *uncertain.Graph) error {
	edges := g.Edges()
	jg := jsonGraph{Vertices: g.NumVertices(), Edges: make([]jsonEdge, len(edges))}
	for i, e := range edges {
		jg.Edges[i] = jsonEdge{U: e.U, V: e.V, P: e.P}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("graphio: encoding JSON: %w", err)
	}
	return bw.Flush()
}

// ReadJSON parses the JSON format, decoding edge objects one at a time into
// a two-pass CSR build instead of unmarshaling the whole document. Unknown
// fields are rejected so that structural typos surface as errors instead of
// silently empty graphs.
func ReadJSON(r io.Reader) (*uncertain.Graph, error) {
	g, _, err := buildGraph(replayScan(r, scanJSON))
	return g, err
}
