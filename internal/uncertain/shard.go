package uncertain

import "iter"

// Shard is one support component extracted as a self-contained graph.
// Vertex i of G corresponds to NewToOld[i] in the parent graph; NewToOld is
// strictly ascending, so orderings that are canonical in the shard (sorted
// neighbor rows, lexicographic clique order) remain canonical after mapping
// back.
type Shard struct {
	// ID numbers components by their smallest member: shard 0 contains the
	// smallest vertex of the parent graph, shard 1 the smallest vertex not in
	// shard 0, and so on. Matches the ordering of Components().
	ID int
	// G is the component as a standalone graph with vertices relabeled to
	// 0..len(NewToOld)-1.
	G *Graph
	// NewToOld maps shard vertex IDs back to parent vertex IDs, ascending.
	NewToOld []int
}

// NumComponents counts support components without materializing membership
// lists.
func (g *Graph) NumComponents() int {
	if g == nil || g.n == 0 {
		return 0
	}
	_, count := g.componentLabels()
	return count
}

// componentLabels labels every vertex with its component ID (components
// numbered by smallest member, matching Components()) and returns the label
// array and component count.
func (g *Graph) componentLabels() ([]int32, int) {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	queue := make([]int32, 0, 64)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for i := g.offsets[v]; i < g.offsets[v+1]; i++ {
				w := g.nbrs[i]
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// ShardByComponent yields one Shard per support component, in ID order
// (smallest member first), building each component's CSR lazily as the
// iterator advances. Unlike Components(), at most one shard's subgraph is
// materialized per step, so a consumer that releases each shard after mining
// it holds the largest component — not the whole graph — beyond the parent
// CSR. A nil or empty graph yields nothing.
func (g *Graph) ShardByComponent() iter.Seq[Shard] {
	return func(yield func(Shard) bool) {
		if g == nil || g.n == 0 {
			return
		}
		comp, count := g.componentLabels()

		// Counting-sort vertices by (component, ascending ID): sizes →
		// starts → scatter. Scanning v ascending keeps each component's
		// member list ascending, which makes the remap below monotone.
		starts := make([]int32, count+1)
		for _, c := range comp {
			starts[c+1]++
		}
		for i := 0; i < count; i++ {
			starts[i+1] += starts[i]
		}
		order := make([]int32, g.n)
		fill := make([]int32, count)
		for v := 0; v < g.n; v++ {
			c := comp[v]
			order[starts[c]+fill[c]] = int32(v)
			fill[c]++
		}

		oldToNew := make([]int32, g.n)
		for id := 0; id < count; id++ {
			members := order[starts[id]:starts[id+1]]
			offsets := make([]int32, len(members)+1)
			for i, ov := range members {
				oldToNew[ov] = int32(i)
				offsets[i+1] = offsets[i] + (g.offsets[ov+1] - g.offsets[ov])
			}
			nbrs := make([]int32, offsets[len(members)])
			probs := make([]float64, offsets[len(members)])
			w := 0
			for _, ov := range members {
				for i := g.offsets[ov]; i < g.offsets[ov+1]; i++ {
					// Neighbors stay within the component, and the monotone
					// remap keeps each row sorted.
					nbrs[w] = oldToNew[g.nbrs[i]]
					probs[w] = g.probs[i]
					w++
				}
			}
			newToOld := make([]int, len(members))
			for i, ov := range members {
				newToOld[i] = int(ov)
			}
			sub := &Graph{n: len(members), offsets: offsets, nbrs: nbrs, probs: probs}
			if !yield(Shard{ID: id, G: sub, NewToOld: newToOld}) {
				return
			}
		}
	}
}
