package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestRunStatusString(t *testing.T) {
	cases := map[RunStatus]string{
		StatusComplete: "complete",
		StatusStopped:  "stopped",
		StatusCanceled: "canceled",
		StatusDeadline: "deadline",
		StatusBudget:   "budget",
		StatusFailed:   "failed",
		StatusPanicked: "panicked",
		StatusStalled:  "stalled",
		RunStatus(42):  "RunStatus(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("RunStatus(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestValidateSentinels(t *testing.T) {
	g := randomDyadic(6, 0.5, rand.New(rand.NewSource(1)))
	cases := []struct {
		name   string
		err    error
		target error
	}{
		{"nil graph", Validate(nil, 0.5, Config{}), ErrNilGraph},
		{"alpha low", Validate(g, 0, Config{}), ErrAlphaRange},
		{"alpha high", Validate(g, 1.01, Config{}), ErrAlphaRange},
		{"minsize", Validate(g, 0.5, Config{MinSize: -1}), ErrConfig},
		{"workers", Validate(g, 0.5, Config{Workers: -1}), ErrConfig},
		{"granularity", Validate(g, 0.5, Config{StealGranularity: -1}), ErrConfig},
		{"budget", Validate(g, 0.5, Config{Budget: -1}), ErrConfig},
		{"mode", Validate(g, 0.5, Config{Parallel: ParallelMode(7)}), ErrConfig},
		{"ordering", Validate(g, 0.5, Config{Ordering: Ordering(7)}), ErrConfig},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.target) {
			t.Errorf("%s: err = %v, want wrapped %v", tc.name, tc.err, tc.target)
		}
	}
	if err := Validate(g, 0.5, Config{}); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

// TestRunControlPoll exercises the shared abort latch directly: context
// cancellation, budget accounting, and first-cause-wins.
func TestRunControlPoll(t *testing.T) {
	// Non-cancellable context collapses to the nil fast path.
	c := NewRunControl(context.Background(), 0)
	if c.ctx != nil {
		t.Fatal("Background context should be dropped")
	}
	if c.Poll(1 << 20) {
		t.Fatal("unlimited budget tripped")
	}

	// Budget exhaustion latches ErrBudget.
	c = NewRunControl(context.Background(), 100)
	if c.Poll(99) {
		t.Fatal("budget tripped early")
	}
	if !c.Poll(1) {
		t.Fatal("budget did not trip at the bound")
	}
	if !errors.Is(c.Err(), ErrBudget) {
		t.Fatalf("abort cause = %v", c.Err())
	}

	// Cancellation latches the context error; a later budget trip must not
	// overwrite the first cause.
	ctx, cancel := context.WithCancel(context.Background())
	c = NewRunControl(ctx, 1)
	cancel()
	if !c.Poll(5) {
		t.Fatal("canceled context did not trip")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("abort cause = %v", c.Err())
	}
	c.Abort(ErrBudget)
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatal("second abort overwrote the first cause")
	}
}

// TestEnumerateContextEngines: every engine honors a mid-run cancel and
// reports the canceled status; the serial engine's check interval bounds
// the overrun.
func TestEnumerateContextEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomDyadic(40, 0.55, rng)
	for _, cfg := range []Config{
		{},
		{Workers: 4},
		{Workers: 4, Parallel: ParallelTopLevel},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		stats, err := EnumerateContext(ctx, g, 1e-12, func([]int, float64) bool {
			if calls++; calls == 1 {
				cancel()
			}
			return true
		}, cfg)
		cancel()
		if err == nil {
			// The graph may occasionally be small enough to finish within
			// one poll interval of the cancel; that run is complete.
			if stats.Status != StatusComplete {
				t.Fatalf("cfg %+v: nil error with status %v", cfg, stats.Status)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cfg %+v: err = %v", cfg, err)
		}
		if stats.Status != StatusCanceled {
			t.Fatalf("cfg %+v: status = %v", cfg, stats.Status)
		}
	}
}

// TestEnumerateBudgetSerialBound: the serial engine stops within one check
// interval of the budget.
func TestEnumerateBudgetSerialBound(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := randomDyadic(40, 0.55, rng)
	stats, err := EnumerateContext(context.Background(), g, 1e-12, nil, Config{Budget: 2000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want wrapped ErrBudget", err)
	}
	if stats.Status != StatusBudget {
		t.Fatalf("status = %v", stats.Status)
	}
	if stats.Calls > 2000+abortCheckInterval {
		t.Fatalf("budget 2000 overrun to %d calls", stats.Calls)
	}
}

// TestWorkStealingFreeListReuse drives the work-stealing engine with the
// finest granularity (every expandable node becomes a frame, maximizing
// free-list churn) and with splits forced by many workers, checking the
// emitted set still matches serial — the recycling must never hand a live
// frame's slices to a new child.
func TestWorkStealingFreeListReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 8; trial++ {
		g := randomDyadic(30+rng.Intn(12), 0.5, rng)
		want := mustCollect(t, g, 0.0625, Config{})
		for _, workers := range []int{2, 8} {
			got := mustCollect(t, g, 0.0625, Config{Workers: workers, StealGranularity: 1})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers %d: free-list run diverged from serial", trial, workers)
			}
		}
	}
}

// TestFreeListRecycling checks the free-list mechanics directly: completed
// frames are recycled, split-shared frames are not, and the list is
// bounded.
func TestFreeListRecycling(t *testing.T) {
	w := &wsWorker{}
	f := w.takeFrame()
	if f == nil || len(w.free) != 0 {
		t.Fatal("takeFrame on empty list")
	}
	f.C = append(f.C, 1, 2, 3)
	f.I = f.I.push(1, 0.5)
	f.X = f.X.push(0, 0.5)
	w.recycle(f)
	if len(w.free) != 1 {
		t.Fatalf("free list has %d frames, want 1", len(w.free))
	}
	g := w.takeFrame()
	if g != f {
		t.Fatal("takeFrame did not reuse the recycled frame")
	}
	if len(g.C) != 0 || g.I.length() != 0 || g.X.length() != 0 {
		t.Fatal("recycled frame not reset")
	}
	if cap(g.C) < 3 || cap(g.I.v) < 1 || cap(g.I.r) < 1 {
		t.Fatal("recycled frame lost its slice capacity")
	}

	shared := &wsFrame{shared: true}
	w.recycle(shared)
	if len(w.free) != 0 {
		t.Fatal("split-shared frame was recycled")
	}

	for i := 0; i < 2*wsFreeListMax; i++ {
		w.recycle(&wsFrame{})
	}
	if len(w.free) != wsFreeListMax {
		t.Fatalf("free list grew to %d, bound is %d", len(w.free), wsFreeListMax)
	}
}
