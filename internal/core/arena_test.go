package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/uncertain-graphs/mule/internal/baseline"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// --- Arena allocator semantics ---

func TestArenaStackDiscipline(t *testing.T) {
	var a entryArena
	m0 := a.mark()
	s1 := a.alloc(10)
	s1 = append(s1, entry{1, 0.5}, entry{2, 0.25})
	m1 := a.mark()
	s2 := a.alloc(5)
	s2 = append(s2, entry{3, 1})
	if &s1[0] == &s2[0] {
		t.Fatal("overlapping allocations")
	}
	a.release(m1)
	s3 := a.alloc(5)
	s3 = append(s3, entry{9, 1})
	// s3 reuses s2's region, s1 is untouched.
	if s1[0].v != 1 || s1[1].v != 2 {
		t.Fatalf("release corrupted earlier allocation: %v", s1)
	}
	if s2[0].v != 9 {
		t.Fatal("released region was not reused")
	}
	a.release(m0)
	if got := a.mark(); got != m0 {
		t.Fatalf("release did not restore the cursor: %+v", got)
	}
}

func TestArenaShrink(t *testing.T) {
	var a entryArena
	s := a.alloc(100)
	s = append(s, entry{1, 1}, entry{2, 1})
	a.shrink(100, len(s)+3) // keep 2 filled + 3 reserved for appends
	next := a.alloc(1)
	next = append(next, entry{7, 1})
	s = append(s, entry{3, 1}, entry{4, 1}, entry{5, 1}) // within reservation
	if next[0].v != 7 {
		t.Fatalf("reserved append room overlaps the next allocation: %v", next)
	}
	if s[4].v != 5 {
		t.Fatalf("appends within the reservation failed: %v", s)
	}
}

func TestArenaBlockGrowth(t *testing.T) {
	var a entryArena
	// Allocate more than one block's worth without releasing; earlier
	// slices must stay valid after the arena adds blocks.
	var all [][]entry
	for i := 0; i < 10; i++ {
		s := a.alloc(arenaMinBlock / 2)
		s = append(s, entry{int32(i), 1})
		all = append(all, s)
	}
	for i, s := range all {
		if s[0].v != int32(i) {
			t.Fatalf("slice %d corrupted after block growth: %v", i, s[0])
		}
	}
	if len(a.blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(a.blocks))
	}
	// A single oversized request must be honored too.
	big := a.alloc(3 * arenaMinBlock)
	if cap(big) < 3*arenaMinBlock {
		t.Fatalf("oversized alloc cap %d", cap(big))
	}
}

// --- Adaptive intersection ---

// naiveIntersect is the reference two-pointer merge.
func naiveIntersect(src []entry, row []int32, probs []float64, thr float64) []entry {
	var out []entry
	i, j := 0, 0
	for i < len(src) && j < len(row) {
		switch {
		case src[i].v < row[j]:
			i++
		case src[i].v > row[j]:
			j++
		default:
			if r2 := src[i].r * probs[j]; r2 >= thr {
				out = append(out, entry{src[i].v, r2})
			}
			i++
			j++
		}
	}
	return out
}

func randomSorted(rng *rand.Rand, n, max int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(max))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestIntersectEntriesMatchesMerge drives every regime of the adaptive
// intersection (balanced, row-dominant galloping, src-dominant galloping)
// against the reference merge on random sorted inputs.
func TestIntersectEntriesMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ nSrc, nRow int }{
		{0, 0}, {0, 50}, {50, 0}, {1, 1},
		{20, 25},     // balanced: linear merge
		{5, 400},     // row ≫ src: gallop in row
		{400, 5},     // src ≫ row: gallop in src
		{1, 1000},    // extreme hub row
		{1000, 1},    // extreme witness list
		{63, 8 * 63}, // exactly at the ratio boundary
	}
	for trial := 0; trial < 40; trial++ {
		for _, sh := range shapes {
			universe := 4 * (sh.nSrc + sh.nRow + 1)
			srcV := randomSorted(rng, sh.nSrc, universe)
			src := make([]entry, len(srcV))
			for i, v := range srcV {
				src[i] = entry{v, 1 / float64(1+rng.Intn(8))}
			}
			row := randomSorted(rng, sh.nRow, universe)
			probs := make([]float64, len(row))
			for i := range probs {
				probs[i] = 1 / float64(1+rng.Intn(8))
			}
			thr := 1 / float64(1+rng.Intn(16))
			want := naiveIntersect(src, row, probs, thr)
			got := intersectEntries(make([]entry, 0, minInt(len(src), len(row))), src, row, probs, thr)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shape %+v trial %d: got %v want %v", sh, trial, got, want)
			}
		}
	}
}

func TestGallopBoundaries(t *testing.T) {
	row := []int32{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	for _, c := range []struct {
		from, want int
		v          int32
	}{
		{0, 0, 1}, {0, 0, 2}, {0, 1, 3}, {0, 9, 19}, {0, 9, 20}, {0, 10, 21},
		{3, 3, 1}, {3, 4, 9}, {9, 10, 99},
		{10, 10, 5}, // from already past the end
	} {
		if got := gallopRow(row, c.from, c.v); got != c.want {
			t.Errorf("gallopRow(from=%d, v=%d) = %d, want %d", c.from, c.v, got, c.want)
		}
	}
	src := make([]entry, len(row))
	for i, v := range row {
		src[i] = entry{v, 1}
	}
	for _, c := range []struct {
		from, want int
		v          int32
	}{
		{0, 0, 2}, {0, 4, 9}, {0, 10, 25}, {5, 8, 18},
	} {
		if got := gallopEntries(src, c.from, c.v); got != c.want {
			t.Errorf("gallopEntries(from=%d, v=%d) = %d, want %d", c.from, c.v, got, c.want)
		}
	}
}

// --- Allocation regression: the kernel must be allocation-free in steady
// state (the tentpole of this PR) ---

// kernelAllocsPerNode measures heap allocations per search-tree node for a
// full run on a pre-pruned graph (preprocessing — PruneAlpha's builder — is
// O(m) one-time work and measured separately by the bench pipeline).
func kernelAllocsPerNode(t *testing.T, cfg Config, alpha float64, minCalls int64) float64 {
	t.Helper()
	g := gen.BA(500, 11).PruneAlpha(alpha)
	cfg.SkipPrune = true
	var stats Stats
	allocs := testing.AllocsPerRun(5, func() {
		var err error
		stats, err = EnumerateWith(g, alpha, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if stats.Calls < minCalls {
		t.Fatalf("graph too small to be meaningful: %d search calls", stats.Calls)
	}
	t.Logf("%.1f allocs/run over %d calls (%.4f per node)",
		allocs, stats.Calls, allocs/float64(stats.Calls))
	return allocs / float64(stats.Calls)
}

func TestEnumerateSteadyStateAllocs(t *testing.T) {
	if perNode := kernelAllocsPerNode(t, Config{}, 0.002, 2000); perNode > 0.02 {
		t.Fatalf("Enumerate allocates %.4f per search node; the arena kernel should be ~0", perNode)
	}
}

func TestEnumerateLargeSteadyStateAllocs(t *testing.T) {
	// MinSize 2 exercises LARGE-MULE's size-pruned search path without the
	// Modani–Dey prefilter (vacuous below t=3), so the measurement isolates
	// the kernel like the plain-MULE test above.
	if perNode := kernelAllocsPerNode(t, Config{MinSize: 2}, 0.002, 1000); perNode > 0.02 {
		t.Fatalf("EnumerateLarge allocates %.4f per search node; the arena kernel should be ~0", perNode)
	}
}

// --- Output equivalence: the arena kernel against the independent DFS-NOIP
// implementation, plain and LARGE, over 50 random graphs ---

func TestArenaKernelMatchesNOIPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	densities := []float64{0.15, 0.3, 0.5, 0.8}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(36)
		g := randomDyadic(n, densities[trial%len(densities)], rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		all := baseline.CollectNOIP(g, alpha)
		got := mustCollect(t, g, alpha, Config{})
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d (n=%d, α=%v): arena kernel diverges from DFS-NOIP\nMULE = %v\nNOIP = %v",
				trial, n, alpha, got, all)
		}
		// LARGE-MULE must equal the size-filtered full output.
		minSize := 3
		var want [][]int
		for _, c := range all {
			if len(c) >= minSize {
				want = append(want, c)
			}
		}
		large := mustCollect(t, g, alpha, Config{MinSize: minSize})
		if len(large) != len(want) || (len(want) > 0 && !reflect.DeepEqual(large, want)) {
			t.Fatalf("trial %d: LARGE-MULE diverges\ngot  = %v\nwant = %v", trial, large, want)
		}
	}
}

// --- Emission ordering: the relabeled path must hand the visitor sorted
// cliques, and identity-resolving orderings must keep working ---

func TestRelabeledEmissionsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	for trial := 0; trial < 10; trial++ {
		g := randomDyadic(8+rng.Intn(20), 0.5, rng)
		for _, ord := range []Ordering{OrderDegree, OrderDegeneracy, OrderRandom} {
			_, err := EnumerateWith(g, 0.25, func(c []int, _ float64) bool {
				if !sort.IntsAreSorted(c) {
					t.Fatalf("ordering %v emitted unsorted clique %v", ord, c)
				}
				return true
			}, Config{Ordering: ord, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestIsIdentityOrder(t *testing.T) {
	if !isIdentityOrder(nil) || !isIdentityOrder([]int{0, 1, 2}) {
		t.Error("identity permutations misclassified")
	}
	if isIdentityOrder([]int{1, 0, 2}) || isIdentityOrder([]int{0, 2, 1}) {
		t.Error("non-identity permutations misclassified")
	}
}

// TestIdentityResolvingOrderingStillCorrect pins the identity fast path: a
// graph already numbered in ascending degree makes OrderDegree resolve to
// the identity permutation, which skips the relabel and the per-emission
// sort — the output must be identical to the natural run anyway.
func TestIdentityResolvingOrderingStillCorrect(t *testing.T) {
	// Star with the hub last: leaves 0..3 have degree 1, hub 4 degree 4,
	// so the stable degree sort keeps 0,1,2,3,4 — the identity.
	g, err := uncertain.FromEdges(5, []uncertain.Edge{
		{U: 0, V: 4, P: 0.75}, {U: 1, V: 4, P: 0.75},
		{U: 2, V: 4, P: 0.75}, {U: 3, V: 4, P: 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mustCollect(t, g, 0.5, Config{})
	got := mustCollect(t, g, 0.5, Config{Ordering: OrderDegree})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("identity-resolving degree order changed output: %v vs %v", got, want)
	}
}
