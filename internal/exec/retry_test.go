package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// effectiveBounds mirrors delay()'s clamping contract: the floor every
// jittered delay respects and the cap the doubling saturates at.
func effectiveBounds(p RetryPolicy) (base, max time.Duration) {
	base = p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max = p.MaxDelay
	if max < base {
		max = base
	}
	return base, max
}

func TestRetryPolicyDelayBounds(t *testing.T) {
	policies := []RetryPolicy{
		{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0},
		{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 1},
		{MaxAttempts: 5, BaseDelay: 0, MaxDelay: 0, Jitter: 0.5},                      // defaults kick in
		{MaxAttempts: 5, BaseDelay: 4 * time.Millisecond, MaxDelay: time.Millisecond}, // max below base: constant
		{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -3},                     // jitter clamped up
		{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 7},                      // jitter clamped down
		{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: math.NaN()},             // NaN neutralized
		{MaxAttempts: 64, BaseDelay: time.Hour, MaxDelay: 24 * time.Hour},             // overflow guard
	}
	for pi, p := range policies {
		base, max := effectiveBounds(p)
		for n := 1; n <= 70; n++ {
			for _, u := range []float64{0, 0.5, 0.999, 1, 2, -1, math.NaN()} {
				d := p.delay(n, u)
				if d < base || d > max {
					t.Fatalf("policy %d: delay(%d, %v) = %v outside [%v, %v]", pi, n, u, d, base, max)
				}
			}
		}
	}
	// Jitter 0 is fully deterministic: exact doubling until saturation.
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	for n, want := range map[int]time.Duration{
		1: time.Millisecond, 2: 2 * time.Millisecond, 3: 4 * time.Millisecond,
		4: 8 * time.Millisecond, 5: 10 * time.Millisecond, 6: 10 * time.Millisecond,
	} {
		if d := p.delay(n, 0.99); d != want {
			t.Fatalf("undithered delay(%d) = %v, want %v", n, d, want)
		}
	}
}

// scriptedAdmit returns an admit func failing with ErrAdmission the first
// `failures` times, then granting.
func scriptedAdmit(failures int, calls *int) func() (func(), error) {
	return func() (func(), error) {
		*calls++
		if *calls <= failures {
			return nil, fmt.Errorf("scripted: %w", ErrAdmission)
		}
		return noopRelease, nil
	}
}

func TestRetryPolicyRunScripted(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	var slept []time.Duration
	record := func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }
	zero := func() float64 { return 0 }

	// Success on the third attempt: two backoff sleeps, exact doubling.
	calls := 0
	release, attempts, err := p.run(context.Background(), scriptedAdmit(2, &calls), record, zero)
	if err != nil || release == nil || attempts != 3 {
		t.Fatalf("run = (release=%v, attempts=%d, err=%v)", release != nil, attempts, err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleeps = %v, want [1ms 2ms]", slept)
	}

	// Exhaustion: MaxAttempts admits, MaxAttempts-1 sleeps, ErrAdmission out.
	slept, calls = nil, 0
	_, attempts, err = p.run(context.Background(), scriptedAdmit(99, &calls), record, zero)
	if !errors.Is(err, ErrAdmission) || attempts != 4 || calls != 4 || len(slept) != 3 {
		t.Fatalf("exhaustion: attempts=%d calls=%d sleeps=%v err=%v", attempts, calls, slept, err)
	}

	// A non-admission error never retries.
	boom := errors.New("boom")
	_, attempts, err = p.run(context.Background(),
		func() (func(), error) { return nil, boom }, record, zero)
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("non-admission error retried: attempts=%d err=%v", attempts, err)
	}
}

func TestRetryContextCancelWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour} // a real sleep would hang the test
	calls := 0
	_, attempts, err := p.run(ctx, scriptedAdmit(99, &calls), sleepCtx, func() float64 { return 0 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrAdmission) {
		t.Fatal("a context abort must not read as an admission rejection")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancel fires during the first backoff)", attempts)
	}
}

func TestAdmitWithRetryExhaustionCounters(t *testing.T) {
	x := New(1)
	defer x.Close()
	x.SetLimits("t", Limits{MaxInFlight: 1})
	release, err := x.Admit(context.Background(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond}
	_, err = x.AdmitWithRetry(context.Background(), "t", 0, p)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("exhausted retry err = %v, want ErrAdmission", err)
	}
	s := x.AdmissionStats()
	if s.Retried != 2 || s.RetryExhausted != 1 {
		t.Fatalf("stats after exhaustion: Retried=%d RetryExhausted=%d, want 2 and 1", s.Retried, s.RetryExhausted)
	}
	if s.Rejected != 3 || s.RejectedInFlight != 3 {
		t.Fatalf("each attempt is a counted rejection: %+v", s)
	}
	release()

	// With capacity freed mid-backoff the retry succeeds and no exhaustion
	// is recorded.
	release2, err := x.AdmitWithRetry(context.Background(), "t", 0,
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("retry after release: %v", err)
	}
	release2()
	s = x.AdmissionStats()
	if s.RetryExhausted != 1 {
		t.Fatalf("successful immediate admit bumped RetryExhausted: %+v", s)
	}

	// A disabled policy is exactly Admit: no retry accounting.
	release3, err := x.AdmitWithRetry(context.Background(), "t", 0, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	release3()
	if s2 := x.AdmissionStats(); s2.Retried != s.Retried {
		t.Fatalf("disabled policy touched retry counters: %+v", s2)
	}
}

// TestAdmissionRejectionReasons is the table-driven breakdown test: each
// scenario provokes exactly one rejection and must attribute it to the right
// cause, with the three reason counters always summing to Rejected.
func TestAdmissionRejectionReasons(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name                    string
		limits                  Limits
		scenario                func(t *testing.T, x *Executor)
		budget, queue, inflight int64
	}{
		{
			name:   "single budget above cap",
			limits: Limits{MaxBudget: 10},
			scenario: func(t *testing.T, x *Executor) {
				if _, err := x.Admit(ctx, "t", 20); !errors.Is(err, ErrAdmission) {
					t.Fatalf("err = %v", err)
				}
			},
			budget: 1,
		},
		{
			name:   "in-flight cap, queueing disabled",
			limits: Limits{MaxInFlight: 1},
			scenario: func(t *testing.T, x *Executor) {
				release, err := x.Admit(ctx, "t", 0)
				if err != nil {
					t.Fatal(err)
				}
				defer release()
				if _, err := x.Admit(ctx, "t", 0); !errors.Is(err, ErrAdmission) {
					t.Fatalf("err = %v", err)
				}
			},
			inflight: 1,
		},
		{
			name:   "aggregate budget pressure, queueing disabled",
			limits: Limits{MaxBudget: 10},
			scenario: func(t *testing.T, x *Executor) {
				release, err := x.Admit(ctx, "t", 6)
				if err != nil {
					t.Fatal(err)
				}
				defer release()
				if _, err := x.Admit(ctx, "t", 6); !errors.Is(err, ErrAdmission) {
					t.Fatalf("err = %v", err)
				}
			},
			budget: 1,
		},
		{
			name:   "queue full",
			limits: Limits{MaxInFlight: 1, MaxQueued: 1},
			scenario: func(t *testing.T, x *Executor) {
				release, err := x.Admit(ctx, "t", 0)
				if err != nil {
					t.Fatal(err)
				}
				defer release()
				qctx, qcancel := context.WithCancel(ctx)
				defer qcancel()
				queued := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					close(queued)
					if rel, err := x.Admit(qctx, "t", 0); err == nil {
						rel()
					}
				}()
				<-queued
				// Wait for the goroutine to actually occupy the queue slot.
				for {
					if s := x.AdmissionStats(); s.Queued == 1 {
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
				if _, err := x.Admit(ctx, "t", 0); !errors.Is(err, ErrAdmission) {
					t.Fatalf("err = %v", err)
				}
				qcancel()
				<-done
			},
			queue: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := New(1)
			defer x.Close()
			x.SetLimits("t", tc.limits)
			tc.scenario(t, x)
			s := x.AdmissionStats()
			if s.RejectedBudget != tc.budget || s.RejectedQueue != tc.queue || s.RejectedInFlight != tc.inflight {
				t.Fatalf("breakdown = budget:%d queue:%d inflight:%d, want %d/%d/%d",
					s.RejectedBudget, s.RejectedQueue, s.RejectedInFlight, tc.budget, tc.queue, tc.inflight)
			}
			if s.RejectedBudget+s.RejectedQueue+s.RejectedInFlight != s.Rejected {
				t.Fatalf("reason counters do not sum to Rejected: %+v", s)
			}
		})
	}
}

// FuzzRetryPolicy feeds arbitrary policies and rejection sequences through
// the retry loop with a recording sleeper: every delay must respect the
// policy's effective bounds, attempts must never exceed MaxAttempts, and a
// canceled context must always win over further retries.
func FuzzRetryPolicy(f *testing.F) {
	f.Add(3, int64(time.Millisecond), int64(time.Second), 0.5, uint8(2))
	f.Add(1, int64(0), int64(0), 0.0, uint8(0))
	f.Add(64, int64(time.Hour), int64(24*time.Hour), 1.0, uint8(255))
	f.Add(-5, int64(-1), int64(-1), math.NaN(), uint8(7))
	f.Fuzz(func(t *testing.T, maxAttempts int, baseNs, maxNs int64, jitter float64, failures uint8) {
		if maxAttempts > 256 {
			maxAttempts = 256 // keep the loop bounded; larger values add nothing
		}
		p := RetryPolicy{
			MaxAttempts: maxAttempts,
			BaseDelay:   time.Duration(baseNs),
			MaxDelay:    time.Duration(maxNs),
			Jitter:      jitter,
		}
		base, max := effectiveBounds(p)
		wantAttempts := maxAttempts
		if wantAttempts < 1 {
			wantAttempts = 1
		}

		var slept []time.Duration
		record := func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }
		draws := []float64{0, 0.3, 0.9999, 1, -2, math.NaN()}
		di := 0
		jitterDraw := func() float64 { u := draws[di%len(draws)]; di++; return u }

		calls := 0
		release, attempts, err := p.run(context.Background(), scriptedAdmit(int(failures), &calls), record, jitterDraw)
		if attempts != calls {
			t.Fatalf("attempts %d != admit calls %d", attempts, calls)
		}
		if attempts > wantAttempts {
			t.Fatalf("attempts %d exceed MaxAttempts %d", attempts, wantAttempts)
		}
		if len(slept) != attempts-1 {
			t.Fatalf("%d sleeps for %d attempts", len(slept), attempts)
		}
		for i, d := range slept {
			if d < base || d > max {
				t.Fatalf("sleep %d = %v outside [%v, %v] (policy %+v)", i, d, base, max, p)
			}
		}
		if int(failures) < wantAttempts {
			if err != nil || release == nil {
				t.Fatalf("recoverable sequence (%d failures, %d attempts allowed) failed: %v", failures, wantAttempts, err)
			}
		} else if !errors.Is(err, ErrAdmission) {
			t.Fatalf("exhausted sequence returned %v, want ErrAdmission", err)
		}

		// Context cancel always wins: with a pre-canceled context, the first
		// needed backoff aborts with the context error, never ErrAdmission.
		if failures > 0 && wantAttempts > 1 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			calls = 0
			_, attempts, err := p.run(ctx, scriptedAdmit(int(failures), &calls), sleepCtx, jitterDraw)
			if attempts != 1 {
				t.Fatalf("canceled context allowed %d attempts", attempts)
			}
			if !errors.Is(err, context.Canceled) || errors.Is(err, ErrAdmission) {
				t.Fatalf("canceled context: err = %v", err)
			}
		}
	})
}
