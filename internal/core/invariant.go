package core

import (
	"fmt"
	"math"
)

// relTol is the tolerance for comparing an incrementally maintained clique
// probability against a from-scratch product: the two multiply the same
// values in different orders, so they may differ by a few ulps.
const relTol = 1e-9

func nearlyEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}

// verifyInvariants asserts the preconditions of Enum-Uncertain-MC stated in
// Lemmas 6 and 7 of the paper, recomputing everything from scratch. It
// panics on the first violation; it is wired to Config.CheckInvariants and
// used only by the test suite (cost per call: O(n·|C|)).
func (e *enumerator) verifyInvariants(C []int32, q float64, I, X entrySet) {
	set := make([]int, len(C))
	for i, v := range C {
		set[i] = int(v)
		if i > 0 && C[i-1] >= C[i] {
			panic(fmt.Sprintf("core invariant: C %v not strictly ascending", C))
		}
	}
	trueQ := e.g.CliqueProb(set)
	if !nearlyEqual(q, trueQ) {
		panic(fmt.Sprintf("core invariant: q=%v but clq(%v)=%v", q, set, trueQ))
	}
	if len(set) > 0 && trueQ < e.alpha && !nearlyEqual(trueQ, e.alpha) {
		panic(fmt.Sprintf("core invariant: C=%v is not an α-clique (%v < %v)", set, trueQ, e.alpha))
	}
	maxC := int32(-1)
	if len(C) > 0 {
		maxC = C[len(C)-1]
	}

	inC := make(map[int32]bool, len(C))
	for _, v := range C {
		inC[v] = true
	}
	checkEntry := func(kind string, ent entry, wantGreater bool) {
		if inC[ent.v] {
			panic(fmt.Sprintf("core invariant: %s entry %d already in C %v", kind, ent.v, set))
		}
		if wantGreater && ent.v <= maxC {
			panic(fmt.Sprintf("core invariant: I entry %d ≤ max(C)=%d", ent.v, maxC))
		}
		if !wantGreater && ent.v >= maxC {
			panic(fmt.Sprintf("core invariant: X entry %d ≥ max(C)=%d", ent.v, maxC))
		}
		ext := e.g.CliqueProb(append(set, int(ent.v)))
		if !nearlyEqual(ext, q*ent.r) {
			panic(fmt.Sprintf("core invariant: %s entry %d multiplier %v: clq=%v but q·r=%v",
				kind, ent.v, ent.r, ext, q*ent.r))
		}
		if ext < e.alpha && !nearlyEqual(ext, e.alpha) {
			panic(fmt.Sprintf("core invariant: %s entry %d does not meet α: %v < %v", kind, ent.v, ext, e.alpha))
		}
	}
	for i, v := range I.v {
		if i > 0 && I.v[i-1] >= v {
			panic("core invariant: I not sorted")
		}
		checkEntry("I", entry{v, I.r[i]}, true)
	}
	for i, v := range X.v {
		if i > 0 && X.v[i-1] >= v {
			panic("core invariant: X not sorted")
		}
		checkEntry("X", entry{v, X.r[i]}, false)
	}

	// Completeness (the "all tuples" part of Lemmas 6 and 7): every vertex
	// that could extend C must appear in I or X. X may legitimately be
	// incomplete under LARGE-MULE's size pruning, so the backward check only
	// runs for plain MULE.
	inI := make(map[int32]bool, I.length())
	for _, v := range I.v {
		inI[v] = true
	}
	inX := make(map[int32]bool, X.length())
	for _, v := range X.v {
		inX[v] = true
	}
	for w := 0; w < e.g.NumVertices(); w++ {
		if inC[int32(w)] {
			continue
		}
		ext := e.g.CliqueProb(append(set, w))
		if ext < e.alpha {
			continue
		}
		if int32(w) > maxC {
			if !inI[int32(w)] {
				panic(fmt.Sprintf("core invariant: vertex %d extends C=%v (clq=%v) but missing from I", w, set, ext))
			}
		} else if e.minSize < 2 && !inX[int32(w)] {
			panic(fmt.Sprintf("core invariant: vertex %d extends C=%v (clq=%v) but missing from X", w, set, ext))
		}
	}
}
