// Package server implements muled, the resident graph-query service: a
// long-lived HTTP server that keeps named uncertain graphs in memory as
// immutable, epoch-stamped snapshots, answers all seven prepared-query
// families against them through a shared mule.Executor with per-tenant
// admission control, ingests edge-update batches through the incremental
// clique Maintainer with a copy-on-write snapshot swap, and serves repeat
// queries from an epoch-keyed LRU result cache.
//
// Epoch semantics: every load and every committed Apply stamps the graph
// with a fresh epoch from a server-wide monotonic counter. Queries resolve
// one snapshot for their whole run — a concurrent Apply never changes what
// an in-flight query sees — and cache keys embed the epoch, so an update
// invalidates the cache implicitly: new queries form new keys and the stale
// entries age out of the LRU.
//
// The CLI's exit-code conventions map onto HTTP statuses:
//
//	exit 0 + truncation  → 200 with "truncated": true (limit or budget)
//	exit 124 (deadline)  → 504 Gateway Timeout
//	exit 75  (admission) → 429 Too Many Requests, with Retry-After
//	exit 70  (panic,
//	          stall)     → 500 with the run status in "status"
//	validation errors    → 400 Bad Request
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/graphio"
)

// Config tunes a Server.
type Config struct {
	// Executor is the scheduling/admission domain queries run on. Nil means
	// the server creates a private executor with Workers workers and owns
	// it: Server.Close closes it.
	Executor *mule.Executor
	// Workers sizes the private executor when Executor is nil; values below
	// 1 mean GOMAXPROCS (the mule.NewExecutor clamp applies).
	Workers int
	// CacheEntries caps the result cache (default 256; 0 after default
	// applies only via explicit negative → disabled).
	CacheEntries int
	// CacheBytes caps the result cache's total stored result bytes (default
	// 64 MiB; negative → unbounded by bytes, entry cap only). An entry
	// larger than the byte cap is never stored.
	CacheBytes int64
	// MaxBodyBytes caps graph-load and apply request bodies (default 1 GiB).
	MaxBodyBytes int64
	// WarmKeys is how many most-recently-hit cached query shapes a committed
	// Apply re-issues against the new epoch, repopulating the cache before
	// clients re-ask (default 4; negative disables warming).
	WarmKeys int
}

const (
	defaultCacheEntries = 256
	defaultCacheBytes   = 64 << 20
	defaultMaxBody      = 1 << 30
	// defaultMaintainerAlpha seeds a graph's incremental maintainer when the
	// first Apply batch names no alpha of its own.
	defaultMaintainerAlpha = 0.5
)

// Server is the muled HTTP service. Build it with New, mount Handler on an
// http.Server, and Close it on shutdown. All methods are safe for
// concurrent use.
type Server struct {
	ex        *mule.Executor
	ownsExec  bool
	reg       *registry
	cache     *resultCache
	progress  *progressTable
	warm      *warmTracker
	warmKeys  int
	warmCount warmCounters
	maxBody   int64
	mux       *http.ServeMux
	inflight  atomic.Int64
	closed    sync.Once
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	ex := cfg.Executor
	owns := false
	if ex == nil {
		w := cfg.Workers
		ex = mule.NewExecutor(w)
		owns = true
	}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = defaultCacheEntries
	} else if entries < 0 {
		entries = 0
	}
	capBytes := cfg.CacheBytes
	if capBytes == 0 {
		capBytes = defaultCacheBytes
	} else if capBytes < 0 {
		capBytes = 0
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	warmKeys := cfg.WarmKeys
	if warmKeys == 0 {
		warmKeys = defaultWarmKeys
	} else if warmKeys < 0 {
		warmKeys = 0
	}
	s := &Server{
		ex:       ex,
		ownsExec: owns,
		reg:      newRegistry(),
		cache:    newResultCache(entries, capBytes),
		progress: newProgressTable(),
		warm:     newWarmTracker(warmTrackCap),
		warmKeys: warmKeys,
		maxBody:  maxBody,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs/{name}", s.handleLoadGraph)
	mux.HandleFunc("PUT /graphs/{name}", s.handleLoadGraph)
	mux.HandleFunc("GET /graphs/{name}", s.handleGraphInfo)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("GET /graphs/{name}/query", s.handleQuery)
	mux.HandleFunc("POST /graphs/{name}/apply", s.handleApply)
	mux.HandleFunc("PUT /tenants/{id}/limits", s.handleTenantLimits)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Executor returns the scheduling domain queries run on (for installing
// tenant limits programmatically).
func (s *Server) Executor() *mule.Executor { return s.ex }

// Close releases the server's resources. If the server owns its executor it
// is closed — queued admissions fail with ErrAdmission rather than hang.
// Close is idempotent.
func (s *Server) Close() {
	s.closed.Do(func() {
		if s.ownsExec {
			s.ex.Close()
		}
	})
}

// InFlight returns the number of query requests currently executing (cache
// hits excluded).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Install publishes snap under name with a fresh epoch, replacing any
// previous graph of that name. It is the programmatic counterpart of
// POST /graphs/{name}, used to preload graphs before the listener opens.
// Exactly one of snap.Graph and snap.Bipartite must be non-nil.
func (s *Server) Install(name string, snap *Snapshot) error {
	if name == "" {
		return errors.New("empty graph name")
	}
	if (snap.Graph == nil) == (snap.Bipartite == nil) {
		return errors.New("exactly one of Graph and Bipartite must be set")
	}
	snap.Epoch = s.reg.nextEpoch()
	s.reg.install(name, snap)
	return nil
}

// --- error mapping ---

// httpStatusOf maps a query/apply error onto the HTTP status and run-status
// detail the response should carry, mirroring the CLI's exit conventions.
func httpStatusOf(err error) (code int, detail string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, mule.StatusDeadline.String()
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto convention (nginx).
		return 499, mule.StatusCanceled.String()
	case errors.Is(err, mule.ErrAdmission):
		return http.StatusTooManyRequests, mule.StatusFailed.String()
	case errors.Is(err, mule.ErrPanic):
		return http.StatusInternalServerError, mule.StatusPanicked.String()
	case errors.Is(err, mule.ErrStalled):
		return http.StatusInternalServerError, mule.StatusStalled.String()
	case errors.Is(err, mule.ErrNilGraph),
		errors.Is(err, mule.ErrAlphaRange),
		errors.Is(err, mule.ErrConfig),
		errors.Is(err, mule.ErrGammaRange),
		errors.Is(err, mule.ErrEtaRange),
		errors.Is(err, mule.ErrKRange),
		errors.Is(err, mule.ErrCentersRange),
		errors.Is(err, mule.ErrVertexRange),
		errors.Is(err, mule.ErrSelfLoop),
		errors.Is(err, mule.ErrProbRange),
		errors.Is(err, mule.ErrDuplicateEdge):
		return http.StatusBadRequest, mule.StatusFailed.String()
	default:
		return http.StatusInternalServerError, mule.StatusFailed.String()
	}
}

type errorResponse struct {
	Error  string `json:"error"`
	Status string `json:"status,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, detail string, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error(), Status: detail})
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// graphInfo is the wire shape of one registry entry.
type graphInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

func infoOf(e *entry) graphInfo {
	snap := e.snapshot()
	return graphInfo{Name: e.name, Kind: snap.Kind(), Epoch: snap.Epoch,
		Vertices: snap.Vertices(), Edges: snap.Edges()}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	out := make([]graphInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, infoOf(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	e := s.reg.get(r.PathValue("name"))
	if e == nil {
		writeError(w, http.StatusNotFound, "", fmt.Errorf("graph %q not loaded", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, infoOf(e))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.delete(name) {
		writeError(w, http.StatusNotFound, "", fmt.Errorf("graph %q not loaded", name))
		return
	}
	// Cache entries for the deleted graph are keyed by epochs that will
	// never be issued again; the LRU ages them out. Warm shapes are purged
	// eagerly so a future graph of the same name starts cold.
	s.warm.purge(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// handleLoadGraph ingests a graph under /graphs/{name}: from the request
// body (any graphio format, gzip transparent — no temp file) or, with
// ?path=, from a server-local file. ?kind=bipartite selects the bipartite
// text format. Re-loading an existing name replaces it under a fresh epoch.
func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "", errors.New("empty graph name"))
		return
	}
	q := r.URL.Query()
	kind := q.Get("kind")
	if kind != "" && kind != "graph" && kind != "bipartite" {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("unknown kind %q (want graph or bipartite)", kind))
		return
	}
	path := q.Get("path")

	snap := &Snapshot{}
	var err error
	if kind == "bipartite" {
		if path != "" {
			snap.Bipartite, err = graphio.LoadBipartiteFile(path)
		} else {
			snap.Bipartite, err = graphio.LoadBipartite(http.MaxBytesReader(w, r.Body, s.maxBody))
		}
	} else {
		if path != "" {
			snap.Graph, err = graphio.LoadFile(path)
		} else {
			snap.Graph, err = graphio.Load(http.MaxBytesReader(w, r.Body, s.maxBody))
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("loading graph %q: %w", name, err))
		return
	}
	snap.Epoch = s.reg.nextEpoch()
	s.reg.install(name, snap)
	writeJSON(w, http.StatusOK, graphInfo{Name: name, Kind: snap.Kind(), Epoch: snap.Epoch,
		Vertices: snap.Vertices(), Edges: snap.Edges()})
}

// queryResponse is the wire shape of a query result.
type queryResponse struct {
	Graph     string          `json:"graph"`
	Epoch     uint64          `json:"epoch"`
	Miner     string          `json:"miner"`
	Cached    bool            `json:"cached"`
	Truncated bool            `json:"truncated"`
	Status    string          `json:"status"`
	Count     int64           `json:"count"`
	Results   json.RawMessage `json:"results"`
	Stats     json.RawMessage `json:"stats,omitempty"`
}

// handleQuery runs one prepared query against the graph's current snapshot,
// serving from the epoch-keyed cache when possible. See the package comment
// for the status mapping.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e := s.reg.get(name)
	if e == nil {
		writeError(w, http.StatusNotFound, "", fmt.Errorf("graph %q not loaded", name))
		return
	}
	values := r.URL.Query()
	if values.Get("tenant") == "" {
		if h := r.Header.Get("X-Mule-Tenant"); h != "" {
			values.Set("tenant", h)
		}
	}
	p, err := parseQueryParams(values)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", err)
		return
	}

	// Resolve the snapshot once: the epoch, the cache key, and the whole
	// run use this version of the graph no matter what Apply does meanwhile.
	snap := e.snapshot()
	var prog func(done, total int)
	if p.sharded() {
		var id int64
		id, prog = s.progress.register(name, p.miner)
		defer s.progress.unregister(id)
	}
	run, err := p.newRunner(snap, s.ex, prog)
	if err != nil {
		code, detail := httpStatusOf(err)
		writeError(w, code, detail, err)
		return
	}

	key := p.cacheKey(name, snap.Epoch)
	if key != "" {
		if hit, ok := s.cache.get(key); ok {
			// A hit marks the shape worth re-warming after the next Apply.
			s.warm.record(name, p)
			writeJSON(w, http.StatusOK, queryResponse{
				Graph: name, Epoch: snap.Epoch, Miner: p.miner, Cached: true,
				Truncated: hit.Truncated, Status: hit.Status, Count: hit.Count,
				Results: hit.Results, Stats: hit.Stats,
			})
			return
		}
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	ctx := r.Context()
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	out := run(ctx)

	// Budget exhaustion is a truncation, not a failure: the partial prefix
	// is delivered with truncated=true, mirroring exit 0 + partial output
	// in the CLI. Everything else maps through httpStatusOf.
	if out.err != nil && !errors.Is(out.err, mule.ErrBudget) {
		code, detail := httpStatusOf(out.err)
		if code == http.StatusTooManyRequests {
			// The rejection was instantaneous (admission, not execution), so a
			// prompt retry is reasonable once a slot frees up.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, detail, out.err)
		return
	}

	results, merr := json.Marshal(out.results)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, "", merr)
		return
	}
	statsJSON, _ := json.Marshal(out.stats)
	resp := queryResponse{
		Graph: name, Epoch: snap.Epoch, Miner: p.miner,
		Truncated: out.err != nil || out.status == mule.StatusStopped,
		Status:    out.status.String(),
		Count:     out.count,
		Results:   results,
		Stats:     statsJSON,
	}
	// Only settled answers are cached: complete runs and limit-truncated
	// ones. A budget abort depends on the budget and is recomputed.
	if key != "" && out.err == nil {
		s.cache.put(key, cachedResult{
			Status: resp.Status, Truncated: resp.Truncated,
			Count: resp.Count, Results: results, Stats: statsJSON,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// edgeUpdateJSON is one element of an apply batch.
type edgeUpdateJSON struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	P      float64 `json:"p,omitempty"`
	Remove bool    `json:"remove,omitempty"`
}

type applyRequest struct {
	Updates []edgeUpdateJSON `json:"updates"`
}

type applyResponse struct {
	Graph          string `json:"graph"`
	Epoch          uint64 `json:"epoch"`
	Updates        int    `json:"updates"`
	CliquesAdded   int    `json:"cliques_added"`
	CliquesRemoved int    `json:"cliques_removed"`
	Status         string `json:"status"`
	Error          string `json:"error,omitempty"`
}

// handleApply ingests one edge-update batch through the graph's incremental
// maintainer and publishes the new snapshot under a bumped epoch. The body
// is {"updates":[{"u":0,"v":1,"p":0.5},{"u":2,"v":3,"remove":true}]} or the
// bare array. ?alpha= seeds the maintainer on the first batch.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e := s.reg.get(name)
	if e == nil {
		writeError(w, http.StatusNotFound, "", fmt.Errorf("graph %q not loaded", name))
		return
	}
	alpha := defaultMaintainerAlpha
	if raw := r.URL.Query().Get("alpha"); raw != "" {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "", fmt.Errorf("parameter %q: %q is not a number", "alpha", raw))
			return
		}
		alpha = f
	}

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	var req applyRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("decoding update batch: %w", err))
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "", errors.New("empty update batch"))
		return
	}
	batch := make([]mule.EdgeUpdate, len(req.Updates))
	for i, u := range req.Updates {
		batch[i] = mule.EdgeUpdate{U: u.U, V: u.V, P: u.P, Remove: u.Remove}
	}

	diff, stats, epoch, err := e.apply(r.Context(), s.reg, batch, alpha)
	resp := applyResponse{
		Graph: name, Epoch: epoch, Updates: stats.Updates,
		CliquesAdded:   len(diff.Added),
		CliquesRemoved: len(diff.Removed),
		Status:         stats.Status.String(),
	}
	if err != nil {
		code, detail := httpStatusOf(err)
		resp.Error = err.Error()
		if detail != "" && stats.Status == 0 {
			resp.Status = detail
		}
		writeJSON(w, code, resp)
		return
	}
	// The new epoch is live: re-issue recently hit query shapes in the
	// background so the cache is hot before clients re-ask.
	s.warmAfterApply(name)
	writeJSON(w, http.StatusOK, resp)
}

// tenantLimitsJSON mirrors mule.Limits on the wire.
type tenantLimitsJSON struct {
	MaxInFlight int   `json:"max_inflight"`
	MaxQueued   int   `json:"max_queued"`
	MaxBudget   int64 `json:"max_budget"`
}

// handleTenantLimits installs per-tenant admission limits on the server's
// executor: PUT /tenants/{id}/limits with a tenantLimitsJSON body.
func (s *Server) handleTenantLimits(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "", errors.New("empty tenant id"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	var l tenantLimitsJSON
	if err := dec.Decode(&l); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Errorf("decoding limits: %w", err))
		return
	}
	if l.MaxInFlight < 0 || l.MaxQueued < 0 || l.MaxBudget < 0 {
		writeError(w, http.StatusBadRequest, "", errors.New("limits must be non-negative"))
		return
	}
	s.ex.SetTenantLimits(id, mule.Limits{
		MaxInFlight: l.MaxInFlight, MaxQueued: l.MaxQueued, MaxBudget: l.MaxBudget,
	})
	writeJSON(w, http.StatusOK, map[string]any{"tenant": id, "limits": l})
}

// statsResponse is the /stats wire shape.
type statsResponse struct {
	InFlight  int64               `json:"inflight"`
	Cache     cacheStats          `json:"cache"`
	Warm      warmStats           `json:"warm"`
	Admission mule.AdmissionStats `json:"admission"`
	Sharded   []shardRunInfo      `json:"sharded,omitempty"`
	Graphs    []graphInfo         `json:"graphs"`
}

// handleStats snapshots the server's observable state: in-flight queries,
// cache hit/miss/eviction counters, cache-warming outcomes, per-tenant
// admission accounting, per-component progress of in-flight sharded runs,
// and every graph's current epoch.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	graphs := make([]graphInfo, 0, len(entries))
	for _, e := range entries {
		graphs = append(graphs, infoOf(e))
	}
	writeJSON(w, http.StatusOK, statsResponse{
		InFlight:  s.inflight.Load(),
		Cache:     s.cache.stats(),
		Warm:      s.warmStatsSnapshot(),
		Admission: s.ex.AdmissionStats(),
		Sharded:   s.progress.list(),
		Graphs:    graphs,
	})
}
