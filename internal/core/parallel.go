package core

import (
	"sync"
	"sync/atomic"
)

// runParallel fans the top-level branches of the search out across workers.
//
// Soundness: at the root C = ∅, the branch for vertex u receives
// I_u = {(w, p(u,w)) : w ∈ Γ(u), w > u, p(u,w) ≥ α} and
// X_u = {(x, p(u,x)) : x ∈ Γ(u), x < u, p(u,x) ≥ α}, both of which depend
// only on u — not on how much of the loop has already run — because the
// root's X accumulates exactly the vertices smaller than u. Top-level
// subtrees are therefore mutually independent and can run concurrently;
// every deeper level keeps the sequential left-to-right dependency through
// X and stays inside one worker.
func (e *enumerator) runParallel(workers int) {
	n := e.g.NumVertices()
	var stopped atomic.Bool
	var mu sync.Mutex // serializes visit callbacks and stats merging

	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &enumerator{
				g:        e.g,
				alpha:    e.alpha,
				minSize:  e.minSize,
				newToOld: e.newToOld,
				identity: e.identity,
				checkInv: e.checkInv,
				stats:    &Stats{},
				emitBuf:  make([]int, 0, 64),
			}
			if e.visit != nil {
				local.visit = func(c []int, p float64) bool {
					mu.Lock()
					defer mu.Unlock()
					if stopped.Load() {
						return false
					}
					if !e.visit(c, p) {
						stopped.Store(true)
						return false
					}
					return true
				}
			}
			for {
				u := int(atomic.AddInt64(&next, 1))
				if u >= n || stopped.Load() {
					break
				}
				local.stopped = false
				local.branch(int32(u))
				if local.stopped {
					stopped.Store(true)
				}
			}
			mu.Lock()
			e.stats.merge(local.stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	e.stopped = stopped.Load()
	// The root call itself is accounted once, as in the serial driver.
	e.stats.Calls++
}

// branch runs the top-level iteration for vertex u: it reproduces exactly
// the state the serial loop would pass to the recursive call for u.
func (e *enumerator) branch(u int32) {
	row, probs := e.g.Adjacency(int(u))
	var I, X []entry
	for i, w := range row {
		p := probs[i]
		if p < e.alpha {
			continue // only reachable with SkipPrune
		}
		if w > u {
			I = append(I, entry{w, p})
		} else {
			X = append(X, entry{w, p})
		}
	}
	e.stats.CandidateOps += int64(len(I))
	e.stats.WitnessOps += int64(len(X))
	C := make([]int32, 0, len(I)+1)
	C = append(C, u)
	if e.minSize >= 2 && len(C)+len(I) < e.minSize {
		e.stats.SizePruned++
		return
	}
	e.recurse(C, 1, I, X)
}

// merge folds o into s.
func (s *Stats) merge(o *Stats) {
	s.Calls += o.Calls
	s.Emitted += o.Emitted
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.CandidateOps += o.CandidateOps
	s.WitnessOps += o.WitnessOps
	s.SizePruned += o.SizePruned
}
