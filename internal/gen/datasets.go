package gen

import (
	"fmt"
	"math/rand"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// This file contains the dataset synthesizers that reproduce Table 1 of the
// paper. Each mirrors the vertex/edge scale and the structural character of
// the original input; DESIGN.md §3 documents why each substitution preserves
// the behaviour that the evaluation depends on. All synthesizers are
// deterministic given the seed.

// PPILike reproduces the Fruit-Fly protein–protein interaction network:
// 3751 vertices, 3692 edges — an extremely sparse, hub-skewed graph whose
// edge probabilities are interaction-confidence scores. Confidences follow
// a STRING-like bimodal mixture: a broad low-confidence mass and a smaller
// high-confidence mode.
func PPILike(seed int64) *uncertain.Graph { return PPILikeN(3751, 3692, seed) }

// PPILikeN is PPILike at arbitrary scale (m must be < n). The topology is a
// hub-skewed sparse skeleton (preferential attachment with one edge per
// protein) with a fraction of length-2 paths closed into triangles —
// protein complexes show up as small dense patches even in a network whose
// average degree is below 2, and those triangles are what give the PPI
// input its (small but non-trivial) α-maximal cliques of size ≥ 3.
func PPILikeN(n, m int, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	skeleton := BarabasiAlbert(n, 1, rng) // n-1 edges, tree
	triangles := m / 6                    // closure-edge budget
	keep := m - triangles
	edges := TrimEdges(skeleton, keep, rng)

	// Adjacency as append-ordered lists (deterministic sampling) with a set
	// for duplicate checks.
	adjList := make([][]int, n)
	seen := make(map[int64]struct{}, m)
	addPair := func(u, w int) {
		adjList[u] = append(adjList[u], w)
		adjList[w] = append(adjList[w], u)
		seen[pairKey(u, w)] = struct{}{}
	}
	hasPair := func(u, w int) bool {
		_, ok := seen[pairKey(u, w)]
		return ok
	}
	for _, e := range edges {
		addPair(e[0], e[1])
	}
	// Close random wedges u-v-w into triangles until the budget is spent.
	added := 0
	for tries := 0; added < triangles && tries < 50*triangles; tries++ {
		v := rng.Intn(n)
		if len(adjList[v]) < 2 {
			continue
		}
		u := adjList[v][rng.Intn(len(adjList[v]))]
		w := adjList[v][rng.Intn(len(adjList[v]))]
		if u == w || hasPair(u, w) {
			continue
		}
		addPair(u, w)
		if u > w {
			u, w = w, u
		}
		edges = append(edges, [2]int{u, w})
		added++
	}
	// Top up with random pairs in the rare case the wedge budget could not
	// be spent, so the Table 1 edge count is always exact.
	for added < triangles {
		u, w := rng.Intn(n), rng.Intn(n)
		if u == w || hasPair(u, w) {
			continue
		}
		addPair(u, w)
		if u > w {
			u, w = w, u
		}
		edges = append(edges, [2]int{u, w})
		added++
	}
	sortEdges(edges)
	pf := MixtureProb(
		MixtureComponent{Weight: 0.65, F: BetaProb(2.5, 4.5)}, // low confidence, mode ≈ 0.3
		MixtureComponent{Weight: 0.35, F: BetaProb(6.0, 1.8)}, // high confidence, mode ≈ 0.85
	)
	return mustBuild(n, shuffleLabels(n, edges, rng), pf, rng)
}

// DBLPLike reproduces the DBLP co-authorship network at a given scale
// (scale = 1 targets the paper's 684911 authors / 2284991 edges). Authors
// have Zipf-distributed productivity; papers draw 1–8 authors; the edge
// probability is the paper's own formula 1 − e^{−c/10} for c co-authored
// papers. scale must be in (0, 1].
func DBLPLike(scale float64, seed int64) *uncertain.Graph {
	if scale <= 0 || scale > 1 {
		panic("gen: DBLPLike scale must be in (0,1]")
	}
	nAuthors := int(684911 * scale)
	if nAuthors < 10 {
		nAuthors = 10
	}
	rng := rand.New(rand.NewSource(seed))
	model := TeamModel{
		Members:     nAuthors,
		Teams:       int(float64(nAuthors) * 1.05),
		ActivityExp: 0.78,
		// Team (= author list) sizes 1..8, mean ≈ 2.9.
		SizeDist: []float64{0.18, 0.30, 0.24, 0.14, 0.07, 0.04, 0.02, 0.01},
	}
	edges, probs := CoMembershipGraph(model, CoauthorshipProb, rng)
	b := uncertain.NewBuilder(nAuthors)
	for i, e := range edges {
		if err := b.AddEdge(e[0], e[1], probs[i]); err != nil {
			panic(fmt.Sprintf("gen: DBLPLike: %v", err))
		}
	}
	return b.Build()
}

// GnutellaLike reproduces the p2p-Gnutella snapshots: sparse, low-clustering
// near-random topology with uniformly random edge probabilities (the paper's
// semi-synthetic probability scheme).
func GnutellaLike(n, m int, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := GNM(n, m, rng)
	return mustBuild(n, edges, UniformProb(), rng)
}

// Gnutella04Like, Gnutella08Like and Gnutella09Like pin the exact Table 1
// sizes of the three snapshots.
func Gnutella04Like(seed int64) *uncertain.Graph { return GnutellaLike(10879, 39994, seed) }

// Gnutella08Like reproduces p2p-Gnutella08 (6301 vertices, 20777 edges).
func Gnutella08Like(seed int64) *uncertain.Graph { return GnutellaLike(6301, 20777, seed) }

// Gnutella09Like reproduces p2p-Gnutella09 (8114 vertices, 26013 edges).
func Gnutella09Like(seed int64) *uncertain.Graph { return GnutellaLike(8114, 26013, seed) }

// CollaborationLike reproduces ca-GrQc (5242 vertices, 28980 edges): a
// co-authorship network generated by an affiliation process, so papers
// induce overlapping cliques — the structure that makes ca-GrQc the
// clique-richest small input in the paper. Probabilities are uniform.
func CollaborationLike(seed int64) *uncertain.Graph { return CollaborationLikeN(5242, 28980, seed) }

// CollaborationLikeN is CollaborationLike at arbitrary scale.
func CollaborationLikeN(n, m int, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	model := TeamModel{
		Members:     n,
		Teams:       n * 165 / 100,
		ActivityExp: 0.72,
		SizeDist:    []float64{0.12, 0.28, 0.26, 0.16, 0.09, 0.05, 0.03, 0.01},
	}
	edges, _ := CoMembershipGraph(model, nil2uniform, rng)
	edges = TrimEdges(edges, m, rng)
	return mustBuild(n, shuffleLabels(n, edges, rng), UniformProb(), rng)
}

// nil2uniform is a placeholder count→probability map for topologies whose
// probabilities are assigned uniformly afterwards.
func nil2uniform(int) float64 { return 1 }

// WikiVoteLike reproduces wiki-vote (7118 vertices, 103689 edges): a
// heavy-tailed social graph with a dense core, generated as a Chung–Lu graph
// with power-law expected degrees. Probabilities are uniform.
func WikiVoteLike(seed int64) *uncertain.Graph { return WikiVoteLikeN(7118, 103689, seed) }

// WikiVoteLikeN is WikiVoteLike at arbitrary scale.
func WikiVoteLikeN(n, m int, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	avg := 2 * float64(m) / float64(n)
	// Overshoot expected degree ~12% to compensate for min(1,·) clamping at
	// the hubs, then trim to the exact Table 1 edge count.
	weights := PowerLawWeights(n, 2.1, avg*1.12)
	edges := ChungLu(weights, rng)
	if len(edges) < m {
		// Top up from a uniform pool in the unlikely undershoot case.
		seen := make(map[int64]struct{}, len(edges))
		for _, e := range edges {
			seen[pairKey(e[0], e[1])] = struct{}{}
		}
		for len(edges) < m {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			k := pairKey(u, v)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if u > v {
				u, v = v, u
			}
			edges = append(edges, [2]int{u, v})
		}
	}
	edges = TrimEdges(edges, m, rng)
	return mustBuild(n, shuffleLabels(n, edges, rng), UniformProb(), rng)
}

// BA reproduces the paper's Barabási–Albert inputs: n vertices, 10 edges per
// arriving vertex (matching the reported ≈10·n edge counts), probabilities
// uniform on (0,1].
func BA(n int, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := BarabasiAlbert(n, 10, rng)
	return mustBuild(n, edges, UniformProb(), rng)
}

// shuffleLabels applies a random permutation to vertex labels so that vertex
// IDs carry no structural information (generators often emit rank-ordered or
// time-ordered labels; real datasets do not).
func shuffleLabels(n int, edges [][2]int, rng *rand.Rand) [][2]int {
	perm := rng.Perm(n)
	out := make([][2]int, len(edges))
	for i, e := range edges {
		u, v := perm[e[0]], perm[e[1]]
		if u > v {
			u, v = v, u
		}
		out[i] = [2]int{u, v}
	}
	sortEdges(out)
	return out
}

// Dataset is a named, reproducible workload from the paper's Table 1.
type Dataset struct {
	Name        string
	Category    string
	Description string
	PaperN      int // vertex count reported in Table 1
	PaperM      int // edge count reported in Table 1
	Build       func(seed int64) *uncertain.Graph
}

// Table1 returns the full input inventory of the paper's Table 1, with
// DBLP10 at the given scale (the evaluation harness defaults to a scaled
// DBLP; pass 1.0 to build the full 685k-vertex graph).
func Table1(dblpScale float64) []Dataset {
	return []Dataset{
		{"Fruit-Fly", "Protein-Protein Interaction network", "PPI for Fruit Fly (STRING-like confidences)", 3751, 3692, PPILike},
		{"DBLP10", "Social network", fmt.Sprintf("Collaboration network from DBLP (scale %.3f)", dblpScale), 684911, 2284991,
			func(seed int64) *uncertain.Graph { return DBLPLike(dblpScale, seed) }},
		{"p2p-Gnutella08", "Internet peer-to-peer networks", "Gnutella network August 8 2002", 6301, 20777, Gnutella08Like},
		{"p2p-Gnutella04", "Internet peer-to-peer networks", "Gnutella network August 4 2002", 10879, 39994, Gnutella04Like},
		{"p2p-Gnutella09", "Internet peer-to-peer networks", "Gnutella network August 9 2002", 8114, 26013, Gnutella09Like},
		{"ca-GrQc", "Collaboration networks", "Arxiv General Relativity", 5242, 28980, CollaborationLike},
		{"wiki-vote", "Social networks", "wikipedia who-votes-whom network", 7118, 103689, WikiVoteLike},
		{"BA5000", "Barabási-Albert random graphs", "Random graph with 5K vertices", 5000, 50032,
			func(seed int64) *uncertain.Graph { return BA(5000, seed) }},
		{"BA6000", "Barabási-Albert random graphs", "Random graph with 6K vertices", 6000, 60129,
			func(seed int64) *uncertain.Graph { return BA(6000, seed) }},
		{"BA7000", "Barabási-Albert random graphs", "Random graph with 7K vertices", 7000, 70204,
			func(seed int64) *uncertain.Graph { return BA(7000, seed) }},
		{"BA8000", "Barabási-Albert random graphs", "Random graph with 8K vertices", 8000, 80185,
			func(seed int64) *uncertain.Graph { return BA(8000, seed) }},
		{"BA9000", "Barabási-Albert random graphs", "Random graph with 9K vertices", 9000, 90418,
			func(seed int64) *uncertain.Graph { return BA(9000, seed) }},
		{"BA10000", "Barabási-Albert random graphs", "Random graph with 10K vertices", 10000, 99194,
			func(seed int64) *uncertain.Graph { return BA(10000, seed) }},
	}
}
