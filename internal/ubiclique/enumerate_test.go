package ubiclique

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var dyadicAlphas = []float64{0.5, 0.25, 0.125, 0.0625, 0.03125}

func collectOrFail(t *testing.T, g *Bipartite, alpha float64, cfg Config) []Biclique {
	t.Helper()
	out, err := CollectWith(g, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// --- Soundness and completeness against the brute-force oracle ---

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	densities := []float64{0.2, 0.4, 0.7, 1.0}
	for trial := 0; trial < 150; trial++ {
		nL := 1 + rng.Intn(5)
		nR := 1 + rng.Intn(5)
		g := randomBipartite(nL, nR, densities[trial%len(densities)], rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := CollectBrute(g, alpha)
		got := collectOrFail(t, g, alpha, Config{CheckInvariants: true})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (nL=%d, nR=%d, α=%v):\nenum  = %v\nbrute = %v\nedges = %v",
				trial, nL, nR, alpha, got, want, g.Edges())
		}
	}
}

func TestEnumerateMatchesBruteForceAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 40; trial++ {
		// Skewed shapes stress the side cut: one side much larger.
		g := randomBipartite(1+rng.Intn(2), 4+rng.Intn(4), 0.5, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := CollectBrute(g, alpha)
		got := collectOrFail(t, g, alpha, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (α=%v): enum %v vs brute %v", trial, alpha, got, want)
		}
	}
}

// --- Hand-computed answers ---

func TestEnumerateHandComputed(t *testing.T) {
	// l0-r0 (0.5), l0-r1 (0.5), l1-r0 (0.25).
	g, err := FromEdges(2, 2, []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.5},
		{L: 1, R: 0, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		alpha float64
		want  []Biclique
	}{
		// All three pairs, each maximal where its extensions fail.
		{0.5, []Biclique{
			{Left: []int{0}, Right: []int{0}, Prob: 0.5},
			{Left: []int{0}, Right: []int{1}, Prob: 0.5},
		}},
		{0.25, []Biclique{
			{Left: []int{0}, Right: []int{0, 1}, Prob: 0.25},
			{Left: []int{1}, Right: []int{0}, Prob: 0.25},
		}},
		{0.125, []Biclique{
			{Left: []int{0}, Right: []int{0, 1}, Prob: 0.25},
			{Left: []int{0, 1}, Right: []int{0}, Prob: 0.125},
		}},
		// Everything qualifies that the support allows: the two-by-one and
		// one-by-two shapes merge only if edge (1,1) existed, which it does
		// not, so the same two maximal shapes survive at any lower α.
		{0.0001, []Biclique{
			{Left: []int{0}, Right: []int{0, 1}, Prob: 0.25},
			{Left: []int{0, 1}, Right: []int{0}, Prob: 0.125},
		}},
	}
	for _, tc := range cases {
		got := collectOrFail(t, g, tc.alpha, Config{})
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("α=%v: got %v, want %v", tc.alpha, got, tc.want)
		}
	}
}

func TestEnumerateCompleteBipartiteCertain(t *testing.T) {
	// K_{3,4} with all probabilities 1: the unique maximal biclique is
	// (L, R) at any α.
	b := NewBuilder(3, 4)
	for l := 0; l < 3; l++ {
		for r := 0; r < 4; r++ {
			if err := b.AddEdge(l, r, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	for _, alpha := range []float64{1, 0.5, 0.0001} {
		got := collectOrFail(t, g, alpha, Config{})
		want := []Biclique{{Left: []int{0, 1, 2}, Right: []int{0, 1, 2, 3}, Prob: 1}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("α=%v: got %v, want %v", alpha, got, want)
		}
	}
}

func TestEnumerateEdgelessGraph(t *testing.T) {
	g := NewBuilder(6, 6).Build()
	stats, err := Enumerate(g, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != 0 {
		t.Fatalf("%d bicliques on an edgeless graph", stats.Emitted)
	}
	// The side cut must keep the walk linear-ish, not 2^6 + 2^6.
	if stats.Calls > 20 {
		t.Fatalf("edgeless graph cost %d search calls; the side cut is not engaging", stats.Calls)
	}
}

// --- Threshold semantics ---

func TestAlphaOneKeepsOnlyCertainEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 30; trial++ {
		g := randomBipartite(4, 4, 0.6, rng)
		got := collectOrFail(t, g, 1, Config{})
		for _, bc := range got {
			if bc.Prob != 1 {
				t.Fatalf("α=1 emitted probability %v", bc.Prob)
			}
			for _, l := range bc.Left {
				for _, r := range bc.Right {
					if p, ok := g.Prob(l, r); !ok || p != 1 {
						t.Fatalf("α=1 biclique uses uncertain edge (%d,%d)", l, r)
					}
				}
			}
		}
		want := CollectBrute(g, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("α=1 mismatch: %v vs %v", got, want)
		}
	}
}

func TestPruneAlphaPreservesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 25; trial++ {
		g := randomBipartite(5, 5, 0.6, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		whole := collectOrFail(t, g, alpha, Config{})
		pruned := collectOrFail(t, g.PruneAlpha(alpha), alpha, Config{})
		if !reflect.DeepEqual(whole, pruned) {
			t.Fatalf("α=%v: pruning changed output: %v vs %v", alpha, whole, pruned)
		}
	}
}

// --- LARGE variant: MinLeft / MinRight ---

func TestMinSidesMatchFilteredOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 60; trial++ {
		g := randomBipartite(5, 5, 0.8, rng)
		alpha := dyadicAlphas[rng.Intn(3)]
		minL := 1 + rng.Intn(3)
		minR := 1 + rng.Intn(3)
		all := collectOrFail(t, g, alpha, Config{})
		var want []Biclique
		for _, bc := range all {
			if len(bc.Left) >= minL && len(bc.Right) >= minR {
				want = append(want, bc)
			}
		}
		got := collectOrFail(t, g, alpha, Config{MinLeft: minL, MinRight: minR})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (α=%v, min %d/%d): got %v, want %v",
				trial, alpha, minL, minR, got, want)
		}
	}
}

func TestMinSidesPruneSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	g := randomBipartite(12, 12, 0.5, rng)
	full, err := Enumerate(g, 0.03125, nil)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := EnumerateWith(g, 0.03125, nil, Config{MinLeft: 3, MinRight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Calls >= full.Calls {
		t.Fatalf("size constraint did not shrink the search: %d vs %d calls",
			constrained.Calls, full.Calls)
	}
}

// --- Driver-level behaviour ---

func TestEnumerateErrors(t *testing.T) {
	g := NewBuilder(1, 1).Build()
	if _, err := Enumerate(nil, 0.5, nil); err == nil {
		t.Error("nil graph accepted")
	}
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := Enumerate(g, alpha, nil); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{MinLeft: -1}); err == nil {
		t.Error("negative MinLeft accepted")
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{MinRight: -2}); err == nil {
		t.Error("negative MinRight accepted")
	}
}

func TestVisitorStop(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	g := randomBipartite(6, 6, 0.9, rng)
	total, err := Count(g, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if total < 3 {
		t.Skipf("workload too small (%d bicliques) to test early stop", total)
	}
	seen := int64(0)
	stats, err := Enumerate(g, 0.125, func([]int, []int, float64) bool {
		seen++
		return seen < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("visitor ran %d times after requesting stop at 2", seen)
	}
	if stats.Emitted != 2 {
		t.Fatalf("stats.Emitted = %d after early stop, want 2", stats.Emitted)
	}
}

func TestVisitorSlicesAreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	g := randomBipartite(6, 6, 0.7, rng)
	_, err := Enumerate(g, 0.25, func(l, r []int, p float64) bool {
		for i := 1; i < len(l); i++ {
			if l[i-1] >= l[i] {
				t.Fatalf("left side not strictly ascending: %v", l)
			}
		}
		for i := 1; i < len(r); i++ {
			if r[i-1] >= r[i] {
				t.Fatalf("right side not strictly ascending: %v", r)
			}
		}
		if p <= 0 || p > 1 {
			t.Fatalf("probability %v outside (0,1]", p)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(333))
	g := randomBipartite(7, 7, 0.6, rng)
	stats, err := Enumerate(g, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Calls <= 0 {
		t.Error("no search calls recorded")
	}
	if stats.Emitted < 0 || stats.Calls < stats.Emitted {
		t.Errorf("implausible accounting: %+v", stats)
	}
	if stats.MaxLeft < 0 || stats.MaxRight < 0 {
		t.Errorf("negative side maxima: %+v", stats)
	}
	if stats.Emitted > 0 && (stats.MaxLeft == 0 || stats.MaxRight == 0) {
		t.Errorf("emitted bicliques but a side max is zero: %+v", stats)
	}
}

// --- Property tests ---

// Every emitted pair satisfies the reference Definition 4 analogue, and the
// number of emissions matches a repeat run (determinism).
func TestQuickEmittedAreMaximal(t *testing.T) {
	check := func(seed int64, alphaIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(2+rng.Intn(4), 2+rng.Intn(4), 0.6, rng)
		alpha := dyadicAlphas[int(alphaIdx)%len(dyadicAlphas)]
		ok := true
		n1, err := Enumerate(g, alpha, func(l, r []int, p float64) bool {
			if !g.IsAlphaMaximalBiclique(l, r, alpha) {
				ok = false
			}
			if p != g.BicliqueProb(l, r) {
				ok = false
			}
			return ok
		})
		if err != nil || !ok {
			return false
		}
		n2, err := Count(g, alpha)
		return err == nil && n1.Emitted == n2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Lower α can only grow or reshape the output, never lose qualifying
// support shapes entirely: every α-maximal biclique remains an α'-biclique
// for α' ≤ α (monotonicity of the threshold on fixed pairs).
func TestQuickThresholdMonotonicity(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(2+rng.Intn(4), 2+rng.Intn(4), 0.7, rng)
		hi, err := Collect(g, 0.25)
		if err != nil {
			return false
		}
		for _, bc := range hi {
			// Still an α-biclique at the lower threshold (maximality may
			// change, qualification cannot).
			if !g.IsAlphaBiclique(bc.Left, bc.Right, 0.125) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// No two emitted bicliques are in containment (the non-redundant-collection
// property of Definition 6).
func TestQuickOutputIsAntichain(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(2+rng.Intn(4), 2+rng.Intn(4), 0.8, rng)
		out, err := Collect(g, 0.125)
		if err != nil {
			return false
		}
		for i := range out {
			for j := range out {
				if i == j {
					continue
				}
				if sideSubset(out[i].Left, out[j].Left) && sideSubset(out[i].Right, out[j].Right) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// sideSubset reports a ⊆ b for ascending-sorted int slices.
func sideSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func TestCollectBruteGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CollectBrute accepted an oversized side")
		}
	}()
	CollectBrute(NewBuilder(21, 2).Build(), 0.5)
}
