package det

import "sort"

// Components returns the connected components as ascending vertex lists,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		members := []int{}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range g.adj[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// IsConnectedSubset reports whether the subgraph induced by set is
// connected (the empty set and singletons count as connected). Used by the
// possible-world reliability estimators.
func (g *Graph) IsConnectedSubset(set []int) bool {
	if len(set) <= 1 {
		return true
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	seen := map[int]bool{set[0]: true}
	stack := []int{set[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if in[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(set)
}
