package mule

import (
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/exec"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Typed sentinel errors. Graph construction and every query surface —
// cliques, bicliques, quasi-cliques, trusses, cores, and the maintainer —
// wrap one of these (or context.Canceled / context.DeadlineExceeded for
// aborted runs) with the offending values; match with errors.Is:
//
//	if _, err := mule.NewQuery(g, 1.5); errors.Is(err, mule.ErrAlphaRange) { … }
var (
	// ErrNilGraph reports a nil *Graph passed to a query or enumeration.
	ErrNilGraph = core.ErrNilGraph
	// ErrAlphaRange reports a probability threshold α outside (0, 1].
	ErrAlphaRange = core.ErrAlphaRange
	// ErrConfig reports an invalid option or Config field (negative sizes,
	// worker counts, limits or budgets; unknown orderings or engines).
	ErrConfig = core.ErrConfig
	// ErrStopped reports that a Visitor ended a Query.Run early by
	// returning false; the run's Stats remain valid for the delivered
	// prefix. The deprecated callback functions swallow it (their original
	// contract treats an early stop as success).
	ErrStopped = core.ErrStopped
	// ErrBudget reports that a run exhausted its WithBudget node budget
	// before completing.
	ErrBudget = core.ErrBudget
	// ErrGammaRange reports a quasi-clique density threshold γ outside the
	// range the miner supports: WithGamma must lie in [0.5, 1] (the
	// predicate helpers accept (0, 1]).
	ErrGammaRange = core.ErrGammaRange
	// ErrEtaRange reports a truss/core confidence threshold η outside
	// (0, 1].
	ErrEtaRange = core.ErrEtaRange
	// ErrKRange reports a structural size parameter k below its floor:
	// 2 for TrussQuery.Truss, 0 for CoreQuery.Core.
	ErrKRange = core.ErrKRange
	// ErrCentersRange reports a cluster query center count outside
	// [1, NumVertices] — including the zero value from omitting the required
	// WithCenters option.
	ErrCentersRange = core.ErrCentersRange
	// ErrAdmission reports a run rejected by an Executor's admission
	// control: the query's tenant is at its in-flight or aggregate-budget
	// cap (see Limits) and the wait queue is full or waiting is disabled.
	// Rejection happens before any search work runs; retry after other runs
	// of the tenant release their capacity (WithRetry automates that with
	// jittered exponential backoff).
	ErrAdmission = exec.ErrAdmission
	// ErrPanic reports a run terminated by a recovered panic — in a visitor
	// callback or inside an engine — contained to that run: other runs on
	// the shared executor are untouched. The concrete error is a
	// *PanicError carrying the panic value and stack.
	ErrPanic = core.ErrPanic
	// ErrStalled reports a run aborted by the WithStallTimeout watchdog
	// after making no search progress for the configured window — distinct
	// from a context deadline, which fires on wall clock regardless of
	// progress.
	ErrStalled = core.ErrStalled

	// ErrVertexRange reports an edge endpoint or vertex ID outside [0, n).
	ErrVertexRange = uncertain.ErrVertexRange
	// ErrSelfLoop reports an edge with identical endpoints.
	ErrSelfLoop = uncertain.ErrSelfLoop
	// ErrProbRange reports an edge probability outside (0, 1] (or NaN).
	ErrProbRange = uncertain.ErrProbRange
	// ErrDuplicateEdge reports an edge added twice to a Builder.
	ErrDuplicateEdge = uncertain.ErrDuplicateEdge
)

// PanicError is the concrete error behind ErrPanic: the recovered panic
// value plus the stack captured at the recovery point. Match the sentinel
// with errors.Is(err, ErrPanic) and extract the detail with errors.As:
//
//	var pe *mule.PanicError
//	if errors.As(err, &pe) { log.Printf("run panicked: %v\n%s", pe.Value, pe.Stack) }
type PanicError = core.PanicError

// RunStatus is the terminal state of an enumeration run, recorded in
// Stats.Status.
type RunStatus = core.RunStatus

// Terminal run states.
const (
	// StatusComplete: the search space was exhausted.
	StatusComplete = core.StatusComplete
	// StatusStopped: a visitor returned false or a WithLimit bound hit.
	StatusStopped = core.StatusStopped
	// StatusCanceled: the context was canceled mid-run.
	StatusCanceled = core.StatusCanceled
	// StatusDeadline: the context deadline expired mid-run.
	StatusDeadline = core.StatusDeadline
	// StatusBudget: the WithBudget node budget ran out mid-run.
	StatusBudget = core.StatusBudget
	// StatusFailed: a maintainer update was rejected by validation before
	// any work ran (queries validate at construction and never report it),
	// or a query's run was rejected by admission control.
	StatusFailed = core.StatusFailed
	// StatusPanicked: a recovered panic terminated the run (ErrPanic); the
	// shared executor and every other run are unaffected.
	StatusPanicked = core.StatusPanicked
	// StatusStalled: the WithStallTimeout watchdog aborted the run after no
	// search progress for the configured window (ErrStalled).
	StatusStalled = core.StatusStalled
)
