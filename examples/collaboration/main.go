// Collaboration-community mining: the paper's DBLP scenario. The co-
// authorship graph is uncertain — an edge's probability 1 − e^{−c/10} models
// the strength of a collaboration with c joint papers — and an α-maximal
// clique is a tightly-knit research group whose members all plausibly
// collaborate pairwise.
//
// This example builds a scaled DBLP-like network with the paper's exact
// probability law, shows how LARGE-MULE's size threshold tames the output
// (the Figure 5 effect: the paper's full DBLP run took 76797s for all
// cliques but 32s at t = 3), and extracts the strongest research groups.
//
// Run with: go run ./examples/collaboration
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func main() {
	ctx := context.Background()
	g := gen.DBLPLike(0.01, 7) // ≈ 6800 authors
	s := uncertain.ComputeStats(g)
	fmt.Printf("synthetic DBLP network: %s\n\n", s)

	const alpha = 0.3
	fmt.Printf("research groups at α = %.1f, by minimum group size t:\n", alpha)
	for _, t := range []int{2, 3, 4, 5} {
		start := time.Now()
		q, err := mule.NewQuery(g, alpha, mule.WithMinSize(t))
		if err != nil {
			log.Fatal(err)
		}
		count, err := q.Count(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t = %d: %6d groups in %8s\n", t, count, time.Since(start).Round(time.Microsecond))
	}

	fmt.Printf("\nstrongest groups of ≥ 3 authors at α = %.1f:\n", alpha)
	q, err := mule.NewQuery(g, alpha)
	if err != nil {
		log.Fatal(err)
	}
	scored, err := q.TopK(ctx, 8, mule.BySize)
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range scored {
		if len(sc.Vertices) < 3 {
			continue
		}
		fmt.Printf("  authors %v  P[pairwise collaboration] = %.4f\n", sc.Vertices, sc.Prob)
	}

	// Dense-substructure view beyond cliques (the paper's future-work
	// direction): the (k,η)-core keeps authors with at least k probable
	// collaborators, giving a coarser community signal.
	const eta = 0.5
	dec, err := ucore.Decompose(g, eta)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int]int{}
	for _, c := range dec.CoreNumber {
		hist[c]++
	}
	fmt.Printf("\n(k, η=%.1f)-core sizes (core number → authors): ", eta)
	for k := 0; k <= dec.Degeneracy; k++ {
		if hist[k] > 0 {
			fmt.Printf("%d→%d ", k, hist[k])
		}
	}
	fmt.Println()
}
