package core

import (
	"context"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// MaximumClique returns one maximum-cardinality α-clique of g (ties broken
// by search order) together with its clique probability. It runs the MULE
// search with a dynamic LARGE-MULE-style bound: a branch is cut as soon as
// |C'| + |I'| cannot beat the best clique found so far, which is exactly the
// Algorithm 6 cut with a threshold that tightens during the search. For an
// empty graph it returns (nil, 1).
//
// Note the result is a maximum α-clique, which is necessarily α-maximal;
// enumerating all of them is possible with EnumerateWith and a MinSize of
// the returned size, but a single witness is the common query.
func MaximumClique(g *uncertain.Graph, alpha float64) ([]int, float64, error) {
	return MaximumCliqueContext(context.Background(), g, alpha)
}

// MaximumCliqueContext is MaximumClique under ctx: the branch-and-bound
// search polls the context every abortCheckInterval nodes and returns a
// wrapped context error if it fires before the search space is exhausted.
func MaximumCliqueContext(ctx context.Context, g *uncertain.Graph, alpha float64) ([]int, float64, error) {
	return MaximumCliqueBudget(ctx, g, alpha, 0)
}

// MaximumCliqueBudget is MaximumCliqueContext with a node budget: the
// search aborts with a wrapped ErrBudget after expanding more than budget
// search nodes (0 = unlimited), the same accounting as Config.Budget.
func MaximumCliqueBudget(ctx context.Context, g *uncertain.Graph, alpha float64, budget int64) ([]int, float64, error) {
	if err := Validate(g, alpha, Config{Budget: budget}); err != nil {
		return nil, 0, err
	}
	work := g.PruneAlpha(alpha)
	// bestProb starts at 1: the empty clique has probability 1 by convention.
	m := &maxSearch{
		g:        work,
		alpha:    alpha,
		bestProb: 1,
		ctl:      NewRunControl(ctx, budget),
		tick:     abortCheckInterval,
	}
	n := work.NumVertices()
	rootI := make([]entry, n)
	for v := 0; v < n; v++ {
		rootI[v] = entry{int32(v), 1}
	}
	if !m.ctl.Poll(0) {
		m.recurse(nil, 1, rootI)
	}
	var stats Stats
	stats.Calls = m.calls
	if err := m.ctl.finish(&stats, false); err != nil {
		return nil, 0, err
	}
	return m.best, m.bestProb, nil
}

type maxSearch struct {
	g        *uncertain.Graph
	alpha    float64
	best     []int
	bestProb float64
	ctl      *RunControl
	tick     int
	calls    int64
	stopped  bool
}

// recurse explores like Enum-Uncertain-MC but only tracks the deepest
// α-clique; the X set is unnecessary because maximality testing is not —
// any clique larger than the incumbent improves it regardless of
// maximality status.
func (m *maxSearch) recurse(C []int32, q float64, I []entry) {
	if m.stopped {
		return
	}
	m.calls++
	m.tick--
	if m.tick <= 0 {
		m.tick = abortCheckInterval
		if m.ctl.Poll(abortCheckInterval) {
			m.stopped = true
			return
		}
	}
	if len(C) > len(m.best) {
		m.best = make([]int, len(C))
		for i, v := range C {
			m.best[i] = int(v)
		}
		m.bestProb = q
	}
	for idx := 0; idx < len(I); idx++ {
		if m.stopped {
			return
		}
		// Bound: even taking every remaining candidate cannot beat best.
		if len(C)+len(I)-idx <= len(m.best) {
			return
		}
		u, r := I[idx].v, I[idx].r
		q2 := q * r
		C2 := append(C, u)
		I2 := m.generateI(I[idx+1:], u, q2)
		if len(C2)+len(I2) > len(m.best) {
			m.recurse(C2, q2, I2)
		}
	}
}

func (m *maxSearch) generateI(tail []entry, u int32, q2 float64) []entry {
	row, probs := m.g.Adjacency(int(u))
	j := 0
	for j < len(row) && row[j] <= u {
		j++
	}
	out := make([]entry, 0, minInt(len(tail), len(row)-j))
	i := 0
	for i < len(tail) && j < len(row) {
		switch {
		case tail[i].v < row[j]:
			i++
		case tail[i].v > row[j]:
			j++
		default:
			r2 := tail[i].r * probs[j]
			if q2*r2 >= m.alpha {
				out = append(out, entry{tail[i].v, r2})
			}
			i++
			j++
		}
	}
	return out
}
