// Command dense mines the extension dense substructures from uncertain
// graph files: maximal α-bicliques, maximal expected γ-quasi-cliques,
// (k,η)-trusses and (k,η)-cores (the paper's §6 future-work directions).
//
// Usage:
//
//	dense -mode bicliques -in g.ubg -alpha 0.2            # uncertain bipartite graph
//	dense -mode bicliques -in g.ubg -alpha 0.2 -minleft 3 -minright 2
//	dense -mode quasi -in g.ug -gamma 0.6 -minsize 4
//	dense -mode truss -in g.ug -k 4 -eta 0.5              # edges of the (k,η)-truss
//	dense -mode truss-decompose -in g.ug -eta 0.5         # η-truss number per edge
//	dense -mode core -in g.ug -k 3 -eta 0.5               # vertices of the (k,η)-core
//	dense -mode core-decompose -in g.ug -eta 0.5          # η-core number per vertex
//
// Unipartite inputs accept any format internal/graphio reads (.ug/.ugb/.json
// and their .gz variants); bicliques mode reads the bipartite text format
// (.ubg, "bipartite nL nR" directive).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/uncertain-graphs/mule/internal/graphio"
	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uncertain"
	"github.com/uncertain-graphs/mule/internal/uquasi"
	"github.com/uncertain-graphs/mule/internal/utruss"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dense:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dense", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input graph file (required)")
		mode     = fs.String("mode", "", "bicliques|quasi|truss|truss-decompose|core|core-decompose (required)")
		alpha    = fs.Float64("alpha", 0.5, "biclique probability threshold α in (0,1]")
		gamma    = fs.Float64("gamma", 0.6, "quasi-clique density threshold γ in [0.5,1]")
		eta      = fs.Float64("eta", 0.5, "truss/core confidence threshold η in (0,1]")
		k        = fs.Int("k", 3, "truss/core order k")
		minSize  = fs.Int("minsize", 3, "quasi: smallest set reported")
		minLeft  = fs.Int("minleft", 0, "bicliques: smallest left side reported")
		minRight = fs.Int("minright", 0, "bicliques: smallest right side reported")
		quiet    = fs.Bool("quiet", false, "suppress the stats line on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *mode == "" {
		fs.Usage()
		return fmt.Errorf("missing -in or -mode")
	}

	start := time.Now()
	w := bufio.NewWriter(out)
	defer w.Flush()

	if *mode == "bicliques" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		bg, err := graphio.ReadBipartiteText(f)
		if err != nil {
			return err
		}
		return runBicliques(w, bg, *alpha, *minLeft, *minRight, *quiet, start)
	}

	g, err := graphio.LoadFile(*in)
	if err != nil {
		return err
	}
	switch *mode {
	case "quasi":
		return runQuasi(w, g, *gamma, *minSize, *quiet, start)
	case "truss":
		return runTruss(w, g, *k, *eta, *quiet, start)
	case "truss-decompose":
		return runTrussDecompose(w, g, *eta, *quiet, start)
	case "core":
		return runCore(w, g, *k, *eta, *quiet, start)
	case "core-decompose":
		return runCoreDecompose(w, g, *eta, *quiet, start)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runBicliques prints "p<TAB>l1 l2 … | r1 r2 …" per maximal α-biclique.
func runBicliques(w *bufio.Writer, bg *ubiclique.Bipartite, alpha float64, minL, minR int, quiet bool, start time.Time) error {
	cfg := ubiclique.Config{MinLeft: minL, MinRight: minR}
	stats, err := ubiclique.EnumerateWith(bg, alpha, func(left, right []int, p float64) bool {
		fmt.Fprintf(w, "%.9g\t", p)
		writeInts(w, left)
		w.WriteString(" | ")
		writeInts(w, right)
		w.WriteByte('\n')
		return true
	}, cfg)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr,
			"%d maximal α-bicliques (α=%g, largest %dx%d) in %s; %d search calls\n",
			stats.Emitted, alpha, stats.MaxLeft, stats.MaxRight,
			time.Since(start).Round(time.Millisecond), stats.Calls)
	}
	return nil
}

// runQuasi prints one sorted vertex set per line.
func runQuasi(w *bufio.Writer, g *uncertain.Graph, gamma float64, minSize int, quiet bool, start time.Time) error {
	stats, err := uquasi.Enumerate(g, uquasi.Config{Gamma: gamma, MinSize: minSize}, func(set []int) bool {
		writeInts(w, set)
		w.WriteByte('\n')
		return true
	})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr,
			"%d maximal expected γ-quasi-cliques (γ=%g, size ≥ %d, largest %d) in %s\n",
			stats.Emitted, gamma, minSize, stats.MaxSize,
			time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runTruss prints the surviving edges as "u v p" lines.
func runTruss(w *bufio.Writer, g *uncertain.Graph, k int, eta float64, quiet bool, start time.Time) error {
	tr, err := utruss.Truss(g, k, eta)
	if err != nil {
		return err
	}
	for _, e := range tr.Edges() {
		fmt.Fprintf(w, "%d %d %.9g\n", e.U, e.V, e.P)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "(%d,%g)-truss: %d of %d edges in %s\n",
			k, eta, tr.NumEdges(), g.NumEdges(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runTrussDecompose prints "u v truss" lines.
func runTrussDecompose(w *bufio.Writer, g *uncertain.Graph, eta float64, quiet bool, start time.Time) error {
	dec, err := utruss.Decompose(g, eta)
	if err != nil {
		return err
	}
	maxK := 0
	for _, e := range dec {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, e.Truss)
		if e.Truss > maxK {
			maxK = e.Truss
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "η-truss decomposition (η=%g): %d edges, max truss %d, in %s\n",
			eta, len(dec), maxK, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runCore prints the core's vertices, one per line.
func runCore(w *bufio.Writer, g *uncertain.Graph, k int, eta float64, quiet bool, start time.Time) error {
	core, err := ucore.Core(g, k, eta)
	if err != nil {
		return err
	}
	for _, v := range core {
		fmt.Fprintf(w, "%d\n", v)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "(%d,%g)-core: %d of %d vertices in %s\n",
			k, eta, len(core), g.NumVertices(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runCoreDecompose prints "v core" lines.
func runCoreDecompose(w *bufio.Writer, g *uncertain.Graph, eta float64, quiet bool, start time.Time) error {
	dec, err := ucore.Decompose(g, eta)
	if err != nil {
		return err
	}
	for v, c := range dec.CoreNumber {
		fmt.Fprintf(w, "%d %d\n", v, c)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "η-core decomposition (η=%g): degeneracy %d in %s\n",
			eta, dec.Degeneracy, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func writeInts(w *bufio.Writer, xs []int) {
	for i, x := range xs {
		if i > 0 {
			w.WriteByte(' ')
		}
		fmt.Fprintf(w, "%d", x)
	}
}
