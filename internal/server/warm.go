package server

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	mule "github.com/uncertain-graphs/mule"
)

// warmTrackCap bounds how many distinct query shapes the warm tracker
// remembers across all graphs; beyond it the least-recently-hit shape is
// forgotten. It is deliberately larger than any sane warmKeys so the
// per-graph MRU window never starves because another graph is hot.
const warmTrackCap = 64

// defaultWarmKeys is how many most-recently-hit shapes an Apply re-issues
// against the new epoch when Config.WarmKeys is zero.
const defaultWarmKeys = 4

// warmShape is one re-issuable query: the graph it ran against and its
// parsed parameters, sanitized for server-initiated replay (no tenant — the
// server, not a client, pays for warming — and no timeout or progress).
type warmShape struct {
	graph string
	p     *qparams
}

// warmTracker is an MRU list of the query shapes that recently hit the
// result cache. Shapes are keyed by their epoch-independent identity
// (cacheKey with epoch 0), so a query repeated across epochs occupies one
// slot and its position reflects its latest hit.
type warmTracker struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // *warmShape; front = most recently hit
	entries map[string]*list.Element
}

func newWarmTracker(capacity int) *warmTracker {
	return &warmTracker{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// record notes a cache hit for (graph, p), promoting the shape to
// most-recently-hit. p is copied and sanitized; the caller's value is not
// retained.
func (t *warmTracker) record(graph string, p *qparams) {
	cp := *p
	cp.tenant = ""
	cp.timeout = 0
	key := cp.cacheKey(graph, 0)
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		el.Value.(*warmShape).p = &cp
		t.ll.MoveToFront(el)
		return
	}
	t.entries[key] = t.ll.PushFront(&warmShape{graph: graph, p: &cp})
	for t.ll.Len() > t.cap {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.entries, oldest.Value.(*warmShape).p.cacheKey(oldest.Value.(*warmShape).graph, 0))
	}
}

// shapes returns up to n shapes for graph, most recently hit first.
func (t *warmTracker) shapes(graph string, n int) []*qparams {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*qparams
	for el := t.ll.Front(); el != nil && len(out) < n; el = el.Next() {
		if s := el.Value.(*warmShape); s.graph == graph {
			out = append(out, s.p)
		}
	}
	return out
}

// purge forgets every shape recorded for graph (called when the graph is
// deleted; a replaced graph keeps its shapes — same name, new epoch, and
// warming is exactly what a replacement wants).
func (t *warmTracker) purge(graph string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for el := t.ll.Front(); el != nil; {
		next := el.Next()
		if s := el.Value.(*warmShape); s.graph == graph {
			t.ll.Remove(el)
			delete(t.entries, s.p.cacheKey(s.graph, 0))
		}
		el = next
	}
}

// tracked returns the number of shapes currently remembered.
func (t *warmTracker) tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

// warmCounters is the warming side of /stats, updated lock-free from the
// background warmer.
type warmCounters struct {
	scheduled atomic.Int64
	completed atomic.Int64
	skipped   atomic.Int64
	failed    atomic.Int64
	inflight  atomic.Int64
	busy      atomic.Bool // one warm pass at a time
}

// warmStats is the /stats wire shape of cache warming.
type warmStats struct {
	Tracked   int   `json:"tracked"`
	Scheduled int64 `json:"scheduled"`
	Completed int64 `json:"completed"`
	Skipped   int64 `json:"skipped"`
	Failed    int64 `json:"failed"`
	InFlight  int64 `json:"inflight"`
}

// warmAfterApply re-issues up to warmKeys most-recently-hit query shapes for
// name against its (just bumped) current epoch, repopulating the result
// cache before clients ask again. It never blocks the Apply response: the
// runs happen on one background goroutine, at most one warm pass is in
// flight per server (a pass racing a newer Apply is wasted work the LRU
// absorbs, and unbounded stacking is worse), and every outcome is counted
// for /stats.
func (s *Server) warmAfterApply(name string) {
	if s.warmKeys <= 0 {
		return
	}
	shapes := s.warm.shapes(name, s.warmKeys)
	if len(shapes) == 0 {
		return
	}
	if !s.warmCount.busy.CompareAndSwap(false, true) {
		s.warmCount.skipped.Add(int64(len(shapes)))
		return
	}
	s.warmCount.scheduled.Add(int64(len(shapes)))
	s.warmCount.inflight.Add(1)
	go func() {
		defer s.warmCount.busy.Store(false)
		defer s.warmCount.inflight.Add(-1)
		for _, p := range shapes {
			s.warmOne(name, p)
		}
	}()
}

// warmOne runs one recorded shape against name's current snapshot and
// caches the settled answer, skipping work the cache already holds.
func (s *Server) warmOne(name string, p *qparams) {
	e := s.reg.get(name)
	if e == nil {
		s.warmCount.skipped.Add(1)
		return
	}
	snap := e.snapshot()
	key := p.cacheKey(name, snap.Epoch)
	if key == "" || s.cache.peek(key) {
		s.warmCount.skipped.Add(1)
		return
	}
	run, err := p.newRunner(snap, s.ex, nil)
	if err != nil {
		s.warmCount.failed.Add(1)
		return
	}
	out := run(context.Background())
	if out.err != nil {
		s.warmCount.failed.Add(1)
		return
	}
	results, merr := json.Marshal(out.results)
	if merr != nil {
		s.warmCount.failed.Add(1)
		return
	}
	statsJSON, _ := json.Marshal(out.stats)
	s.cache.put(key, cachedResult{
		Status: out.status.String(),
		// out.err is nil here, so truncation means a met limit, exactly as
		// in handleQuery.
		Truncated: out.status == mule.StatusStopped,
		Count:     out.count,
		Results:   results,
		Stats:     statsJSON,
	})
	s.warmCount.completed.Add(1)
}

// warmStatsSnapshot assembles the /stats view.
func (s *Server) warmStatsSnapshot() warmStats {
	return warmStats{
		Tracked:   s.warm.tracked(),
		Scheduled: s.warmCount.scheduled.Load(),
		Completed: s.warmCount.completed.Load(),
		Skipped:   s.warmCount.skipped.Load(),
		Failed:    s.warmCount.failed.Load(),
		InFlight:  s.warmCount.inflight.Load(),
	}
}
