package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pooled run resources. Before the shared executor, every run (and every
// worker of a parallel run) allocated its own entry arena, bitset scatter
// mask, and bit-row mirror backing — exactly wrong for thousands of small
// concurrent queries, where the per-run setup dominates the mining. These
// pools recycle all three across runs, size-classed by a power-of-two class
// of the demanded capacity so a burst of tiny queries never checks out the
// block set a giant graph grew.
//
// Ownership discipline is unchanged: a checked-out resource belongs to
// exactly one enumerator (one query-worker pair) until it is returned, and
// returns happen only on terminal paths — the deferred release in
// EnumerateContext / MaximumClique for serial state, the post-Wait merge
// loop of the parallel engines for worker state — so cancel, budget, and
// limit unwinds all funnel through the same return points.
//
// The checkout/return event counters exist for the conservation assertion in
// the concurrency soak test: after any quiescent point, checkouts == returns
// proves no terminal path leaks a pooled resource. (sync.Pool may drop
// entries under GC; the counters track events, not inventory, so that never
// breaks the invariant.)

// poolClasses bounds the size-class space: class = ceil(log2(n)) clamped to
// [0, poolClasses). 32 classes cover every int32-indexed vertex universe.
const poolClasses = 32

var (
	poolCheckouts atomic.Int64
	poolReturns   atomic.Int64

	arenaPools [poolClasses]sync.Pool // *entryArena
	wordPools  [poolClasses]sync.Pool // *[]uint64, len == cap == 1<<class words
)

// PoolCounters reports the pooled-resource checkout and return event counts
// since process start. At any point where no run is in flight the two are
// equal; the soak test asserts exactly that.
func PoolCounters() (checkouts, returns int64) {
	return poolCheckouts.Load(), poolReturns.Load()
}

// sizeClass maps a demanded capacity to its pool class (smallest c with
// 1<<c ≥ n).
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c >= poolClasses {
		c = poolClasses - 1
	}
	return c
}

// checkoutArena takes an arena from the class pool for an n-vertex working
// graph. The arena's blocks grow on demand as before; the class only keeps
// small-query arenas from inheriting huge block sets.
func checkoutArena(n int) *entryArena {
	poolCheckouts.Add(1)
	if a, ok := arenaPools[sizeClass(n)].Get().(*entryArena); ok {
		return a
	}
	return &entryArena{}
}

// returnArena resets the cursor (keeping the grown blocks) and returns the
// arena to its class pool. Nothing carved from it may be used afterwards.
func returnArena(n int, a *entryArena) {
	if a == nil {
		return
	}
	poolReturns.Add(1)
	a.cur, a.off = 0, 0
	arenaPools[sizeClass(n)].Put(a)
}

// checkoutWords takes a word buffer of at least n words (len(buf) == n) from
// the class pool. The contents are unspecified; callers that need zeroed
// words clear the span they use (the bitset scatter mask already does, the
// bit-row builder clears each carved row).
func checkoutWords(n int) []uint64 {
	if n == 0 {
		return nil
	}
	poolCheckouts.Add(1)
	c := sizeClass(n)
	if n > 1<<c {
		// The class space saturated (n exceeds the largest pooled capacity):
		// allocate exactly and never pool — returnWords detects the
		// off-class capacity and skips the Put.
		return make([]uint64, n)
	}
	if p, ok := wordPools[c].Get().(*[]uint64); ok {
		return (*p)[:n]
	}
	return make([]uint64, n, 1<<c)
}

// returnWords gives a buffer from checkoutWords back to its class pool.
func returnWords(buf []uint64) {
	if buf == nil {
		return
	}
	poolReturns.Add(1)
	// A pooled buffer was allocated at exactly 1<<class capacity, so the
	// class round-trips through cap; an over-class buffer (capacity beyond
	// the largest pool class) is dropped for GC instead.
	c := sizeClass(cap(buf))
	if cap(buf) != 1<<c {
		return
	}
	full := buf[:cap(buf)]
	wordPools[c].Put(&full)
}
