// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each BenchmarkTable*/BenchmarkFigure* corresponds to one artifact;
// DESIGN.md §4 is the index. The benchmarks run the Quick (quarter-scale)
// workloads so `go test -bench=. -benchmem` finishes in minutes;
// cmd/experiments runs the same experiments at paper scale.
//
// Reported custom metrics: "cliques" is the output size of the enumeration
// (the quantity Figures 3, 4 and 6 plot), "us/clique" the per-result cost
// (Figure 4's proportionality claim).
package mule_test

import (
	"sync"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/baseline"
	"github.com/uncertain-graphs/mule/internal/bench"
	"github.com/uncertain-graphs/mule/internal/bounds"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

var benchCfg = bench.Config{Quick: true, Seed: 1}

// Workload cache: the synthesizers take seconds; build each family once per
// benchmark binary run.
var cacheMu sync.Mutex

// named returns the cached workload family, building it on first use.
func named(b *testing.B, key string, build func() []bench.NamedGraph) []bench.NamedGraph {
	b.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if gs, ok := families[key]; ok {
		return gs
	}
	gs := build()
	families[key] = gs
	return gs
}

var families = map[string][]bench.NamedGraph{}

func runMULE(b *testing.B, g *uncertain.Graph, alpha float64, cfg core.Config) {
	b.Helper()
	var cliques int64
	for i := 0; i < b.N; i++ {
		stats, err := core.EnumerateWith(g, alpha, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cliques = stats.Emitted
	}
	b.ReportMetric(float64(cliques), "cliques")
	if cliques > 0 {
		perClique := float64(b.Elapsed().Microseconds()) / float64(b.N) / float64(cliques)
		b.ReportMetric(perClique, "us/clique")
	}
}

// BenchmarkEnumerate measures the enumeration kernel itself — the
// allocation-free arena kernel is held to its numbers here (ns/op and,
// via -benchmem, allocs/op and B/op) on the standard random (BA) and
// skewed-hub workloads, serial and both parallel engines. cmd/experiments
// -exp kernel records the same cells into the BENCH_kernel.json trajectory.
func BenchmarkEnumerate(b *testing.B) {
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	loads := []struct {
		ng    bench.NamedGraph
		alpha float64
	}{
		{random[2], 0.001}, // BA1200 in quick mode
		{bench.SkewedCliqueGraph(benchCfg), bench.SkewedAlpha},
	}
	engines := []struct {
		name string
		cfg  core.Config
	}{
		{"serial", core.Config{}},
		{"worksteal-4", core.Config{Workers: 4}},
		{"toplevel-4", core.Config{Workers: 4, Parallel: core.ParallelTopLevel}},
	}
	for _, ld := range loads {
		for _, eng := range engines {
			ld, eng := ld, eng
			b.Run(ld.ng.Name+"/"+eng.name, func(b *testing.B) {
				b.ReportAllocs()
				runMULE(b, ld.ng.G, ld.alpha, eng.cfg)
			})
		}
	}
}

// BenchmarkTable1 times the dataset synthesizers themselves (building the
// Table 1 inputs) and reports their sizes.
func BenchmarkTable1(b *testing.B) {
	for _, d := range []struct {
		name  string
		build func() []bench.NamedGraph
	}{
		{"Figure1Inputs", func() []bench.NamedGraph { return bench.Figure1Graphs(benchCfg) }},
		{"RandomFamily", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) }},
		{"SemiSynthetic", func() []bench.NamedGraph { return bench.SemiSyntheticGraphs(benchCfg) }},
	} {
		d := d
		b.Run(d.name, func(b *testing.B) {
			var graphs []bench.NamedGraph
			for i := 0; i < b.N; i++ {
				graphs = d.build()
			}
			edges := 0
			for _, ng := range graphs {
				edges += ng.G.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkFigure1 compares MULE against DFS-NOIP on the four Figure 1
// inputs across its four α panels. The DFS-NOIP cells run under a 30-second
// budget per iteration: the paper itself reports its hardest such cell as
// "> 11 hours" rather than a number (wiki-vote at α = 0.0001), and the same
// blow-up happens at quarter scale. A truncated run reports truncated=1 and
// the cliques it managed — the comparison's shape (MULE finishes, DFS-NOIP
// does not) is the result.
func BenchmarkFigure1(b *testing.B) {
	graphs := named(b, "fig1", func() []bench.NamedGraph { return bench.Figure1Graphs(benchCfg) })
	for _, ng := range graphs {
		for _, alpha := range bench.Figure1Alphas {
			ng, alpha := ng, alpha
			b.Run("MULE/"+ng.Name+"/alpha="+ftoa(alpha), func(b *testing.B) {
				runMULE(b, ng.G, alpha, core.Config{})
			})
			b.Run("DFSNOIP/"+ng.Name+"/alpha="+ftoa(alpha), func(b *testing.B) {
				var cliques int64
				truncated := 0.0
				for i := 0; i < b.N; i++ {
					deadline := time.Now().Add(30 * time.Second)
					count := int64(0)
					stats := baseline.EnumerateNOIP(ng.G, alpha, func([]int, float64) bool {
						count++
						if count%256 == 0 && time.Now().After(deadline) {
							truncated = 1
							return false
						}
						return true
					})
					cliques = int64(stats.Emitted)
				}
				b.ReportMetric(float64(cliques), "cliques")
				b.ReportMetric(truncated, "truncated")
			})
		}
	}
}

// BenchmarkFigure2 sweeps α on both graph families, timing MULE (the
// runtime-vs-α curves).
func BenchmarkFigure2(b *testing.B) {
	alphas := []float64{0.9, 0.1, 0.001, 0.0001}
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	semi := named(b, "semi", func() []bench.NamedGraph { return bench.SemiSyntheticGraphs(benchCfg) })
	for _, family := range []struct {
		tag    string
		graphs []bench.NamedGraph
	}{{"random", random}, {"semi", semi}} {
		for _, ng := range family.graphs {
			for _, alpha := range alphas {
				ng, alpha := ng, alpha
				b.Run(family.tag+"/"+ng.Name+"/alpha="+ftoa(alpha), func(b *testing.B) {
					runMULE(b, ng.G, alpha, core.Config{})
				})
			}
		}
	}
}

// BenchmarkFigure3 measures the output sizes (cliques metric) on the same
// sweep's complementary α values.
func BenchmarkFigure3(b *testing.B) {
	alphas := []float64{0.5, 0.05, 0.005, 0.0005}
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	semi := named(b, "semi", func() []bench.NamedGraph { return bench.SemiSyntheticGraphs(benchCfg) })
	for _, family := range []struct {
		tag    string
		graphs []bench.NamedGraph
	}{{"random", random}, {"semi", semi}} {
		for _, ng := range family.graphs {
			for _, alpha := range alphas {
				ng, alpha := ng, alpha
				b.Run(family.tag+"/"+ng.Name+"/alpha="+ftoa(alpha), func(b *testing.B) {
					runMULE(b, ng.G, alpha, core.Config{})
				})
			}
		}
	}
}

// BenchmarkFigure4 exercises the runtime-vs-output-size relation on the BA
// family (see the us/clique metric, which should be near-constant).
func BenchmarkFigure4(b *testing.B) {
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	for _, ng := range []bench.NamedGraph{random[0], random[2], random[5]} {
		for _, alpha := range bench.Figure4Alphas {
			ng, alpha := ng, alpha
			b.Run(ng.Name+"/alpha="+ftoa(alpha), func(b *testing.B) {
				runMULE(b, ng.G, alpha, core.Config{})
			})
		}
	}
}

// BenchmarkFigure5 times LARGE-MULE across size thresholds.
func BenchmarkFigure5(b *testing.B) {
	graphs := named(b, "large", func() []bench.NamedGraph { return bench.LargeCliqueGraphs(benchCfg) })
	for _, ng := range graphs {
		alpha := 0.0005
		if ng.Name == "DBLP" {
			alpha = 0.5
		}
		for _, t := range []int{3, 5, 7} {
			ng, t := ng, t
			b.Run(ng.Name+"/t="+itoa(t)+"/alpha="+ftoa(alpha), func(b *testing.B) {
				runMULE(b, ng.G, alpha, core.Config{MinSize: t})
			})
		}
	}
}

// BenchmarkFigure6 measures the size-≥t output counts across thresholds.
func BenchmarkFigure6(b *testing.B) {
	graphs := named(b, "large", func() []bench.NamedGraph { return bench.LargeCliqueGraphs(benchCfg) })
	for _, ng := range graphs {
		alpha := 0.0001
		if ng.Name == "DBLP" {
			alpha = 0.1
		}
		for _, t := range []int{2, 4, 6, 8} {
			ng, t := ng, t
			b.Run(ng.Name+"/t="+itoa(t)+"/alpha="+ftoa(alpha), func(b *testing.B) {
				runMULE(b, ng.G, alpha, core.Config{MinSize: t})
			})
		}
	}
}

// BenchmarkTheorem1 enumerates the extremal construction (the C(n,⌊n/2⌋)
// worst case of §3).
func BenchmarkTheorem1(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			ex := bounds.NewExtremal(n, 0.5)
			b.ResetTimer()
			var count int64
			for i := 0; i < b.N; i++ {
				c, err := core.Count(ex.Graph, ex.Alpha)
				if err != nil {
					b.Fatal(err)
				}
				count = c
			}
			b.ReportMetric(float64(count), "cliques")
		})
	}
}

// BenchmarkAblation measures the design choices DESIGN.md §6 calls out:
// α-pruning, vertex ordering, and the parallel driver.
func BenchmarkAblation(b *testing.B) {
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	g := random[2].G // BA1200 in quick mode
	alpha := 0.001
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Config{}},
		{"no-alpha-pruning", core.Config{SkipPrune: true}},
		{"order-degree", core.Config{Ordering: core.OrderDegree}},
		{"order-degeneracy", core.Config{Ordering: core.OrderDegeneracy}},
		{"order-random", core.Config{Ordering: core.OrderRandom, Seed: 7}},
		{"parallel-2", core.Config{Workers: 2}},
		{"parallel-4", core.Config{Workers: 4}},
		{"parallel-8", core.Config{Workers: 8}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			runMULE(b, g, alpha, v.cfg)
		})
	}
	b.Run("hash-adjacency", func(b *testing.B) {
		// DESIGN.md §6 item 4: hash-map lookups instead of sorted merges.
		for i := 0; i < b.N; i++ {
			baseline.EnumerateHashMULE(g, alpha, nil)
		}
	})
	b.Run("dfs-noip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.EnumerateNOIP(g, alpha, nil)
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch f {
	case 0.0001:
		return "1e-4"
	case 0.0005:
		return "5e-4"
	case 0.001:
		return "1e-3"
	case 0.005:
		return "5e-3"
	case 0.01:
		return "0.01"
	case 0.05:
		return "0.05"
	case 0.1:
		return "0.1"
	case 0.2:
		return "0.2"
	case 0.5:
		return "0.5"
	case 0.75:
		return "0.75"
	case 0.8:
		return "0.8"
	case 0.9:
		return "0.9"
	default:
		return "x"
	}
}
