package core

import (
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Witness sets under size pruning, serial vs work stealing.
//
// Algorithm 6's serial loop skips the witness append for a size-pruned
// candidate u (recurse in mule.go): any clique u could witness against is
// itself below the size threshold t, so u can never block an emission. The
// work-stealing engine instead appends u anyway, keeping the frame's
// witness set equal to X₀ ++ I[:next] so a frame can be split at any
// iteration boundary. This is safe: suppose u was pruned at clique C
// because |C|+1+|I_u| < t, and later some node C' ⊇ C in a sibling subtree
// still carries u in its witness set at emission time. Carrying u requires
// clq(C'∪{u}) ≥ α (generateX filters by α at every step), and every vertex
// of C'∖C is a candidate greater than u adjacent to u within the α budget —
// exactly the membership test of I_u. Hence |C'∪{u}| ≤ |C|+1+|I_u| < t,
// while LARGE-MULE only emits cliques of size ≥ t (the |C'|+|I'| ≥ t cut
// holds on every recursion edge). So u is never present in the witness set
// of an emitting node, and the emitted clique set is identical; only
// Stats.WitnessOps can differ from a serial run when MinSize ≥ 2.

// sharedNeighborhoodFilter applies the Modani–Dey preprocessing the paper
// uses before LARGE-MULE (§4.3): repeatedly
//
//  1. drop every edge {u,v} whose endpoints share fewer than t-2 common
//     neighbors (a clique of size ≥ t containing the edge needs t-2 common
//     completions), and
//  2. drop every vertex (i.e. all its incident edges) that does not have at
//     least t-1 neighbors u with |Γ(u) ∩ Γ(v)| ≥ t-2,
//
// until a fixpoint. The filter runs on the α-pruned support graph, so it
// never removes an edge or vertex participating in an α-clique of size ≥ t;
// LARGE-MULE's output is therefore unaffected.
func sharedNeighborhoodFilter(g *uncertain.Graph, t int) *uncertain.Graph {
	if t < 3 {
		// t-2 ≤ 0: the common-neighbor constraints are vacuous.
		return g
	}
	n := g.NumVertices()
	adj := make([]map[int32]float64, n)
	for u := 0; u < n; u++ {
		row, probs := g.Adjacency(u)
		adj[u] = make(map[int32]float64, len(row))
		for i, v := range row {
			adj[u][v] = probs[i]
		}
	}
	commonCount := func(u, v int32) int {
		a, b := adj[u], adj[v]
		if len(a) > len(b) {
			a, b = b, a
		}
		c := 0
		for w := range a {
			if _, ok := b[w]; ok {
				c++
			}
		}
		return c
	}
	removeEdge := func(u, v int32) {
		delete(adj[u], v)
		delete(adj[v], u)
	}

	for changed := true; changed; {
		changed = false
		// Edge rule.
		for u := int32(0); u < int32(n); u++ {
			for v := range adj[u] {
				if u < v && commonCount(u, v) < t-2 {
					removeEdge(u, v)
					changed = true
				}
			}
		}
		// Vertex rule.
		for u := int32(0); u < int32(n); u++ {
			if len(adj[u]) == 0 {
				continue
			}
			qualified := 0
			for v := range adj[u] {
				if commonCount(u, v) >= t-2 {
					qualified++
				}
			}
			if qualified < t-1 {
				for v := range adj[u] {
					removeEdge(u, v)
				}
				changed = true
			}
		}
	}

	b := uncertain.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v, p := range adj[u] {
			if u < v {
				// Cannot fail: edges originate from a valid graph.
				_ = b.AddEdge(int(u), int(v), p)
			}
		}
	}
	return b.Build()
}
