// Extremal bound demo: Theorem 1 of the paper states that an uncertain graph
// on n vertices can have at most C(n, ⌊n/2⌋) α-maximal cliques for any
// 0 < α < 1 — strictly more than the 3^{n/3} Moon–Moser bound for
// deterministic graphs — and that the bound is achieved by a complete graph
// with uniform edge probability q and threshold α = q^C(⌊n/2⌋,2).
//
// This example builds that extremal construction for growing n, enumerates
// it with MULE, and shows the count landing exactly on the binomial while
// the deterministic bound falls behind.
//
// Run with: go run ./examples/bounds
package main

import (
	"context"
	"fmt"
	"log"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/bounds"
)

func main() {
	ctx := context.Background()
	fmt.Println("n   C(n,⌊n/2⌋)   enumerated   all size ⌊n/2⌋?   Moon–Moser(α=1)")
	for n := 4; n <= 16; n++ {
		ex := bounds.NewExtremal(n, 0.6)
		q, err := mule.NewQuery(ex.Graph, ex.Alpha)
		if err != nil {
			log.Fatal(err)
		}
		sizesOK := true
		var count int64
		for c, err := range q.Cliques(ctx) {
			if err != nil {
				log.Fatal(err)
			}
			if len(c.Vertices) != ex.CliqueSize {
				sizesOK = false
			}
			count++
		}
		fmt.Printf("%-3d %-12v %-12d %-17v %v\n",
			n, ex.ExpectedCount, count, sizesOK, bounds.MoonMoserBound(n))
	}
	fmt.Println("\nThe uncertain bound C(n,⌊n/2⌋) ≈ 2^n/√(πn/2) grows strictly faster")
	fmt.Println("than the deterministic 3^{n/3}: dense-substructure mining is harder")
	fmt.Println("under uncertainty not just in constants but in the exponent.")
}
