package exec

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// span is the synthetic frame of the test engine: the remaining iteration
// range [next, end) of one loop, mirroring the wsFrame discipline of
// internal/core — the owner exposes the frame while working one element,
// thieves split the tail half under the deque lock.
type span struct {
	next, end int
}

// slotLocal is one slot's private accounting; no locks by the Slot-ID
// contract (calls for one ID are never concurrent).
type slotLocal struct {
	sum    int64
	execs  int64
	steals int64
	splits int64
}

// sumEngine sums the integers of every span it executes into slot-private
// locals — any lost or double-executed element shows up as a wrong total,
// making frame conservation directly observable. With yield set, every
// element yields the processor so surplus pool workers on a small
// GOMAXPROCS actually get scheduled to thieve.
type sumEngine struct {
	locals []slotLocal
	yield  bool
	stop   func() bool // optional per-element stop check, like RunControl polling

	// maxActive tracks the high-water of concurrent Execute calls, the
	// observable for the MaxParallel cap.
	active    atomic.Int32
	maxActive atomic.Int32
}

func newSumEngine(x *Executor, yield bool) *sumEngine {
	return &sumEngine{locals: make([]slotLocal, x.Parallelism()+1), yield: yield}
}

func (e *sumEngine) Execute(s *Slot, f any) {
	a := e.active.Add(1)
	for {
		m := e.maxActive.Load()
		if a <= m || e.maxActive.CompareAndSwap(m, a) {
			break
		}
	}
	defer e.active.Add(-1)

	l := &e.locals[s.ID()]
	l.execs++
	fr := f.(*span)
	for fr.next < fr.end {
		if e.stop != nil && e.stop() {
			return
		}
		cur := fr.next
		fr.next++
		expose := fr.next < fr.end
		if expose {
			s.Push(fr)
		}
		l.sum += int64(cur)
		if e.yield {
			runtime.Gosched()
		}
		if expose && !s.PopIf(fr) {
			return // a thief owns the rest of the range now
		}
	}
}

func (e *sumEngine) Split(thief int, f any) any {
	fr := f.(*span)
	mid := fr.next + (fr.end-fr.next)/2
	if mid == fr.next {
		return nil
	}
	g := &span{next: mid, end: fr.end}
	fr.end = mid
	e.locals[thief].steals++
	e.locals[thief].splits++
	return g
}

func (e *sumEngine) NoteSteal(thief int) { e.locals[thief].steals++ }

func (e *sumEngine) totals() (sum, execs, steals, splits int64) {
	for i := range e.locals {
		sum += e.locals[i].sum
		execs += e.locals[i].execs
		steals += e.locals[i].steals
		splits += e.locals[i].splits
	}
	return
}

// rangeSum is the closed form the engine must reproduce exactly.
func rangeSum(n int) int64 { return int64(n) * int64(n-1) / 2 }

// TestSubmitComputesExactSum: one root frame, every element executed exactly
// once — the basic frame-conservation property, at several pool widths.
func TestSubmitComputesExactSum(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		x := New(workers)
		e := newSumEngine(x, false)
		r := x.Submit(e, RunOpts{}, &span{0, 5000})
		r.Wait(nil, nil)
		if sum, _, _, _ := e.totals(); sum != rangeSum(5000) {
			t.Errorf("workers=%d: sum = %d, want %d", workers, sum, rangeSum(5000))
		}
		x.Close()
	}
}

// TestEmptySubmitCompletesImmediately: no roots, Done is already closed and
// Wait returns without help.
func TestEmptySubmitCompletesImmediately(t *testing.T) {
	x := New(2)
	defer x.Close()
	r := x.Submit(newSumEngine(x, false), RunOpts{})
	select {
	case <-r.Done():
	default:
		t.Fatal("empty run not done at submit")
	}
	r.Wait(nil, nil)
}

// TestSyntheticStealStorm is the container-level steal storm promised by the
// core tests: far more pool workers than GOMAXPROCS, a yielding engine, and
// granularity-1-style exposure of every iteration. The sum must stay exact
// under heavy Split/NoteSteal traffic, and the storm must actually steal.
// Run with -race.
func TestSyntheticStealStorm(t *testing.T) {
	x := New(16)
	defer x.Close()
	var totalSteals int64
	for round := 0; round < 8; round++ {
		e := newSumEngine(x, true)
		r := x.Submit(e, RunOpts{}, &span{0, 3000})
		r.Wait(nil, nil)
		sum, _, steals, splits := e.totals()
		if sum != rangeSum(3000) {
			t.Fatalf("round %d: sum = %d, want %d", round, sum, rangeSum(3000))
		}
		if steals < splits {
			t.Fatalf("round %d: %d splits but only %d steals", round, splits, steals)
		}
		totalSteals += steals
	}
	if totalSteals == 0 {
		t.Fatal("storm exercised no steals across 8 rounds")
	}
}

// TestConcurrentRunsIsolated: many runs submitted concurrently from separate
// goroutines onto one shared executor. Frames interleave on the same
// workers; each run's merged locals must still be exactly its own range —
// the per-query tagging / no-stats-bleed property.
func TestConcurrentRunsIsolated(t *testing.T) {
	x := New(8)
	defer x.Close()
	const runs = 24
	var wg sync.WaitGroup
	errs := make(chan string, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 500 + 97*i
			e := newSumEngine(x, i%2 == 0)
			r := x.Submit(e, RunOpts{MaxParallel: 1 + i%5}, &span{0, n})
			r.Wait(nil, nil)
			if sum, _, _, _ := e.totals(); sum != rangeSum(n) {
				errs <- "run diverged"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestMaxParallelCap: the per-run parallelism cap bounds concurrent Execute
// calls even with a wide pool and many queued frames; overflow frames are
// parked and re-queued, never dropped (the sum proves it).
func TestMaxParallelCap(t *testing.T) {
	x := New(8)
	defer x.Close()
	for _, limit := range []int{1, 2, 3} {
		e := newSumEngine(x, true)
		roots := make([]any, 16)
		for i := range roots {
			roots[i] = &span{i * 100, (i + 1) * 100}
		}
		r := x.Submit(e, RunOpts{MaxParallel: limit}, roots...)
		r.Wait(nil, nil)
		if sum, _, _, _ := e.totals(); sum != rangeSum(1600) {
			t.Fatalf("cap=%d: sum = %d, want %d", limit, sum, rangeSum(1600))
		}
		if m := e.maxActive.Load(); int(m) > limit {
			t.Fatalf("cap=%d: observed %d concurrent Execute calls", limit, m)
		}
	}
}

// TestStoppedRunPurges: once the stop predicate latches, queued frames are
// discarded, Wait returns, and the conservation count still reaches zero
// (no retire is lost on the purge paths).
func TestStoppedRunPurges(t *testing.T) {
	x := New(4)
	defer x.Close()
	var stop atomic.Bool
	e := newSumEngine(x, true)
	e.stop = stop.Load
	roots := make([]any, 32)
	for i := range roots {
		roots[i] = &span{0, 10000}
	}
	r := x.Submit(e, RunOpts{MaxParallel: 2, Stopped: stop.Load}, roots...)
	stop.Store(true)
	r.Purge()
	r.Wait(nil, nil)
	select {
	case <-r.Done():
	default:
		t.Fatal("purged run never completed")
	}
}

// TestWaitAbortChannel: the abort channel stops a long run mid-flight via
// onAbort + purge, and Wait still blocks until in-flight frames retire.
func TestWaitAbortChannel(t *testing.T) {
	x := New(4)
	defer x.Close()
	var stop atomic.Bool
	e := newSumEngine(x, true)
	e.stop = stop.Load
	abort := make(chan struct{})
	r := x.Submit(e, RunOpts{Stopped: stop.Load}, &span{0, 1 << 30})
	close(abort)
	r.Wait(abort, func() { stop.Store(true) })
	select {
	case <-r.Done():
	default:
		t.Fatal("aborted run not done after Wait")
	}
	if sum, _, _, _ := e.totals(); sum >= rangeSum(1<<30)/2 {
		t.Fatal("aborted run executed implausibly much work")
	}
}

// TestWaitHelperMakesProgress: with every pool worker wedged on another
// run, a new run must still complete — the Wait helper lends the submitting
// goroutine. This is the nested-submission no-deadlock guarantee.
func TestWaitHelperMakesProgress(t *testing.T) {
	x := New(2)
	defer x.Close()
	block := make(chan struct{})
	wedge := &wedgeEngine{block: block, running: make(chan struct{}, 2)}
	// Two roots wedge both pool workers.
	wr := x.Submit(wedge, RunOpts{}, &wedgeFrame{}, &wedgeFrame{})
	<-wedge.running // at least one worker is inside Execute
	e := newSumEngine(x, false)
	r := x.Submit(e, RunOpts{}, &span{0, 2000})
	r.Wait(nil, nil) // must finish on the helper slot alone
	if sum, _, _, _ := e.totals(); sum != rangeSum(2000) {
		t.Fatalf("helper-driven run: sum = %d, want %d", sum, rangeSum(2000))
	}
	if e.locals[x.Parallelism()].execs == 0 {
		t.Fatal("helper slot executed nothing despite a wedged pool")
	}
	close(block)
	wr.Wait(nil, nil)
}

type wedgeFrame struct{}

// wedgeEngine parks inside Execute until released — a stand-in for a slow
// foreign query hogging the pool.
type wedgeEngine struct {
	block   chan struct{}
	running chan struct{}
}

func (e *wedgeEngine) Execute(s *Slot, f any) {
	select {
	case e.running <- struct{}{}:
	default:
	}
	<-e.block
}
func (e *wedgeEngine) Split(int, any) any { return nil }
func (e *wedgeEngine) NoteSteal(int)      {}

// TestCloseStopsWorkers: Close terminates every pool goroutine; a run
// submitted before Close still completes through its Wait helper.
func TestCloseStopsWorkers(t *testing.T) {
	x := New(4)
	e := newSumEngine(x, false)
	r := x.Submit(e, RunOpts{}, &span{0, 1000})
	r.Wait(nil, nil)
	x.Close()
	x.Close() // idempotent
	if sum, _, _, _ := e.totals(); sum != rangeSum(1000) {
		t.Fatalf("sum = %d, want %d", sum, rangeSum(1000))
	}
}

// TestRandomizedConservation fuzzes shapes: random root counts, ranges,
// caps, and yields; every run's sum must be exact. Run with -race.
func TestRandomizedConservation(t *testing.T) {
	x := New(6)
	defer x.Close()
	rng := rand.New(rand.NewSource(42))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		e := newSumEngine(x, rng.Intn(2) == 0)
		nroots := 1 + rng.Intn(8)
		var roots []any
		total := int64(0)
		off := 0
		for i := 0; i < nroots; i++ {
			n := 1 + rng.Intn(700)
			roots = append(roots, &span{off, off + n})
			total += rangeSum(off+n) - rangeSum(off)
			off += n
		}
		r := x.Submit(e, RunOpts{MaxParallel: rng.Intn(8)}, roots...)
		r.Wait(nil, nil)
		if sum, _, _, _ := e.totals(); sum != total {
			t.Fatalf("trial %d: sum = %d, want %d", trial, sum, total)
		}
	}
}

// TestAdmitUnlimitedFastPath: with no limits configured, Admit is free and
// always grants.
func TestAdmitUnlimitedFastPath(t *testing.T) {
	x := New(1)
	defer x.Close()
	for i := 0; i < 3; i++ {
		release, err := x.Admit(context.Background(), "", 100)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if s := x.AdmissionStats(); s.Admitted != 0 {
		t.Fatalf("fast-path admissions were accounted: %+v", s)
	}
}
