package mule

import (
	"context"

	"github.com/uncertain-graphs/mule/internal/dynamic"
	"github.com/uncertain-graphs/mule/internal/topk"
	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uquasi"
	"github.com/uncertain-graphs/mule/internal/utruss"
)

// This file exposes the dense-substructure extensions the paper's
// conclusion (§6) names as future work — bicliques, quasi-cliques, trusses
// and cores over uncertain graphs — together with top-k selection over
// α-maximal cliques (the Zou et al. problem of §1.2 recast against
// Definition 4).

// --- Maximal α-bicliques (uncertain bipartite graphs) ---

// Bipartite is an immutable uncertain bipartite graph; build one with
// NewBipartiteBuilder or BipartiteFromEdges.
type Bipartite = ubiclique.Bipartite

// BipartiteBuilder accumulates probabilistic cross edges for a Bipartite.
type BipartiteBuilder = ubiclique.Builder

// BipartiteEdge is one probabilistic cross edge (left L, right R,
// probability P).
type BipartiteEdge = ubiclique.Edge

// Biclique is one materialized α-maximal biclique.
type Biclique = ubiclique.Biclique

// BicliqueVisitor receives each α-maximal biclique (sides sorted, reused
// between calls); returning false stops the enumeration.
type BicliqueVisitor = ubiclique.Visitor

// BicliqueConfig tunes biclique enumeration (per-side size minima,
// invariant checking).
type BicliqueConfig = ubiclique.Config

// BicliqueStats reports the work performed by a biclique enumeration run.
type BicliqueStats = ubiclique.Stats

// NewBipartiteBuilder returns a builder for an uncertain bipartite graph
// with the given side sizes.
func NewBipartiteBuilder(nLeft, nRight int) *BipartiteBuilder {
	return ubiclique.NewBuilder(nLeft, nRight)
}

// BipartiteFromEdges builds an uncertain bipartite graph from an edge list.
func BipartiteFromEdges(nLeft, nRight int, edges []BipartiteEdge) (*Bipartite, error) {
	return ubiclique.FromEdges(nLeft, nRight, edges)
}

// EnumerateBicliques enumerates every α-maximal biclique of g with the
// MULE-style search of internal/ubiclique.
func EnumerateBicliques(g *Bipartite, alpha float64, visit BicliqueVisitor) (BicliqueStats, error) {
	return ubiclique.Enumerate(g, alpha, visit)
}

// EnumerateBicliquesWith runs biclique enumeration with explicit
// configuration.
func EnumerateBicliquesWith(g *Bipartite, alpha float64, visit BicliqueVisitor, cfg BicliqueConfig) (BicliqueStats, error) {
	return ubiclique.EnumerateWith(g, alpha, visit, cfg)
}

// EnumerateBicliquesContext is EnumerateBicliquesWith under ctx: the search
// polls the context on a node-count interval, exactly like Query runs, and
// returns an error wrapping context.Canceled or context.DeadlineExceeded if
// it fires mid-run.
func EnumerateBicliquesContext(ctx context.Context, g *Bipartite, alpha float64, visit BicliqueVisitor, cfg BicliqueConfig) (BicliqueStats, error) {
	return ubiclique.EnumerateContext(ctx, g, alpha, visit, cfg)
}

// CollectBicliques returns all α-maximal bicliques in canonical order.
func CollectBicliques(g *Bipartite, alpha float64) ([]Biclique, error) {
	return ubiclique.Collect(g, alpha)
}

// --- Maximal expected γ-quasi-cliques ---

// QuasiConfig tunes quasi-clique mining (γ, size bounds).
type QuasiConfig = uquasi.Config

// QuasiStats reports the work performed by a quasi-clique mining run.
type QuasiStats = uquasi.Stats

// CollectQuasiCliques mines all maximal expected γ-quasi-cliques: vertex
// sets in which every member's expected degree into the set is at least
// γ·(|set|−1) and that no proper superset satisfies. cfg.Gamma must lie in
// [0.5, 1].
func CollectQuasiCliques(g *Graph, cfg QuasiConfig) ([][]int, error) {
	return uquasi.Collect(g, cfg)
}

// IsExpectedQuasiClique reports whether set satisfies the expected-degree
// γ-quasi-clique condition.
func IsExpectedQuasiClique(g *Graph, set []int, gamma float64) bool {
	return uquasi.IsExpectedQuasiClique(g, set, gamma)
}

// QuasiCliqueWorldProb returns the exact probability that a sampled world
// induces a deterministic γ-quasi-clique on set (possible-world semantics;
// exponential in the number of induced edges, capped at 24).
func QuasiCliqueWorldProb(g *Graph, set []int, gamma float64) (float64, error) {
	return uquasi.WorldProbExact(g, set, gamma)
}

// QuasiCliqueWorldProbMC estimates the same probability by Monte-Carlo
// sampling.
func QuasiCliqueWorldProbMC(g *Graph, set []int, gamma float64, samples int, seed int64) (float64, error) {
	return uquasi.WorldProbMC(g, set, gamma, samples, seed)
}

// --- (k,η)-trusses ---

// EdgeTruss reports the η-truss number of one edge.
type EdgeTruss = utruss.EdgeTruss

// Truss returns the (k,η)-truss of g: the unique maximal subgraph whose
// every edge has probability ≥ η of being supported by at least k−2
// triangles within the subgraph.
func Truss(g *Graph, k int, eta float64) (*Graph, error) {
	return utruss.Truss(g, k, eta)
}

// TrussDecompose assigns every edge its η-truss number.
func TrussDecompose(g *Graph, eta float64) ([]EdgeTruss, error) {
	return utruss.Decompose(g, eta)
}

// TrussSupportProb returns P[supp(e) ≥ t] for edge {u,v}: the exact
// Poisson-binomial tail over the wedges through the edge.
func TrussSupportProb(g *Graph, u, v, t int) (float64, error) {
	return utruss.SupportProb(g, u, v, t)
}

// --- (k,η)-cores ---

// CoreDecomposition holds η-core numbers for every vertex.
type CoreDecomposition = ucore.Decomposition

// CoreDecompose computes the (k,η)-core decomposition of g.
func CoreDecompose(g *Graph, eta float64) (CoreDecomposition, error) {
	return ucore.Decompose(g, eta)
}

// Core returns the vertices of the (k,η)-core of g.
func Core(g *Graph, k int, eta float64) ([]int, error) {
	return ucore.Core(g, k, eta)
}

// --- Dynamic maintenance of α-maximal cliques ---

// Maintainer keeps the set of α-maximal cliques in sync across edge
// updates, re-enumerating only the neighborhoods the change can affect.
type Maintainer = dynamic.Maintainer

// CliqueDiff reports the clique-set change caused by one edge update.
type CliqueDiff = dynamic.Diff

// NewMaintainer builds a dynamic maintainer seeded with a full MULE
// enumeration of g at threshold alpha. Subsequent SetEdge/RemoveEdge calls
// mutate the graph and return exact clique-set diffs.
func NewMaintainer(g *Graph, alpha float64) (*Maintainer, error) {
	return dynamic.New(g, alpha)
}

// NewMaintainerContext is NewMaintainer under ctx: the seeding enumeration
// — a full graph-sized MULE run, the expensive part of construction — is
// cancellable and deadline-bounded like any Query run.
func NewMaintainerContext(ctx context.Context, g *Graph, alpha float64) (*Maintainer, error) {
	return dynamic.NewContext(ctx, g, alpha)
}

// --- Top-k α-maximal cliques ---

// ScoredClique is one α-maximal clique with its clique probability.
type ScoredClique = topk.ScoredClique

// TopKCriterion selects the ranking used by Query.TopK.
type TopKCriterion = topk.Criterion

// Rankings for Query.TopK.
const (
	// ByProb ranks by clique probability, highest first (ties: larger
	// cliques, then lexicographically smaller vertex sets).
	ByProb = topk.CriterionProb
	// BySize ranks by clique size, largest first (ties: higher probability,
	// then lexicographically smaller vertex sets).
	BySize = topk.CriterionSize
)

// TopKByProb returns the k α-maximal cliques with the highest clique
// probability (descending; ties by size then lexicographic order).
//
// Deprecated: use NewQuery(g, alpha) and Query.TopK(ctx, k, ByProb), which
// honors a context and composes with the other query options.
func TopKByProb(g *Graph, alpha float64, k int) ([]ScoredClique, error) {
	return topk.ByProb(g, alpha, k)
}

// TopKBySize returns the k largest α-maximal cliques (descending; ties by
// probability then lexicographic order).
//
// Deprecated: use NewQuery(g, alpha) and Query.TopK(ctx, k, BySize).
func TopKBySize(g *Graph, alpha float64, k int) ([]ScoredClique, error) {
	return topk.BySize(g, alpha, k)
}
