package graphio

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// randomGraph and graphsEqual live in graphio_test.go.

// --- JSON ---

func TestJSONRoundTrip(t *testing.T) {
	g := randomGraph(20, 0.3, 11)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("JSON round trip changed the graph")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "vertices 3",
		"unknown field":  `{"vertices": 2, "nodes": []}`,
		"negative count": `{"vertices": -1, "edges": []}`,
		"self loop":      `{"vertices": 2, "edges": [{"u":1,"v":1,"p":0.5}]}`,
		"bad prob":       `{"vertices": 2, "edges": [{"u":0,"v":1,"p":2}]}`,
		"range":          `{"vertices": 2, "edges": [{"u":0,"v":5,"p":0.5}]}`,
		"duplicate":      `{"vertices": 2, "edges": [{"u":0,"v":1,"p":0.5},{"u":1,"v":0,"p":0.5}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestJSONEmptyGraph(t *testing.T) {
	g := uncertain.NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 0 || back.NumEdges() != 0 {
		t.Fatal("empty graph round trip grew")
	}
}

// --- gzip + sniffing ---

func TestSaveLoadAllExtensions(t *testing.T) {
	g := randomGraph(25, 0.3, 22)
	dir := t.TempDir()
	for _, name := range []string{
		"g.ug", "g.ugb", "g.json",
		"g.ug.gz", "g.ugb.gz", "g.json.gz",
		"g.unknownext",
	} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s: round trip changed the graph", name)
		}
	}
}

func TestGzipFilesAreCompressed(t *testing.T) {
	g := randomGraph(60, 0.4, 33)
	dir := t.TempDir()
	plain := filepath.Join(dir, "g.ug")
	zipped := filepath.Join(dir, "g.ug.gz")
	if err := SaveFile(plain, g); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(zipped, g); err != nil {
		t.Fatal(err)
	}
	ps, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zs.Size() >= ps.Size() {
		t.Fatalf("gzip file (%d bytes) not smaller than plain (%d bytes)", zs.Size(), ps.Size())
	}
	// And the payload really is a gzip stream.
	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("gzip magic missing from .gz file")
	}
}

func TestReadAnySniffsFormats(t *testing.T) {
	g := randomGraph(12, 0.5, 44)
	writers := map[string]func(*bytes.Buffer) error{
		"text":   func(b *bytes.Buffer) error { return WriteText(b, g) },
		"binary": func(b *bytes.Buffer) error { return WriteBinary(b, g) },
		"json":   func(b *bytes.Buffer) error { return WriteJSON(b, g) },
	}
	for name, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s: sniffed round trip changed the graph", name)
		}
		// Same payload gzipped.
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		back, err = ReadAny(&zbuf)
		if err != nil {
			t.Fatalf("%s gzipped: %v", name, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s gzipped: round trip changed the graph", name)
		}
	}
}

// --- failure injection ---

func TestReadAnyCorruptGzip(t *testing.T) {
	// Valid gzip magic followed by garbage.
	corrupt := append([]byte{0x1f, 0x8b}, bytes.Repeat([]byte{0xff}, 32)...)
	if _, err := ReadAny(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt gzip stream accepted")
	}
}

func TestReadBinaryTruncations(t *testing.T) {
	g := randomGraph(10, 0.5, 55)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never crash or succeed.
	for _, cut := range []int{0, 1, 3, 4, 7, 8, 15, 20, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("prefix of %d bytes accepted", cut)
		}
	}
}

func TestReadBinaryCorruptions(t *testing.T) {
	g := randomGraph(6, 0.6, 66)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	badMagic := append([]byte{}, full...)
	badMagic[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(badMagic)); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := append([]byte{}, full...)
	badVersion[4] = 99
	if _, err := ReadBinary(bytes.NewReader(badVersion)); err == nil {
		t.Error("bad version accepted")
	}

	// Implausibly large header must be rejected before allocation.
	hugeHeader := append([]byte{}, full[:8]...)
	hugeHeader = append(hugeHeader, bytes.Repeat([]byte{0xff}, 16)...)
	if _, err := ReadBinary(bytes.NewReader(hugeHeader)); err == nil {
		t.Error("implausible header accepted")
	}
}

// errWriter fails after a fixed number of bytes, exercising the error
// propagation of every writer.
type errWriter struct {
	remaining int
}

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errors.New("disk full")
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestWritersPropagateErrors(t *testing.T) {
	// ~900 edges: 14 KB binary, larger in text/JSON, so every budget below
	// is exceeded in all three formats.
	g := randomGraph(60, 0.5, 77)
	// The writers buffer internally (bufio defaults to 4096 bytes), so give
	// budgets both below and above one buffer flush.
	for _, budget := range []int{0, 10, 5000} {
		if err := WriteText(&errWriter{remaining: budget}, g); err == nil {
			t.Errorf("WriteText survived a failing writer (budget %d)", budget)
		}
		if err := WriteBinary(&errWriter{remaining: budget}, g); err == nil {
			t.Errorf("WriteBinary survived a failing writer (budget %d)", budget)
		}
		if err := WriteJSON(&errWriter{remaining: budget}, g); err == nil {
			t.Errorf("WriteJSON survived a failing writer (budget %d)", budget)
		}
	}
}

func TestSaveFileToUnwritablePath(t *testing.T) {
	g := randomGraph(3, 1, 88)
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.ug"), g); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
}

// --- bipartite text format ---

func randomBipartiteGraph(t *testing.T, nL, nR int, density float64, seed int64) *ubiclique.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := ubiclique.NewBuilder(nL, nR)
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Float64() < density {
				if err := b.AddEdge(l, r, 1-rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func TestBipartiteRoundTrip(t *testing.T) {
	g := randomBipartiteGraph(t, 9, 7, 0.4, 99)
	var buf bytes.Buffer
	if err := WriteBipartiteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBipartiteText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLeft() != g.NumLeft() || back.NumRight() != g.NumRight() ||
		back.NumEdges() != g.NumEdges() {
		t.Fatal("bipartite round trip changed sizes")
	}
	ae, be := g.Edges(), back.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func TestBipartiteRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no directive":       "0 1 0.5\n",
		"repeated directive": "bipartite 2 2\nbipartite 2 2\n",
		"short directive":    "bipartite 2\n",
		"negative side":      "bipartite -1 2\n",
		"bad edge arity":     "bipartite 2 2\n0 1\n",
		"bad left":           "bipartite 2 2\nx 1 0.5\n",
		"bad right":          "bipartite 2 2\n0 y 0.5\n",
		"bad prob":           "bipartite 2 2\n0 1 zebra\n",
		"range":              "bipartite 2 2\n0 7 0.5\n",
		"dup":                "bipartite 2 2\n0 1 0.5\n0 1 0.5\n",
		"empty":              "",
	}
	for name, in := range cases {
		if _, err := ReadBipartiteText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestBipartiteCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nbipartite 2 3\n# another\n0 2 0.5\n\n1 0 1\n"
	g, err := ReadBipartiteText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLeft() != 2 || g.NumRight() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d/%d/%d, want 2/3/2", g.NumLeft(), g.NumRight(), g.NumEdges())
	}
}

// --- fuzz (runs its seed corpus under plain `go test`) ---

func FuzzReadAny(f *testing.F) {
	g := randomGraph(6, 0.5, 101)
	var text, bin, js bytes.Buffer
	if err := WriteText(&text, g); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSON(&js, g); err != nil {
		f.Fatal(err)
	}
	f.Add(text.Bytes())
	f.Add(bin.Bytes())
	f.Add(js.Bytes())
	f.Add([]byte("vertices 3\n0 1 0.5\n"))
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte("UGRF"))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine.
		g, err := ReadAny(bytes.NewReader(data))
		if err == nil && g != nil {
			// Whatever parsed must re-serialize.
			var buf bytes.Buffer
			if err := WriteText(&buf, g); err != nil {
				t.Fatalf("re-serialization failed: %v", err)
			}
		}
	})
}
