package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/graphio"
	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.ug")
	if err := graphio.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeBigGraph writes a dense graph whose enumeration at a low alpha runs
// for seconds — long enough to reliably cancel mid-run.
func writeBigGraph(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	edges := gen.GNP(140, 0.6, rng)
	g, err := gen.BuildUncertain(140, edges, gen.ConstProb(0.95), rng)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "big.ug")
	if err := graphio.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEnumerate(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 cliques, got %d: %q", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "0 1 2") || !strings.Contains(out.String(), "2 3") {
		t.Fatalf("missing cliques in output: %q", out.String())
	}
	// Probability column is the first field.
	if !strings.HasPrefix(lines[0], "0.125\t") && !strings.HasPrefix(lines[1], "0.125\t") {
		t.Fatalf("expected a clique with probability 0.125: %q", out.String())
	}
}

func TestRunCount(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-count", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "2" {
		t.Fatalf("count output %q, want 2", out.String())
	}
}

func TestRunTopK(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-top", "1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("top-1 printed %d lines", len(lines))
	}
	// Highest probability maximal clique is {2,3} at 0.25.
	if !strings.Contains(lines[0], "2 3") {
		t.Fatalf("top-1 = %q, want clique {2,3}", lines[0])
	}
}

func TestRunMinSize(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-minsize", "3", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "0 1 2") {
		t.Fatalf("minsize=3 output %q", out.String())
	}
}

func TestRunLimit(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-limit", "1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("limit=1 printed %d lines: %q", len(lines), out.String())
	}
}

func TestRunOrderingsAndWorkers(t *testing.T) {
	path := writeTestGraph(t)
	for _, ord := range []string{"natural", "degree", "degeneracy", "random"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-order", ord, "-workers", "2", "-count", "-quiet"}, &out); err != nil {
			t.Fatalf("order %s: %v", ord, err)
		}
		if strings.TrimSpace(out.String()) != "2" {
			t.Fatalf("order %s: count %q", ord, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{}, &out); err == nil {
		t.Error("missing -in should fail")
	}
	if err := run(ctx, []string{"-in", "/nonexistent/file.ug"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	path := writeTestGraph(t)
	if err := run(ctx, []string{"-in", path, "-alpha", "7"}, &out); err == nil {
		t.Error("bad alpha should fail")
	}
	if err := run(ctx, []string{"-in", path, "-order", "bogus"}, &out); err == nil {
		t.Error("bad ordering should fail")
	}
}

// TestRunCanceledMidRun cancels the context while the enumeration is in
// flight and checks the clean-abort contract: a wrapped context.Canceled
// comes back (so main exits 130) and the partial output was flushed intact
// — every emitted line is complete, no mid-write kill.
func TestRunCanceledMidRun(t *testing.T) {
	path := writeBigGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	lineSeen := make(chan struct{}, 1)
	out.onWrite = func() {
		select {
		case lineSeen <- struct{}{}:
		default:
		}
	}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-in", path, "-alpha", "0.00001", "-quiet"}, &out)
	}()
	select {
	case <-lineSeen:
		cancel()
	case <-time.After(30 * time.Second):
		t.Fatal("no output before timeout")
	}
	err := <-errc
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run returned %v, want wrapped context.Canceled", err)
	}
	for i, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var p float64
		var rest string
		if _, serr := fmt.Sscanf(line, "%g\t%s", &p, &rest); serr != nil {
			t.Fatalf("flushed line %d is malformed: %q (%v)", i, line, serr)
		}
	}
}

// TestRunTimeoutFlag bounds a heavy run with -timeout and expects a wrapped
// context.DeadlineExceeded (the exit-124 path of main).
func TestRunTimeoutFlag(t *testing.T) {
	path := writeBigGraph(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", path, "-alpha", "0.00001", "-count", "-quiet", "-timeout", "50ms"}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("run returned %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestSignalContext delivers a real SIGINT to the process and checks that
// the signal context — the one main wires to the query layer — cancels, so
// an interactive ^C aborts the enumeration instead of killing the process
// mid-write.
func TestSignalContext(t *testing.T) {
	ctx, stop := signalContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
		if !errors.Is(ctx.Err(), context.Canceled) {
			t.Fatalf("signal context err = %v", ctx.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SIGINT did not cancel the signal context")
	}
}

// TestSignalInterruptFlushes runs a heavy enumeration under the signal
// context, interrupts it with SIGINT, and verifies the run aborts with
// context.Canceled and flushed stats — the end-to-end ^C story.
func TestSignalInterruptFlushes(t *testing.T) {
	path := writeBigGraph(t)
	ctx, stop := signalContext(context.Background())
	defer stop()
	var out syncBuffer
	started := make(chan struct{}, 1)
	out.onWrite = func() {
		select {
		case started <- struct{}{}:
		default:
		}
	}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-in", path, "-alpha", "0.00001", "-quiet"}, &out)
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("no output before timeout")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want wrapped context.Canceled", err)
	}
}

// syncBuffer is a bytes.Buffer safe for the cross-goroutine write/read the
// cancellation tests do, with a write hook to detect first output.
type syncBuffer struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	onWrite func()
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	n, err := b.buf.Write(p)
	b.mu.Unlock()
	if b.onWrite != nil {
		b.onWrite()
	}
	return n, err
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMainSmoke(t *testing.T) {
	// Ensure the os.Stdout path compiles and runs through run().
	path := writeTestGraph(t)
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.5", "-quiet"}, os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func writeTestBipartite(t *testing.T) string {
	t.Helper()
	b := ubiclique.NewBuilder(3, 3)
	for l := 0; l < 2; l++ {
		for r := 0; r < 2; r++ {
			if err := b.AddEdge(l, r, 0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.AddEdge(2, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.ubg")
	if err := graphio.SaveBipartiteFile(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMineBicliques(t *testing.T) {
	path := writeTestBipartite(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "bicliques", "-alpha", "0.6", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	// Only the 2×2 block (0.9^4 ≈ 0.656) survives α = 0.6.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "0 1 | 0 1") {
		t.Fatalf("biclique output %q", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "bicliques", "-alpha", "0.3", "-minl", "2", "-minr", "2", "-count", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "1" {
		t.Fatalf("biclique -minl/-minr count %q, want 1", out.String())
	}
}

func TestRunMineQuasi(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "quasi", "-gamma", "1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	// No certain triangle exists (all p = 0.5 < 1)… the expected-degree
	// condition at γ=1 needs expected degree |S|−1, impossible with p=0.5,
	// so the output is empty; re-run at γ=0.5 where {0,1,2} qualifies.
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "quasi", "-gamma", "0.5", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 1 2") {
		t.Fatalf("quasi output %q, want the triangle", out.String())
	}
	// Missing -gamma fails eagerly with the typed sentinel.
	if err := run(context.Background(), []string{"-in", path, "-mine", "quasi", "-quiet"}, &out); !errors.Is(err, mule.ErrGammaRange) {
		t.Fatalf("quasi without -gamma returned %v, want wrapped ErrGammaRange", err)
	}
}

func TestRunMineTruss(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-eta", "0.1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // every edge gets a truss number
		t.Fatalf("truss decomposition printed %d lines: %q", len(lines), out.String())
	}
	// The triangle edges have support probability 0.25 ≥ 0.1, so the
	// (3,0.1)-truss keeps exactly the triangle.
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-eta", "0.1", "-k", "3", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("(3,0.1)-truss printed %d edges: %q", len(lines), out.String())
	}
	// -eta is required.
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-quiet"}, &out); !errors.Is(err, mule.ErrEtaRange) {
		t.Fatalf("truss without -eta returned %v, want wrapped ErrEtaRange", err)
	}
}

func TestRunMineCore(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "core", "-eta", "0.2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // every vertex gets a core number
		t.Fatalf("core decomposition printed %d lines: %q", len(lines), out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "core", "-eta", "0.2", "-k", "2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	// Vertices 0,1,2 keep η-degree ≥ 2 at η=0.2 (two incident 0.5 edges:
	// P[deg ≥ 2] = 0.25 ≥ 0.2); vertex 3's best is the pendant pair.
	if got := strings.Fields(strings.ReplaceAll(strings.TrimSpace(out.String()), "\n", " ")); len(got) != 3 {
		t.Fatalf("(2,0.2)-core = %v, want 3 vertices", got)
	}
}

// TestRunMineLimitAndTimeout: the cross-cutting -limit and -timeout flags
// apply to the extension modes exactly as to cliques.
func TestRunMineLimitAndTimeout(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-eta", "0.1", "-limit", "2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); len(lines) != 2 {
		t.Fatalf("-limit 2 printed %d truss lines: %q", len(lines), out.String())
	}
	// A heavy graph under a tiny -timeout aborts with the deadline error
	// (the exit-124 path of main) in the truss and core modes too.
	big := writeBigGraph(t)
	for _, mode := range [][]string{
		{"-mine", "truss", "-eta", "0.99"},
		{"-mine", "core", "-eta", "0.99"},
	} {
		args := append([]string{"-in", big, "-quiet", "-timeout", "1ms"}, mode...)
		if err := run(context.Background(), args, &out); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: err = %v, want wrapped context.DeadlineExceeded", mode, err)
		}
	}
}

func TestRunMineUnknown(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "bogus"}, &out); err == nil || !strings.Contains(err.Error(), "unknown -mine mode") {
		t.Fatalf("unknown mode returned %v", err)
	}
}

func TestRunProfiles(t *testing.T) {
	path := writeTestGraph(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-count", "-quiet",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// The -top path exits through a different return; it must still write
	// the heap profile.
	mem2 := filepath.Join(dir, "mem2.pb.gz")
	if err := run(context.Background(), []string{"-in", path, "-alpha", "0.125", "-top", "1", "-quiet",
		"-memprofile", mem2}, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem2); err != nil || fi.Size() == 0 {
		t.Fatalf("top-k path did not write the heap profile: %v", err)
	}
}

// TestRunMineKPathsCountAndLimit: -count and -limit apply to the -k
// subgraph/vertex-set paths of the truss and core modes too.
func TestRunMineKPathsCountAndLimit(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-eta", "0.1", "-k", "3", "-count", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "3" {
		t.Fatalf("truss -k -count = %q, want 3", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "truss", "-eta", "0.1", "-k", "3", "-limit", "1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); len(lines) != 1 {
		t.Fatalf("truss -k -limit 1 printed %d lines: %q", len(lines), out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "core", "-eta", "0.2", "-k", "2", "-count", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "3" {
		t.Fatalf("core -k -count = %q, want 3", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-in", path, "-mine", "core", "-eta", "0.2", "-k", "2", "-limit", "2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); len(lines) != 2 {
		t.Fatalf("core -k -limit 2 printed %d lines: %q", len(lines), out.String())
	}
}
