package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/uncertain-graphs/mule/internal/faultinject"
)

// Typed sentinel errors for the enumeration entry points. Callers match them
// with errors.Is; the concrete errors returned wrap these with the offending
// values. Context aborts are reported by wrapping context.Canceled or
// context.DeadlineExceeded directly, so errors.Is(err, context.Canceled)
// works without a package-specific sentinel.
var (
	// ErrNilGraph reports a nil *uncertain.Graph argument.
	ErrNilGraph = errors.New("nil graph")
	// ErrAlphaRange reports a probability threshold outside (0, 1].
	ErrAlphaRange = errors.New("alpha outside (0,1]")
	// ErrConfig reports an invalid Config field (negative sizes or counts,
	// unknown ordering or parallel mode).
	ErrConfig = errors.New("invalid config")
	// ErrStopped reports that the visitor ended the enumeration early by
	// returning false. The core entry points never return it — an early stop
	// is a successful run with Stats.Status == StatusStopped — but the query
	// layer above uses it to distinguish truncated streams.
	ErrStopped = errors.New("enumeration stopped by visitor")
	// ErrBudget reports that the run exhausted its Config.Budget of search
	// nodes before completing.
	ErrBudget = errors.New("search budget exhausted")

	// ErrGammaRange reports a quasi-clique density threshold γ outside the
	// range the mining algorithm supports ([0.5, 1]; the predicate and
	// verifier helpers accept (0, 1]).
	ErrGammaRange = errors.New("gamma out of range")
	// ErrEtaRange reports a truss/core confidence threshold η outside (0, 1].
	ErrEtaRange = errors.New("eta outside (0,1]")
	// ErrKRange reports a structural size parameter k below its floor (2 for
	// trusses, 0 for cores).
	ErrKRange = errors.New("k out of range")
	// ErrCentersRange reports a clustering center count outside [1, n] — the
	// number of clusters a partition of n vertices can have. Omitting
	// WithCenters entirely leaves the zero value, which is rejected too.
	ErrCentersRange = errors.New("centers out of range")

	// ErrPanic reports that a run was terminated by a recovered panic — in a
	// visitor callback, a worker frame, or a split — contained to that run.
	// The concrete error is a *PanicError wrapping this sentinel; match with
	// errors.Is(err, ErrPanic) and inspect via errors.As(err, &pe).
	ErrPanic = errors.New("panic during run")
	// ErrStalled reports that the stall watchdog aborted a run that made no
	// search progress for the configured StallTimeout — distinct from a
	// context deadline, which fires on wall-clock regardless of progress.
	ErrStalled = errors.New("run stalled: no progress within stall timeout")
)

// PanicError carries a recovered panic out of a run as an error: the panic
// value, the stack captured at the recovery point, and ErrPanic as its
// unwrap target. The run that panicked is the only one affected; the
// executor, its workers, and every other run keep going.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured where the panic was recovered
}

// NewPanicError wraps a recovered panic value and stack.
func NewPanicError(value any, stack []byte) *PanicError {
	return &PanicError{Value: value, Stack: stack}
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap makes errors.Is(err, ErrPanic) match any contained panic.
func (e *PanicError) Unwrap() error { return ErrPanic }

// RunStatus is the terminal state of an enumeration run, recorded in
// Stats.Status.
type RunStatus int

const (
	// StatusComplete: the search space was exhausted; the output is the full
	// α-maximal clique set (subject to MinSize).
	StatusComplete RunStatus = iota
	// StatusStopped: the visitor returned false; the output is a prefix.
	StatusStopped
	// StatusCanceled: the context was canceled mid-run.
	StatusCanceled
	// StatusDeadline: the context deadline expired mid-run.
	StatusDeadline
	// StatusBudget: the Config.Budget node budget ran out mid-run.
	StatusBudget
	// StatusFailed: the operation was rejected by validation before any
	// search work ran. Queries validate at construction and never report
	// it; the maintainer's per-operation stats use it so an invalid update
	// is never mistaken for a completed one.
	StatusFailed
	// StatusPanicked: a panic (visitor callback, worker frame, or split) was
	// recovered and terminated the run; the error is a *PanicError wrapping
	// ErrPanic. Other runs on the shared executor are unaffected.
	StatusPanicked
	// StatusStalled: the stall watchdog aborted the run after no search
	// progress for the configured stall timeout (wrapping ErrStalled).
	StatusStalled
)

// String names the status for logs and error messages.
func (s RunStatus) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusStopped:
		return "stopped"
	case StatusCanceled:
		return "canceled"
	case StatusDeadline:
		return "deadline"
	case StatusBudget:
		return "budget"
	case StatusFailed:
		return "failed"
	case StatusPanicked:
		return "panicked"
	case StatusStalled:
		return "stalled"
	default:
		return fmt.Sprintf("RunStatus(%d)", int(s))
	}
}

// abortCheckInterval is how many search-tree nodes an enumerator expands
// between context/budget polls. The poll itself is a channel-free ctx.Err()
// call plus one shared atomic add, so the amortized per-node cost is a
// single local counter decrement — no per-node atomics (the engines' hard
// latency bound is therefore one interval's worth of nodes, a few
// microseconds of work).
const abortCheckInterval = 1024

// RunControl is the per-run shared state that lets every engine observe
// cancellation, deadlines, node budgets, and visitor early-stop. One
// instance exists per run; the serial driver and every parallel worker hold
// a pointer to it. It is exported to the sibling miner packages (ubiclique,
// uquasi, utruss, ucore, dynamic) so the whole §6 extension surface shares
// one cancellation/budget discipline instead of reimplementing it per
// algorithm.
type RunControl struct {
	ctx    context.Context // nil when the context can never be canceled
	budget int64           // max search nodes; 0 = unlimited
	used   atomic.Int64    // nodes charged against the budget, in batches
	stop   atomic.Bool     // latched: unwind everything (abort or early stop)
	cause  atomic.Pointer[error]

	// stall is the armed watchdog window (0 = disarmed). Written once by
	// ArmStall before any engine starts — the engines observe it through the
	// happens-before edges of run submission, so it needs no atomic.
	stall time.Duration
	// beacon counts progress stamps: every poll and every emission bumps it.
	// The watchdog goroutine reads it on a coarse tick; an unchanged beacon
	// across a full stall window means the run made no search progress.
	beacon atomic.Int64
}

// NewRunControl builds the control block. A context that can never fire
// (Background, TODO, pure value contexts) is dropped so the poll reduces to
// a nil check.
func NewRunControl(ctx context.Context, budget int64) *RunControl {
	c := &RunControl{budget: budget}
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
	}
	return c
}

// Done exposes the control's cancellation channel for select-based waiters:
// the context's Done channel, or nil (blocks forever in a select) when the
// context can never fire. Budget exhaustion and visitor early-stop do not
// fire it — they unwind through the stop latch inside the engines.
func (c *RunControl) Done() <-chan struct{} {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Done()
}

// Abort latches err as the run's abort cause (first caller wins) and raises
// the stop flag.
func (c *RunControl) Abort(err error) {
	c.cause.CompareAndSwap(nil, &err)
	c.stop.Store(true)
}

// Err returns the latched abort cause, nil if the run was not aborted.
func (c *RunControl) Err() error {
	if p := c.cause.Load(); p != nil {
		return *p
	}
	return nil
}

// Poll checks the context and the node budget, charging nodes spent search
// nodes against the budget. It returns true when the run must unwind. The
// enumerators call it every abortCheckInterval nodes (cheap nodes are
// charged in interval batches; expensive units of work — a Poisson-binomial
// tail evaluation, an η-degree recompute — may be charged at finer grain).
func (c *RunControl) Poll(nodes int64) bool {
	faultinject.Fire(faultinject.SlowPoll)
	c.Progress()
	if c.stop.Load() {
		return true
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			c.Abort(err)
			return true
		}
	}
	if c.budget > 0 && c.used.Add(nodes) >= c.budget {
		c.Abort(ErrBudget)
		return true
	}
	return false
}

// Progress stamps the watchdog beacon. Poll stamps it on every interval;
// emission paths stamp it too, so a run crawling through a slow visitor
// between polls still reads as live. Disarmed runs skip the atomic.
func (c *RunControl) Progress() {
	if c.stall > 0 {
		c.beacon.Add(1)
	}
}

// ArmStall arms the stall watchdog: a run whose beacon does not advance for
// d is aborted with an error wrapping ErrStalled. The returned stop function
// kills the watchdog goroutine; callers defer it around the engine run.
// d <= 0 disarms (no goroutine, no atomics on the poll path).
//
// The watchdog only latches the abort — Go cannot preempt a stuck goroutine,
// so a visitor that never returns keeps its frame alive until it does; every
// cooperative path (polls, queued frames, parked helpers) unwinds promptly
// once the latch is set.
func (c *RunControl) ArmStall(d time.Duration) (stop func()) {
	if d <= 0 {
		return func() {}
	}
	c.stall = d
	quit := make(chan struct{})
	go func() {
		tick := d / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		last := c.beacon.Load()
		stamp := time.Now()
		for {
			select {
			case <-quit:
				return
			case now := <-t.C:
				cur := c.beacon.Load()
				if cur != last {
					last, stamp = cur, now
					continue
				}
				if now.Sub(stamp) >= d {
					c.Abort(fmt.Errorf("no progress for %v: %w", d, ErrStalled))
					return
				}
			}
		}
	}()
	return func() { close(quit) }
}

// Status translates the control's terminal state into a RunStatus: complete
// when nothing aborted and the visitor ran to the end, stopped on a visitor
// early-stop, and the matching abort status otherwise.
func (c *RunControl) Status(visitorStopped bool) RunStatus {
	err := c.Err()
	switch {
	case err == nil && !visitorStopped:
		return StatusComplete
	case err == nil:
		return StatusStopped
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	case errors.Is(err, ErrBudget):
		return StatusBudget
	case errors.Is(err, ErrPanic):
		return StatusPanicked
	case errors.Is(err, ErrStalled):
		return StatusStalled
	default:
		return StatusCanceled
	}
}

// finish translates the control's terminal state into the run's status and
// returned error. A visitor early-stop is a successful run (the legacy
// callback contract); aborts surface as wrapped sentinel errors.
func (c *RunControl) finish(stats *Stats, visitorStopped bool) error {
	stats.Status = c.Status(visitorStopped)
	err := c.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("core: enumeration aborted after %d search calls: %w", stats.Calls, err)
}
