package exec

import (
	"context"
	"errors"
	"fmt"
)

// ErrAdmission is the typed sentinel for queries rejected by admission
// control: the tenant is at its in-flight or aggregate-budget cap and the
// wait queue is full (or waiting is disabled). Match with errors.Is.
var ErrAdmission = errors.New("admission rejected")

// Limits caps one tenant's concurrent load on an executor. The zero value
// means unlimited.
type Limits struct {
	// MaxInFlight caps how many admitted queries the tenant may have running
	// at once; 0 = unlimited.
	MaxInFlight int
	// MaxQueued bounds how many over-cap queries may wait for admission
	// (FIFO); 0 = none — over-cap queries are rejected immediately.
	MaxQueued int
	// MaxBudget caps the sum of the node budgets of the tenant's admitted
	// queries; 0 = unlimited. A single query whose budget exceeds the cap
	// can never be admitted and is rejected rather than queued.
	MaxBudget int64
}

// zero reports whether the limits impose no constraint at all.
func (l Limits) zero() bool {
	return l.MaxInFlight == 0 && l.MaxQueued == 0 && l.MaxBudget == 0
}

type tenantState struct {
	inflight int
	budget   int64
	peak     int
	queue    []*admissionWaiter
}

type admissionWaiter struct {
	budget  int64
	ready   chan struct{}
	granted bool
}

// failQueuedAdmissions empties every tenant's admission queue at Close,
// waking each waiter ungranted so its Admit call fails with ErrAdmission
// instead of waiting for capacity that will never be released.
func (x *Executor) failQueuedAdmissions() {
	x.amu.Lock()
	for _, ts := range x.tenants {
		for _, w := range ts.queue {
			x.rejected++
			x.rejectedClosed++
			close(w.ready)
		}
		ts.queue = nil
	}
	x.amu.Unlock()
}

// AdmissionStats is a snapshot of an executor's admission accounting.
type AdmissionStats struct {
	// Admitted counts queries that passed admission (immediately or after
	// queueing); Rejected counts ErrAdmission outcomes; Queued counts
	// queries that had to wait (whether they were later granted or gave up).
	Admitted, Rejected, Queued int64
	// Rejected broken out by cause. RejectedBudget counts budget-cap
	// rejections (a single budget above MaxBudget, or aggregate-budget
	// pressure with no queue); RejectedQueue counts full-queue rejections;
	// RejectedInFlight counts in-flight-cap rejections with queueing
	// disabled; RejectedClosed counts waiters failed because the executor
	// closed while they were queued (or tried to queue after Close). The
	// four sum to Rejected.
	RejectedBudget, RejectedQueue, RejectedInFlight, RejectedClosed int64
	// Retried counts individual retry attempts made by AdmitWithRetry after
	// a rejection; RetryExhausted counts calls that still ended in
	// ErrAdmission after their policy's MaxAttempts.
	Retried, RetryExhausted int64
	// InFlight and Peak report the current and high-water admitted query
	// count per tenant that was ever subject to accounting.
	InFlight, Peak map[string]int
}

// SetLimits installs per-tenant limits, replacing any previous value for
// that tenant. Waiters already queued are re-evaluated on the next release.
func (x *Executor) SetLimits(tenant string, l Limits) {
	x.amu.Lock()
	if x.limits == nil {
		x.limits = make(map[string]Limits)
	}
	x.limits[tenant] = l
	x.amu.Unlock()
	x.limited.Store(true)
}

// SetDefaultLimits installs the limits applied to tenants without an
// explicit SetLimits entry (including the empty tenant).
func (x *Executor) SetDefaultLimits(l Limits) {
	x.amu.Lock()
	x.defLimits = l
	x.amu.Unlock()
	x.limited.Store(true)
}

func (x *Executor) limitsFor(tenant string) Limits {
	if l, ok := x.limits[tenant]; ok {
		return l
	}
	return x.defLimits
}

func (x *Executor) tenantLocked(tenant string) *tenantState {
	if x.tenants == nil {
		x.tenants = make(map[string]*tenantState)
	}
	ts := x.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		x.tenants[tenant] = ts
	}
	return ts
}

func fits(ts *tenantState, l Limits, budget int64) bool {
	if l.MaxInFlight > 0 && ts.inflight >= l.MaxInFlight {
		return false
	}
	if l.MaxBudget > 0 && ts.budget+budget > l.MaxBudget {
		return false
	}
	return true
}

func (x *Executor) grantLocked(ts *tenantState, budget int64) {
	ts.inflight++
	ts.budget += budget
	if ts.inflight > ts.peak {
		ts.peak = ts.inflight
	}
	x.admitted++
}

// releaseLocked undoes one grant and hands freed capacity to queued waiters
// in FIFO order (strictly: granting stops at the first waiter that does not
// fit, so a big-budget waiter is never starved by later small ones).
func (x *Executor) releaseLocked(tenant string, budget int64) {
	ts := x.tenantLocked(tenant)
	ts.inflight--
	ts.budget -= budget
	l := x.limitsFor(tenant)
	for len(ts.queue) > 0 {
		w := ts.queue[0]
		if !fits(ts, l, w.budget) {
			return
		}
		ts.queue[0] = nil
		ts.queue = ts.queue[1:]
		w.granted = true
		x.grantLocked(ts, w.budget)
		close(w.ready)
	}
}

func (x *Executor) releaser(tenant string, budget int64) func() {
	released := false
	return func() {
		x.amu.Lock()
		if !released {
			released = true
			x.releaseLocked(tenant, budget)
		}
		x.amu.Unlock()
	}
}

func noopRelease() {}

// Admit gates one query of the given tenant and node budget through the
// executor's admission control. It returns a release function that must be
// called when the query's run ends (any terminal status). Over-cap queries
// wait in FIFO order up to the tenant's MaxQueued, aborting with a wrapped
// context error if ctx fires while queued; beyond the queue bound — or when
// the budget alone exceeds MaxBudget — they are rejected with a wrapped
// ErrAdmission.
//
// On an executor with no configured limits and an empty tenant the call is
// one atomic load.
func (x *Executor) Admit(ctx context.Context, tenant string, budget int64) (func(), error) {
	if !x.limited.Load() && tenant == "" {
		return noopRelease, nil
	}
	x.amu.Lock()
	l := x.limitsFor(tenant)
	ts := x.tenantLocked(tenant)
	if len(ts.queue) == 0 && fits(ts, l, budget) {
		x.grantLocked(ts, budget)
		x.amu.Unlock()
		return x.releaser(tenant, budget), nil
	}
	if l.MaxBudget > 0 && budget > l.MaxBudget {
		x.rejected++
		x.rejectedBudget++
		x.amu.Unlock()
		return nil, fmt.Errorf("exec: tenant %q: budget %d exceeds the aggregate cap %d: %w",
			tenant, budget, l.MaxBudget, ErrAdmission)
	}
	if l.MaxQueued <= 0 || len(ts.queue) >= l.MaxQueued {
		x.rejected++
		// Attribute the rejection: a full queue when queueing is enabled; with
		// queueing disabled, whichever cap blocked the immediate grant (the
		// in-flight cap if it was hit, aggregate budget otherwise).
		switch {
		case l.MaxQueued > 0:
			x.rejectedQueue++
		case l.MaxInFlight > 0 && ts.inflight >= l.MaxInFlight:
			x.rejectedInFlight++
		default:
			x.rejectedBudget++
		}
		x.amu.Unlock()
		return nil, fmt.Errorf("exec: tenant %q: %d queries in flight and the admission queue is full: %w",
			tenant, ts.inflight, ErrAdmission)
	}
	if x.closedFlag.Load() {
		// The executor closed: nothing will ever release capacity to this
		// queue, so joining it would wait forever. (Checked under amu, so
		// this cannot race failQueuedAdmissions draining the queues.)
		x.rejected++
		x.rejectedClosed++
		x.amu.Unlock()
		return nil, fmt.Errorf("exec: tenant %q: executor closed, admission queue disabled: %w",
			tenant, ErrAdmission)
	}
	w := &admissionWaiter{budget: budget, ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	x.enqueued++
	x.amu.Unlock()

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-w.ready:
		if !w.granted {
			// Woken by Close, not by a capacity release.
			return nil, fmt.Errorf("exec: tenant %q: executor closed while queued for admission: %w",
				tenant, ErrAdmission)
		}
		return x.releaser(tenant, budget), nil
	case <-ctxDone:
		x.amu.Lock()
		if w.granted {
			// The grant raced the cancellation; undo it so the capacity
			// flows to the next waiter.
			x.releaseLocked(tenant, budget)
		} else {
			for i, q := range ts.queue {
				if q == w {
					ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
					break
				}
			}
		}
		x.amu.Unlock()
		return nil, fmt.Errorf("exec: admission wait aborted: %w", ctx.Err())
	}
}

// AdmissionStats snapshots the executor's admission accounting.
func (x *Executor) AdmissionStats() AdmissionStats {
	x.amu.Lock()
	defer x.amu.Unlock()
	s := AdmissionStats{
		Admitted:         x.admitted,
		Rejected:         x.rejected,
		Queued:           x.enqueued,
		RejectedBudget:   x.rejectedBudget,
		RejectedQueue:    x.rejectedQueue,
		RejectedInFlight: x.rejectedInFlight,
		RejectedClosed:   x.rejectedClosed,
		Retried:          x.retried,
		RetryExhausted:   x.retryExhausted,
		InFlight:         make(map[string]int, len(x.tenants)),
		Peak:             make(map[string]int, len(x.tenants)),
	}
	for t, ts := range x.tenants {
		s.InFlight[t] = ts.inflight
		s.Peak[t] = ts.peak
	}
	return s
}
