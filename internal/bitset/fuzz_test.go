package bitset

import (
	"testing"
)

// FuzzFromSliceIteration fuzzes the constructor-and-iteration surface the
// enumeration kernel leans on: FromSlice must keep exactly the in-range
// elements, NextAfter must walk them in ascending order, and ForEach must
// visit the same sequence. The element bytes are interpreted as deltas so
// the fuzzer explores duplicates, out-of-range values, and dense clusters
// without needing structured input.
func FuzzFromSliceIteration(f *testing.F) {
	f.Add(64, []byte{0, 1, 2, 200, 3, 3})
	f.Add(1, []byte{0, 0, 0})
	f.Add(0, []byte{5})
	f.Add(130, []byte{129, 1, 63, 64, 65, 127, 128})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 12 // keep universes small enough to check exhaustively
		elems := make([]int, len(raw))
		v := -3
		for i, d := range raw {
			v += int(d) - 1 // deltas in [-1, 254]: revisits, duplicates, runs
			elems[i] = v
		}
		s := FromSlice(n, elems)
		want := map[int]bool{}
		for _, e := range elems {
			if e >= 0 && e < n {
				want[e] = true
			}
		}
		if s.Capacity() != n {
			t.Fatalf("capacity %d, want %d", s.Capacity(), n)
		}
		if s.Count() != len(want) {
			t.Fatalf("Count = %d, want %d", s.Count(), len(want))
		}
		// NextAfter chain enumerates the set ascending; cross-check against
		// the model and against ForEach.
		var chain []int
		for v := s.NextAfter(0); v != -1; v = s.NextAfter(v + 1) {
			chain = append(chain, v)
		}
		if len(chain) != len(want) {
			t.Fatalf("NextAfter chain has %d elements, want %d", len(chain), len(want))
		}
		for i, v := range chain {
			if !want[v] {
				t.Fatalf("NextAfter produced %d not in model", v)
			}
			if i > 0 && chain[i-1] >= v {
				t.Fatalf("NextAfter chain not ascending at %d", v)
			}
		}
		i := 0
		s.ForEach(func(v int) bool {
			if i >= len(chain) || chain[i] != v {
				t.Fatalf("ForEach diverges from NextAfter at index %d: %d", i, v)
			}
			i++
			return true
		})
		if i != len(chain) {
			t.Fatalf("ForEach visited %d elements, NextAfter %d", i, len(chain))
		}
		// Out-of-range probes must be total, not panic.
		if s.NextAfter(-5) != s.NextAfter(0) {
			t.Fatal("NextAfter must clamp negative starts to 0")
		}
		if s.NextAfter(n) != -1 || s.Contains(n) || s.Contains(-1) {
			t.Fatal("out-of-range probes must report absence")
		}
	})
}
