package ubiclique

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBipartiteShardByComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		nL, nR := 1+rng.Intn(12), 1+rng.Intn(12)
		b := NewBuilder(nL, nR)
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Float64() < 0.15 {
					_ = b.AddEdge(l, r, 0.1+0.9*rng.Float64())
				}
			}
		}
		g := b.Build()

		var gotEdges []Edge
		leftSeen := make([]bool, nL)
		rightSeen := make([]bool, nR)
		lastID := -1
		for sh := range g.ShardByComponent() {
			if sh.ID != lastID+1 {
				t.Fatalf("trial %d: shard IDs out of order: %d after %d", trial, sh.ID, lastID)
			}
			lastID = sh.ID
			if !sort.IntsAreSorted(sh.LeftNewToOld) || !sort.IntsAreSorted(sh.RightNewToOld) {
				t.Fatalf("trial %d shard %d: remap tables not ascending", trial, sh.ID)
			}
			if sh.G.NumLeft() != len(sh.LeftNewToOld) || sh.G.NumRight() != len(sh.RightNewToOld) {
				t.Fatalf("trial %d shard %d: side sizes disagree with remap tables", trial, sh.ID)
			}
			for _, l := range sh.LeftNewToOld {
				if leftSeen[l] {
					t.Fatalf("trial %d: left vertex %d in two shards", trial, l)
				}
				leftSeen[l] = true
			}
			for _, r := range sh.RightNewToOld {
				if rightSeen[r] {
					t.Fatalf("trial %d: right vertex %d in two shards", trial, r)
				}
				rightSeen[r] = true
			}
			for _, e := range sh.G.Edges() {
				gotEdges = append(gotEdges, Edge{
					L: sh.LeftNewToOld[e.L],
					R: sh.RightNewToOld[e.R],
					P: e.P,
				})
			}
		}
		for l, ok := range leftSeen {
			if !ok {
				t.Fatalf("trial %d: left vertex %d missing from all shards", trial, l)
			}
		}
		for r, ok := range rightSeen {
			if !ok {
				t.Fatalf("trial %d: right vertex %d missing from all shards", trial, r)
			}
		}
		sort.Slice(gotEdges, func(i, j int) bool {
			if gotEdges[i].L != gotEdges[j].L {
				return gotEdges[i].L < gotEdges[j].L
			}
			return gotEdges[i].R < gotEdges[j].R
		})
		want := g.Edges()
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(gotEdges, want) {
			t.Fatalf("trial %d: shard edges %v, want %v", trial, gotEdges, want)
		}
	}
}

func TestBipartiteShardIsolatedSides(t *testing.T) {
	// One real component plus an isolated left and an isolated right vertex:
	// the isolated ones become single-side shards.
	b := NewBuilder(2, 2)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	var shards []Shard
	for sh := range g.ShardByComponent() {
		shards = append(shards, sh)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	if !reflect.DeepEqual(shards[0].LeftNewToOld, []int{0}) || !reflect.DeepEqual(shards[0].RightNewToOld, []int{1}) {
		t.Fatalf("shard 0 sides: %v / %v", shards[0].LeftNewToOld, shards[0].RightNewToOld)
	}
	if len(shards[1].LeftNewToOld) != 1 || len(shards[1].RightNewToOld) != 0 {
		t.Fatalf("shard 1 should be the isolated left vertex, got %v / %v",
			shards[1].LeftNewToOld, shards[1].RightNewToOld)
	}
	if len(shards[2].LeftNewToOld) != 0 || len(shards[2].RightNewToOld) != 1 {
		t.Fatalf("shard 2 should be the isolated right vertex, got %v / %v",
			shards[2].LeftNewToOld, shards[2].RightNewToOld)
	}
}
