package gen

import (
	"math"
	"math/rand"
)

// TeamModel is an affiliation (bipartite) process: nTeams teams are formed,
// each drawing a team size from SizeDist and members from a heavy-tailed
// member-activity distribution (Zipf exponent ActivityExp). Collapsing the
// bipartite structure yields a co-membership multigraph: every pair inside a
// team gains one unit of collaboration count.
//
// This is the natural generative model for collaboration networks: teams are
// papers and members are authors, so each paper induces a clique among its
// authors — exactly the structure that makes ca-GrQc and DBLP clique-rich in
// the paper's evaluation.
type TeamModel struct {
	Members     int
	Teams       int
	ActivityExp float64   // Zipf exponent of member activity (≈1.0–1.6)
	SizeDist    []float64 // SizeDist[k] ∝ P(team size = k+1)
}

// CollabCounts runs the process and returns, for every co-membership pair,
// the number of shared teams.
func (m TeamModel) CollabCounts(rng *rand.Rand) map[[2]int]int {
	if m.Members < 2 || m.Teams < 1 {
		panic("gen: TeamModel requires at least 2 members and 1 team")
	}
	if len(m.SizeDist) == 0 {
		panic("gen: TeamModel requires a team size distribution")
	}
	weights := sampleZipfWeights(m.Members, m.ActivityExp)
	cw := cumulative(weights)
	sizeCum := cumulative(m.SizeDist)

	counts := make(map[[2]int]int)
	team := make([]int, 0, len(m.SizeDist)+1)
	inTeam := make(map[int]struct{}, len(m.SizeDist)+1)
	for t := 0; t < m.Teams; t++ {
		size := sampleIndex(rng, sizeCum) + 1
		if size > m.Members {
			size = m.Members
		}
		team = team[:0]
		for k := range inTeam {
			delete(inTeam, k)
		}
		for tries := 0; len(team) < size && tries < 50*size; tries++ {
			a := sampleIndex(rng, cw)
			if _, dup := inTeam[a]; dup {
				continue
			}
			inTeam[a] = struct{}{}
			team = append(team, a)
		}
		for i := 0; i < len(team); i++ {
			for j := i + 1; j < len(team); j++ {
				u, v := team[i], team[j]
				if u > v {
					u, v = v, u
				}
				counts[[2]int{u, v}]++
			}
		}
	}
	return counts
}

// CoauthorshipProb is the paper's DBLP edge probability: 1 − e^{−c/10} where
// c is the number of co-authored papers ("strength" of the collaboration).
func CoauthorshipProb(c int) float64 {
	return 1 - math.Exp(-float64(c)/10)
}

// CoMembershipGraph collapses the team process into an uncertain graph using
// prob(c) to map collaboration counts to edge probabilities. Members that
// never co-occur stay isolated vertices.
func CoMembershipGraph(m TeamModel, prob func(c int) float64, rng *rand.Rand) ([][2]int, []float64) {
	counts := m.CollabCounts(rng)
	edges := make([][2]int, 0, len(counts))
	for e := range counts {
		edges = append(edges, e)
	}
	sortEdges(edges)
	probs := make([]float64, len(edges))
	for i, e := range edges {
		probs[i] = clampProb(prob(counts[e]))
	}
	return edges, probs
}
