package det

// MoonMoser returns the Moon–Moser graph on n vertices: the complete
// multipartite graph whose parts have size 3 (with one part of size 1 or 2
// when n mod 3 ≠ 0). These graphs maximize the number of maximal cliques
// among all n-vertex deterministic graphs; the count is given by
// MoonMoserCount. The paper (§3) contrasts this 3^{n/3} deterministic bound
// with the larger C(n,⌊n/2⌋) bound for uncertain graphs.
func MoonMoser(n int) *Graph {
	b := NewBuilder(n)
	part := partSizes(n)
	// Assign vertices to parts consecutively; connect every cross-part pair.
	starts := make([]int, len(part)+1)
	for i, s := range part {
		starts[i+1] = starts[i] + s
	}
	for i := 0; i < len(part); i++ {
		for j := i + 1; j < len(part); j++ {
			for u := starts[i]; u < starts[i+1]; u++ {
				for v := starts[j]; v < starts[j+1]; v++ {
					// Cannot fail: distinct in-range vertices.
					_ = b.AddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// partSizes splits n into parts of size 3, following Moon and Moser:
// n ≡ 0 (mod 3): all parts of size 3;
// n ≡ 1 (mod 3): one part of size 4 replaced by... the extremal family uses
// either one part of 4 or two parts of 2; we use two parts of size 2, which
// achieves the same count 4·3^{(n-4)/3};
// n ≡ 2 (mod 3): one part of size 2.
func partSizes(n int) []int {
	var parts []int
	switch n % 3 {
	case 0:
		for i := 0; i < n/3; i++ {
			parts = append(parts, 3)
		}
	case 1:
		for i := 0; i < (n-4)/3; i++ {
			parts = append(parts, 3)
		}
		if n >= 4 {
			parts = append(parts, 2, 2)
		} else {
			parts = append(parts, 1)
		}
	case 2:
		for i := 0; i < (n-2)/3; i++ {
			parts = append(parts, 3)
		}
		parts = append(parts, 2)
	}
	return parts
}

// MoonMoserCount returns the Moon–Moser maximum number of maximal cliques in
// a deterministic graph on n ≥ 2 vertices: 3^{n/3} when 3 | n,
// 4·3^{(n-4)/3} when n ≡ 1 (mod 3), and 2·3^{(n-2)/3} when n ≡ 2 (mod 3).
func MoonMoserCount(n int) int {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	pow3 := func(k int) int {
		r := 1
		for i := 0; i < k; i++ {
			r *= 3
		}
		return r
	}
	switch n % 3 {
	case 0:
		return pow3(n / 3)
	case 1:
		return 4 * pow3((n-4)/3)
	default:
		return 2 * pow3((n-2)/3)
	}
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the path graph 0-1-2-…-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		_ = b.AddEdge(u, u+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n ≥ 3 vertices (for n < 3 it degenerates
// to a path).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		_ = b.AddEdge(u, u+1)
	}
	if n >= 3 {
		_ = b.AddEdge(n-1, 0)
	}
	return b.Build()
}
