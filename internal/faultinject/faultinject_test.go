package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDisarmedFireIsNoop: with no active plan, Fire must do nothing — this is
// the production fast path.
func TestDisarmedFireIsNoop(t *testing.T) {
	for s := Site(0); s < numSites; s++ {
		Fire(s) // must not panic or sleep
	}
}

// TestDeterministicFiring: the same seed and the same invocation count fire
// the same multiset of invocations.
func TestDeterministicFiring(t *testing.T) {
	const calls = 10_000
	run := func() int64 {
		p := NewPlan(42).Arm(PanicFrame, 7)
		restore := Activate(p)
		defer restore()
		for i := 0; i < calls; i++ {
			func() {
				defer func() { recover() }()
				Fire(PanicFrame)
			}()
		}
		return p.Fired(PanicFrame)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, same calls: fired %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatalf("rate 1/7 over %d calls fired nothing", calls)
	}
	// The hash-window rate should land in the right ballpark: 1/7 of 10k is
	// ~1429; accept a generous ±50%.
	if a < calls/14 || a > calls*3/14 {
		t.Fatalf("fired %d of %d at rate 1/7 — far from expected ~%d", a, calls, calls/7)
	}
}

// TestPanicCarriesInjectedPanic: armed panic sites panic with an
// InjectedPanic naming the site.
func TestPanicCarriesInjectedPanic(t *testing.T) {
	p := NewPlan(1).Arm(PanicVisitor, 1)
	restore := Activate(p)
	defer restore()
	var got any
	func() {
		defer func() { got = recover() }()
		for i := 0; i < 64; i++ { // rate 1/1 still hashes; a few tries guarantee a hit
			Fire(PanicVisitor)
		}
	}()
	ip, ok := got.(InjectedPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want InjectedPanic", got, got)
	}
	if ip.Site != PanicVisitor {
		t.Fatalf("InjectedPanic.Site = %v, want %v", ip.Site, PanicVisitor)
	}
	var err error = ip
	var as InjectedPanic
	if err.Error() == "" || !errors.As(err, &as) || as.Site != PanicVisitor {
		t.Fatalf("InjectedPanic should satisfy error and round-trip through errors.As")
	}
}

// TestDelaySiteSleeps: delay sites sleep instead of panicking.
func TestDelaySiteSleeps(t *testing.T) {
	p := NewPlan(3).ArmDelay(SlowPoll, 1, 5*time.Millisecond)
	restore := Activate(p)
	defer restore()
	start := time.Now()
	fired := int64(0)
	for i := 0; fired == 0 && i < 64; i++ {
		Fire(SlowPoll)
		fired = p.Fired(SlowPoll)
	}
	if fired == 0 {
		t.Fatalf("SlowPoll at rate 1/1 never fired")
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("fired delay site returned after %v, want ≥ 5ms", elapsed)
	}
}

// TestActivateRestores: restore reinstates the previous plan (normally nil).
func TestActivateRestores(t *testing.T) {
	p := NewPlan(9).Arm(PanicFrame, 1)
	restore := Activate(p)
	restore()
	Fire(PanicFrame) // must be disarmed again
	if active.Load() != nil {
		t.Fatalf("restore did not reinstate nil plan")
	}
}

// TestConcurrentFireAccounting: concurrent invocations keep calls and fired
// consistent (race detector validates the memory model side).
func TestConcurrentFireAccounting(t *testing.T) {
	p := NewPlan(7).ArmDelay(DelaySteal, 5, 0)
	restore := Activate(p)
	defer restore()
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Fire(DelaySteal)
			}
		}()
	}
	wg.Wait()
	if got := p.Calls(DelaySteal); got != goroutines*per {
		t.Fatalf("Calls = %d, want %d", got, goroutines*per)
	}
	if f := p.Fired(DelaySteal); f <= 0 || f > goroutines*per {
		t.Fatalf("Fired = %d out of range (0, %d]", f, goroutines*per)
	}
}
