package server

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cachedResult is one finished query response body, stored by the exact
// bytes of its results array so a repeat query is served byte-identical
// without re-marshaling (let alone re-mining).
type cachedResult struct {
	Status    string
	Truncated bool
	Count     int64
	Results   json.RawMessage
	Stats     json.RawMessage
}

// resultCache is a size-bounded LRU over canonical cache keys. Keys embed
// the snapshot epoch (see params.cacheKey), so an Apply that bumps a graph's
// epoch invalidates every cached result for it implicitly: the new epoch
// forms new keys, and the old entries age out of the LRU. Epochs come from a
// server-wide monotonic counter and are never reused — a re-loaded graph can
// never collide with a stale entry of its former self.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	val cachedResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key and whether it was present,
// promoting a hit to most-recently-used.
func (c *resultCache) get(key string) (cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return cachedResult{}, false
}

// put inserts (or refreshes) key, evicting from the least-recently-used end
// past capacity. A zero-capacity cache stores nothing.
func (c *resultCache) put(key string, val cachedResult) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheStats is the /stats view of the cache.
type cacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap, Evictions: c.evictions}
}
