package possible

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func triangleGraph(p01, p02, p12 float64) *uncertain.Graph {
	g, err := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: p01}, {U: 0, V: 2, P: p02}, {U: 1, V: 2, P: p12},
	})
	if err != nil {
		panic(err)
	}
	return g
}

func TestSampleWorldEdgeFrequencies(t *testing.T) {
	g := triangleGraph(0.2, 0.5, 0.9)
	rng := rand.New(rand.NewSource(1))
	const trials = 20000
	counts := map[[2]int]int{}
	for i := 0; i < trials; i++ {
		w := SampleWorld(g, rng)
		for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
			if w.HasEdge(e[0], e[1]) {
				counts[e]++
			}
		}
	}
	want := map[[2]int]float64{{0, 1}: 0.2, {0, 2}: 0.5, {1, 2}: 0.9}
	for e, p := range want {
		got := float64(counts[e]) / trials
		if math.Abs(got-p) > 0.02 {
			t.Errorf("edge %v frequency %v, want ≈ %v", e, got, p)
		}
	}
}

func TestSampleWorldExtremes(t *testing.T) {
	g, _ := uncertain.FromEdges(2, []uncertain.Edge{{U: 0, V: 1, P: 1}})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if !SampleWorld(g, rng).HasEdge(0, 1) {
			t.Fatal("p=1 edge missing from sampled world")
		}
	}
}

// Observation 1 validated against exhaustive world enumeration: the product
// formula equals the true probability mass of clique-containing worlds.
func TestObservation1ExactWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3) // ≤ 5 vertices → ≤ 10 edges → ≤ 1024 worlds
		b := uncertain.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.8 {
					_ = b.AddEdge(u, v, 0.1+0.9*rng.Float64())
				}
			}
		}
		g := b.Build()
		// Random subset.
		var set []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				set = append(set, v)
			}
		}
		exact, err := ExactCliqueProbByWorlds(g, set)
		if err != nil {
			t.Fatal(err)
		}
		formula := g.CliqueProb(set)
		if math.Abs(exact-formula) > 1e-9 {
			t.Fatalf("trial %d: worlds %v vs product %v for set %v (edges %v)",
				trial, exact, formula, set, g.Edges())
		}
	}
}

func TestExactCliqueProbRejectsLargeGraphs(t *testing.T) {
	b := uncertain.NewBuilder(30)
	for u := 0; u < 21; u++ {
		_ = b.AddEdge(u, u+1, 0.5)
	}
	if _, err := ExactCliqueProbByWorlds(b.Build(), []int{0, 1}); err == nil {
		t.Fatal("expected error for m > 20")
	}
}

func TestCliqueProbMCMatchesFormula(t *testing.T) {
	g := triangleGraph(0.8, 0.7, 0.6)
	rng := rand.New(rand.NewSource(4))
	set := []int{0, 1, 2}
	want := 0.8 * 0.7 * 0.6
	got := CliqueProbMC(g, set, 40000, rng)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("MC estimate %v, want ≈ %v", got, want)
	}
}

func TestCliqueProbMCNonClique(t *testing.T) {
	g, _ := uncertain.FromEdges(3, []uncertain.Edge{{U: 0, V: 1, P: 0.9}})
	rng := rand.New(rand.NewSource(5))
	if got := CliqueProbMC(g, []int{0, 1, 2}, 100, rng); got != 0 {
		t.Fatalf("MC on non-support-clique = %v, want 0", got)
	}
}

func TestCliqueProbMCPanicsOnZeroSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CliqueProbMC(triangleGraph(0.5, 0.5, 0.5), []int{0, 1}, 0, nil)
}

// Property: MC estimate converges to the product formula within the
// statistical confidence radius (quick-checked over random triangles).
func TestQuickMCWithinConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(a, b, c uint8) bool {
		p01 := 0.05 + 0.9*float64(a)/255
		p02 := 0.05 + 0.9*float64(b)/255
		p12 := 0.05 + 0.9*float64(c)/255
		g := triangleGraph(p01, p02, p12)
		const samples = 5000
		got := CliqueProbMC(g, []int{0, 1, 2}, samples, rng)
		want := p01 * p02 * p12
		// 5 standard deviations: essentially never fails honestly.
		return math.Abs(got-want) <= MCConfidenceRadius(samples, 5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMaximalCliques(t *testing.T) {
	// Single edge with probability p: world with edge has 1 maximal clique
	// ({0,1}); world without has 2 (the singletons).
	for _, p := range []float64{0.25, 0.5, 0.9} {
		g, _ := uncertain.FromEdges(2, []uncertain.Edge{{U: 0, V: 1, P: p}})
		got, err := ExpectedMaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		want := p*1 + (1-p)*2
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: expected cliques %v, want %v", p, got, want)
		}
	}
}

func TestMCConfidenceRadius(t *testing.T) {
	if !math.IsInf(MCConfidenceRadius(0, 2), 1) {
		t.Error("zero samples should give infinite radius")
	}
	r1, r2 := MCConfidenceRadius(100, 2), MCConfidenceRadius(10000, 2)
	if r2*10 != r1 {
		t.Errorf("radius should shrink as 1/√samples: %v vs %v", r1, r2)
	}
}

func TestExpectedMaximalCliquesMCMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		// Small graphs so the exact 2^m enumeration is available.
		g := randomGraphPossible(6, 0.5, rng)
		if g.NumEdges() > 18 {
			continue
		}
		exact, err := ExpectedMaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		mean, stderr, err := ExpectedMaximalCliquesMC(g, 40000, rng)
		if err != nil {
			t.Fatal(err)
		}
		// 5-sigma band plus a floor for the tiny-variance case.
		tol := 5*stderr + 0.05
		if math.Abs(mean-exact) > tol {
			t.Fatalf("trial %d: MC %v ± %v vs exact %v", trial, mean, stderr, exact)
		}
	}
}

func TestExpectedMaximalCliquesMCErrors(t *testing.T) {
	g := uncertain.NewBuilder(3).Build()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := ExpectedMaximalCliquesMC(g, 0, rng); err == nil {
		t.Fatal("zero samples accepted")
	}
	// Edgeless graph: every world has exactly n singleton maximal cliques…
	// except that Bron–Kerbosch counts isolated vertices as singletons.
	mean, stderr, err := ExpectedMaximalCliquesMC(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stderr != 0 {
		t.Fatalf("deterministic input produced stderr %v", stderr)
	}
	if mean != 3 {
		t.Fatalf("edgeless mean %v, want 3 singletons", mean)
	}
}

// randomGraphPossible builds a G(n, density) uncertain graph with uniform
// probabilities for the MC-vs-exact comparisons.
func randomGraphPossible(n int, density float64, rng *rand.Rand) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, 1-rng.Float64())
			}
		}
	}
	return b.Build()
}
