package possible

import (
	"fmt"
	"math/rand"

	"github.com/uncertain-graphs/mule/internal/det"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// This file implements subgraph reliability — the probability that a vertex
// set is CONNECTED in a sampled world. The paper's related-work section
// (§1.2) contrasts its problem with reliable-subgraph mining (Hintsanen &
// Toivonen; Jin et al.): a reliable subgraph need only be connected with
// high probability and may be sparse, whereas an α-clique must be fully
// connected with high probability. These estimators make that contrast
// measurable: for any vertex set, ConnectedProbMC ≥ CliqueProbMC, usually by
// a wide margin.

// ConnectedProbMC estimates the probability that set is connected in a
// world sampled from g, using the given number of Monte-Carlo samples. Only
// the edges induced by set are sampled.
func ConnectedProbMC(g *uncertain.Graph, set []int, samples int, rng *rand.Rand) float64 {
	if samples <= 0 {
		panic("possible: samples must be positive")
	}
	if len(set) <= 1 {
		return 1
	}
	sub, _, err := g.InducedSubgraph(set)
	if err != nil {
		panic(fmt.Sprintf("possible: %v", err))
	}
	edges := sub.Edges()
	all := make([]int, sub.NumVertices())
	for i := range all {
		all[i] = i
	}
	hits := 0
	for t := 0; t < samples; t++ {
		b := det.NewBuilder(sub.NumVertices())
		for _, e := range edges {
			if rng.Float64() < e.P {
				// Cannot fail: valid induced edge.
				_ = b.AddEdge(e.U, e.V)
			}
		}
		if b.Build().IsConnectedSubset(all) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// ExactConnectedProbByWorlds computes the connectivity reliability of set by
// enumerating every world of the induced subgraph. Exponential in the number
// of induced edges; limited to 20 of them.
func ExactConnectedProbByWorlds(g *uncertain.Graph, set []int) (float64, error) {
	if len(set) <= 1 {
		return 1, nil
	}
	sub, _, err := g.InducedSubgraph(set)
	if err != nil {
		return 0, err
	}
	edges := sub.Edges()
	m := len(edges)
	if m > 20 {
		return 0, fmt.Errorf("possible: exact reliability limited to 20 induced edges, got %d", m)
	}
	all := make([]int, sub.NumVertices())
	for i := range all {
		all[i] = i
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		pw := 1.0
		b := det.NewBuilder(sub.NumVertices())
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				pw *= e.P
				_ = b.AddEdge(e.U, e.V)
			} else {
				pw *= 1 - e.P
			}
		}
		if pw == 0 {
			continue
		}
		if b.Build().IsConnectedSubset(all) {
			total += pw
		}
	}
	return total, nil
}
