package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	mule "github.com/uncertain-graphs/mule"
)

// Snapshot is one immutable, epoch-stamped version of a named graph. Query
// runs resolve a snapshot once and use it for their whole lifetime: an
// Apply that commits while they run swaps the entry's snapshot pointer
// without touching theirs, so in-flight queries keep reading epoch N while
// new arrivals see N+1. Exactly one of Graph and Bipartite is non-nil.
type Snapshot struct {
	Epoch     uint64
	Graph     *mule.Graph
	Bipartite *mule.Bipartite
}

// Vertices returns the snapshot's vertex count (both sides for bipartite).
func (s *Snapshot) Vertices() int {
	if s.Bipartite != nil {
		return s.Bipartite.NumLeft() + s.Bipartite.NumRight()
	}
	return s.Graph.NumVertices()
}

// Edges returns the snapshot's edge count.
func (s *Snapshot) Edges() int {
	if s.Bipartite != nil {
		return s.Bipartite.NumEdges()
	}
	return s.Graph.NumEdges()
}

// Kind names the snapshot's graph kind for listings.
func (s *Snapshot) Kind() string {
	if s.Bipartite != nil {
		return "bipartite"
	}
	return "graph"
}

// entry is one named graph: an atomically swappable snapshot for readers
// plus the writer-side state — the incremental clique maintainer — guarded
// by mu. Writers (Apply) serialize on mu; readers never take it.
type entry struct {
	name string
	snap atomic.Pointer[Snapshot]

	mu sync.Mutex
	// maint is the incremental maintainer behind Apply, built lazily on the
	// first update batch (seeding it runs a full enumeration — load stays
	// cheap for graphs that are never mutated). Guarded by mu.
	maint *mule.Maintainer
}

// snapshot returns the entry's current snapshot; never nil.
func (e *entry) snapshot() *Snapshot { return e.snap.Load() }

// registry maps graph names to entries. Epochs for every entry come from
// the shared counter, so they are unique server-wide and monotonically
// increasing — a cache key (name, epoch, …) can never alias across loads,
// reloads, or updates.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	epoch   atomic.Uint64
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]*entry)}
}

func (r *registry) nextEpoch() uint64 { return r.epoch.Add(1) }

// install publishes a freshly loaded snapshot under name, replacing any
// previous entry wholesale (its maintainer included — the new graph starts
// unmaintained).
func (r *registry) install(name string, snap *Snapshot) {
	e := &entry{name: name}
	e.snap.Store(snap)
	r.mu.Lock()
	r.entries[name] = e
	r.mu.Unlock()
}

func (r *registry) get(name string) *entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

func (r *registry) delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// list returns the entries sorted by name.
func (r *registry) list() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// apply runs one edge-update batch through the entry's maintainer and, if
// anything committed, publishes a copy-on-write snapshot under a fresh
// epoch. The maintainer commits update-by-update, so on a mid-batch error
// (context fired, invalid update) the committed prefix is still consistent
// and still published; the returned epoch is the entry's current one either
// way. alpha seeds the maintainer on the entry's first batch and is ignored
// afterwards.
func (e *entry) apply(ctx context.Context, r *registry, batch []mule.EdgeUpdate, alpha float64) (mule.CliqueDiff, mule.MaintainerStats, uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snapshot()
	if snap.Bipartite != nil {
		return mule.CliqueDiff{}, mule.MaintainerStats{}, snap.Epoch,
			fmt.Errorf("graph %q is bipartite; updates apply to regular graphs only: %w", e.name, mule.ErrConfig)
	}
	if e.maint == nil {
		m, err := mule.NewMaintainerContext(ctx, snap.Graph, alpha)
		if err != nil {
			return mule.CliqueDiff{}, mule.MaintainerStats{}, snap.Epoch, err
		}
		e.maint = m
	}
	diff, stats, err := e.maint.Apply(ctx, batch)
	if stats.Updates > 0 || err == nil {
		// Copy-on-write: materialize the maintainer's graph into a fresh
		// immutable snapshot and swap it in under a new epoch. Readers that
		// resolved the old pointer keep it; the old snapshot is garbage once
		// they finish.
		next := &Snapshot{Epoch: r.nextEpoch(), Graph: e.maint.Graph()}
		e.snap.Store(next)
		return diff, stats, next.Epoch, err
	}
	return diff, stats, snap.Epoch, err
}
