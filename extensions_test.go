package mule_test

import (
	"context"
	"errors"
	"math"
	"testing"

	mule "github.com/uncertain-graphs/mule"
)

// The facade tests exercise the public extension API end to end; algorithmic
// depth lives in the internal packages' own suites.

func buildBipartite(t *testing.T) *mule.Bipartite {
	t.Helper()
	g, err := mule.BipartiteFromEdges(3, 3, []mule.BipartiteEdge{
		{L: 0, R: 0, P: 0.9}, {L: 0, R: 1, P: 0.9},
		{L: 1, R: 0, P: 0.9}, {L: 1, R: 1, P: 0.9},
		{L: 2, R: 2, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeBicliques(t *testing.T) {
	g := buildBipartite(t)
	bcs, err := mule.CollectBicliques(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// The 2x2 block has probability 0.9^4 ≈ 0.656 ≥ 0.6; the weak pendant
	// edge (0.5) fails.
	if len(bcs) != 1 {
		t.Fatalf("got %d bicliques, want 1: %v", len(bcs), bcs)
	}
	want := mule.Biclique{Left: []int{0, 1}, Right: []int{0, 1}, Prob: 0.9 * 0.9 * 0.9 * 0.9}
	got := bcs[0]
	if len(got.Left) != 2 || len(got.Right) != 2 ||
		math.Abs(got.Prob-want.Prob) > 1e-15 {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	stats, err := mule.EnumerateBicliquesWith(g, 0.3, nil, mule.BicliqueConfig{MinLeft: 2, MinRight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != 1 {
		t.Fatalf("MinLeft/MinRight run emitted %d, want 1", stats.Emitted)
	}
}

func TestFacadeBipartiteBuilder(t *testing.T) {
	b := mule.NewBipartiteBuilder(2, 2)
	if err := b.AddEdge(0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0, 0.5); err == nil {
		t.Fatal("duplicate edge accepted through the facade")
	}
	g := b.Build()
	if g.NumLeft() != 2 || g.NumRight() != 2 || g.NumEdges() != 1 {
		t.Fatalf("unexpected sizes: %d/%d/%d", g.NumLeft(), g.NumRight(), g.NumEdges())
	}
}

func buildTriangleWithPendant(t *testing.T) *mule.Graph {
	t.Helper()
	g, err := mule.FromEdges(5, []mule.Edge{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 1, V: 2, P: 1},
		{U: 2, V: 3, P: 0.6}, {U: 3, V: 4, P: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeQuasiCliques(t *testing.T) {
	g := buildTriangleWithPendant(t)
	sets, err := mule.CollectQuasiCliques(g, mule.QuasiConfig{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Fatalf("γ=1 mining = %v, want the certain triangle", sets)
	}
	if !mule.IsExpectedQuasiClique(g, []int{0, 1, 2}, 1) {
		t.Fatal("certain triangle rejected by the predicate")
	}
	p, err := mule.QuasiCliqueWorldProb(g, []int{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("world probability of certain triangle = %v, want 1", p)
	}
	est, err := mule.QuasiCliqueWorldProbMC(g, []int{0, 1, 2, 3}, 0.5, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mule.QuasiCliqueWorldProb(g, []int{0, 1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.02 {
		t.Fatalf("MC %v too far from exact %v", est, exact)
	}
}

func TestFacadeTruss(t *testing.T) {
	g := buildTriangleWithPendant(t)
	tr, err := mule.Truss(g, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Only the certain triangle supports every edge with probability 1; the
	// pendant edges have no triangles.
	if tr.NumEdges() != 3 {
		t.Fatalf("(3,0.9)-truss has %d edges, want 3", tr.NumEdges())
	}
	dec, err := mule.TrussDecompose(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != g.NumEdges() {
		t.Fatalf("decomposition covers %d of %d edges", len(dec), g.NumEdges())
	}
	p, err := mule.TrussSupportProb(g, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("support probability of a certain triangle edge = %v, want 1", p)
	}
}

func TestFacadeCores(t *testing.T) {
	g := buildTriangleWithPendant(t)
	dec, err := mule.CoreDecompose(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.CoreNumber) != g.NumVertices() {
		t.Fatalf("core decomposition covers %d of %d vertices", len(dec.CoreNumber), g.NumVertices())
	}
	core, err := mule.Core(g, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The certain triangle is a (2,η)-core for any η.
	if len(core) < 3 {
		t.Fatalf("(2,0.5)-core = %v, want at least the triangle", core)
	}
}

func TestFacadeMaintainer(t *testing.T) {
	g := buildTriangleWithPendant(t)
	m, err := mule.NewMaintainer(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCliques() == 0 {
		t.Fatal("maintainer seeded empty")
	}
	// Strengthen the pendant edge {3,4} so that it qualifies at α = 0.5.
	diff, err := m.SetEdge(3, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) == 0 {
		t.Fatalf("strengthening an edge added nothing: %+v", diff)
	}
	// The maintainer must agree with a fresh enumeration of its own graph.
	want, err := mule.Collect(m.Graph(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Cliques()
	if len(got) != len(want) {
		t.Fatalf("maintainer has %d cliques, fresh run %d", len(got), len(want))
	}
	if _, err := m.RemoveEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RemoveEdge(3, 4); err == nil {
		t.Fatal("double removal succeeded")
	}
}

func TestFacadeTopK(t *testing.T) {
	g := buildTriangleWithPendant(t)
	best, err := mule.TopKByProb(g, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 {
		t.Fatalf("top-2 returned %d cliques", len(best))
	}
	if best[0].Prob < best[1].Prob {
		t.Fatal("top-k not sorted by probability")
	}
	if best[0].Prob != 1 {
		t.Fatalf("best clique probability %v, want the certain triangle's 1", best[0].Prob)
	}
	largest, err := mule.TopKBySize(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(largest) != 1 || len(largest[0].Vertices) != 3 {
		t.Fatalf("largest clique = %+v, want the triangle", largest)
	}
}

func TestFacadeBicliquesContext(t *testing.T) {
	b := mule.NewBipartiteBuilder(3, 3)
	for l := 0; l < 3; l++ {
		for r := 0; r < 3; r++ {
			if err := b.AddEdge(l, r, 0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	// A live context enumerates normally.
	stats, err := mule.EnumerateBicliquesContext(context.Background(), g, 0.5, nil, mule.BicliqueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted == 0 {
		t.Fatal("no bicliques found")
	}
	// A dead context aborts with a wrapped context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mule.EnumerateBicliquesContext(ctx, g, 0.5, nil, mule.BicliqueConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context biclique run returned %v, want wrapped context.Canceled", err)
	}
}

func TestFacadeMaintainerContext(t *testing.T) {
	b := mule.NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	m, err := mule.NewMaintainerContext(context.Background(), g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCliques() == 0 {
		t.Fatal("maintainer seeded empty")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mule.NewMaintainerContext(ctx, g, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context seeding returned %v, want wrapped context.Canceled", err)
	}
}
