package mule

import (
	"context"
	"fmt"

	"github.com/uncertain-graphs/mule/internal/exec"
)

// Executor is a shared scheduling domain: a fixed pool of worker goroutines
// that runs the parallel search of every query submitted to it, plus the
// admission-control state that rations those queries per tenant. One
// process-wide Executor (see DefaultExecutor) serves the common case of many
// concurrent small queries — frames from different queries interleave on the
// same workers without stats bleed, and scratch memory (candidate-set arenas,
// bitset row mirrors) cycles through size-classed pools instead of being
// reallocated per run.
//
// Build private domains with NewExecutor when isolation matters (tests,
// latency-sensitive tenants). An Executor is safe for concurrent use; all
// methods may be called at any time, including while queries run.
type Executor struct {
	x *exec.Executor
}

// NewExecutor creates a private scheduling domain with the given number of
// pool workers (values below 1 are clamped to 1). Queries attach to it with
// WithExecutor. Call Close when no further queries will be submitted;
// abandoning an Executor without Close leaks its worker goroutines.
func NewExecutor(workers int) *Executor {
	return &Executor{x: exec.New(workers)}
}

// DefaultExecutor returns the process-wide Executor, created on first use
// with one worker per GOMAXPROCS. Queries that never call WithExecutor run
// here; limits installed on it apply to every such query that names a
// tenant. It is never closed.
func DefaultExecutor() *Executor {
	return &Executor{x: exec.Default()}
}

// Close stops the Executor's worker pool. Queries still in flight complete
// (their submitting goroutines finish the queued work themselves), but new
// parallel work is no longer picked up by pool workers, and queries queued
// for admission — or arriving after — fail with a wrapped ErrAdmission
// instead of waiting forever. Close is idempotent and safe to call
// concurrently. Closing the DefaultExecutor is a no-op contractually
// reserved — don't.
func (e *Executor) Close() { e.x.Close() }

// Limits caps one tenant's concurrent load on an Executor: MaxInFlight
// bounds admitted queries running at once, MaxQueued bounds how many
// over-cap queries may wait (FIFO) before rejection, and MaxBudget caps the
// sum of admitted queries' WithBudget node budgets. The zero value means
// unlimited. See Executor.SetTenantLimits.
type Limits = exec.Limits

// AdmissionStats is a snapshot of an Executor's admission accounting:
// admitted/rejected/queued counters — rejections broken out by cause
// (in-flight cap, full queue, budget cap, executor closed) — retry
// accounting, and per-tenant in-flight and high-water marks. See
// Executor.AdmissionStats.
type AdmissionStats = exec.AdmissionStats

// RetryPolicy retries admission rejections (ErrAdmission) with jittered
// exponential backoff before surfacing them. Attempt n sleeps
// min(MaxDelay, BaseDelay·2^(n−1)), dithered downward by Jitter ∈ [0, 1] —
// every delay stays within [BaseDelay, MaxDelay] — and context cancellation
// always wins over a pending sleep. The zero value (or MaxAttempts < 2)
// disables retrying. Attach it to a query with WithRetry.
type RetryPolicy = exec.RetryPolicy

// SetTenantLimits installs per-tenant admission limits, replacing any
// previous value for that tenant. Queries already queued for admission are
// re-evaluated as capacity frees up.
func (e *Executor) SetTenantLimits(tenant string, l Limits) { e.x.SetLimits(tenant, l) }

// SetDefaultLimits installs the limits applied to tenants without an
// explicit SetTenantLimits entry — including the empty tenant, which gates
// queries built with WithExecutor but no WithTenant.
func (e *Executor) SetDefaultLimits(l Limits) { e.x.SetDefaultLimits(l) }

// AdmissionStats snapshots the Executor's admission accounting.
func (e *Executor) AdmissionStats() AdmissionStats { return e.x.AdmissionStats() }

// WithExecutor attaches the query to ex: its parallel search runs on ex's
// worker pool and its runs pass through ex's admission control. A nil ex is
// rejected by the constructor with a wrapped ErrConfig. Without this option
// a query uses the process-wide DefaultExecutor — but only passes admission
// control when WithTenant names it (an unattached, untenanted query has
// nothing to account against).
func WithExecutor(ex *Executor) Option {
	return Option{"WithExecutor", kindAll, func(o *queryOptions) { o.ex = ex; o.exSet = true }}
}

// WithTenant tags the query's runs with a tenant ID for admission control:
// each run counts against the tenant's Limits on the query's Executor (the
// DefaultExecutor when WithExecutor is absent), and over-cap runs queue or
// fail with a wrapped ErrAdmission per the queue-or-reject policy. The empty
// ID is rejected by the constructor with a wrapped ErrConfig — it is the
// "no tenant" value and cannot be asked for explicitly.
func WithTenant(id string) Option {
	return Option{"WithTenant", kindAll, func(o *queryOptions) { o.tenant = id; o.tenantSet = true }}
}

// WithRetry retries this query's admission rejections under p instead of
// failing the run on the first ErrAdmission: each rejected attempt backs off
// (jittered exponential, see RetryPolicy) and re-enters admission, up to
// p.MaxAttempts total attempts. Exhaustion still surfaces a wrapped
// ErrAdmission; a context fired during a backoff sleep surfaces the context
// error. The constructor rejects malformed policies (negative fields, Jitter
// outside [0, 1], MaxDelay below BaseDelay) with a wrapped ErrConfig. The
// option only matters for queries subject to admission — one with neither
// WithExecutor nor WithTenant never sees a rejection.
func WithRetry(p RetryPolicy) Option {
	return Option{"WithRetry", kindAll, func(o *queryOptions) { o.retry = p; o.retrySet = true }}
}

// tenancy is the executor/tenant/retry triple every prepared query embeds;
// the zero value (no executor, no tenant) bypasses admission entirely.
type tenancy struct {
	ex     *Executor
	tenant string
	retry  RetryPolicy
}

// validateTenancy applies the constructor-time option contract shared by all
// seven query surfaces: WithExecutor(nil), WithTenant(""), and a malformed
// WithRetry policy are programming errors reported eagerly, not silent
// no-ops at run time.
func (o *queryOptions) validateTenancy() (tenancy, error) {
	if o.exSet && o.ex == nil {
		return tenancy{}, fmt.Errorf("mule: WithExecutor(nil): %w", ErrConfig)
	}
	if o.tenantSet && o.tenant == "" {
		return tenancy{}, fmt.Errorf("mule: WithTenant(\"\") names the empty tenant: %w", ErrConfig)
	}
	if o.retrySet {
		p := o.retry
		if p.MaxAttempts < 0 {
			return tenancy{}, fmt.Errorf("mule: WithRetry: negative MaxAttempts %d: %w", p.MaxAttempts, ErrConfig)
		}
		if p.BaseDelay < 0 {
			return tenancy{}, fmt.Errorf("mule: WithRetry: negative BaseDelay %v: %w", p.BaseDelay, ErrConfig)
		}
		if p.MaxDelay < 0 {
			return tenancy{}, fmt.Errorf("mule: WithRetry: negative MaxDelay %v: %w", p.MaxDelay, ErrConfig)
		}
		if p.MaxDelay > 0 && p.MaxDelay < p.BaseDelay {
			return tenancy{}, fmt.Errorf("mule: WithRetry: MaxDelay %v below BaseDelay %v: %w", p.MaxDelay, p.BaseDelay, ErrConfig)
		}
		if p.Jitter < 0 || p.Jitter > 1 {
			return tenancy{}, fmt.Errorf("mule: WithRetry: Jitter %v outside [0,1]: %w", p.Jitter, ErrConfig)
		}
	}
	return tenancy{ex: o.ex, tenant: o.tenant, retry: o.retry}, nil
}

// engineExec returns the executor the core engines should submit frames to,
// nil meaning "the process default, resolved lazily by the engine layer".
func (t tenancy) engineExec() *exec.Executor {
	if t.ex != nil {
		return t.ex.x
	}
	return nil
}

// admit gates one run through admission control, returning a release
// function to defer (never nil). Queries with neither an executor nor a
// tenant skip admission at zero cost; a tenant without an executor is
// accounted on the DefaultExecutor. On rejection the error wraps
// ErrAdmission (or the context error, for cancel-while-queued); a WithRetry
// policy retries rejections with backoff before giving up.
func (t tenancy) admit(ctx context.Context, budget int64) (func(), error) {
	if t.ex == nil && t.tenant == "" {
		return func() {}, nil
	}
	x := t.engineExec()
	if x == nil {
		x = exec.Default()
	}
	release, err := x.AdmitWithRetry(ctx, t.tenant, budget, t.retry)
	if err != nil {
		return nil, fmt.Errorf("mule: %w", err)
	}
	return release, nil
}
