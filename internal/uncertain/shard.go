package uncertain

import (
	"iter"
	"runtime"
	"sync"
)

// Shard is one support component extracted as a self-contained graph.
// Vertex i of G corresponds to NewToOld[i] in the parent graph; NewToOld is
// strictly ascending, so orderings that are canonical in the shard (sorted
// neighbor rows, lexicographic clique order) remain canonical after mapping
// back.
type Shard struct {
	// ID numbers components by their smallest member: shard 0 contains the
	// smallest vertex of the parent graph, shard 1 the smallest vertex not in
	// shard 0, and so on. Matches the ordering of Components().
	ID int
	// G is the component as a standalone graph with vertices relabeled to
	// 0..len(NewToOld)-1.
	G *Graph
	// NewToOld maps shard vertex IDs back to parent vertex IDs, ascending.
	NewToOld []int
}

// NumComponents counts support components without materializing membership
// lists.
func (g *Graph) NumComponents() int {
	if g == nil || g.n == 0 {
		return 0
	}
	_, count := g.componentLabels()
	return count
}

// dsu is a union-by-min disjoint-set forest: every root is the smallest
// member of its set. Union is commutative and associative, so per-worker
// forests built from disjoint edge chunks merge into exactly the forest a
// sequential scan produces.
type dsu struct{ parent []int32 }

func newDSU(n int) dsu {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return dsu{parent: p}
}

func (d dsu) find(v int) int {
	r := v
	for int(d.parent[r]) != r {
		r = int(d.parent[r])
	}
	for int(d.parent[v]) != v {
		d.parent[v], v = int32(r), int(d.parent[v])
	}
	return r
}

func (d dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	switch {
	case ra == rb:
	case ra < rb:
		d.parent[rb] = int32(ra)
	default:
		d.parent[ra] = int32(rb)
	}
}

// Parallel labeling kicks in only when the support graph is big enough to
// amortize the per-worker forest allocations and the single merge pass.
const (
	dsuParVertices = 1 << 14
	maxDSUWorkers  = 8
)

// componentForest unions every support edge into one forest. Large graphs
// split the CSR into edge-balanced vertex ranges, one private forest per
// worker, merged once at the end — the classic chunked union-find. Each
// worker only reads its own rows and writes its own forest, and union-by-min
// makes the merged result independent of scheduling, so the labels are
// bit-identical to the sequential scan.
func (g *Graph) componentForest() dsu {
	n := g.n
	workers := runtime.GOMAXPROCS(0)
	if workers > maxDSUWorkers {
		workers = maxDSUWorkers
	}
	if n < dsuParVertices || workers < 2 {
		d := newDSU(n)
		for v := 0; v < n; v++ {
			for i := g.offsets[v]; i < g.offsets[v+1]; i++ {
				if w := int(g.nbrs[i]); w > v {
					d.union(v, w)
				}
			}
		}
		return d
	}
	// Edge-balanced ranges: cut vertex boundaries so each worker scans
	// roughly the same number of CSR entries, not the same number of rows.
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	total := int64(g.offsets[n])
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		v := bounds[len(bounds)-1]
		for v < n && int64(g.offsets[v]) < target {
			v++
		}
		bounds = append(bounds, v)
	}
	bounds = append(bounds, n)

	forests := make([]dsu, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			d := newDSU(n)
			for v := lo; v < hi; v++ {
				for i := g.offsets[v]; i < g.offsets[v+1]; i++ {
					if x := int(g.nbrs[i]); x > v {
						d.union(v, x)
					}
				}
			}
			forests[w] = d
		}(w, bounds[w], bounds[w+1])
	}
	wg.Wait()
	master := forests[0]
	for _, f := range forests[1:] {
		for v := 0; v < n; v++ {
			if p := int(f.parent[v]); p != v {
				master.union(v, p)
			}
		}
	}
	return master
}

// componentLabels labels every vertex with its component ID (components
// numbered by smallest member, matching Components()) and returns the label
// array and component count. The roots of the union-by-min forest are each
// component's smallest member, so assigning IDs in ascending vertex order
// reproduces the smallest-member numbering exactly.
func (g *Graph) componentLabels() ([]int32, int) {
	forest := g.componentForest()
	comp := make([]int32, g.n)
	count := 0
	for v := 0; v < g.n; v++ {
		if r := forest.find(v); r == v {
			comp[v] = int32(count)
			count++
		} else {
			comp[v] = comp[r] // r < v: union-by-min roots are minimal
		}
	}
	return comp, count
}

// ShardByComponent yields one Shard per support component, in ID order
// (smallest member first), building each component's CSR lazily as the
// iterator advances. Unlike Components(), at most one shard's subgraph is
// materialized per step, so a consumer that releases each shard after mining
// it holds the largest component — not the whole graph — beyond the parent
// CSR. A nil or empty graph yields nothing.
func (g *Graph) ShardByComponent() iter.Seq[Shard] {
	return func(yield func(Shard) bool) {
		if g == nil || g.n == 0 {
			return
		}
		comp, count := g.componentLabels()

		// Counting-sort vertices by (component, ascending ID): sizes →
		// starts → scatter. Scanning v ascending keeps each component's
		// member list ascending, which makes the remap below monotone.
		starts := make([]int32, count+1)
		for _, c := range comp {
			starts[c+1]++
		}
		for i := 0; i < count; i++ {
			starts[i+1] += starts[i]
		}
		order := make([]int32, g.n)
		fill := make([]int32, count)
		for v := 0; v < g.n; v++ {
			c := comp[v]
			order[starts[c]+fill[c]] = int32(v)
			fill[c]++
		}

		oldToNew := make([]int32, g.n)
		for id := 0; id < count; id++ {
			members := order[starts[id]:starts[id+1]]
			offsets := make([]int32, len(members)+1)
			for i, ov := range members {
				oldToNew[ov] = int32(i)
				offsets[i+1] = offsets[i] + (g.offsets[ov+1] - g.offsets[ov])
			}
			nbrs := make([]int32, offsets[len(members)])
			probs := make([]float64, offsets[len(members)])
			w := 0
			for _, ov := range members {
				for i := g.offsets[ov]; i < g.offsets[ov+1]; i++ {
					// Neighbors stay within the component, and the monotone
					// remap keeps each row sorted.
					nbrs[w] = oldToNew[g.nbrs[i]]
					probs[w] = g.probs[i]
					w++
				}
			}
			newToOld := make([]int, len(members))
			for i, ov := range members {
				newToOld[i] = int(ov)
			}
			sub := &Graph{n: len(members), offsets: offsets, nbrs: nbrs, probs: probs}
			if !yield(Shard{ID: id, G: sub, NewToOld: newToOld}) {
				return
			}
		}
	}
}
