package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Typed sentinel errors for the enumeration entry points. Callers match them
// with errors.Is; the concrete errors returned wrap these with the offending
// values. Context aborts are reported by wrapping context.Canceled or
// context.DeadlineExceeded directly, so errors.Is(err, context.Canceled)
// works without a package-specific sentinel.
var (
	// ErrNilGraph reports a nil *uncertain.Graph argument.
	ErrNilGraph = errors.New("nil graph")
	// ErrAlphaRange reports a probability threshold outside (0, 1].
	ErrAlphaRange = errors.New("alpha outside (0,1]")
	// ErrConfig reports an invalid Config field (negative sizes or counts,
	// unknown ordering or parallel mode).
	ErrConfig = errors.New("invalid config")
	// ErrStopped reports that the visitor ended the enumeration early by
	// returning false. The core entry points never return it — an early stop
	// is a successful run with Stats.Status == StatusStopped — but the query
	// layer above uses it to distinguish truncated streams.
	ErrStopped = errors.New("enumeration stopped by visitor")
	// ErrBudget reports that the run exhausted its Config.Budget of search
	// nodes before completing.
	ErrBudget = errors.New("search budget exhausted")
)

// RunStatus is the terminal state of an enumeration run, recorded in
// Stats.Status.
type RunStatus int

const (
	// StatusComplete: the search space was exhausted; the output is the full
	// α-maximal clique set (subject to MinSize).
	StatusComplete RunStatus = iota
	// StatusStopped: the visitor returned false; the output is a prefix.
	StatusStopped
	// StatusCanceled: the context was canceled mid-run.
	StatusCanceled
	// StatusDeadline: the context deadline expired mid-run.
	StatusDeadline
	// StatusBudget: the Config.Budget node budget ran out mid-run.
	StatusBudget
)

// String names the status for logs and error messages.
func (s RunStatus) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusStopped:
		return "stopped"
	case StatusCanceled:
		return "canceled"
	case StatusDeadline:
		return "deadline"
	case StatusBudget:
		return "budget"
	default:
		return fmt.Sprintf("RunStatus(%d)", int(s))
	}
}

// abortCheckInterval is how many search-tree nodes an enumerator expands
// between context/budget polls. The poll itself is a channel-free ctx.Err()
// call plus one shared atomic add, so the amortized per-node cost is a
// single local counter decrement — no per-node atomics (the engines' hard
// latency bound is therefore one interval's worth of nodes, a few
// microseconds of work).
const abortCheckInterval = 1024

// runControl is the per-run shared state that lets every engine observe
// cancellation, deadlines, node budgets, and visitor early-stop. One
// instance exists per EnumerateContext call; the serial driver and every
// parallel worker hold a pointer to it.
type runControl struct {
	ctx    context.Context // nil when the context can never be canceled
	budget int64           // max search nodes; 0 = unlimited
	used   atomic.Int64    // nodes charged against the budget, in batches
	stop   atomic.Bool     // latched: unwind everything (abort or early stop)
	cause  atomic.Pointer[error]
}

// newRunControl builds the control block. A context that can never fire
// (Background, TODO, pure value contexts) is dropped so the poll reduces to
// a nil check.
func newRunControl(ctx context.Context, budget int64) *runControl {
	c := &runControl{budget: budget}
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
	}
	return c
}

// abort latches err as the run's abort cause (first caller wins) and raises
// the stop flag.
func (c *runControl) abort(err error) {
	c.cause.CompareAndSwap(nil, &err)
	c.stop.Store(true)
}

// abortErr returns the latched abort cause, nil if the run was not aborted.
func (c *runControl) abortErr() error {
	if p := c.cause.Load(); p != nil {
		return *p
	}
	return nil
}

// poll checks the context and the node budget, charging nodes spent search
// nodes against the budget. It returns true when the run must unwind. The
// enumerators call it every abortCheckInterval nodes.
func (c *runControl) poll(nodes int64) bool {
	if c.stop.Load() {
		return true
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			c.abort(err)
			return true
		}
	}
	if c.budget > 0 && c.used.Add(nodes) >= c.budget {
		c.abort(ErrBudget)
		return true
	}
	return false
}

// finish translates the control's terminal state into the run's status and
// returned error. A visitor early-stop is a successful run (the legacy
// callback contract); aborts surface as wrapped sentinel errors.
func (c *runControl) finish(stats *Stats, visitorStopped bool) error {
	err := c.abortErr()
	switch {
	case err == nil && !visitorStopped:
		stats.Status = StatusComplete
		return nil
	case err == nil:
		stats.Status = StatusStopped
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		stats.Status = StatusDeadline
	case errors.Is(err, ErrBudget):
		stats.Status = StatusBudget
	default:
		stats.Status = StatusCanceled
	}
	return fmt.Errorf("core: enumeration aborted after %d search calls: %w", stats.Calls, err)
}
