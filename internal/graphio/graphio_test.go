package graphio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func randomGraph(n int, density float64, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := uncertain.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, 1-rng.Float64())
			}
		}
	}
	return b.Build()
}

func graphsEqual(a, b *uncertain.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(40, 0.3, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("text round trip changed the graph")
	}
}

func TestTextRoundTripPreservesProbabilitiesExactly(t *testing.T) {
	// 17 significant digits round-trip any float64 exactly.
	g := randomGraph(20, 0.5, 2)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := g.Edges(), got.Edges()
	for i := range ae {
		if ae[i].P != be[i].P {
			t.Fatalf("probability changed: %v → %v", ae[i].P, be[i].P)
		}
	}
}

func TestTextIsolatedVertices(t *testing.T) {
	b := uncertain.NewBuilder(5)
	_ = b.AddEdge(0, 1, 0.5)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 5 {
		t.Fatalf("isolated vertices lost: n = %d", got.NumVertices())
	}
}

func TestReadTextCommentsAndBlankLines(t *testing.T) {
	in := `# a comment

vertices 3
# another
0 1 0.5
1 2 0.25
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadTextInfersVertexCount(t *testing.T) {
	g, err := ReadText(strings.NewReader("0 7 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Fatalf("inferred n = %d, want 8", g.NumVertices())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"short edge line":        "0 1\n",
		"bad vertex":             "x 1 0.5\n",
		"bad second vertex":      "1 y 0.5\n",
		"bad probability":        "0 1 zebra\n",
		"bad directive":          "vertices\n",
		"negative count":         "vertices -1\n",
		"endpoint out of range":  "vertices 2\n0 5 0.5\n",
		"probability out of rng": "0 1 1.5\n",
		"self loop":              "1 1 0.5\n",
		"duplicate edge":         "0 1 0.5\n1 0 0.5\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(60, 0.2, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file"))); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("UG"))); err == nil {
		t.Fatal("truncated magic should fail")
	}
	// Valid magic, bogus version.
	var buf bytes.Buffer
	buf.WriteString("UGRF")
	buf.Write([]byte{9, 0, 0, 0})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("bad version should fail")
	}
}

func TestBinaryTruncatedEdges(t *testing.T) {
	g := randomGraph(10, 0.5, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestSaveLoadFileBothFormats(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(30, 0.3, 5)
	for _, name := range []string{"g.ug", "g.ugb"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("%s: file round trip changed the graph", name)
		}
	}
}

func TestLoadFileSniffsBinaryWithWrongExtension(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(15, 0.4, 6)
	path := filepath.Join(dir, "mislabeled.ug")
	f, err := openForWrite(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("sniffed load changed the graph")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ug")); err == nil {
		t.Fatal("missing file should fail")
	}
}

// openForWrite is a tiny indirection so tests can create files without
// importing os at every call site.
func openForWrite(path string) (*os.File, error) { return os.Create(path) }
