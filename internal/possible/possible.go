// Package possible implements the possible-world semantics of uncertain
// graphs: an uncertain graph G = (V, E, p) is a distribution over the 2^m
// subgraphs of (V, E), where each edge appears independently with its
// probability. The package provides world sampling, Monte-Carlo estimation
// of clique probabilities, and exact expectation by exhaustive world
// enumeration for tiny graphs — the independent ground truth against which
// Observation 1 (clq(C) = ∏ p(e)) and the enumerators' reported
// probabilities are validated.
package possible

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/uncertain-graphs/mule/internal/det"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// SampleWorld draws one possible world: a deterministic graph containing
// each edge e of g independently with probability p(e).
func SampleWorld(g *uncertain.Graph, rng *rand.Rand) *det.Graph {
	b := det.NewBuilder(g.NumVertices())
	for _, e := range g.Edges() {
		if rng.Float64() < e.P {
			// Cannot fail: edges come from a valid uncertain graph.
			_ = b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// CliqueProbMC estimates clq(set, G) as the fraction of sampled worlds in
// which set forms a clique. Only the C(|set|,2) induced edges are sampled,
// so each trial costs O(|set|²).
func CliqueProbMC(g *uncertain.Graph, set []int, samples int, rng *rand.Rand) float64 {
	if samples <= 0 {
		panic("possible: samples must be positive")
	}
	// Collect induced edge probabilities once. A missing support edge means
	// the set can never be a clique.
	var probs []float64
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			p, ok := g.Prob(set[i], set[j])
			if !ok {
				return 0
			}
			probs = append(probs, p)
		}
	}
	hits := 0
trials:
	for t := 0; t < samples; t++ {
		for _, p := range probs {
			if rng.Float64() >= p {
				continue trials
			}
		}
		hits++
	}
	return float64(hits) / float64(samples)
}

// ExactCliqueProbByWorlds computes clq(set, G) by enumerating every possible
// world of the whole graph and summing the probability mass of worlds where
// set is a clique. Exponential in m; it exists to validate Observation 1
// without assuming edge independence is exploited correctly elsewhere.
// Graphs with more than 20 edges are rejected.
func ExactCliqueProbByWorlds(g *uncertain.Graph, set []int) (float64, error) {
	edges := g.Edges()
	m := len(edges)
	if m > 20 {
		return 0, fmt.Errorf("possible: exact world enumeration limited to m <= 20, got %d", m)
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		pw := 1.0
		b := det.NewBuilder(g.NumVertices())
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				pw *= e.P
				_ = b.AddEdge(e.U, e.V)
			} else {
				pw *= 1 - e.P
			}
		}
		if pw == 0 {
			continue
		}
		if b.Build().IsClique(set) {
			total += pw
		}
	}
	return total, nil
}

// ExpectedMaximalCliques computes, by exhaustive world enumeration, the
// expected number of deterministic maximal cliques in a sampled world.
// This quantity is NOT the number of α-maximal cliques — the package
// documents the distinction the paper's problem definition draws — but it is
// useful as a workload statistic. Limited to m ≤ 18.
func ExpectedMaximalCliques(g *uncertain.Graph) (float64, error) {
	edges := g.Edges()
	m := len(edges)
	if m > 18 {
		return 0, fmt.Errorf("possible: world enumeration limited to m <= 18, got %d", m)
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		pw := 1.0
		b := det.NewBuilder(g.NumVertices())
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				pw *= e.P
				_ = b.AddEdge(e.U, e.V)
			} else {
				pw *= 1 - e.P
			}
		}
		if pw == 0 {
			continue
		}
		total += pw * float64(det.CountMaximalCliques(b.Build()))
	}
	return total, nil
}

// ExpectedMaximalCliquesMC estimates the expected number of deterministic
// maximal cliques in a sampled world by Monte-Carlo: it samples `samples`
// worlds and averages their Bron–Kerbosch maximal-clique counts. Unlike
// ExpectedMaximalCliques it has no edge-count limit, at the price of
// sampling error (the per-world counts can have heavy tails on dense
// graphs, so the returned standard error should be inspected).
func ExpectedMaximalCliquesMC(g *uncertain.Graph, samples int, rng *rand.Rand) (mean, stderr float64, err error) {
	if samples <= 0 {
		return 0, 0, fmt.Errorf("possible: sample count %d not positive", samples)
	}
	sum, sumSq := 0.0, 0.0
	for s := 0; s < samples; s++ {
		world := SampleWorld(g, rng)
		c := float64(det.CountMaximalCliques(world))
		sum += c
		sumSq += c * c
	}
	mean = sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr = math.Sqrt(variance / float64(samples))
	return mean, stderr, nil
}

// MCConfidenceRadius returns the half-width of a normal-approximation
// confidence interval for a Monte-Carlo probability estimate with the given
// sample count at z standard deviations (z ≈ 1.96 for 95%). Worst case
// (p = 1/2) is assumed.
func MCConfidenceRadius(samples int, z float64) float64 {
	if samples <= 0 {
		return math.Inf(1)
	}
	return z * 0.5 / math.Sqrt(float64(samples))
}
