package mule

import (
	"context"
	"fmt"
	"iter"

	"github.com/uncertain-graphs/mule/internal/udensest"
)

// DenseSubgraph is one scored member of a densest query's candidate family:
// a vertex set (sorted ascending, caller-owned), its expected density (sum
// of internal edge probabilities over the vertex count), and the exact
// probability — under the independent-edge model — that its realized
// internal edge count reaches ⌈d̂·|S|⌉ edges, where d̂ is the family's best
// expected density. The head of a Collect (or the first Stream element) is
// the most probable densest subgraph.
type DenseSubgraph = udensest.Candidate

// DensestVisitor receives one scored candidate at a time, best first;
// returning false stops the report loop.
type DensestVisitor = udensest.Visitor

// DensestStats reports the work performed by a densest-subgraph run.
type DensestStats = udensest.Stats

// DensestQuery is a prepared most-probable densest-subgraph mining run on
// one uncertain graph, following Saha et al. (arXiv 2212.08820): a greedy
// min-expected-degree peeling builds the candidate prefix family per
// support component (the family's best member 2-approximates the maximum
// expected density), then every candidate gets an exact Poisson-binomial
// probability score. Build it with NewDensestQuery; it is immutable after
// construction and safe for concurrent use.
//
// Like quasi-clique mining, the answer needs global knowledge (the score
// threshold is a whole-family property), so the mining runs to completion
// before anything is reported; Run, Stream, and the WithLimit bound apply
// to the report loop over the finished, canonically ordered family —
// cancellation and WithBudget still abort the mining itself mid-peel.
type DensestQuery struct {
	g         *Graph
	cfg       udensest.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewDensestQuery prepares a most-probable densest-subgraph mining run on
// g. It validates eagerly: a nil graph wraps ErrNilGraph, an invalid option
// combination wraps ErrConfig. Applicable options: WithLimit, WithBudget,
// plus the shared execution options (WithShards/WithAutoShard, WithTenant,
// WithExecutor, WithRetry, WithStallTimeout).
func NewDensestQuery(g *Graph, opts ...Option) (*DensestQuery, error) {
	o, err := applyOptions(kindDensest, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	q, err := newDensestQuery(g, udensest.Config{Budget: o.cfg.Budget, Stall: o.stall}, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newDensestQuery is the single constructor behind NewDensestQuery; all
// invariants are enforced here.
func newDensestQuery(g *Graph, cfg udensest.Config, limit int64) (*DensestQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := udensest.Validate(g, cfg); err != nil {
		return nil, err
	}
	return &DensestQuery{g: g, cfg: cfg, limit: limit}, nil
}

// run executes the mining under the WithLimit bound.
func (q *DensestQuery) run(ctx context.Context, visit DensestVisitor) (stats DensestStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return DensestStats{Status: StatusFailed}, false, err
	}
	defer release()
	stats, err = udensest.RunContext(ctx, q.g, q.cfg, limitVisitor(visit, q.limit, &userStopped))
	return stats, userStopped, err
}

// Run mines the candidate family and reports each scored candidate to
// visit, best first (visit may be nil to only count; see
// DensestStats.Emitted). The error contract matches Query.Run: wrapped
// context/budget causes for aborts, ErrStopped when visit returned false,
// nil for complete runs and WithLimit truncation.
func (q *DensestQuery) Run(ctx context.Context, visit DensestVisitor) (DensestStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect materializes the scored candidate family in canonical order:
// descending Probability, ties by descending ExpectedDensity, then smaller
// size, then lexicographic vertices. The first element is the most probable
// densest subgraph.
func (q *DensestQuery) Collect(ctx context.Context) ([]DenseSubgraph, error) {
	var out []DenseSubgraph
	_, _, err := q.run(ctx, func(c DenseSubgraph) bool {
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of candidates the query reports, without
// materializing them (subject to WithLimit, like every run method).
func (q *DensestQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the scored candidates as a range-over-func stream with the
// same contract as Query.Cliques: each candidate is yielded with a nil
// error, an aborted run ends with one final (DenseSubgraph{}, err) pair,
// and breaking the loop stops the report immediately with nothing leaked.
// Because the score threshold needs the whole family, the mining runs to
// completion when the first element is requested; candidates then stream
// best first.
func (q *DensestQuery) Stream(ctx context.Context) iter.Seq2[DenseSubgraph, error] {
	return streamOf(func(emit func(DenseSubgraph) bool) error {
		_, _, err := q.run(ctx, emit)
		return err
	})
}
