package mule_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/faultinject"
)

// TestFaultStorm is the PR's fault-containment acceptance test: the mixed
// multi-tenant soak re-run under an armed fault-injection plan. Run with
// -race. Deterministic visitor panics hit every seventh query, and the plan
// sprays injected faults — frame panics, visitor panics, checkout failures,
// steal delays, slow polls — across everything else. The contract:
//
//   - a query that finishes without error is exact: its results (and, for
//     the parallel clique cell, its stats) match the serial baseline built
//     before the plan was armed;
//   - a query killed by a fault fails with the typed sentinel — a wrapped
//     ErrPanic carrying a *PanicError whose value is either the injected
//     marker or the deliberate probe value — and nothing else;
//   - every seventh query (the deliberate probe) observes exactly that
//     contract, every time;
//
// and afterwards the process is clean: no leaked goroutines, pooled-arena
// conservation across all panic unwinds, no admission rejections, and no
// tenant capacity stuck in flight.
func TestFaultStorm(t *testing.T) {
	// Baselines and warmup run BEFORE the plan activates: ground truth and
	// the persistent pool workers must come from a fault-free world.
	bases := buildSoakBaselines(t)

	ex := mule.NewExecutor(8)
	const tenants = 8
	for i := 0; i < tenants; i++ {
		ex.SetTenantLimits("s"+strconv.Itoa(i), mule.Limits{MaxInFlight: 4, MaxQueued: 64})
	}
	{
		q, err := mule.NewQuery(bases[0].g, bases[0].alpha,
			mule.WithWorkers(4), mule.WithExecutor(ex))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Collect(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	checkouts0, returns0 := core.PoolCounters()
	baseGoroutines := runtime.NumGoroutine()

	total := 560
	workers := 32
	if testing.Short() {
		total = 140
		workers = 8
	}

	// The storm plan: panic sites sparse enough that most queries survive,
	// delay sites frequent enough to widen every race window they guard.
	plan := faultinject.NewPlan(0x5707).
		Arm(faultinject.PanicFrame, 900).
		Arm(faultinject.PanicVisitor, 700).
		Arm(faultinject.FailCheckout, 501).
		ArmDelay(faultinject.DelaySteal, 37, 100*time.Microsecond).
		ArmDelay(faultinject.SlowPoll, 211, 200*time.Microsecond)
	restore := faultinject.Activate(plan)
	defer restore()

	// A light retry policy on every query routes admission through the
	// retry path under storm load (no rejections are expected, so it must
	// behave exactly like plain admission).
	retry := mule.WithRetry(mule.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Jitter:      0.5,
	})

	var injected, probes atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				b := &bases[i%len(bases)]
				opts := []mule.Option{
					mule.WithExecutor(ex),
					mule.WithTenant("s" + strconv.Itoa(i%tenants)),
					retry,
				}
				var err error
				if i%7 == 0 {
					probes.Add(1)
					err = soakPanicProbe(ctx, b, opts...)
				} else {
					switch i % 5 {
					case 0:
						err = soakCliqueCollect(ctx, b, opts...)
					case 1:
						err = soakCliqueParallel(ctx, b, opts...)
					case 2:
						err = soakBrokenStream(ctx, b, opts...)
					case 3:
						err = soakTruss(ctx, b, opts...)
					case 4:
						err = soakCore(ctx, b, opts...)
					}
					// An injected fault killing a non-probe query is the
					// storm working as designed — provided it surfaces as
					// the typed sentinel with the injected marker value.
					if err != nil {
						var pe *mule.PanicError
						if errors.Is(err, mule.ErrPanic) && errors.As(err, &pe) {
							if _, ok := pe.Value.(faultinject.InjectedPanic); ok {
								injected.Add(1)
								err = nil
							}
						}
					}
				}
				if err != nil {
					select {
					case errc <- fmt.Errorf("query %d: %w", i, err):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	if got, want := probes.Load(), int64((total+6)/7); got != want {
		t.Fatalf("ran %d deliberate panic probes, want %d", got, want)
	}
	t.Logf("storm: %d injected-fault query kills; site fires: frame=%d visitor=%d checkout=%d steal-delay=%d slow-poll=%d",
		injected.Load(),
		plan.Fired(faultinject.PanicFrame), plan.Fired(faultinject.PanicVisitor),
		plan.Fired(faultinject.FailCheckout), plan.Fired(faultinject.DelaySteal),
		plan.Fired(faultinject.SlowPoll))

	// Every unconditional site must at least have been reached (DelaySteal
	// is workload-dependent: these micro-graphs often finish frames faster
	// than thieves arrive), and SlowPoll fires often enough at this rate to
	// prove the plan was genuinely armed.
	for _, s := range []faultinject.Site{
		faultinject.PanicFrame, faultinject.PanicVisitor, faultinject.FailCheckout,
		faultinject.SlowPoll,
	} {
		if plan.Calls(s) == 0 {
			t.Errorf("site %v was never reached by the storm", s)
		}
	}
	if plan.Fired(faultinject.SlowPoll) == 0 {
		t.Error("SlowPoll never fired; the storm ran effectively disarmed")
	}

	// The process survived the storm intact: no goroutine outlives its
	// query, every pooled checkout was returned on every unwind path, and
	// no tenant capacity is stuck.
	waitNoExtraGoroutines(t, baseGoroutines)
	checkouts1, returns1 := core.PoolCounters()
	if d1, d2 := checkouts1-checkouts0, returns1-returns0; d1 != d2 {
		t.Fatalf("pool conservation under faults: %d checkouts vs %d returns", d1, d2)
	}
	s := ex.AdmissionStats()
	if s.Rejected != 0 {
		t.Errorf("%d rejections despite queue capacity", s.Rejected)
	}
	if s.RetryExhausted != 0 {
		t.Errorf("%d retry exhaustions despite queue capacity", s.RetryExhausted)
	}
	for i := 0; i < tenants; i++ {
		if id := "s" + strconv.Itoa(i); s.InFlight[id] != 0 {
			t.Errorf("tenant %s: %d still in flight after the storm", id, s.InFlight[id])
		}
	}
	if s.Admitted < int64(total) {
		t.Errorf("admitted %d < %d queries", s.Admitted, total)
	}
	ex.Close()
}
