package bench

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
)

// TestSkewedWorkloadShape pins the property the parallel-scaling experiment
// depends on: the skewed hub workload concentrates nearly all α-maximal
// cliques in the top-level branch of vertex 0, the shape that starves the
// legacy fan-out.
func TestSkewedWorkloadShape(t *testing.T) {
	g := SkewedCliqueGraph(Config{Quick: true, Seed: 1}).G
	total, branch0 := 0, 0
	_, err := core.Enumerate(g, SkewedAlpha, func(c []int, _ float64) bool {
		total++
		if c[0] == 0 {
			branch0++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("skewed workload produced no cliques")
	}
	if share := float64(branch0) / float64(total); share < 0.9 {
		t.Fatalf("top-level branch 0 owns only %.1f%% of %d cliques; workload is not skewed",
			100*share, total)
	}
}

// TestParallelEnginesMatchSerialOnSkewed checks both engines emit the
// identical clique set as serial on the scaling workload, regardless of the
// machine's core count.
func TestParallelEnginesMatchSerialOnSkewed(t *testing.T) {
	g := SkewedCliqueGraph(Config{Quick: true, Seed: 1}).G
	want, _, err := core.CollectWith(g, SkewedAlpha, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Workers: 4},
		{Workers: 4, StealGranularity: 1},
		{Workers: 4, Parallel: core.ParallelTopLevel},
	} {
		got, _, err := core.CollectWith(g, SkewedAlpha, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("config %+v diverged from serial (%d vs %d cliques)", cfg, len(got), len(want))
		}
	}
}

// TestWorkStealingSpeedup is the acceptance benchmark: on a machine with at
// least 4 cores, the work-stealing engine must be ≥2× faster than serial on
// the skewed workload and strictly faster than the legacy top-level
// fan-out, with identical output. Skipped on smaller machines, where no
// engine can demonstrate a speedup. The measurement itself lives in
// MeasureSpeedup, the same code path the kernel sweep uses to record the
// `speedup` block of a BENCH_kernel.json row — the gate and the trajectory
// can never drift apart.
func TestWorkStealingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup benchmark in -short mode")
	}
	if SpeedupCPUs() == 0 {
		t.Skipf("need ≥4 usable CPUs for a meaningful speedup, have NumCPU=%d GOMAXPROCS=%d",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	sp, err := MeasureSpeedup(Config{Seed: 1, Budget: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial=%.0fms toplevel=%.0fms worksteal=%.0fms (%d cliques, %d workers)",
		sp.SerialNs/1e6, sp.TopLevelNs/1e6, sp.WorkStealNs/1e6, sp.Cliques, sp.Workers)
	if sp.WorkStealNs > sp.SerialNs/2 {
		t.Errorf("work stealing %.0fms is not ≥2x faster than serial %.0fms",
			sp.WorkStealNs/1e6, sp.SerialNs/1e6)
	}
	if sp.WorkStealNs >= sp.TopLevelNs {
		t.Errorf("work stealing %.0fms is not faster than top-level fan-out %.0fms",
			sp.WorkStealNs/1e6, sp.TopLevelNs/1e6)
	}
}
