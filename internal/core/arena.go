package core

// This file implements the frame arena backing the enumeration kernel.
//
// Every node of the MULE search tree needs two scratch sets — the child
// candidate set I' and witness set X' (Algorithms 3 and 4). Allocating them
// with make() puts millions of short-lived slices on the exponential hot
// path, which is exactly where GC pressure hurts most. The search is a
// depth-first recursion, so the lifetimes are strictly nested: a node's
// scratch dies when its subtree finishes. That makes the allocations a
// textbook fit for a stack allocator with watermarks — mark on entering an
// iteration, carve sub-slices while expanding it, release back to the mark
// when the subtree returns.
//
// entryArena is that allocator: a list of geometrically growing block pairs
// with a (block, offset) cursor. Steady state performs zero heap
// allocations; blocks are only added while the high-water mark still grows
// (bounded by the deepest candidate/witness chain, not by the tree size).
// Blocks are never freed mid-run and never shrink, so sets handed out
// earlier remain valid even after the cursor moves to a newer block.
//
// Layout: sets are stored structure-of-arrays. An (v int32, r float64)
// element pair costs 16 bytes in an array-of-structs layout (4 bytes of
// padding per element); splitting the set into a vertex lane ([]int32) and
// a multiplier lane ([]float64) lets the intersection kernels scan 4 bytes
// per element on the vertex comparisons and touch the multiplier lane only
// on a match. Both lanes are carved from parallel blocks that share one
// cursor, so the watermark discipline is unchanged.
//
// Ownership: an arena belongs to exactly one enumerator (one worker). The
// work-stealing engine keeps every stealable frame on the heap — frames are
// the only state that crosses workers — so arena memory is never visible to
// another goroutine (worksteal.go documents the handoff rules).

// arenaMinBlock is the element count of the first block pair (48 KiB at 12
// bytes per element across the two lanes); later blocks double.
const arenaMinBlock = 4096

// entrySet is one candidate (I) or witness (X) set in SoA layout: vertex
// lane v and multiplier lane r, parallel and equal in length. The zero
// value is an empty set. Sets are passed by value like slices; push returns
// the updated set the same way append returns the updated slice.
type entrySet struct {
	v []int32
	r []float64
}

// length returns the number of elements in the set.
func (s entrySet) length() int { return len(s.v) }

// push appends one (vertex, multiplier) element.
func (s entrySet) push(v int32, r float64) entrySet {
	s.v = append(s.v, v)
	s.r = append(s.r, r)
	return s
}

// reset empties the set, keeping both lanes' capacity.
func (s entrySet) reset() entrySet {
	s.v, s.r = s.v[:0], s.r[:0]
	return s
}

type entryArena struct {
	vblocks [][]int32   // vertex lanes, parallel to rblocks
	rblocks [][]float64 // multiplier lanes
	cur     int         // index of the block pair the cursor is in
	off     int         // next free slot within blocks[cur]
}

// arenaMark is a watermark: the cursor position to restore on release.
type arenaMark struct {
	blk, off int
}

func (a *entryArena) mark() arenaMark { return arenaMark{a.cur, a.off} }

// release returns every allocation made since mark to the arena. Sets
// carved in between must not be used afterwards.
func (a *entryArena) release(m arenaMark) { a.cur, a.off = m.blk, m.off }

// alloc carves a zero-length set with the given capacity from the arena.
// The caller pushes into it (never past the capacity) and may hand the
// unused tail back with shrink.
func (a *entryArena) alloc(capacity int) entrySet {
	for {
		if a.cur < len(a.vblocks) {
			vb := a.vblocks[a.cur]
			if len(vb)-a.off >= capacity {
				rb := a.rblocks[a.cur]
				s := entrySet{
					v: vb[a.off : a.off : a.off+capacity],
					r: rb[a.off : a.off : a.off+capacity],
				}
				a.off += capacity
				return s
			}
			// Doesn't fit in the remainder of this block; the tail is
			// wasted until the enclosing release, which is fine — blocks
			// grow geometrically so waste is a constant fraction.
			a.cur++
			a.off = 0
			continue
		}
		size := arenaMinBlock
		if n := len(a.vblocks); n > 0 {
			size = 2 * len(a.vblocks[n-1])
		}
		if size < capacity {
			size = capacity
		}
		a.vblocks = append(a.vblocks, make([]int32, size))
		a.rblocks = append(a.rblocks, make([]float64, size))
		a.cur = len(a.vblocks) - 1
		a.off = 0
	}
}

// shrink gives the unused tail of the most recent alloc back to the arena.
// reserved is the capacity that alloc was asked for; kept is how much of it
// stays reserved (the filled length plus any append room the caller wants
// to retain). It must be called before any further alloc.
func (a *entryArena) shrink(reserved, kept int) {
	a.off -= reserved - kept
}
