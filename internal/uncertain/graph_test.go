package uncertain

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// dyadicProbs are exactly representable probabilities that are powers of two,
// so products of any number of them are exact in float64 (until underflow)
// and threshold comparisons in tests are unambiguous.
var dyadicProbs = []float64{1, 0.5, 0.25, 0.125}

// randomUncertain builds a G(n, density) uncertain graph with dyadic edge
// probabilities.
func randomUncertain(n int, density float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, dyadicProbs[rng.Intn(len(dyadicProbs))])
			}
		}
	}
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		u, v int
		p    float64
	}{
		{0, 0, 0.5},        // self-loop
		{-1, 1, 0.5},       // out of range
		{0, 3, 0.5},        // out of range
		{0, 1, 0},          // p = 0 not allowed (edge should be absent instead)
		{0, 1, -0.1},       // negative
		{0, 1, 1.5},        // > 1
		{0, 1, math.NaN()}, // NaN
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.p); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) should fail", c.u, c.v, c.p)
		}
	}
	if err := b.AddEdge(0, 1, 1.0); err != nil {
		t.Fatalf("p=1 must be allowed: %v", err)
	}
	if err := b.AddEdge(1, 0, 0.5); err == nil {
		t.Error("duplicate edge (reversed) should fail")
	}
}

func TestUpsertEdge(t *testing.T) {
	b := NewBuilder(2)
	if err := b.UpsertEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.UpsertEdge(1, 0, 0.75); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if p, _ := g.Prob(0, 1); p != 0.75 {
		t.Fatalf("Prob = %v, want 0.75 (last write wins)", p)
	}
}

func TestCSRIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomUncertain(50, 0.2, rng)
	// Rows sorted, symmetric adjacency with symmetric probabilities.
	for u := 0; u < g.NumVertices(); u++ {
		row, pr := g.Adjacency(u)
		if len(row) != len(pr) {
			t.Fatal("row/prob length mismatch")
		}
		for i := range row {
			if i > 0 && row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly sorted", u)
			}
			v := int(row[i])
			back, ok := g.Prob(v, u)
			if !ok || back != pr[i] {
				t.Fatalf("asymmetric edge {%d,%d}", u, v)
			}
		}
	}
}

func TestProbAndHasEdge(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := g.Prob(0, 1); !ok || p != 0.5 {
		t.Errorf("Prob(0,1) = %v,%v", p, ok)
	}
	if p, ok := g.Prob(1, 0); !ok || p != 0.5 {
		t.Errorf("Prob(1,0) = %v,%v", p, ok)
	}
	if _, ok := g.Prob(0, 2); ok {
		t.Error("Prob(0,2) should not exist")
	}
	if _, ok := g.Prob(0, 0); ok {
		t.Error("Prob(0,0) should not exist")
	}
	if _, ok := g.Prob(-1, 2); ok {
		t.Error("out-of-range Prob should not exist")
	}
	if !g.HasEdge(2, 3) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
}

func TestNeighborsAndIteration(t *testing.T) {
	g, _ := FromEdges(4, []Edge{{2, 0, 0.5}, {2, 3, 0.25}, {2, 1, 1.0}})
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	var vs []int
	var ps []float64
	g.ForEachNeighbor(2, func(v int, p float64) bool {
		vs = append(vs, v)
		ps = append(ps, p)
		return true
	})
	if !reflect.DeepEqual(vs, []int{0, 1, 3}) || !reflect.DeepEqual(ps, []float64{0.5, 1.0, 0.25}) {
		t.Fatalf("iteration got %v %v", vs, ps)
	}
	// Early stop.
	count := 0
	g.ForEachNeighbor(2, func(int, float64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomUncertain(30, 0.3, rng)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.NumEdges())
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	}) {
		t.Fatal("Edges not sorted by (U,V)")
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatal("edge with U >= V")
		}
		if p, ok := g.Prob(e.U, e.V); !ok || p != e.P {
			t.Fatal("edge list disagrees with Prob")
		}
	}
}

func TestCliqueProbKnownValues(t *testing.T) {
	g, _ := FromEdges(4, []Edge{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 2, 0.5}, {2, 3, 0.25},
	})
	cases := []struct {
		set  []int
		want float64
	}{
		{nil, 1},
		{[]int{2}, 1},
		{[]int{0, 1}, 0.5},
		{[]int{0, 1, 2}, 0.125},
		{[]int{2, 3}, 0.25},
		{[]int{0, 3}, 0},    // not a support edge
		{[]int{0, 1, 3}, 0}, // not a support clique
	}
	for _, c := range cases {
		if got := g.CliqueProb(c.set); got != c.want {
			t.Errorf("CliqueProb(%v) = %v, want %v", c.set, got, c.want)
		}
	}
	if !g.IsSupportClique([]int{0, 1, 2}) || g.IsSupportClique([]int{0, 1, 3}) {
		t.Error("IsSupportClique wrong")
	}
}

// Observation 2 of the paper: B ⊂ A ⇒ clq(B) ≥ clq(A).
func TestCliqueProbMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(6)
		g := randomUncertain(n, 0.7, rng)
		// Random subset A and random proper subset B.
		var a []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				a = append(a, v)
			}
		}
		if len(a) < 2 {
			continue
		}
		b := a[:len(a)-1]
		if g.CliqueProb(b) < g.CliqueProb(a) {
			t.Fatalf("monotonicity violated: clq(%v)=%v < clq(%v)=%v",
				b, g.CliqueProb(b), a, g.CliqueProb(a))
		}
	}
}

func TestIsAlphaMaximalClique(t *testing.T) {
	// Triangle with p=0.5 edges plus pendant edge p=0.25 at vertex 2.
	g, _ := FromEdges(4, []Edge{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 2, 0.5}, {2, 3, 0.25},
	})
	// α = 0.125: triangle qualifies (0.125 ≥ 0.125); {2,3} cannot be extended
	// ({0,2,3} needs edge {0,3}).
	if !g.IsAlphaMaximalClique([]int{0, 1, 2}, 0.125) {
		t.Error("{0,1,2} should be 0.125-maximal")
	}
	if !g.IsAlphaMaximalClique([]int{2, 3}, 0.125) {
		t.Error("{2,3} should be 0.125-maximal")
	}
	// α = 0.25: triangle has prob 0.125 < 0.25 → not an α-clique; each edge of
	// the triangle is now maximal.
	if g.IsAlphaMaximalClique([]int{0, 1, 2}, 0.25) {
		t.Error("{0,1,2} is not a 0.25-clique")
	}
	if !g.IsAlphaMaximalClique([]int{0, 1}, 0.25) {
		t.Error("{0,1} should be 0.25-maximal")
	}
	// {0,1} is not maximal at α=0.125 because vertex 2 extends it.
	if g.IsAlphaMaximalClique([]int{0, 1}, 0.125) {
		t.Error("{0,1} is extendable at α=0.125")
	}
}

func TestPruneAlphaPreservesAlphaCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		g := randomUncertain(n, 0.6, rng)
		alpha := dyadicProbs[rng.Intn(3)+1] // 0.5, 0.25 or 0.125
		pg := g.PruneAlpha(alpha)
		if pg.NumVertices() != g.NumVertices() {
			t.Fatal("pruning must not drop vertices")
		}
		for _, e := range pg.Edges() {
			if e.P < alpha {
				t.Fatalf("edge with p=%v survived pruning at α=%v", e.P, alpha)
			}
		}
		// Observation 3: every α-clique of g survives intact in pg.
		for sub := 0; sub < 1<<uint(n); sub++ {
			var set []int
			for v := 0; v < n; v++ {
				if sub&(1<<uint(v)) != 0 {
					set = append(set, v)
				}
			}
			if len(set) > 5 {
				continue
			}
			if g.IsAlphaClique(set, alpha) != pg.IsAlphaClique(set, alpha) {
				t.Fatalf("α-clique status of %v changed by pruning", set)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, _ := FromEdges(5, []Edge{
		{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 1.0}, {3, 4, 0.5}, {1, 3, 0.125},
	})
	sub, newToOld, err := g.InducedSubgraph([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newToOld, []int{1, 3, 4}) {
		t.Fatalf("newToOld = %v", newToOld)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub has n=%d m=%d, want 3/2", sub.NumVertices(), sub.NumEdges())
	}
	if p, ok := sub.Prob(0, 1); !ok || p != 0.125 { // old {1,3}
		t.Errorf("sub edge {1,3}: %v %v", p, ok)
	}
	if p, ok := sub.Prob(1, 2); !ok || p != 0.5 { // old {3,4}
		t.Errorf("sub edge {3,4}: %v %v", p, ok)
	}
	if sub.HasEdge(0, 2) {
		t.Error("old {1,4} should not be an edge")
	}

	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex should fail")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Error("out-of-range vertex should fail")
	}
}

func TestRelabelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomUncertain(20, 0.3, rng)
	order := rng.Perm(20)
	rg, oldToNew, err := g.Relabel(order)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumEdges() != g.NumEdges() {
		t.Fatal("relabel changed edge count")
	}
	for _, e := range g.Edges() {
		p, ok := rg.Prob(oldToNew[e.U], oldToNew[e.V])
		if !ok || p != e.P {
			t.Fatalf("edge {%d,%d} lost or changed under relabel", e.U, e.V)
		}
	}
	// order[newID] = oldID must be consistent with oldToNew.
	for newID, oldID := range order {
		if oldToNew[oldID] != newID {
			t.Fatal("oldToNew inconsistent with order")
		}
	}
}

func TestRelabelValidation(t *testing.T) {
	g, _ := FromEdges(3, []Edge{{0, 1, 0.5}})
	if _, _, err := g.Relabel([]int{0, 1}); err == nil {
		t.Error("short order should fail")
	}
	if _, _, err := g.Relabel([]int{0, 1, 1}); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, _, err := g.Relabel([]int{0, 1, 5}); err == nil {
		t.Error("out-of-range order should fail")
	}
}

func TestStats(t *testing.T) {
	g, _ := FromEdges(4, []Edge{{0, 1, 0.5}, {0, 2, 1.0}})
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 2 {
		t.Fatalf("stats n/m wrong: %+v", s)
	}
	if s.MaxDegree != 2 || s.MinDegree != 0 || s.IsolatedVerts != 1 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if s.MinProb != 0.5 || s.MaxProb != 1.0 || s.MeanProb != 0.75 || s.ExpectedM != 1.5 {
		t.Fatalf("prob stats wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	s := ComputeStats(NewBuilder(0).Build())
	if s.Vertices != 0 || s.Edges != 0 {
		t.Fatalf("unexpected stats for empty graph: %+v", s)
	}
}

func TestProbHistogram(t *testing.T) {
	g, _ := FromEdges(4, []Edge{{0, 1, 0.05}, {0, 2, 0.55}, {1, 2, 0.95}, {2, 3, 1.0}})
	h := ProbHistogram(g, 10)
	if len(h) != 10 {
		t.Fatalf("len = %d", len(h))
	}
	if h[0] != 1 || h[5] != 1 || h[9] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	if ProbHistogram(g, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

// TestAdjacencySuffix checks the hot-path row accessor against the plain
// Adjacency view for every vertex and a sweep of split points, including
// the before-first / after-last boundaries.
func TestAdjacencySuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomUncertain(40, 0.3, rng)
	for u := 0; u < g.NumVertices(); u++ {
		row, probs := g.Adjacency(u)
		for after := int32(-1); after <= int32(g.NumVertices()); after++ {
			srow, sprobs := g.AdjacencySuffix(u, after)
			k := sort.Search(len(row), func(i int) bool { return row[i] > after })
			if !reflect.DeepEqual(append([]int32{}, srow...), append([]int32{}, row[k:]...)) {
				t.Fatalf("u=%d after=%d: suffix %v, want %v", u, after, srow, row[k:])
			}
			if len(sprobs) != len(srow) {
				t.Fatalf("u=%d after=%d: probs length %d != row length %d", u, after, len(sprobs), len(srow))
			}
			for i := range sprobs {
				if sprobs[i] != probs[k+i] {
					t.Fatalf("u=%d after=%d: prob[%d] = %v, want %v", u, after, i, sprobs[i], probs[k+i])
				}
			}
		}
	}
}
