package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/graphio"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// writeMultiComponentGraph writes a graph with three components — a
// triangle {0,1,2}, an edge {3,4}, and the isolated vertex 5 — so sharded
// and batched runs have real component structure to split on.
func writeMultiComponentGraph(t *testing.T) string {
	t.Helper()
	g, err := uncertain.FromEdges(6, []uncertain.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 0, V: 2, P: 0.9}, {U: 1, V: 2, P: 0.9},
		{U: 3, V: 4, P: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mc.ug")
	if err := graphio.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// sortedLines canonicalizes output for order-insensitive comparison:
// sharded delivery follows component order, the in-memory engine its own.
func sortedLines(s string) []string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	sort.Strings(lines)
	return lines
}

// TestRunShardedEquivalence proves -shards and -shard-batch produce the
// same result set as a plain run for every unipartite miner.
func TestRunShardedEquivalence(t *testing.T) {
	path := writeMultiComponentGraph(t)
	miners := [][]string{
		{"-alpha", "0.5"},
		{"-mine", "quasi", "-gamma", "0.6", "-minsize", "2"},
		{"-mine", "truss", "-eta", "0.5"},
		{"-mine", "core", "-eta", "0.5"},
	}
	variants := [][]string{
		{"-shards", "1"},
		{"-shards", "2"},
		{"-shards", "auto"},
		{"-shard-batch", "2"},
		{"-shard-batch", "1000"},
		{"-shards", "2", "-shard-batch", "2"},
	}
	for _, miner := range miners {
		base := append([]string{"-in", path, "-quiet"}, miner...)
		var ref bytes.Buffer
		if err := run(context.Background(), base, &ref); err != nil {
			t.Fatalf("%v: %v", base, err)
		}
		want := sortedLines(ref.String())
		for _, v := range variants {
			args := append(append([]string{}, base...), v...)
			var out bytes.Buffer
			if err := run(context.Background(), args, &out); err != nil {
				t.Fatalf("%v: %v", args, err)
			}
			if got := sortedLines(out.String()); !equalStrings(got, want) {
				t.Errorf("%v:\ngot  %q\nwant %q", args, got, want)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunShardFlagValidation pins the rejected flag combinations.
func TestRunShardFlagValidation(t *testing.T) {
	path := writeMultiComponentGraph(t)
	for _, args := range [][]string{
		{"-in", path, "-shards", "0"},
		{"-in", path, "-shards", "-2"},
		{"-in", path, "-shards", "many"},
		{"-in", path, "-shard-batch", "-1"},
		{"-in", path, "-shard-batch", "4", "-top", "3"},
		{"-in", path, "-mine", "truss", "-eta", "0.5", "-k", "2", "-shard-batch", "4"},
		{"-in", path, "-mine", "core", "-eta", "0.5", "-k", "2", "-shard-batch", "4"},
		{"-in", path, "-mine", "bicliques", "-shard-batch", "4"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestRunShardBatchLimitAndCount proves -limit and -count keep their
// meaning across out-of-core batches.
func TestRunShardBatchLimitAndCount(t *testing.T) {
	path := writeMultiComponentGraph(t)
	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"-in", path, "-alpha", "0.5", "-quiet", "-shard-batch", "2", "-count"}, &out); err != nil {
		t.Fatal(err)
	}
	// Three components: the triangle, the edge, and the singleton.
	if got := strings.TrimSpace(out.String()); got != "3" {
		t.Fatalf("batched count: %q, want 3", got)
	}
	out.Reset()
	if err := run(context.Background(),
		[]string{"-in", path, "-alpha", "0.5", "-quiet", "-shard-batch", "2", "-limit", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := sortedLines(out.String()); len(lines) != 2 {
		t.Fatalf("batched limit: got %d lines %q, want 2", len(lines), lines)
	}
}

// writeCliqueBatchFile streams a binary graph of `comps` disjoint
// k-cliques straight to disk without ever holding more than one edge in
// memory — the generator for the out-of-core test must itself be
// out-of-core, or the test's peak heap would be dominated by setup.
func writeCliqueBatchFile(t *testing.T, path string, comps, k int, p float64) (vertices, edges int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	vertices = comps * k
	edges = comps * k * (k - 1) / 2
	w.WriteString("UGRF")
	binary.Write(w, binary.LittleEndian, uint32(1))
	binary.Write(w, binary.LittleEndian, uint64(vertices))
	binary.Write(w, binary.LittleEndian, uint64(edges))
	for c := 0; c < comps; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				binary.Write(w, binary.LittleEndian, uint32(base+i))
				binary.Write(w, binary.LittleEndian, uint32(base+j))
				binary.Write(w, binary.LittleEndian, p)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return vertices, edges
}

// TestOutOfCoreBigGraph is the acceptance scenario: a ~1.1M-edge
// multi-component graph is mined to completion in component batches with
// peak heap well below the full CSR footprint. The full graph is never
// materialized — generation streams to disk, mining streams from it.
func TestOutOfCoreBigGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("out-of-core acceptance run skipped in -short mode")
	}
	const (
		comps = 40_000
		k     = 8 // 28 edges per component
		prob  = 0.9
	)
	path := filepath.Join(t.TempDir(), "big.ugb")
	vertices, edges := writeCliqueBatchFile(t, path, comps, k, prob)
	if edges < 1_000_000 {
		t.Fatalf("generator produced only %d edges", edges)
	}
	// The in-memory CSR stores each edge twice: int32 neighbor + float64
	// probability per direction, plus the offset array.
	fullCSR := int64(4*(vertices+1)) + int64(edges)*2*(4+8)

	// Keep the collector close to the live set so polled HeapAlloc tracks
	// live bytes, mirroring the GOMEMLIMIT pressure of the CI smoke job.
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()

	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ha := int64(ms.HeapAlloc); ha > peak.Load() {
					peak.Store(ha)
				}
			}
		}
	}()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		// α below p^C(k,2) = 0.9^28 ≈ 0.052, so each whole K8 is the one
		// α-maximal clique of its component.
		"-in", path, "-alpha", "0.05",
		"-quiet", "-count", "-shard-batch", "100000",
	}, &out)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	// Each k-clique component yields exactly one α-maximal clique.
	if got := strings.TrimSpace(out.String()); got != fmt.Sprint(comps) {
		t.Fatalf("count: %q, want %d", got, comps)
	}
	if p := peak.Load(); p >= fullCSR {
		t.Fatalf("peak heap %d B not below full-CSR footprint %d B — batching is not bounding memory", p, fullCSR)
	}
	t.Logf("mined %d components (%d edges) with peak heap %.1f MiB; full CSR would be %.1f MiB",
		comps, edges, float64(peak.Load())/(1<<20), float64(fullCSR)/(1<<20))
}
