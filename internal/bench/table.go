// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5). Each experiment is a named, seeded,
// self-contained run that prints a paper-shaped result table; cmd/experiments
// exposes them on the command line and bench_test.go reuses the same
// workload builders for testing.B benchmarks. DESIGN.md §4 maps experiment
// IDs to the paper's tables and figures.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row built with fmt.Sprint on each value.
func (t *Table) Addf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.Add(s...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table (header + rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
