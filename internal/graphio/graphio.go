// Package graphio reads and writes uncertain graphs in two formats:
//
// Text (extension .ug): line-oriented, human-editable.
//
//	# comment
//	vertices 4
//	0 1 0.5
//	2 3 0.25
//
// The "vertices N" directive is optional; without it the vertex count is
// inferred as max endpoint + 1 (isolated trailing vertices then need the
// directive). Edge lines are "u v p" with 0-based endpoints.
//
// Binary (extension .ugb): "UGRF" magic, format version, then fixed-width
// little-endian records — compact and fast for the larger Table 1 graphs.
//
// JSON (extension .json): {"vertices": N, "edges": [{"u","v","p"}, …]} for
// interchange with external tooling.
//
// Any format gzip-compresses transparently with a ".gz" suffix, and LoadFile
// sniffs compression and format from content rather than trusting the
// extension. Uncertain bipartite graphs (internal/ubiclique) have their own
// text format (extension .ubg) with a "bipartite nL nR" directive.
package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// WriteText writes g in the text format, edges sorted by (U,V).
func WriteText(w io.Writer, g *uncertain.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, strconv.FormatFloat(e.P, 'g', 17, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*uncertain.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := -1
	var edges []uncertain.Edge
	maxV := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "vertices" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed vertices directive", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", line, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v p', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", line, fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad probability %q", line, fields[2])
		}
		edges = append(edges, uncertain.Edge{U: u, V: v, P: p})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n < 0 {
		n = maxV + 1
	}
	if maxV >= n {
		return nil, fmt.Errorf("graphio: edge endpoint %d exceeds declared vertex count %d", maxV, n)
	}
	g, err := uncertain.FromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

var binaryMagic = [4]byte{'U', 'G', 'R', 'F'}

const binaryVersion uint32 = 1

// WriteBinary writes g in the binary format.
func WriteBinary(w io.Writer, g *uncertain.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []any{binaryVersion, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.U)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.V)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*uncertain.Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graphio: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", version)
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n > 1<<31 || m > 1<<33 {
		return nil, fmt.Errorf("graphio: implausible header n=%d m=%d", n, m)
	}
	b := uncertain.NewBuilder(int(n))
	for i := uint64(0); i < m; i++ {
		var u, v uint32
		var p float64
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
		if err := b.AddEdge(int(u), int(v), p); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// SaveFile writes g to path, choosing the format by extension: ".ugb" is
// binary, ".json" is JSON, anything else text. A trailing ".gz" on any of
// these compresses the output transparently (e.g. "graph.ugb.gz").
func SaveFile(path string, g *uncertain.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	base := path
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		base = strings.TrimSuffix(path, ".gz")
		gz = gzip.NewWriter(f)
		w = gz
	}
	switch {
	case strings.HasSuffix(base, ".ugb"):
		err = WriteBinary(w, g)
	case strings.HasSuffix(base, ".json"):
		err = WriteJSON(w, g)
	default:
		err = WriteText(w, g)
	}
	if err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

var gzipMagic = [2]byte{0x1f, 0x8b}

// LoadFile reads a graph from path. The format is sniffed from content, not
// from the extension: gzip streams are decompressed, the "UGRF" magic
// selects the binary decoder, a leading '{' the JSON decoder, and anything
// else the text decoder. It is a thin wrapper over Load.
func LoadFile(path string) (*uncertain.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load decodes a graph from r — an open file, an HTTP request body, a
// bytes.Reader — sniffing gzip compression and the three formats exactly
// like LoadFile; no temporary file is involved.
func Load(r io.Reader) (*uncertain.Graph, error) {
	return ReadAny(r)
}

// ReadAny decodes a graph from r, sniffing gzip compression and the three
// formats as LoadFile does. Load is the preferred name.
func ReadAny(r io.Reader) (*uncertain.Graph, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(2); err == nil && [2]byte(head) == gzipMagic {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graphio: opening gzip stream: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReader(zr)
	}
	if head, err := br.Peek(4); err == nil && [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	if head, err := br.Peek(1); err == nil && head[0] == '{' {
		return ReadJSON(br)
	}
	return ReadText(br)
}
