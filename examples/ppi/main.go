// Protein-complex mining: the motivating application of the paper. Protein-
// protein interaction networks are inherently uncertain (interaction
// detection is error-prone), and an α-maximal clique is a candidate protein
// complex — a set of proteins that all pairwise interact with probability at
// least α.
//
// This example mines a synthetic fruit-fly-scale PPI network (same size and
// confidence profile as the paper's STRING/BioGRID input; see DESIGN.md §3),
// sweeps the confidence threshold, and reports the most probable larger
// complexes.
//
// Run with: go run ./examples/ppi
package main

import (
	"context"
	"fmt"
	"log"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func main() {
	ctx := context.Background()
	g := gen.PPILike(42)
	s := uncertain.ComputeStats(g)
	fmt.Printf("synthetic PPI network: %s\n\n", s)

	// How the threshold shapes the candidate-complex catalog.
	fmt.Println("complexes (α-maximal cliques, size ≥ 2) vs confidence threshold:")
	for _, alpha := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		q, err := mule.NewQuery(g, alpha, mule.WithMinSize(2))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := q.Run(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α = %.2f: %6d candidate complexes, largest has %d proteins\n",
			alpha, stats.Emitted, stats.MaxCliqueSize)
	}

	// The ten most reliable multi-protein complexes at a permissive α.
	const alpha = 0.2
	fmt.Printf("\nmost reliable complexes at α = %.2f:\n", alpha)
	q, err := mule.NewQuery(g, alpha)
	if err != nil {
		log.Fatal(err)
	}
	scored, err := q.TopK(ctx, 50, mule.ByProb)
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, sc := range scored {
		if len(sc.Vertices) < 3 {
			continue // singletons/pairs are not interesting complexes
		}
		fmt.Printf("  proteins %v  P[all interact] = %.4f\n", sc.Vertices, sc.Prob)
		printed++
		if printed == 10 {
			break
		}
	}
	if printed == 0 {
		fmt.Println("  (no complexes with ≥ 3 proteins at this threshold)")
	}
}
