package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestServerShardedQuery proves the ?shards= parameter end to end: sharded
// runs return the same result set as unsharded ones, share their cache entry
// when unlimited (the result set is shard-invariant), get a distinct cache
// key when limited (truncation order differs), and bad values are 400s.
func TestServerShardedQuery(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/g", testGraphText(t)); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}
	base := ts.URL + "/graphs/g/query?miner=cliques&alpha=0.5"

	// Unsharded reference, bypassing the cache.
	code, refBody, _ := do(t, "GET", base+"&nocache=true", nil)
	if code != http.StatusOK {
		t.Fatalf("reference query: %d %s", code, refBody)
	}
	ref := decodeQuery(t, refBody)

	for _, shards := range []string{"1", "2", "auto", "0"} {
		code, body, _ := do(t, "GET", base+"&nocache=true&shards="+shards, nil)
		if code != http.StatusOK {
			t.Fatalf("shards=%s: %d %s", shards, code, body)
		}
		qr := decodeQuery(t, body)
		if qr.Status != "complete" || qr.Count != ref.Count {
			t.Fatalf("shards=%s: %+v want count %d", shards, qr, ref.Count)
		}
		got := decodeCliqueSets(t, qr.Results)
		want := decodeCliqueSets(t, ref.Results)
		if !equalSetOfSets(got, want) {
			t.Fatalf("shards=%s result set differs:\n%s\nvs\n%s", shards, qr.Results, ref.Results)
		}
	}

	// Unlimited sharded and unsharded runs share one cache entry (the
	// reference calls above used nocache): populate it unsharded, then
	// prove a sharded request is served from it.
	code, first, _ := do(t, "GET", base, nil)
	if code != http.StatusOK {
		t.Fatalf("cache populate: %d %s", code, first)
	}
	code, second, _ := do(t, "GET", base+"&shards=2", nil)
	if code != http.StatusOK {
		t.Fatalf("sharded cache probe: %d %s", code, second)
	}
	if qr := decodeQuery(t, second); !qr.Cached {
		t.Fatalf("unlimited sharded query should share the unsharded cache entry: %+v", qr)
	}

	// With a limit the truncation prefix depends on delivery order, so the
	// sharded variant must NOT be served from the unsharded entry.
	limited := base + "&limit=1"
	if code, body, _ := do(t, "GET", limited, nil); code != http.StatusOK {
		t.Fatalf("limited populate: %d %s", code, body)
	}
	code, body, _ := do(t, "GET", limited+"&shards=2", nil)
	if code != http.StatusOK {
		t.Fatalf("limited sharded: %d %s", code, body)
	}
	if qr := decodeQuery(t, body); qr.Cached {
		t.Fatalf("limited sharded query must not reuse the unsharded cache entry: %+v", qr)
	}

	// Invalid values are rejected up front.
	for _, bad := range []string{"-1", "x", "1.5", ""} {
		code, body, _ := do(t, "GET", base+"&shards="+bad, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("shards=%q accepted: %d %s", bad, code, body)
		}
	}

	// All runs above finished, so /stats reports no live sharded runs.
	code, body, _ = do(t, "GET", ts.URL+"/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Sharded) != 0 {
		t.Fatalf("finished runs still listed as live: %+v", st.Sharded)
	}
	if st.Cache.CapacityBytes == 0 {
		t.Fatalf("default byte cap not applied: %+v", st.Cache)
	}
}

// decodeCliqueSets parses a results array of clique objects down to their
// vertex lists.
func decodeCliqueSets(t *testing.T, raw json.RawMessage) [][]int {
	t.Helper()
	var objs []struct {
		Vertices []int `json:"vertices"`
	}
	if err := json.Unmarshal(raw, &objs); err != nil {
		t.Fatalf("decoding results %s: %v", raw, err)
	}
	out := make([][]int, len(objs))
	for i, o := range objs {
		out[i] = o.Vertices
	}
	return out
}

// equalSetOfSets compares two families of vertex sets ignoring order.
func equalSetOfSets(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s []int) string {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.Encode(s)
		return buf.String()
	}
	seen := make(map[string]int, len(a))
	for _, s := range a {
		seen[key(s)]++
	}
	for _, s := range b {
		seen[key(s)]--
	}
	for _, n := range seen {
		if n != 0 {
			return false
		}
	}
	return true
}

// TestProgressTable exercises the register → update → list → unregister
// cycle directly, including the callback-after-unregister case that a
// slow shard hitting a cancelled run would produce.
func TestProgressTable(t *testing.T) {
	tbl := newProgressTable()
	id1, up1 := tbl.register("g", "cliques")
	id2, up2 := tbl.register("h", "truss")
	if id1 == id2 {
		t.Fatal("duplicate run IDs")
	}
	up1(2, 5)
	up2(0, 3)
	runs := tbl.list()
	if len(runs) != 2 {
		t.Fatalf("list: %+v", runs)
	}
	if runs[0].Graph != "g" || runs[0].Miner != "cliques" || runs[0].Done != 2 || runs[0].Total != 5 {
		t.Fatalf("run 1: %+v", runs[0])
	}
	if runs[1].Graph != "h" || runs[1].Total != 3 {
		t.Fatalf("run 2: %+v", runs[1])
	}
	tbl.unregister(id1)
	// A late callback for an unregistered run is a harmless no-op.
	up1(5, 5)
	runs = tbl.list()
	if len(runs) != 1 || runs[0].ID != id2 {
		t.Fatalf("after unregister: %+v", runs)
	}
	tbl.unregister(id2)
	if runs := tbl.list(); len(runs) != 0 {
		t.Fatalf("table not empty: %+v", runs)
	}
}
