package exec

import (
	"sync"
	"sync/atomic"
)

// Run is the handle for one submitted enumeration: it owns the frame
// conservation count that defines termination, the per-run parallelism cap,
// and the overflow list for frames claimed beyond the cap.
type Run struct {
	x      *Executor
	engine Engine
	maxPar int32
	stop   func() bool

	// live is the frame conservation count: frames residing in a container
	// (inbox, worker deque, overflow) plus frames currently claimed by a
	// slot. Every claim carries the count with it; the run is done exactly
	// when it reaches zero.
	live     atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	// active counts slots executing this run's frames right now, capped at
	// maxPar by acquire.
	active atomic.Int32

	omu      sync.Mutex
	overflow []any // frames claimed while at the parallelism cap

	// helping/helperParked/wakeCh implement the Wait helper: at most one
	// waiter lends its goroutine, parks on wakeCh when it finds nothing
	// claimable, and is poked by any push of this run's frames.
	helping      atomic.Bool
	helperParked atomic.Bool
	wakeCh       chan struct{}

	// panicp latches the first panic recovered while executing this run's
	// frames (first caller wins); once set, the run reads as stopped and its
	// remaining frames purge instead of executing. onPanic (from
	// RunOpts.OnPanic) is invoked exactly once, by the latch winner.
	panicp  atomic.Pointer[panicInfo]
	onPanic func(value any, stack []byte)
}

// panicInfo is one recovered panic: the value and the stack captured at the
// recovery point.
type panicInfo struct {
	value any
	stack []byte
}

// notePanic latches a recovered panic against the run. The first caller wins
// and fires the run's OnPanic hook; later panics of the same run (concurrent
// frames can fail independently) are dropped — one cause per run.
func (r *Run) notePanic(value any, stack []byte) {
	info := &panicInfo{value: value, stack: stack}
	if !r.panicp.CompareAndSwap(nil, info) {
		return
	}
	if r.onPanic != nil {
		r.onPanic(value, stack)
	}
}

// PanicInfo returns the latched panic value and stack, or ok == false when no
// frame of the run panicked.
func (r *Run) PanicInfo() (value any, stack []byte, ok bool) {
	p := r.panicp.Load()
	if p == nil {
		return nil, nil, false
	}
	return p.value, p.stack, true
}

// Done returns a channel closed when every frame of the run has retired.
func (r *Run) Done() <-chan struct{} { return r.done }

func (r *Run) isStopped() bool {
	return r.panicp.Load() != nil || (r.stop != nil && r.stop())
}

func (r *Run) atCapacity() bool { return r.active.Load() >= r.maxPar }

// retire removes n frames from the conservation count, closing Done at zero.
func (r *Run) retire(n int) {
	if r.live.Add(int64(-n)) == 0 {
		r.doneOnce.Do(func() { close(r.done) })
	}
}

// acquire claims an execution seat under the parallelism cap.
func (r *Run) acquire() bool {
	for {
		a := r.active.Load()
		if a >= r.maxPar {
			return false
		}
		if r.active.CompareAndSwap(a, a+1) {
			return true
		}
	}
}

// release returns an execution seat and re-queues one overflow frame, if any.
func (r *Run) release() {
	r.active.Add(-1)
	r.kickOverflow()
}

// park shelves a claimed frame that lost the acquire race onto the overflow
// list; the frame keeps its live count. The post-append re-check closes the
// race against a concurrent release that ran kickOverflow before the append
// made the frame visible.
func (r *Run) park(f any) {
	r.omu.Lock()
	r.overflow = append(r.overflow, f)
	r.omu.Unlock()
	if r.active.Load() < r.maxPar || r.isStopped() {
		r.kickOverflow()
	}
}

// kickOverflow moves one parked frame back to the shared inbox (or, for a
// stopped run, drops the whole list).
func (r *Run) kickOverflow() {
	if r.isStopped() {
		r.omu.Lock()
		n := len(r.overflow)
		r.overflow = nil
		r.omu.Unlock()
		if n > 0 {
			r.retire(n)
		}
		return
	}
	r.omu.Lock()
	k := len(r.overflow)
	if k == 0 {
		r.omu.Unlock()
		return
	}
	f := r.overflow[k-1]
	r.overflow[k-1] = nil
	r.overflow = r.overflow[:k-1]
	r.omu.Unlock()
	r.x.enqueue(tagged{run: r, f: f})
}

// pokeHelper nudges the run's parked Wait helper, if any.
func (r *Run) pokeHelper() {
	if !r.helperParked.Load() {
		return
	}
	select {
	case r.wakeCh <- struct{}{}:
	default:
	}
}

// Purge drops every queued frame of the run. Meaningful only once the run's
// stop predicate reports true — otherwise workers may re-queue more frames
// concurrently.
func (r *Run) Purge() {
	r.x.purgeRun(r)
}

// help claims and executes one frame of this run — from the shared inbox
// first (submitted roots and overflow re-entries), then by stealing from
// worker deques. It reports whether it executed anything.
func (r *Run) help() bool {
	x := r.x
	if t, ok := x.inbox.takeRun(r); ok {
		x.runFrame(nil, x.helperID(), t)
		return true
	}
	for _, w := range x.workers {
		if t, ok := w.deque.takeRun(r); ok {
			noteStealGuard(r, x.helperID())
			x.runFrame(nil, x.helperID(), t)
			return true
		}
	}
	return false
}

// Wait blocks until the run completes, lending the calling goroutine to the
// run as a helper slot (ID Parallelism()): while waiting it executes the
// run's own queued frames, so a run always progresses even when every pool
// worker is busy with other queries — nested submissions cannot deadlock.
//
// abort, when non-nil, aborts the run when it fires: onAbort is invoked once
// (it must latch the run's stop predicate) and the queued frames are purged;
// Wait still blocks until the frames already executing have retired. At most
// one goroutine may Wait per run.
func (r *Run) Wait(abort <-chan struct{}, onAbort func()) {
	doAbort := func() {
		if onAbort != nil {
			onAbort()
		}
		r.Purge()
		abort = nil // a closed channel must not re-fire the purge loop
	}
	if !r.helping.CompareAndSwap(false, true) {
		// A helper is already attached (programming error); fall back to a
		// plain blocking wait.
		for {
			select {
			case <-r.done:
				return
			case <-abort:
				doAbort()
			}
		}
	}
	defer r.helping.Store(false)
	for {
		select {
		case <-r.done:
			return
		default:
		}
		select {
		case <-abort:
			doAbort()
			continue
		default:
		}
		if r.help() {
			continue
		}
		// Publish the park, then re-check: a push that missed the parked
		// flag happened before the re-check's queue reads, so help finds it.
		r.helperParked.Store(true)
		if r.help() {
			r.helperParked.Store(false)
			continue
		}
		select {
		case <-r.done:
			r.helperParked.Store(false)
			return
		case <-abort:
			doAbort()
		case <-r.wakeCh:
		}
		r.helperParked.Store(false)
	}
}
