package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func randomDyadicGraph(n int, density float64, rng *rand.Rand) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	vals := []float64{1, 0.5, 0.25, 0.125}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, vals[rng.Intn(len(vals))])
			}
		}
	}
	return b.Build()
}

func TestHashMULEMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	alphas := []float64{0.5, 0.25, 0.125, 0.0625}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(9)
		g := randomDyadicGraph(n, 0.5, rng)
		alpha := alphas[trial%len(alphas)]
		want := BruteForce(g, alpha)
		got := CollectHashMULE(g, alpha)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, α=%v):\nhash  = %v\nbrute = %v",
				trial, n, alpha, got, want)
		}
	}
}

func TestHashMULEMatchesNOIP(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 30; trial++ {
		g := randomDyadicGraph(6+rng.Intn(14), 0.4, rng)
		alpha := []float64{0.5, 0.125}[trial%2]
		want := CollectNOIP(g, alpha)
		got := CollectHashMULE(g, alpha)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: hash %v vs NOIP %v", trial, got, want)
		}
	}
}

func TestHashMULEStatsAndStop(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	g := randomDyadicGraph(14, 0.6, rng)
	stats := EnumerateHashMULE(g, 0.25, nil)
	if stats.Calls <= 0 || stats.Lookups <= 0 {
		t.Fatalf("no work recorded: %+v", stats)
	}
	if stats.Emitted <= 0 {
		t.Fatalf("nothing emitted on a dense graph: %+v", stats)
	}
	seen := int64(0)
	partial := EnumerateHashMULE(g, 0.25, func([]int, float64) bool {
		seen++
		return seen < 2
	})
	if partial.Emitted != 2 || seen != 2 {
		t.Fatalf("early stop broke: emitted %d, seen %d", partial.Emitted, seen)
	}
}

func TestHashMULERejectsBadAlpha(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v accepted", alpha)
				}
			}()
			EnumerateHashMULE(g, alpha, nil)
		}()
	}
}
