// Quickstart: build a small uncertain graph and enumerate its α-maximal
// cliques with MULE through the Query API — prepare once with NewQuery,
// run with a visitor for per-run stats, and stream the LARGE-MULE variant
// with range-over-func, all under a context.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	mule "github.com/uncertain-graphs/mule"
)

func main() {
	// A protein-interaction-style toy graph: a confident triangle {0,1,2},
	// a shakier square {2,3,4,5}, and one low-confidence bridge.
	b := mule.NewBuilder(6)
	edges := []mule.Edge{
		{U: 0, V: 1, P: 0.95}, {U: 0, V: 2, P: 0.90}, {U: 1, V: 2, P: 0.90},
		{U: 2, V: 3, P: 0.70}, {U: 3, V: 4, P: 0.80}, {U: 4, V: 5, P: 0.80},
		{U: 3, V: 5, P: 0.75}, {U: 2, V: 4, P: 0.30},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	ctx := context.Background()
	for _, alpha := range []float64{0.7, 0.4, 0.1} {
		fmt.Printf("α = %.1f\n", alpha)
		q, err := mule.NewQuery(g, alpha)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := q.Run(ctx, func(clique []int, prob float64) bool {
			fmt.Printf("  clique %v  (probability %.4f)\n", clique, prob)
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  → %d α-maximal cliques, %d search calls\n\n", stats.Emitted, stats.Calls)
	}

	// The same run restricted to cliques of at least 3 vertices (LARGE-MULE).
	fmt.Println("LARGE-MULE, α = 0.1, t = 3")
	q, err := mule.NewQuery(g, 0.1, mule.WithMinSize(3))
	if err != nil {
		log.Fatal(err)
	}
	for c, err := range q.Cliques(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  clique %v  (probability %.4f)\n", c.Vertices, c.Prob)
	}
}
