// Quickstart: build a small uncertain graph and enumerate its α-maximal
// cliques with MULE.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mule "github.com/uncertain-graphs/mule"
)

func main() {
	// A protein-interaction-style toy graph: a confident triangle {0,1,2},
	// a shakier square {2,3,4,5}, and one low-confidence bridge.
	b := mule.NewBuilder(6)
	edges := []mule.Edge{
		{U: 0, V: 1, P: 0.95}, {U: 0, V: 2, P: 0.90}, {U: 1, V: 2, P: 0.90},
		{U: 2, V: 3, P: 0.70}, {U: 3, V: 4, P: 0.80}, {U: 4, V: 5, P: 0.80},
		{U: 3, V: 5, P: 0.75}, {U: 2, V: 4, P: 0.30},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	for _, alpha := range []float64{0.7, 0.4, 0.1} {
		fmt.Printf("α = %.1f\n", alpha)
		stats, err := mule.Enumerate(g, alpha, func(clique []int, prob float64) bool {
			fmt.Printf("  clique %v  (probability %.4f)\n", clique, prob)
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  → %d α-maximal cliques, %d search calls\n\n", stats.Emitted, stats.Calls)
	}

	// The same run restricted to cliques of at least 3 vertices (LARGE-MULE).
	fmt.Println("LARGE-MULE, α = 0.1, t = 3")
	_, err := mule.EnumerateLarge(g, 0.1, 3, func(clique []int, prob float64) bool {
		fmt.Printf("  clique %v  (probability %.4f)\n", clique, prob)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
}
