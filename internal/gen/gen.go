// Package gen generates synthetic uncertain graphs: classical random graph
// topologies (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, Holme–Kim,
// Chung–Lu), team/affiliation processes, and probability assigners. On top
// of these it provides dataset synthesizers that reproduce the scale and
// character of the inputs in Table 1 of the paper (PPI, DBLP, Gnutella,
// ca-GrQc, wiki-vote, BA5000–BA10000); see DESIGN.md §3 for the substitution
// rationale.
//
// Every generator takes an explicit *rand.Rand (or a seed) so that all
// workloads are reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// ProbFunc assigns an existence probability in (0,1] to the edge {u,v}.
type ProbFunc func(rng *rand.Rand, u, v int) float64

// UniformProb returns probabilities uniform on (0,1], the scheme the paper
// uses for its semi-synthetic and random graphs ("edges were assigned
// probabilities uniformly at random").
func UniformProb() ProbFunc {
	return func(rng *rand.Rand, _, _ int) float64 { return 1 - rng.Float64() }
}

// UniformRangeProb returns probabilities uniform on (lo, hi]; requires
// 0 ≤ lo < hi ≤ 1.
func UniformRangeProb(lo, hi float64) ProbFunc {
	return func(rng *rand.Rand, _, _ int) float64 {
		return hi - rng.Float64()*(hi-lo)
	}
}

// ConstProb assigns probability p to every edge.
func ConstProb(p float64) ProbFunc {
	return func(*rand.Rand, int, int) float64 { return p }
}

// DyadicProb returns probabilities drawn uniformly from
// {1, 1/2, 1/4, …, 2^-maxExp}. Powers of two multiply exactly in float64, so
// cross-implementation equality tests built on these probabilities are free
// of rounding ambiguity.
func DyadicProb(maxExp int) ProbFunc {
	if maxExp < 0 {
		maxExp = 0
	}
	vals := make([]float64, maxExp+1)
	v := 1.0
	for i := range vals {
		vals[i] = v
		v /= 2
	}
	return func(rng *rand.Rand, _, _ int) float64 { return vals[rng.Intn(len(vals))] }
}

// BetaProb samples probabilities from a Beta(a, b) distribution, clamped
// into (0, 1]. Beta shapes model confidence-score distributions such as
// STRING's protein-interaction scores.
func BetaProb(a, b float64) ProbFunc {
	return func(rng *rand.Rand, _, _ int) float64 {
		return clampProb(sampleBeta(rng, a, b))
	}
}

// MixtureComponent is one weighted component of a mixture assigner.
type MixtureComponent struct {
	Weight float64
	F      ProbFunc
}

// MixtureProb samples from components with probability proportional to their
// weights. It panics if no component has positive weight, since that is a
// programming error in workload construction.
func MixtureProb(components ...MixtureComponent) ProbFunc {
	total := 0.0
	for _, c := range components {
		if c.Weight < 0 {
			panic("gen: negative mixture weight")
		}
		total += c.Weight
	}
	if total <= 0 {
		panic("gen: mixture has no positive-weight component")
	}
	return func(rng *rand.Rand, u, v int) float64 {
		x := rng.Float64() * total
		for _, c := range components {
			if x < c.Weight {
				return c.F(rng, u, v)
			}
			x -= c.Weight
		}
		return components[len(components)-1].F(rng, u, v)
	}
}

func clampProb(p float64) float64 {
	if p <= 0 {
		return 1e-9
	}
	if p > 1 {
		return 1
	}
	return p
}

// BuildUncertain assembles an uncertain graph from a deduplicated edge list
// and a probability assigner.
func BuildUncertain(n int, edges [][2]int, pf ProbFunc, rng *rand.Rand) (*uncertain.Graph, error) {
	b := uncertain.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], pf(rng, e[0], e[1])); err != nil {
			return nil, fmt.Errorf("gen: %w", err)
		}
	}
	return b.Build(), nil
}

// mustBuild is BuildUncertain for internally generated (known valid,
// deduplicated) edge lists.
func mustBuild(n int, edges [][2]int, pf ProbFunc, rng *rand.Rand) *uncertain.Graph {
	g, err := BuildUncertain(n, edges, pf, rng)
	if err != nil {
		panic(err)
	}
	return g
}
