package core

import (
	"sync/atomic"

	"github.com/uncertain-graphs/mule/internal/exec"
)

// runTopLevel is the legacy parallel driver (ParallelTopLevel): it fans only
// the top-level branches of the search out across workers. It predates the
// work-stealing engine in worksteal.go and is kept because it is the natural
// comparison point: on skewed inputs where one top-level subtree dominates,
// this driver degenerates to serial execution while work stealing keeps
// subdividing the heavy branch. Like the work-stealing engine it runs on the
// shared executor: its frames are opaque seat tokens, one per requested
// worker, and each seat loops over a shared atomic branch counter.
//
// Soundness: at the root C = ∅, the branch for vertex u receives
// I_u = {(w, p(u,w)) : w ∈ Γ(u), w > u, p(u,w) ≥ α} and
// X_u = {(x, p(u,x)) : x ∈ Γ(u), x < u, p(u,x) ≥ α}, both of which depend
// only on u — not on how much of the loop has already run — because the
// root's X accumulates exactly the vertices smaller than u. Top-level
// subtrees are therefore mutually independent and can run concurrently;
// every deeper level keeps the sequential left-to-right dependency through
// X and stays inside one seat.

// tlLocal is one slot's private state for the top-level engine: the worker
// clone with its pooled arena/mask and the stats block merged after the run.
type tlLocal struct {
	stats Stats
	e     *enumerator
}

// tlEngine adapts the top-level fan-out to the executor. Seat frames carry
// no state (they are bare ints, used only as claim tokens); the branch
// counter next hands out top-level vertices dynamically, so seats that land
// on cheap branches keep pulling work instead of idling. locals follows the
// same slot-ID discipline as wsEngine.locals.
type tlEngine struct {
	e      *enumerator
	s      *wsShared
	n      int
	next   atomic.Int64
	locals []*tlLocal
}

func (en *tlEngine) local(id int) *tlLocal {
	l := en.locals[id]
	if l == nil {
		l = &tlLocal{}
		l.e = en.e.workerClone(&l.stats, en.s)
		en.locals[id] = l
	}
	return l
}

// Execute runs one seat: it pulls top-level branches off the shared counter
// until the branches run out or the run's stop latch fires.
func (en *tlEngine) Execute(s *exec.Slot, _ any) {
	l := en.local(s.ID())
	for {
		u := en.next.Add(1)
		if int(u) >= en.n || en.s.ctl.stop.Load() || l.e.stopped {
			return
		}
		l.e.branch(int32(u))
		if l.e.stopped {
			return // the visitor or the run control latched the stop
		}
	}
}

// Split declines: seat frames carry no divisible work (the branch counter
// already balances dynamically), so a lone queued seat moves wholesale.
func (en *tlEngine) Split(int, any) any { return nil }

// NoteSteal is a no-op: seats have no steal accounting.
func (en *tlEngine) NoteSteal(int) {}

func (e *enumerator) runTopLevel(x *exec.Executor, workers int) {
	n := e.g.NumVertices()
	s := &wsShared{ctl: e.ctl, visit: e.visit}
	en := &tlEngine{e: e, s: s, n: n, locals: make([]*tlLocal, x.Parallelism()+1)}
	en.next.Store(-1)
	seats := workers
	if seats > n {
		seats = n
	}
	roots := make([]any, seats)
	for i := range roots {
		roots[i] = i
	}
	r := x.Submit(en, exec.RunOpts{
		MaxParallel: workers,
		Stopped:     e.ctl.stop.Load,
		OnPanic: func(v any, stack []byte) {
			e.ctl.Abort(NewPanicError(v, stack))
		},
	}, roots...)
	r.Wait(e.ctl.Done(), func() { e.ctl.Poll(0) })
	for _, l := range en.locals {
		if l == nil {
			continue
		}
		e.stats.merge(&l.stats)
		l.e.releasePooled()
	}
	e.stopped = e.ctl.stop.Load()
	// The root call itself is accounted once, as in the serial driver.
	e.stats.Calls++
}

// branch runs the top-level iteration for vertex u: it reproduces exactly
// the state the serial loop would pass to the recursive call for u. Like
// the serial driver, it builds I and X in the worker's arena — the row is
// sorted, so neighbors < u (the witnesses) form the prefix and neighbors
// > u (the candidates) the suffix.
func (e *enumerator) branch(u int32) {
	row, probs := e.g.Adjacency(int(u))
	irow, iprobs := e.g.AdjacencySuffix(int(u), u)
	k := len(row) - len(irow) // witnesses: row[:k]

	m := e.arena.mark()
	// X holds ≤ k filtered witnesses plus ≤ len(irow) pushes from the
	// recursion's loop, so the full row length bounds its capacity.
	X := e.arena.alloc(len(row))
	for i := 0; i < k; i++ {
		if p := probs[i]; p >= e.alpha {
			X = X.push(row[i], p)
		}
	}
	I := e.arena.alloc(len(irow))
	for i, w := range irow {
		if p := iprobs[i]; p >= e.alpha {
			I = I.push(w, p)
		}
	}
	e.arena.shrink(len(irow), I.length())
	// The p < α skips above are only reachable with SkipPrune.
	e.stats.CandidateOps += int64(I.length())
	e.stats.WitnessOps += int64(X.length())
	if e.minSize >= 2 && 1+I.length() < e.minSize {
		e.stats.SizePruned++
		e.arena.release(m)
		return
	}
	C := append(e.cbuf[:0], u)
	e.recurse(C, 1, I, X)
	e.arena.release(m)
}

// merge folds o into s. All counter fields are sums or maxes, so merging
// per-slot stats in ascending slot order yields a deterministic aggregate.
// Status is not merged: the terminal state is decided once by the run
// control after all slots have drained.
func (s *Stats) merge(o *Stats) {
	s.Calls += o.Calls
	s.Emitted += o.Emitted
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.CandidateOps += o.CandidateOps
	s.WitnessOps += o.WitnessOps
	s.BitsetOps += o.BitsetOps
	s.PrunedEdges += o.PrunedEdges
	s.SizePruned += o.SizePruned
	s.FilterRemoved += o.FilterRemoved
	s.Steals += o.Steals
	s.Splits += o.Splits
}
