package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// hashFilterReference is the pre-CSR implementation of the Modani–Dey
// prefilter (per-vertex hash maps), kept verbatim as the semantic oracle
// for the CSR rewrite.
func hashFilterReference(g *uncertain.Graph, t int) *uncertain.Graph {
	if t < 3 {
		return g
	}
	n := g.NumVertices()
	adj := make([]map[int32]float64, n)
	for u := 0; u < n; u++ {
		row, probs := g.Adjacency(u)
		adj[u] = make(map[int32]float64, len(row))
		for i, v := range row {
			adj[u][v] = probs[i]
		}
	}
	commonCount := func(u, v int32) int {
		a, b := adj[u], adj[v]
		if len(a) > len(b) {
			a, b = b, a
		}
		c := 0
		for w := range a {
			if _, ok := b[w]; ok {
				c++
			}
		}
		return c
	}
	removeEdge := func(u, v int32) {
		delete(adj[u], v)
		delete(adj[v], u)
	}
	for changed := true; changed; {
		changed = false
		for u := int32(0); u < int32(n); u++ {
			for v := range adj[u] {
				if u < v && commonCount(u, v) < t-2 {
					removeEdge(u, v)
					changed = true
				}
			}
		}
		for u := int32(0); u < int32(n); u++ {
			if len(adj[u]) == 0 {
				continue
			}
			qualified := 0
			for v := range adj[u] {
				if commonCount(u, v) >= t-2 {
					qualified++
				}
			}
			if qualified < t-1 {
				for v := range adj[u] {
					removeEdge(u, v)
				}
				changed = true
			}
		}
	}
	b := uncertain.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v, p := range adj[u] {
			if u < v {
				_ = b.AddEdge(int(u), int(v), p)
			}
		}
	}
	return b.Build()
}

// TestCSRFilterMatchesHashReference drives the CSR prefilter against the
// old hash-map implementation on random graphs: identical surviving edge
// sets and probabilities for every threshold.
func TestCSRFilterMatchesHashReference(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		g := randomDyadic(8+rng.Intn(30), 0.15+0.7*rng.Float64(), rng)
		for _, minSize := range []int{3, 4, 5, 7} {
			want := hashFilterReference(g, minSize)
			got := mustFilter(t, g, minSize)
			if !reflect.DeepEqual(got.Edges(), want.Edges()) {
				t.Fatalf("trial %d t=%d: CSR filter diverges from hash reference\ngot  %v\nwant %v",
					trial, minSize, got.Edges(), want.Edges())
			}
		}
	}
}
