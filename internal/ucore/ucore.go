// Package ucore implements (k,η)-core decomposition of uncertain graphs —
// the dense-substructure direction the paper names as future work (§6,
// "various dense substructures … k-cores. Finding these dense substructures
// in the context of uncertain graphs can be an important future direction").
//
// Following Bonchi et al., the η-degree of a vertex v is the largest k such
// that v has at least k incident edges present simultaneously with
// probability ≥ η — formally, Pr[deg(v) ≥ k] ≥ η under the Poisson-binomial
// distribution of v's incident edges. The (k,η)-core is the largest induced
// subgraph in which every vertex has η-degree ≥ k within the subgraph, and
// the η-core number of v is the largest k such that v belongs to the
// (k,η)-core. The decomposition peels vertices of minimum η-degree exactly
// like the deterministic k-core algorithm.
package ucore

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Config tunes a core decomposition run.
type Config struct {
	// Budget, when > 0, bounds the number of η-degree recomputations (the
	// O(d²) Poisson-binomial DPs that dominate the cost) the run may
	// perform before aborting with core.ErrBudget.
	Budget int64
	// Stall, when > 0, arms the stall watchdog: a run whose progress beacon
	// (stamped by every run-control poll) does not advance for this long is
	// aborted with an error wrapping core.ErrStalled.
	Stall time.Duration
}

// Stats reports the work performed by a core decomposition run.
type Stats struct {
	Status     core.RunStatus // how the run ended (complete, stopped, canceled, …)
	Recomputes int64          // η-degree recomputations (the charged work unit)
	Emitted    int64          // vertices reported with a final core number
	Degeneracy int            // largest core number seen so far
}

// VertexCore reports the η-core number of one vertex.
type VertexCore struct {
	V    int // vertex ID
	Core int // largest k such that v is in the (k,η)-core
}

// Visitor receives one vertex with its final η-core number, in peel order
// (non-decreasing core number). Returning false stops the peeling early.
type Visitor func(VertexCore) bool

// abortCheckInterval is how many η-degree recomputations pass between
// run-control polls. Each recompute is an O(d²) DP — far heavier than a
// clique search node — so the cadence is finer than the clique kernel's
// 1024-node interval.
const abortCheckInterval = 64

// DegreeTail returns Pr[deg ≥ k] where deg is the sum of independent
// Bernoulli variables with the given success probabilities (the
// Poisson-binomial tail). Computed by the standard O(d²) dynamic program.
func DegreeTail(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	d := len(probs)
	if k > d {
		return 0
	}
	// dist[j] = Pr[deg = j] over the first i probabilities.
	dist := make([]float64, d+1)
	dist[0] = 1
	for i, p := range probs {
		// Walk downward so each probability is applied once.
		for j := i + 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-p) + dist[j-1]*p
		}
		dist[0] *= 1 - p
	}
	tail := 0.0
	for j := k; j <= d; j++ {
		tail += dist[j]
	}
	return tail
}

// EtaDegree returns the largest k with Pr[deg ≥ k] ≥ eta (0 if none).
// The tail is non-increasing in k, so binary search would work; the DP
// already yields the full distribution, so a linear scan over the cumulative
// tail is used instead.
func EtaDegree(probs []float64, eta float64) int {
	if eta <= 0 || eta > 1 {
		panic("ucore: eta must be in (0,1]")
	}
	d := len(probs)
	if d == 0 {
		return 0
	}
	dist := make([]float64, d+1)
	dist[0] = 1
	for i, p := range probs {
		for j := i + 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-p) + dist[j-1]*p
		}
		dist[0] *= 1 - p
	}
	// Accumulate the tail from the top; the largest k whose tail reaches eta
	// is the η-degree.
	tail := 0.0
	for k := d; k >= 1; k-- {
		tail += dist[k]
		if tail >= eta {
			return k
		}
	}
	return 0
}

// Decomposition holds the result of an η-core decomposition.
type Decomposition struct {
	// CoreNumber[v] is the largest k such that v is in the (k,η)-core.
	CoreNumber []int
	// Degeneracy is the largest core number present.
	Degeneracy int
	// Order is the peeling order (vertices in non-decreasing core number).
	Order []int
}

// peeler carries the mutable min-peeling state and the run control.
type peeler struct {
	eta     float64
	adj     []map[int32]float64
	stats   *Stats
	ctl     *core.RunControl
	tick    int
	stopped bool
}

// countRecompute accounts one η-degree recomputation and polls the run
// control on the interval; it returns true when the run must unwind.
func (p *peeler) countRecompute() bool {
	p.stats.Recomputes++
	p.tick--
	if p.tick > 0 {
		return false
	}
	p.tick = abortCheckInterval
	if p.ctl.Poll(abortCheckInterval) {
		p.stopped = true
		return true
	}
	return false
}

// Validate checks the (graph, eta, config) triple every decomposition entry
// point accepts, returning the first violation wrapped around the matching
// sentinel (core.ErrNilGraph, core.ErrEtaRange, core.ErrConfig). The k of a
// specific core is validated by CoreContext (core.ErrKRange).
func Validate(g *uncertain.Graph, eta float64, cfg Config) error {
	return validateCoreArgs(g, eta, cfg)
}

func validateCoreArgs(g *uncertain.Graph, eta float64, cfg Config) error {
	if g == nil {
		return fmt.Errorf("ucore: %w", core.ErrNilGraph)
	}
	if !(eta > 0 && eta <= 1) { // also rejects NaN
		return fmt.Errorf("ucore: eta %v outside (0,1]: %w", eta, core.ErrEtaRange)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("ucore: negative Budget %d: %w", cfg.Budget, core.ErrConfig)
	}
	if cfg.Stall < 0 {
		return fmt.Errorf("ucore: negative Stall %v: %w", cfg.Stall, core.ErrConfig)
	}
	return nil
}

// finish records the terminal status on stats and formats the abort error.
func finish(ctl *core.RunControl, stats *Stats, visitorStopped bool) error {
	stats.Status = ctl.Status(visitorStopped)
	err := ctl.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("ucore: core decomposition aborted after %d eta-degree recomputes: %w", stats.Recomputes, err)
}

// RunContext performs the η-core decomposition under ctx by min-peeling,
// streaming every vertex with its final core number to visit as it is
// peeled: the core number of the minimum-η-degree vertex is final the
// moment it is removed, so the visitor fires in peel order (non-decreasing
// core number) without waiting for the full decomposition. visit may be nil
// to only count. A visitor returning false stops the peeling early
// (StatusStopped, nil error); a context or budget abort returns an error
// wrapping the cause.
func RunContext(ctx context.Context, g *uncertain.Graph, eta float64, cfg Config, visit Visitor) (Stats, error) {
	var stats Stats
	if err := validateCoreArgs(g, eta, cfg); err != nil {
		return stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	n := g.NumVertices()
	// Mutable adjacency probability lists.
	p := &peeler{eta: eta, adj: make([]map[int32]float64, n), stats: &stats, ctl: ctl, tick: abortCheckInterval}
	for u := 0; u < n; u++ {
		row, probs := g.Adjacency(u)
		p.adj[u] = make(map[int32]float64, len(row))
		for i, v := range row {
			p.adj[u][v] = probs[i]
		}
	}
	etaDeg := make([]int, n)
	for u := 0; u < n && !p.stopped; u++ {
		if p.countRecompute() {
			break
		}
		etaDeg[u] = etaDegreeOf(p.adj[u], eta)
	}
	removed := make([]bool, n)
	current := 0
	visitorStopped := false
	for peeled := 0; peeled < n && !p.stopped && !visitorStopped; peeled++ {
		// Find the unremoved vertex of minimum η-degree. A bucket queue
		// would be asymptotically better; linear selection keeps the
		// recompute-heavy loop simple and is dwarfed by the O(d²) DPs.
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < n; v++ {
			if !removed[v] && etaDeg[v] < bestDeg {
				best, bestDeg = v, etaDeg[v]
			}
		}
		if bestDeg > current {
			current = bestDeg
		}
		if current > stats.Degeneracy {
			stats.Degeneracy = current
		}
		removed[best] = true
		stats.Emitted++
		if visit != nil && !visit(VertexCore{V: best, Core: current}) {
			visitorStopped = true
			break
		}
		for w := range p.adj[best] {
			if removed[w] {
				continue
			}
			delete(p.adj[w], int32(best))
			if p.countRecompute() {
				break
			}
			etaDeg[w] = etaDegreeOf(p.adj[w], eta)
		}
		p.adj[best] = nil
	}
	return stats, finish(ctl, &stats, visitorStopped)
}

// Decompose computes the η-core decomposition of g by min-peeling:
// repeatedly remove a vertex of minimum η-degree, recording max-so-far as
// its core number. Each removal recomputes the η-degree of the affected
// neighbors from their surviving incident probabilities (O(d²) per
// recompute).
func Decompose(g *uncertain.Graph, eta float64) (Decomposition, error) {
	dec, _, err := DecomposeContext(context.Background(), g, eta, Config{})
	return dec, err
}

// DecomposeContext is Decompose under ctx and explicit configuration,
// additionally returning the run's Stats.
func DecomposeContext(ctx context.Context, g *uncertain.Graph, eta float64, cfg Config) (Decomposition, Stats, error) {
	var dec Decomposition
	stats, err := RunContext(ctx, g, eta, cfg, func(vc VertexCore) bool {
		if dec.CoreNumber == nil {
			dec.CoreNumber = make([]int, g.NumVertices())
		}
		dec.CoreNumber[vc.V] = vc.Core
		if vc.Core > dec.Degeneracy {
			dec.Degeneracy = vc.Core
		}
		dec.Order = append(dec.Order, vc.V)
		return true
	})
	if err != nil {
		return Decomposition{}, stats, err
	}
	if dec.CoreNumber == nil { // vertex-less graph
		dec.CoreNumber = []int{}
		dec.Order = []int{}
	}
	return dec, stats, nil
}

func etaDegreeOf(nbrs map[int32]float64, eta float64) int {
	if len(nbrs) == 0 {
		return 0
	}
	// Collect in neighbor-ID order: the Poisson-binomial DP is mathematically
	// order-independent, but float rounding is not, and a map-order sum could
	// make near-boundary η-degrees nondeterministic across runs.
	ids := make([]int32, 0, len(nbrs))
	for v := range nbrs {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	probs := make([]float64, len(ids))
	for i, v := range ids {
		probs[i] = nbrs[v]
	}
	return EtaDegree(probs, eta)
}

// Core returns the vertices of the (k,η)-core: the maximal induced subgraph
// where every vertex keeps η-degree ≥ k. Derived from the decomposition.
// k must be non-negative (every vertex is vacuously in the (0,η)-core).
func Core(g *uncertain.Graph, k int, eta float64) ([]int, error) {
	verts, _, err := CoreContext(context.Background(), g, k, eta, Config{})
	return verts, err
}

// CoreContext is Core under ctx and explicit configuration, additionally
// returning the run's Stats.
func CoreContext(ctx context.Context, g *uncertain.Graph, k int, eta float64, cfg Config) ([]int, Stats, error) {
	if k < 0 {
		return nil, Stats{}, fmt.Errorf("ucore: negative k %d: %w", k, core.ErrKRange)
	}
	dec, stats, err := DecomposeContext(ctx, g, eta, cfg)
	if err != nil {
		return nil, stats, err
	}
	var verts []int
	for v, c := range dec.CoreNumber {
		if c >= k {
			verts = append(verts, v)
		}
	}
	return verts, stats, nil
}
