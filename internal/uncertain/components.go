package uncertain

import "sort"

// ExpectedDegree returns the expected degree of u in a sampled world:
// the sum of its incident edge probabilities.
func (g *Graph) ExpectedDegree(u int) float64 {
	_, probs := g.Adjacency(u)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	return sum
}

// Components returns the connected components of the support graph (V, E),
// each as an ascending vertex list, ordered by smallest member. Isolated
// vertices form singleton components. Support connectivity is the coarsest
// possible pruning unit for clique enumeration: no clique spans two
// components, so large inputs can be mined component by component.
func (g *Graph) Components() [][]int {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			row, _ := g.Adjacency(int(u))
			for _, v := range row {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
					members = append(members, int(v))
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// ComponentOf returns the vertices of u's support component, ascending.
func (g *Graph) ComponentOf(u int) []int {
	for _, comp := range g.Components() {
		for _, v := range comp {
			if v == u {
				return comp
			}
		}
	}
	return nil
}
