package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy retries ErrAdmission rejections with jittered exponential
// backoff before surfacing the rejection to the caller. The zero value (and
// any MaxAttempts < 2) disables retrying: one attempt, no sleeping.
//
// Attempt n (n ≥ 1) sleeps delay_n before re-admitting, where the undithered
// delay doubles from BaseDelay and saturates at MaxDelay, and Jitter ∈ [0, 1]
// subtracts a uniform share of the span above BaseDelay:
//
//	d       = min(MaxDelay, BaseDelay · 2^(n-1))
//	delay_n = d − Jitter · U[0,1) · (d − BaseDelay)
//
// Jitter pulls delays downward only, so every delay stays within
// [BaseDelay, MaxDelay] — full-deterministic at Jitter 0, decorrelated across
// competing clients at Jitter 1. Context cancellation always wins over a
// pending backoff sleep.
type RetryPolicy struct {
	// MaxAttempts is the total number of admission attempts (the first try
	// included). Values < 2 mean no retries.
	MaxAttempts int
	// BaseDelay is the first backoff sleep; non-positive values fall back to
	// 1ms. It is also the floor every jittered delay respects.
	BaseDelay time.Duration
	// MaxDelay saturates the exponential doubling; values below BaseDelay
	// (zero included) mean "BaseDelay" — constant backoff.
	MaxDelay time.Duration
	// Jitter in [0, 1] scales the random downward dithering; values outside
	// the range are clamped.
	Jitter float64
}

// enabled reports whether the policy asks for any retrying at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// delay computes the backoff before retry attempt n (1-based), using u ∈
// [0, 1) as the jitter draw. Clamping lives here rather than in a validation
// step so every policy value — fuzzer-generated ones included — yields a
// delay inside [BaseDelay, MaxDelay].
func (p RetryPolicy) delay(n int, u float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxDelay
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < n; i++ {
		if d >= max/2 {
			// Doubling once more would pass (or overflow past) the cap.
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	// The !(x >= 0) form also catches NaN, which would otherwise slip through
	// both comparisons and poison the duration arithmetic.
	j := p.Jitter
	if !(j >= 0) {
		j = 0
	} else if j > 1 {
		j = 1
	}
	if !(u >= 0) {
		u = 0
	} else if u >= 1 {
		// Keep the draw strictly below 1 so a full-jitter delay still sits
		// fractionally above BaseDelay rather than rounding under it.
		u = 1 - 1e-9
	}
	return d - time.Duration(j*u*float64(d-base))
}

// sleepCtx sleeps for d or until ctx fires, whichever comes first, returning
// the context error on cancellation. An already-fired context wins even over
// a zero (or sub-scheduler-tick) delay — without the priority check, select
// would choose randomly between an expired timer and a closed Done channel.
func sleepCtx(ctx context.Context, d time.Duration) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// run drives the retry loop over an abstract admit attempt; factored out of
// AdmitWithRetry so the fuzz harness can substitute scripted rejection
// sequences, a recording sleeper, and a deterministic jitter source. Only
// ErrAdmission outcomes retry; attempts reports how many admit calls ran.
func (p RetryPolicy) run(
	ctx context.Context,
	admit func() (func(), error),
	sleep func(context.Context, time.Duration) error,
	jitter func() float64,
) (release func(), attempts int, err error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for n := 1; ; n++ {
		release, err = admit()
		attempts = n
		if err == nil || !errors.Is(err, ErrAdmission) || n >= maxAttempts {
			return release, attempts, err
		}
		if serr := sleep(ctx, p.delay(n, jitter())); serr != nil {
			return nil, attempts, fmt.Errorf("exec: admission retry aborted: %w", serr)
		}
	}
}

// AdmitWithRetry is Admit with a retry policy: ErrAdmission rejections back
// off and re-enter admission up to p.MaxAttempts times. Exhaustion returns
// the last rejection (still matching ErrAdmission); context cancellation
// during a backoff sleep returns the wrapped context error. A disabled
// policy is exactly Admit.
func (x *Executor) AdmitWithRetry(ctx context.Context, tenant string, budget int64, p RetryPolicy) (func(), error) {
	if !p.enabled() {
		return x.Admit(ctx, tenant, budget)
	}
	release, attempts, err := p.run(ctx,
		func() (func(), error) { return x.Admit(ctx, tenant, budget) },
		sleepCtx,
		rand.Float64,
	)
	if attempts > 1 {
		x.amu.Lock()
		x.retried += int64(attempts - 1)
		if err != nil && errors.Is(err, ErrAdmission) {
			x.retryExhausted++
		}
		x.amu.Unlock()
	}
	if err != nil && errors.Is(err, ErrAdmission) {
		return nil, fmt.Errorf("exec: admission retry exhausted after %d attempts: %w", attempts, err)
	}
	return release, err
}
