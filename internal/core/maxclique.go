package core

import (
	"context"
	"runtime/debug"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// MaximumClique returns one maximum-cardinality α-clique of g (ties broken
// by search order) together with its clique probability. It runs the MULE
// search with a dynamic LARGE-MULE-style bound: a branch is cut as soon as
// |C'| + |I'| cannot beat the best clique found so far, which is exactly the
// Algorithm 6 cut with a threshold that tightens during the search. For an
// empty graph it returns (nil, 1).
//
// Note the result is a maximum α-clique, which is necessarily α-maximal;
// enumerating all of them is possible with EnumerateWith and a MinSize of
// the returned size, but a single witness is the common query.
func MaximumClique(g *uncertain.Graph, alpha float64) ([]int, float64, error) {
	return MaximumCliqueContext(context.Background(), g, alpha)
}

// MaximumCliqueContext is MaximumClique under ctx: the branch-and-bound
// search polls the context every abortCheckInterval nodes and returns a
// wrapped context error if it fires before the search space is exhausted.
func MaximumCliqueContext(ctx context.Context, g *uncertain.Graph, alpha float64) ([]int, float64, error) {
	return MaximumCliqueBudget(ctx, g, alpha, 0)
}

// MaximumCliqueBudget is MaximumCliqueContext with a node budget: the
// search aborts with a wrapped ErrBudget after expanding more than budget
// search nodes (0 = unlimited), the same accounting as Config.Budget.
func MaximumCliqueBudget(ctx context.Context, g *uncertain.Graph, alpha float64, budget int64) ([]int, float64, error) {
	if err := Validate(g, alpha, Config{Budget: budget}); err != nil {
		return nil, 0, err
	}
	work := g.PruneAlpha(alpha)
	n := work.NumVertices()
	// bestProb starts at 1: the empty clique has probability 1 by convention.
	// The candidate sets live in a pooled arena under the same watermark
	// discipline as the enumeration kernel: mark per iteration, carve the
	// child's I', release when the subtree returns. Steady state allocates
	// nothing; the arena goes back to its size-class pool on every exit.
	m := &maxSearch{
		g:        work,
		alpha:    alpha,
		bestProb: 1,
		ctl:      NewRunControl(ctx, budget),
		tick:     abortCheckInterval,
		arena:    checkoutArena(n),
	}
	defer returnArena(n, m.arena)
	rootI := m.arena.alloc(n)
	for v := 0; v < n; v++ {
		rootI = rootI.push(int32(v), 1)
	}
	if !m.ctl.Poll(0) {
		// Containment boundary: the search is serial, so a panic below (a
		// latent kernel bug) unwinds here, the deferred arena return still
		// runs, and the caller gets a typed *PanicError instead of a crash.
		func() {
			defer func() {
				if v := recover(); v != nil {
					m.ctl.Abort(NewPanicError(v, debug.Stack()))
				}
			}()
			m.recurse(nil, 1, rootI)
		}()
	}
	var stats Stats
	stats.Calls = m.calls
	if err := m.ctl.finish(&stats, false); err != nil {
		return nil, 0, err
	}
	return m.best, m.bestProb, nil
}

type maxSearch struct {
	g        *uncertain.Graph
	alpha    float64
	best     []int
	bestProb float64
	ctl      *RunControl
	tick     int
	calls    int64
	arena    *entryArena
	stopped  bool
}

// recurse explores like Enum-Uncertain-MC but only tracks the deepest
// α-clique; the X set is unnecessary because maximality testing is not —
// any clique larger than the incumbent improves it regardless of
// maximality status.
func (m *maxSearch) recurse(C []int32, q float64, I entrySet) {
	if m.stopped {
		return
	}
	m.calls++
	m.tick--
	if m.tick <= 0 {
		m.tick = abortCheckInterval
		if m.ctl.Poll(abortCheckInterval) {
			m.stopped = true
			return
		}
	}
	if len(C) > len(m.best) {
		m.best = make([]int, len(C))
		for i, v := range C {
			m.best[i] = int(v)
		}
		m.bestProb = q
	}
	for idx := 0; idx < I.length(); idx++ {
		if m.stopped {
			return
		}
		// Bound: even taking every remaining candidate cannot beat best.
		if len(C)+I.length()-idx <= len(m.best) {
			return
		}
		u, r := I.v[idx], I.r[idx]
		q2 := q * r
		mk := m.arena.mark()
		tail := entrySet{I.v[idx+1:], I.r[idx+1:]}
		I2 := m.generateI(&tail, u, q2)
		if len(C)+1+I2.length() > len(m.best) {
			m.recurse(append(C, u), q2, I2)
		}
		m.arena.release(mk)
	}
}

func (m *maxSearch) generateI(tail *entrySet, u int32, q2 float64) entrySet {
	row, probs := m.g.Adjacency(int(u))
	j := 0
	for j < len(row) && row[j] <= u {
		j++
	}
	maxOut := minInt(tail.length(), len(row)-j)
	out := m.arena.alloc(maxOut)
	i := 0
	for i < tail.length() && j < len(row) {
		switch {
		case tail.v[i] < row[j]:
			i++
		case tail.v[i] > row[j]:
			j++
		default:
			r2 := tail.r[i] * probs[j]
			if q2*r2 >= m.alpha {
				out = out.push(tail.v[i], r2)
			}
			i++
			j++
		}
	}
	m.arena.shrink(maxOut, out.length())
	return out
}
