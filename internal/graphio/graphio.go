// Package graphio reads and writes uncertain graphs in two formats:
//
// Text (extension .ug): line-oriented, human-editable.
//
//	# comment
//	vertices 4
//	0 1 0.5
//	2 3 0.25
//
// The "vertices N" directive is optional; without it the vertex count is
// inferred as max endpoint + 1 (isolated trailing vertices then need the
// directive). Edge lines are "u v p" with 0-based endpoints.
//
// Binary (extension .ugb): "UGRF" magic, format version, then fixed-width
// little-endian records — compact and fast for the larger Table 1 graphs.
//
// JSON (extension .json): {"vertices": N, "edges": [{"u","v","p"}, …]} for
// interchange with external tooling.
//
// Any format gzip-compresses transparently with a ".gz" suffix, and LoadFile
// sniffs compression and format from content rather than trusting the
// extension. Uncertain bipartite graphs (internal/ubiclique) have their own
// text format (extension .ubg) with a "bipartite nL nR" directive.
package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// WriteText writes g in the text format, edges sorted by (U,V).
func WriteText(w io.Writer, g *uncertain.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, strconv.FormatFloat(e.P, 'g', 17, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. It is a wrapper over the streaming
// scanner: edges flow straight into a two-pass CSR build (seekable inputs
// are re-read, others replay a compact spool), so no edge list or adjacency
// map is ever materialized.
func ReadText(r io.Reader) (*uncertain.Graph, error) {
	g, _, err := buildGraph(replayScan(r, scanText))
	return g, err
}

var binaryMagic = [4]byte{'U', 'G', 'R', 'F'}

const binaryVersion uint32 = 1

// WriteBinary writes g in the binary format.
func WriteBinary(w io.Writer, g *uncertain.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []any{binaryVersion, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.U)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.V)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format, streaming records through a two-pass
// CSR build. Header counts are clamped before anything is allocated: the
// declared edge count must fit in the input's remaining bytes when r is
// seekable, and the vertex count may not wildly exceed what the edge count
// could touch, so a corrupt header cannot demand an arbitrary make.
func ReadBinary(r io.Reader) (*uncertain.Graph, error) {
	g, _, err := buildGraph(replayScan(r, func(rr io.Reader, fn EdgeFunc) (Header, error) {
		return scanBinary(rr, remainingBytes(rr), fn)
	}))
	return g, err
}

// SaveFile writes g to path, choosing the format by extension: ".ugb" is
// binary, ".json" is JSON, anything else text. A trailing ".gz" on any of
// these compresses the output transparently (e.g. "graph.ugb.gz").
func SaveFile(path string, g *uncertain.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	base := path
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		base = strings.TrimSuffix(path, ".gz")
		gz = gzip.NewWriter(f)
		w = gz
	}
	switch {
	case strings.HasSuffix(base, ".ugb"):
		err = WriteBinary(w, g)
	case strings.HasSuffix(base, ".json"):
		err = WriteJSON(w, g)
	default:
		err = WriteText(w, g)
	}
	if err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

var gzipMagic = [2]byte{0x1f, 0x8b}

// LoadFile reads a graph from path. The format is sniffed from content, not
// from the extension: gzip streams are decompressed, the "UGRF" magic
// selects the binary decoder, a leading '{' the JSON decoder, and anything
// else the text decoder. It is a thin wrapper over Load.
func LoadFile(path string) (*uncertain.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load decodes a graph from r — an open file, an HTTP request body, a
// bytes.Reader — sniffing gzip compression and the three formats exactly
// like LoadFile; no temporary file is involved.
func Load(r io.Reader) (*uncertain.Graph, error) {
	return ReadAny(r)
}

// ReadAny decodes a graph from r, sniffing gzip compression and the three
// formats as LoadFile does. Load is the preferred name. Like every reader
// here it is a wrapper over ScanEdges: seekable inputs (files, byte
// readers) are parsed twice straight into the final CSR, non-seekable ones
// spool decoded edges compactly for the second pass.
func ReadAny(r io.Reader) (*uncertain.Graph, error) {
	g, _, err := buildGraph(replayScan(r, ScanEdges))
	return g, err
}
