package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCloseIdempotent pins the server-shutdown contract: Close may be called
// any number of times, sequentially or concurrently, and every call returns
// only after the pool has stopped.
func TestCloseIdempotent(t *testing.T) {
	x := New(4)
	x.Close()
	x.Close() // sequential double close

	x = New(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x.Close() // concurrent closes
		}()
	}
	wg.Wait()
}

// TestCloseFailsQueuedAdmissions pins the other half of the shutdown
// contract: waiters parked in an admission queue when Close runs fail with
// ErrAdmission instead of hanging on capacity that will never be released,
// and post-close attempts to queue reject the same way.
func TestCloseFailsQueuedAdmissions(t *testing.T) {
	x := New(2)
	x.SetLimits("t", Limits{MaxInFlight: 1, MaxQueued: 8})

	release, err := x.Admit(context.Background(), "t", 0)
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}

	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := x.Admit(context.Background(), "t", 0)
			errs <- err
		}()
	}
	// Wait until all four are actually queued before closing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		x.amu.Lock()
		queued := len(x.tenants["t"].queue)
		x.amu.Unlock()
		if queued == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", queued, waiters)
		}
		time.Sleep(time.Millisecond)
	}

	x.Close()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrAdmission) {
				t.Fatalf("queued waiter %d: got %v, want ErrAdmission", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("queued waiter %d still hanging after Close", i)
		}
	}

	// Post-close: an over-cap query must reject immediately, never queue.
	if _, err := x.Admit(context.Background(), "t", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("post-close over-cap Admit: got %v, want ErrAdmission", err)
	}
	release() // releasing the pre-close grant after Close must not panic

	s := x.AdmissionStats()
	if s.RejectedClosed != waiters+1 {
		t.Errorf("RejectedClosed = %d, want %d", s.RejectedClosed, waiters+1)
	}
	if got := s.RejectedBudget + s.RejectedQueue + s.RejectedInFlight + s.RejectedClosed; got != s.Rejected {
		t.Errorf("rejection causes sum to %d, want Rejected = %d", got, s.Rejected)
	}
}
