package stats

import (
	"math"
	"testing"
	"time"
)

func TestWelfordKnownSeries(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic series is 4; unbiased = 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator should be zero-valued")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatal("single sample has zero variance")
	}
	if w.Mean() != 3 || w.Min() != 3 || w.Max() != 3 {
		t.Fatal("single sample stats wrong")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive correlation: r = %v", r)
	}
	neg := []float64{40, 30, 20, 10}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative correlation: r = %v", r)
	}
}

func TestPearsonUndefined(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{3})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestTime(t *testing.T) {
	d := Time(func() { time.Sleep(10 * time.Millisecond) })
	if d < 5*time.Millisecond {
		t.Fatalf("Time measured %v for a 10ms sleep", d)
	}
}

func TestSecondsFormatting(t *testing.T) {
	cases := map[time.Duration]string{
		150 * time.Second:       "150s",
		2500 * time.Millisecond: "2.5s",
		42 * time.Millisecond:   "0.042s",
		100 * time.Microsecond:  "0.000100s",
	}
	for d, want := range cases {
		if got := Seconds(d); got != want {
			t.Errorf("Seconds(%v) = %q, want %q", d, got, want)
		}
	}
}
