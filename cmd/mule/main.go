// Command mule enumerates α-maximal cliques from an uncertain graph file.
//
// Usage:
//
//	mule -in graph.ug -alpha 0.5                 # print all α-maximal cliques
//	mule -in graph.ug -alpha 0.1 -minsize 4      # LARGE-MULE: only cliques ≥ 4
//	mule -in graph.ug -alpha 0.5 -count          # count only
//	mule -in graph.ug -alpha 0.5 -top 10         # 10 highest-probability cliques
//	mule -in graph.ugb -alpha 0.5 -workers 8     # parallel work-stealing search
//	mule -in g.ug -alpha 0.5 -workers 8 -engine toplevel  # legacy fan-out
//	mule -in g.ug -alpha 0.5 -timeout 30s        # deadline-bounded run
//	mule -in g.ug -alpha 0.5 -limit 1000         # stop after 1000 cliques
//	mule -in g.ug -alpha 0.5 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The command is built on mule.NewQuery, so every run is cancellable:
// -timeout bounds the wall clock, and SIGINT/SIGTERM abort the enumeration
// cleanly — buffered output and the stats line are flushed with whatever
// was found so far, and the process exits with status 130 (interrupt) or
// 124 (deadline) instead of dying mid-write.
//
// With -workers > 1 the search runs on the work-stealing engine by default;
// -engine toplevel selects the legacy top-level fan-out and -granularity
// tunes how small a subtree may be published for stealing. Each output line
// is "p<TAB>v1 v2 v3 …". The input format is described in internal/graphio
// (text: "u v p" lines; binary: .ugb).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/graphio"
)

// Exit statuses for aborted runs, matching shell conventions (128+SIGINT
// and timeout(1) respectively).
const (
	exitInterrupted = 130
	exitDeadline    = 124
)

func main() {
	ctx, stop := signalContext(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mule:", err)
	switch {
	case errors.Is(err, context.Canceled):
		os.Exit(exitInterrupted)
	case errors.Is(err, context.DeadlineExceeded):
		os.Exit(exitDeadline)
	default:
		os.Exit(1)
	}
}

// signalContext returns a context canceled on SIGINT or SIGTERM, so an
// interrupted enumeration unwinds through the query layer (flushing stats
// and partial output) instead of being killed mid-write.
func signalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mule", flag.ContinueOnError)
	var (
		in          = fs.String("in", "", "input graph file (.ug text or .ugb binary; required)")
		alpha       = fs.Float64("alpha", 0.5, "probability threshold α in (0,1]")
		minSize     = fs.Int("minsize", 0, "enumerate only cliques with at least this many vertices (LARGE-MULE)")
		workers     = fs.Int("workers", 0, "parallel workers (0 = serial)")
		engine      = fs.String("engine", "worksteal", "parallel engine: worksteal|toplevel")
		granularity = fs.Int("granularity", 0, "work-stealing steal granularity (0 = default)")
		ordering    = fs.String("order", "natural", "vertex ordering: natural|degree|degeneracy|random")
		intersect   = fs.String("intersect", "adaptive", "intersection kernel: adaptive|sorted|bitset (forced modes are ablation-only; output is identical)")
		countOnly   = fs.Bool("count", false, "print only the number of α-maximal cliques")
		top         = fs.Int("top", 0, "print only the k highest-probability α-maximal cliques")
		limit       = fs.Int64("limit", 0, "stop after this many cliques (0 = no limit)")
		budget      = fs.Int64("budget", 0, "abort after this many search-tree nodes (0 = no budget)")
		timeout     = fs.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		quiet       = fs.Bool("quiet", false, "suppress the stats line on stderr")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	ord, err := parseOrdering(*ordering)
	if err != nil {
		return err
	}
	mode, err := parseEngine(*engine)
	if err != nil {
		return err
	}
	imode, err := parseIntersect(*intersect)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	g, err := graphio.LoadFile(*in)
	if err != nil {
		return err
	}
	q, err := mule.NewQuery(g, *alpha,
		mule.WithMinSize(*minSize),
		mule.WithWorkers(*workers),
		mule.WithParallelMode(mode),
		mule.WithStealGranularity(*granularity),
		mule.WithOrdering(ord),
		mule.WithIntersect(imode),
		mule.WithLimit(*limit),
		mule.WithBudget(*budget),
	)
	if err != nil {
		return err
	}

	start := time.Now()
	w := bufio.NewWriter(out)
	defer w.Flush()

	if *top > 0 {
		scored, terr := q.TopK(ctx, *top, mule.ByProb)
		if terr != nil {
			return terr
		}
		for _, sc := range scored {
			printClique(w, sc.Vertices, sc.Prob)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "top-%d of α=%g maximal cliques in %s (n=%d m=%d)\n",
				*top, *alpha, time.Since(start).Round(time.Millisecond), g.NumVertices(), g.NumEdges())
		}
		return writeMemProfile(*memprofile)
	}

	var visit mule.Visitor
	if !*countOnly {
		visit = func(c []int, p float64) bool {
			printClique(w, c, p)
			return true
		}
	}
	stats, runErr := q.Run(ctx, visit)
	if *countOnly {
		fmt.Fprintf(w, "%d\n", stats.Emitted)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"%d α-maximal cliques (α=%g, max size %d, %s) in %s; %d search calls, %d edges pruned\n",
			stats.Emitted, *alpha, stats.MaxCliqueSize, stats.Status,
			time.Since(start).Round(time.Millisecond), stats.Calls, stats.PrunedEdges)
	}
	if runErr != nil {
		// Flush what we have before surfacing the abort: a canceled run
		// still reports its partial output and the stats line above.
		w.Flush()
		if merr := writeMemProfile(*memprofile); merr != nil {
			return merr
		}
		return runErr
	}
	return writeMemProfile(*memprofile)
}

// writeMemProfile dumps a heap profile after a final GC so kernel
// regressions (e.g. the arena losing its steady state) can be diagnosed
// straight from a mule run, without editing code. No-op for an empty path.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the steady-state picture, not transient garbage
	return pprof.WriteHeapProfile(f)
}

func printClique(w *bufio.Writer, c []int, p float64) {
	fmt.Fprintf(w, "%.9g\t", p)
	for i, v := range c {
		if i > 0 {
			w.WriteByte(' ')
		}
		fmt.Fprintf(w, "%d", v)
	}
	w.WriteByte('\n')
}

func parseEngine(s string) (mule.ParallelMode, error) {
	switch strings.ToLower(s) {
	case "worksteal", "workstealing":
		return mule.ParallelWorkStealing, nil
	case "toplevel", "top-level":
		return mule.ParallelTopLevel, nil
	default:
		return 0, fmt.Errorf("unknown parallel engine %q", s)
	}
}

func parseIntersect(s string) (mule.IntersectMode, error) {
	switch strings.ToLower(s) {
	case "adaptive":
		return mule.IntersectAdaptive, nil
	case "sorted":
		return mule.IntersectSorted, nil
	case "bitset":
		return mule.IntersectBitset, nil
	default:
		return 0, fmt.Errorf("unknown intersect mode %q", s)
	}
}

func parseOrdering(s string) (mule.Ordering, error) {
	switch strings.ToLower(s) {
	case "natural":
		return mule.OrderNatural, nil
	case "degree":
		return mule.OrderDegree, nil
	case "degeneracy":
		return mule.OrderDegeneracy, nil
	case "random":
		return mule.OrderRandom, nil
	default:
		return 0, fmt.Errorf("unknown ordering %q", s)
	}
}
