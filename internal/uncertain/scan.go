package uncertain

import (
	"fmt"
	"math"
)

// EdgeScan feeds a stream of probabilistic edges to emit, one call per edge,
// and returns the graph's vertex count (declared by the input, or inferred by
// the producer as max endpoint + 1). An error returned by emit must be
// propagated back unchanged.
//
// The scan must be replayable: FromEdgeScanner invokes it twice — a counting
// pass and a fill pass — and both invocations must produce the same edges in
// the same order and report the same vertex count. File-backed scanners
// replay by re-reading the file; in-memory scanners replay a buffered edge
// list.
type EdgeScan func(emit func(u, v int, p float64) error) (n int, err error)

// errUnstableScan reports an EdgeScan whose two passes disagreed.
func errUnstableScan() error {
	return fmt.Errorf("uncertain: edge scanner is not replayable: passes disagree")
}

// FromEdgeScanner builds a Graph directly into its final CSR form from a
// replayable edge stream, without materializing an edge list or a Builder
// hash map: the first pass validates each edge and counts per-vertex degrees,
// the second fills the adjacency arrays in place. Peak memory beyond the
// finished CSR is one int32 per vertex. Duplicate edges are detected after
// the per-row sort (adjacent equal neighbors) and reported as a wrapped
// ErrDuplicateEdge, matching Builder.AddEdge semantics.
func FromEdgeScanner(scan EdgeScan) (*Graph, error) {
	// Pass 1: validate endpoints and probabilities, count degrees. The degree
	// array grows with the largest endpoint seen; the scanner's vertex count
	// (unknown until the pass completes) extends it afterwards, so declared
	// isolated vertices cost nothing during the scan.
	var deg []int32
	edges := int64(0)
	maxV := -1
	n, err := scan(func(u, v int, p float64) error {
		if u == v {
			return fmt.Errorf("uncertain: edge {%d,%d}: %w", u, v, ErrSelfLoop)
		}
		if u < 0 || v < 0 {
			return fmt.Errorf("uncertain: edge {%d,%d}: negative endpoint: %w", u, v, ErrVertexRange)
		}
		if err := validProb(p); err != nil {
			return err
		}
		hi := u
		if v > hi {
			hi = v
		}
		if hi > maxV {
			maxV = hi
		}
		if hi >= len(deg) {
			grown := make([]int32, hi+1)
			copy(grown, deg)
			deg = grown
		}
		deg[u]++
		deg[v]++
		edges++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxV + 1
	}
	if maxV >= n {
		return nil, fmt.Errorf("uncertain: edge endpoint %d outside [0,%d): %w", maxV, n, ErrVertexRange)
	}
	if 2*edges > math.MaxInt32 {
		return nil, fmt.Errorf("uncertain: %d edges exceed the CSR index range", edges)
	}
	if len(deg) < n {
		grown := make([]int32, n)
		copy(grown, deg)
		deg = grown
	}

	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	nbrs := make([]int32, offsets[n])
	probs := make([]float64, offsets[n])

	// Pass 2: fill. deg doubles as the per-row fill cursor; the offsets
	// array bounds every write, so a scanner that emits different edges on
	// replay is caught instead of corrupting neighbor rows.
	for i := range deg {
		deg[i] = 0
	}
	edges2 := int64(0)
	n2, err := scan(func(u, v int, p float64) error {
		if u < 0 || u >= n || v < 0 || v >= n {
			return errUnstableScan()
		}
		iu := offsets[u] + deg[u]
		iv := offsets[v] + deg[v]
		if iu >= offsets[u+1] || iv >= offsets[v+1] {
			return errUnstableScan()
		}
		nbrs[iu], probs[iu] = int32(v), p
		deg[u]++
		nbrs[iv], probs[iv] = int32(u), p
		deg[v]++
		edges2++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n2 >= 0 && n2 != n {
		return nil, errUnstableScan()
	}
	if edges2 != edges {
		return nil, errUnstableScan()
	}

	g := &Graph{n: n, offsets: offsets, nbrs: nbrs, probs: probs}
	g.sortRows()
	for u := 0; u < n; u++ {
		row := nbrs[offsets[u]:offsets[u+1]]
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("uncertain: edge {%d,%d}: %w", u, row[i], ErrDuplicateEdge)
			}
		}
	}
	return g, nil
}
