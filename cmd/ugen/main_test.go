package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/uncertain-graphs/mule/internal/graphio"
)

func TestGenerateTopologyBA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ba.ug")
	if err := run([]string{"-topology", "ba", "-n", "200", "-m", "3", "-seed", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 || g.NumEdges() != (200-3)*3 {
		t.Fatalf("ba graph n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGenerateTopologyGNPWithConstProbs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gnp.ugb")
	if err := run([]string{"-topology", "gnp", "-n", "100", "-p", "0.1", "-probs", "const:0.8", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.P != 0.8 {
			t.Fatalf("edge probability %v, want 0.8", e.P)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ppi.ug")
	if err := run([]string{"-dataset", "Fruit-Fly", "-seed", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3751 || g.NumEdges() != 3692 {
		t.Fatalf("dataset sizes n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestDatasetNameCaseInsensitive(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.ug")
	if err := run([]string{"-dataset", "fruit-fly", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{},                  // no mode
		{"-topology", "ba"}, // missing -out
		{"-dataset", "nope", "-out", filepath.Join(dir, "x.ug")},
		{"-topology", "nope", "-out", filepath.Join(dir, "x.ug")},
		{"-topology", "gnp", "-probs", "wat", "-out", filepath.Join(dir, "x.ug")},
		{"-topology", "gnp", "-probs", "const:z", "-out", filepath.Join(dir, "x.ug")},
		{"-topology", "gnp", "-probs", "beta:1", "-out", filepath.Join(dir, "x.ug")},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestProbParsers(t *testing.T) {
	for _, ok := range []string{"uniform", "dyadic", "const:0.5", "beta:2:5"} {
		if _, err := parseProbs(ok); err != nil {
			t.Errorf("parseProbs(%q) failed: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "const", "const:x", "beta", "beta:a:b", "zipf"} {
		if _, err := parseProbs(bad); err == nil {
			t.Errorf("parseProbs(%q) should fail", bad)
		}
	}
}

func TestAffinityBipartiteOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aff.ubg")
	if err := run([]string{"-topology", "affinity", "-n", "50", "-nright", "40",
		"-blocks", "3", "-seed", "9", "-out", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bg, err := graphio.ReadBipartiteText(f)
	if err != nil {
		t.Fatal(err)
	}
	if bg.NumLeft() != 50 || bg.NumRight() != 40 {
		t.Fatalf("sides %dx%d, want 50x40", bg.NumLeft(), bg.NumRight())
	}
	if bg.NumEdges() == 0 {
		t.Fatal("affinity graph has no edges")
	}
}
