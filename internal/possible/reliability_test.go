package possible

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func TestConnectedProbTrivial(t *testing.T) {
	g := triangleGraph(0.5, 0.5, 0.5)
	rng := rand.New(rand.NewSource(1))
	if got := ConnectedProbMC(g, nil, 10, rng); got != 1 {
		t.Fatalf("empty set reliability = %v", got)
	}
	if got := ConnectedProbMC(g, []int{1}, 10, rng); got != 1 {
		t.Fatalf("singleton reliability = %v", got)
	}
}

func TestExactConnectedProbPath(t *testing.T) {
	// Path 0-1-2: {0,1,2} connected iff both edges present: 0.5·0.8 = 0.4.
	g, _ := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.8},
	})
	got, err := ExactConnectedProbByWorlds(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("path reliability = %v, want 0.4", got)
	}
}

func TestExactConnectedProbTriangle(t *testing.T) {
	// Triangle with all p: connected unless ≥ 2 edges missing.
	// P = 3p²(1-p) + p³ ... plus exactly-two-edges cases:
	// connected configurations: all 3 edges (p³) or any 2 edges (3p²(1-p)).
	p := 0.5
	g := triangleGraph(p, p, p)
	got, err := ExactConnectedProbByWorlds(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(p, 3) + 3*math.Pow(p, 2)*(1-p)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("triangle reliability = %v, want %v", got, want)
	}
}

func TestConnectedProbMCMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(2)
		b := uncertain.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.7 {
					_ = b.AddEdge(u, v, 0.2+0.7*rng.Float64())
				}
			}
		}
		g := b.Build()
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		exact, err := ExactConnectedProbByWorlds(g, set)
		if err != nil {
			continue // too many induced edges this trial
		}
		const samples = 20000
		mc := ConnectedProbMC(g, set, samples, rng)
		if math.Abs(mc-exact) > 5*MCConfidenceRadius(samples, 1) {
			t.Fatalf("trial %d: MC %v vs exact %v", trial, mc, exact)
		}
	}
}

// The related-work contrast the paper draws (§1.2): a set can be highly
// reliable (connected) while being a terrible clique.
func TestReliabilityVersusCliqueProbability(t *testing.T) {
	// Star: center 0 with 4 certain spokes. Connected with probability 1,
	// clique probability 0 (no spoke-to-spoke edges).
	b := uncertain.NewBuilder(5)
	for v := 1; v < 5; v++ {
		_ = b.AddEdge(0, v, 1.0)
	}
	g := b.Build()
	set := []int{0, 1, 2, 3, 4}
	rel, err := ExactConnectedProbByWorlds(g, set)
	if err != nil {
		t.Fatal(err)
	}
	if rel != 1 {
		t.Fatalf("star reliability = %v, want 1", rel)
	}
	if clq := g.CliqueProb(set); clq != 0 {
		t.Fatalf("star clique probability = %v, want 0", clq)
	}
	// And in general reliability dominates clique probability.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		bb := uncertain.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				_ = bb.AddEdge(u, v, 0.1+0.8*rng.Float64())
			}
		}
		gg := bb.Build()
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		rel, err := ExactConnectedProbByWorlds(gg, set)
		if err != nil {
			t.Fatal(err)
		}
		if clq := gg.CliqueProb(set); rel < clq-1e-12 {
			t.Fatalf("reliability %v below clique probability %v", rel, clq)
		}
	}
}

func TestConnectedProbMCPanics(t *testing.T) {
	g := triangleGraph(0.5, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero samples")
		}
	}()
	ConnectedProbMC(g, []int{0, 1}, 0, nil)
}
