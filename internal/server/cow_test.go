package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/graphio"
)

// cowBase builds the base graph for the copy-on-write test: a 10-vertex
// path, which the batches progressively thicken into triangles.
func cowBase(t *testing.T) *mule.Graph {
	t.Helper()
	var edges []mule.Edge
	for i := 0; i < 9; i++ {
		edges = append(edges, mule.Edge{U: i, V: i + 1, P: 0.8})
	}
	g, err := mule.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cowBatches are the update batches the writer applies, in order.
func cowBatches() [][]mule.EdgeUpdate {
	var batches [][]mule.EdgeUpdate
	for k := 0; k < 8; k++ {
		batches = append(batches, []mule.EdgeUpdate{{U: k, V: k + 2, P: 0.9}})
	}
	return batches
}

// mineJSON produces the exact results bytes the query handler would serve
// for g, by running the same parse → runner → marshal pipeline.
func mineJSON(t *testing.T, g *mule.Graph, ex *mule.Executor) []byte {
	t.Helper()
	p, err := parseQueryParams(url.Values{"miner": {"cliques"}, "alpha": {"0.5"}, "nocache": {"true"}})
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.newRunner(&Snapshot{Graph: g}, ex, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := run(context.Background())
	if out.err != nil {
		t.Fatal(out.err)
	}
	raw, err := json.Marshal(out.results)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestApplySnapshotSwapRace is the copy-on-write pin: while a writer
// commits update batches (each bumping the epoch), concurrent readers on
// uncached queries must each see results byte-identical to the precomputed
// answer for the epoch their response reports — never a torn graph, never a
// mix of epochs. Run under -race this also proves the swap is data-race
// free. The goroutine count is checked back to baseline at the end.
func TestApplySnapshotSwapRace(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, ts := newTestServer(t)
	batches := cowBatches()

	// Precompute the expected results bytes per epoch by replaying the
	// batches on a private maintainer. Epochs are deterministic: the load
	// is 1, each committed batch adds one.
	expected := map[uint64][]byte{}
	base := cowBase(t)
	expected[1] = mineJSON(t, base, s.Executor())
	m, err := mule.NewMaintainer(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range batches {
		if _, _, err := m.Apply(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		expected[uint64(i)+2] = mineJSON(t, m.Graph(), s.Executor())
	}

	var buf bytes.Buffer
	if err := graphio.WriteText(&buf, base); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := do(t, "POST", ts.URL+"/graphs/cow", buf.Bytes()); code != http.StatusOK {
		t.Fatalf("load: %d %s", code, body)
	}

	queryURL := ts.URL + "/graphs/cow/query?miner=cliques&alpha=0.5&nocache=true"
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for !done.Load() {
				resp, err := client.Get(queryURL)
				if err != nil {
					errc <- err
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				want, ok := expected[qr.Epoch]
				if !ok {
					errc <- fmt.Errorf("reader saw unknown epoch %d", qr.Epoch)
					return
				}
				if !bytes.Equal(qr.Results, want) {
					errc <- fmt.Errorf("epoch %d: results diverge:\ngot  %s\nwant %s", qr.Epoch, qr.Results, want)
					return
				}
			}
		}()
	}

	for i, batch := range batches {
		ups := make([]edgeUpdateJSON, len(batch))
		for j, u := range batch {
			ups[j] = edgeUpdateJSON{U: u.U, V: u.V, P: u.P, Remove: u.Remove}
		}
		body, err := json.Marshal(applyRequest{Updates: ups})
		if err != nil {
			t.Fatal(err)
		}
		code, out, _ := do(t, "POST", ts.URL+"/graphs/cow/apply", body)
		if code != http.StatusOK {
			t.Fatalf("apply %d: %d %s", i, code, out)
		}
		var ar applyResponse
		if err := json.Unmarshal(out, &ar); err != nil {
			t.Fatal(err)
		}
		if want := uint64(i) + 2; ar.Epoch != want {
			t.Fatalf("apply %d: epoch %d, want %d", i, ar.Epoch, want)
		}
		// Let readers overlap this epoch before the next swap.
		time.Sleep(2 * time.Millisecond)
	}

	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	ts.Close()
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
