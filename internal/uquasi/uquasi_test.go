package uquasi

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// randomDyadic builds a G(n, density) uncertain graph with power-of-two
// probabilities so threshold comparisons are float-exact.
func randomDyadic(n int, density float64, rng *rand.Rand) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	vals := []float64{1, 0.5, 0.25}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, vals[rng.Intn(len(vals))])
			}
		}
	}
	return b.Build()
}

// bruteMaximal enumerates maximal expected γ-quasi-cliques by scanning all
// subsets — the ground-truth oracle (n ≤ 16).
func bruteMaximal(g *uncertain.Graph, gamma float64, minSize, maxSize int) [][]int {
	n := g.NumVertices()
	var all [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if len(set) < minSize {
			continue
		}
		if maxSize > 0 && len(set) > maxSize {
			continue
		}
		if IsExpectedQuasiClique(g, set, gamma) {
			all = append(all, set)
		}
	}
	var out [][]int
	for i, s := range all {
		dominated := false
		for j, t := range all {
			if i != j && len(t) > len(s) && subsetOf(s, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	sortSets(out)
	return out
}

func TestExpectedDegree(t *testing.T) {
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.25}, {U: 1, V: 2, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := ExpectedDegree(g, []int{0, 1, 2}, 0); d != 0.75 {
		t.Errorf("ExpectedDegree(0) = %v, want 0.75", d)
	}
	if d := ExpectedDegree(g, []int{0, 1, 2}, 1); d != 1.5 {
		t.Errorf("ExpectedDegree(1) = %v, want 1.5", d)
	}
	// Vertex 3 is isolated.
	if d := ExpectedDegree(g, []int{0, 1, 2}, 3); d != 0 {
		t.Errorf("ExpectedDegree(3) = %v, want 0", d)
	}
	// v inside set is skipped, outside membership irrelevant.
	if d := ExpectedDegree(g, []int{1, 2}, 0); d != 0.75 {
		t.Errorf("ExpectedDegree over {1,2} from 0 = %v, want 0.75", d)
	}
}

func TestIsExpectedQuasiCliqueHandComputed(t *testing.T) {
	// Triangle 0-1-2 with certain edges plus a weak pendant 2-3.
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsExpectedQuasiClique(g, []int{0, 1, 2}, 1) {
		t.Error("certain triangle rejected at γ=1")
	}
	// With vertex 3: |S|=4 needs expected degree ≥ 0.5·3 = 1.5 each;
	// vertex 3 has only 0.5.
	if IsExpectedQuasiClique(g, []int{0, 1, 2, 3}, 0.5) {
		t.Error("weak pendant accepted at γ=0.5")
	}
	// Singletons and empty sets are never quasi-cliques.
	if IsExpectedQuasiClique(g, []int{0}, 0.5) || IsExpectedQuasiClique(g, nil, 0.5) {
		t.Error("degenerate set accepted")
	}
	// A certain edge is a γ-quasi-clique for any γ.
	if !IsExpectedQuasiClique(g, []int{0, 1}, 1) {
		t.Error("certain edge rejected")
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	gammas := []float64{0.5, 0.6, 0.75, 1}
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8)
		g := randomDyadic(n, 0.5, rng)
		gamma := gammas[trial%len(gammas)]
		want := bruteMaximal(g, gamma, 3, 0)
		got, err := Collect(g, Config{Gamma: gamma})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, γ=%v):\nminer = %v\nbrute = %v\nedges = %v",
				trial, n, gamma, got, want, g.Edges())
		}
	}
}

func TestEnumerateMinSizeTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := randomDyadic(n, 0.6, rng)
		want := bruteMaximal(g, 0.5, 2, 0)
		got, err := Collect(g, Config{Gamma: 0.5, MinSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: miner %v vs brute %v", trial, got, want)
		}
	}
}

func TestEnumerateMaxSizeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(7)
		g := randomDyadic(n, 0.7, rng)
		want := bruteMaximal(g, 0.5, 3, 4)
		got, err := Collect(g, Config{Gamma: 0.5, MinSize: 3, MaxSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: capped miner %v vs brute %v", trial, got, want)
		}
	}
}

// At γ = 1 the expected-degree condition forces every pair to be a certain
// edge, so maximal expected 1-quasi-cliques are the maximal cliques of the
// p=1 subgraph — which MULE also produces at α = 1.
func TestGammaOneMatchesMULEAlphaOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4004))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := randomDyadic(n, 0.7, rng)
		cliques, err := core.Collect(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		var want [][]int
		for _, c := range cliques {
			if len(c) >= 3 {
				want = append(want, c)
			}
		}
		got, err := Collect(g, Config{Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: quasi(γ=1) %v vs MULE(α=1) %v", trial, got, want)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	if _, err := Collect(nil, Config{Gamma: 0.5}); err == nil {
		t.Error("nil graph accepted")
	}
	for _, gamma := range []float64{0, 0.49, 1.01, -1, math.NaN()} {
		if _, err := Collect(g, Config{Gamma: gamma}); err == nil {
			t.Errorf("gamma %v accepted", gamma)
		}
	}
	if _, err := Collect(g, Config{Gamma: 0.5, MinSize: 1}); err == nil {
		t.Error("MinSize 1 accepted")
	}
	if _, err := Collect(g, Config{Gamma: 0.5, MinSize: 4, MaxSize: 3}); err == nil {
		t.Error("MaxSize below MinSize accepted")
	}
}

func TestEnumerateVisitorStops(t *testing.T) {
	rng := rand.New(rand.NewSource(5005))
	g := randomDyadic(10, 0.8, rng)
	all, err := Collect(g, Config{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("workload produced %d sets, early stop untestable", len(all))
	}
	calls := 0
	if _, err := Enumerate(g, Config{Gamma: 0.5}, func([]int) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("visitor called %d times after requesting stop", calls)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6006))
	g := randomDyadic(12, 0.6, rng)
	var emitted int64
	stats, err := Enumerate(g, Config{Gamma: 0.5}, func([]int) bool {
		emitted++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != emitted {
		t.Fatalf("stats.Emitted = %d, visitor saw %d", stats.Emitted, emitted)
	}
	if stats.Found < stats.Emitted {
		t.Fatalf("found %d < emitted %d", stats.Found, stats.Emitted)
	}
	if stats.Calls <= 0 || stats.Universe < 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	if emitted > 0 && stats.MaxSize < 3 {
		t.Fatalf("MaxSize %d below MinSize with non-empty output", stats.MaxSize)
	}
}

// Every reported set passes the exponential reference maximality predicate.
func TestQuickEmittedAreMaximal(t *testing.T) {
	check := func(seed int64, gi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDyadic(3+rng.Intn(6), 0.6, rng)
		gammas := []float64{0.5, 0.75, 1}
		gamma := gammas[int(gi)%len(gammas)]
		sets, err := Collect(g, Config{Gamma: gamma})
		if err != nil {
			return false
		}
		for _, s := range sets {
			if !IsMaximalExpectedQuasiClique(g, s, gamma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Raising γ only shrinks or fragments the qualifying family: every set that
// qualifies at γ' also qualifies at any γ ≤ γ'.
func TestQuickGammaMonotonicity(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDyadic(3+rng.Intn(6), 0.7, rng)
		strict, err := Collect(g, Config{Gamma: 0.75})
		if err != nil {
			return false
		}
		for _, s := range strict {
			if !IsExpectedQuasiClique(g, s, 0.5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Cliques always qualify: any α-clique of the support graph with |S| ≥ 3 and
// all-certain edges is an expected γ-quasi-clique for every γ.
func TestCertainCliquesAlwaysQualify(t *testing.T) {
	b := uncertain.NewBuilder(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if err := b.AddEdge(u, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	got, err := Collect(g, Config{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("K5 mining = %v, want %v", got, want)
	}
}

func TestPruningEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(7007))
	g := randomDyadic(20, 0.4, rng)
	var stats Stats
	sets, statsOut, err := CollectContext(context.Background(), g, Config{Gamma: 0.75, MinSize: 4})
	stats = statsOut
	if err != nil {
		t.Fatal(err)
	}
	_ = sets
	if stats.Pruned == 0 {
		t.Log("no prunes fired on this workload (not an error, but unexpected)")
	}
	if stats.Calls <= 0 {
		t.Fatal("no search performed")
	}
}
