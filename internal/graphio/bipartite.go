package graphio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/uncertain-graphs/mule/internal/ubiclique"
)

// WriteBipartiteText writes an uncertain bipartite graph in a line-oriented
// text format (extension .ubg):
//
//	# comment
//	bipartite 3 4
//	0 2 0.5
//
// The mandatory "bipartite nL nR" directive fixes the side sizes; edge lines
// are "l r p" with each endpoint 0-based in its own side.
func WriteBipartiteText(w io.Writer, g *ubiclique.Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "bipartite %d %d\n", g.NumLeft(), g.NumRight()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.L, e.R, strconv.FormatFloat(e.P, 'g', 17, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveBipartiteFile writes an uncertain bipartite graph to path in the
// text format; a trailing ".gz" compresses the output transparently.
func SaveBipartiteFile(path string, g *ubiclique.Bipartite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteBipartiteText(w, g); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadBipartiteFile reads an uncertain bipartite graph from path
// (conventionally .ubg); gzip streams are decompressed transparently. It is
// a thin wrapper over LoadBipartite.
func LoadBipartiteFile(path string) (*ubiclique.Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBipartite(f)
}

// LoadBipartite decodes an uncertain bipartite graph from r — an open file,
// an HTTP request body, a bytes.Reader — decompressing gzip streams
// transparently; no temporary file is involved.
func LoadBipartite(r io.Reader) (*ubiclique.Bipartite, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(2); err == nil && [2]byte(head) == gzipMagic {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graphio: opening gzip stream: %w", err)
		}
		defer zr.Close()
		return ReadBipartiteText(zr)
	}
	return ReadBipartiteText(br)
}

// ReadBipartiteText parses the bipartite text format. The "bipartite nL nR"
// directive must precede every edge line.
func ReadBipartiteText(r io.Reader) (*ubiclique.Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *ubiclique.Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "bipartite" {
			if b != nil {
				return nil, fmt.Errorf("graphio: line %d: repeated bipartite directive", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphio: line %d: want 'bipartite nL nR'", line)
			}
			nL, err := strconv.Atoi(fields[1])
			if err != nil || nL < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad left size %q", line, fields[1])
			}
			nR, err := strconv.Atoi(fields[2])
			if err != nil || nR < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad right size %q", line, fields[2])
			}
			b = ubiclique.NewBuilder(nL, nR)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graphio: line %d: edge before bipartite directive", line)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'l r p', got %q", line, text)
		}
		l, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad left vertex %q", line, fields[0])
		}
		rr, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad right vertex %q", line, fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad probability %q", line, fields[2])
		}
		if err := b.AddEdge(l, rr, p); err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: missing bipartite directive")
	}
	return b.Build(), nil
}
