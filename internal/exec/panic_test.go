package exec

import (
	"sync"
	"sync/atomic"
	"testing"
)

// poisonEngine sums spans like sumEngine but panics when it claims a frame
// containing the poison element — the stand-in for a visitor or engine bug.
type poisonEngine struct {
	sumEngine
	poison int
}

func (e *poisonEngine) Execute(s *Slot, f any) {
	fr := f.(*span)
	if fr.next <= e.poison && e.poison < fr.end {
		panic("poison")
	}
	e.sumEngine.Execute(s, f)
}

// queuesDrained asserts no frame is left behind in the inbox or any deque
// after every run completed — conservation on the unwind path.
func queuesDrained(t *testing.T, x *Executor) {
	t.Helper()
	if n := x.inbox.n.Load(); n != 0 {
		t.Fatalf("%d frames left in the inbox", n)
	}
	for _, w := range x.workers {
		if n := w.deque.n.Load(); n != 0 {
			t.Fatalf("%d frames left in worker %d's deque", n, w.id)
		}
	}
}

// TestPanicContainedToOwningRun: a panicking frame terminates only its own
// run — Done still closes, the panic is latched and reported through OnPanic
// exactly once — while concurrent runs on the same workers stay exact, and
// the pool keeps serving new runs afterwards.
func TestPanicContainedToOwningRun(t *testing.T) {
	x := New(4)
	defer x.Close()

	const goodRuns = 6
	var wg sync.WaitGroup
	sums := make([]int64, goodRuns)
	engines := make([]*sumEngine, goodRuns)
	for i := 0; i < goodRuns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := newSumEngine(x, true)
			engines[i] = e
			r := x.Submit(e, RunOpts{}, &span{0, 2000 + 31*i})
			r.Wait(nil, nil)
			sums[i], _, _, _ = e.totals()
		}(i)
	}

	bad := &poisonEngine{sumEngine: *newSumEngine(x, true), poison: 500}
	var hooks atomic.Int64
	roots := []any{&span{0, 1000}, &span{1000, 2000}, &span{2000, 3000}}
	r := x.Submit(bad, RunOpts{
		OnPanic: func(value any, stack []byte) {
			hooks.Add(1)
			if value != "poison" {
				t.Errorf("OnPanic value = %v", value)
			}
			if len(stack) == 0 {
				t.Error("OnPanic got an empty stack")
			}
		},
	}, roots...)
	r.Wait(nil, nil)
	select {
	case <-r.Done():
	default:
		t.Fatal("panicked run never completed")
	}
	if v, _, ok := r.PanicInfo(); !ok || v != "poison" {
		t.Fatalf("PanicInfo = (%v, %v), want the poison value", v, ok)
	}
	if h := hooks.Load(); h != 1 {
		t.Fatalf("OnPanic fired %d times, want exactly 1", h)
	}

	wg.Wait()
	for i, e := range engines {
		want := rangeSum(2000 + 31*i)
		if sums[i] != want {
			t.Fatalf("concurrent run %d perturbed by the panic: sum = %d, want %d", i, sums[i], want)
		}
		_ = e
	}
	queuesDrained(t, x)

	// The pool survives: a fresh run on the same executor is exact.
	after := newSumEngine(x, false)
	ar := x.Submit(after, RunOpts{}, &span{0, 3000})
	ar.Wait(nil, nil)
	if sum, _, _, _ := after.totals(); sum != rangeSum(3000) {
		t.Fatalf("post-panic run: sum = %d, want %d", sum, rangeSum(3000))
	}
}

// TestConcurrentPanicsLatchOnce: when several frames of one run panic
// concurrently, exactly one cause wins the latch and OnPanic fires once.
func TestConcurrentPanicsLatchOnce(t *testing.T) {
	x := New(8)
	defer x.Close()
	var hooks atomic.Int64
	for round := 0; round < 20; round++ {
		e := &allPanicEngine{}
		roots := make([]any, 8)
		for i := range roots {
			roots[i] = &span{i, i + 1}
		}
		r := x.Submit(e, RunOpts{OnPanic: func(any, []byte) { hooks.Add(1) }}, roots...)
		r.Wait(nil, nil)
		if _, _, ok := r.PanicInfo(); !ok {
			t.Fatalf("round %d: no panic latched", round)
		}
		if h := hooks.Load(); h != int64(round)+1 {
			t.Fatalf("round %d: OnPanic fired %d times total, want %d", round, h, round+1)
		}
	}
	queuesDrained(t, x)
}

type allPanicEngine struct{}

func (e *allPanicEngine) Execute(s *Slot, f any) { panic("every frame fails") }
func (e *allPanicEngine) Split(int, any) any     { return nil }
func (e *allPanicEngine) NoteSteal(int)          {}

// splitPanicEngine executes like sumEngine but panics inside Split — the
// hook called under the victim's deque lock. The guard must release that
// lock on the unwind, or every later push/steal on the deque deadlocks.
type splitPanicEngine struct {
	sumEngine
	splitCalls atomic.Int64
}

func (e *splitPanicEngine) Split(thief int, f any) any {
	e.splitCalls.Add(1)
	panic("split bomb")
}

// TestPanicInSplitReleasesDequeLock: rounds of steal-heavy runs with a
// panicking Split hook. Every round must complete (the deque mutex is
// released on the panic path — a leak would wedge the pool within a round
// or two), and across the rounds Split must actually have been reached.
func TestPanicInSplitReleasesDequeLock(t *testing.T) {
	x := New(8)
	defer x.Close()
	var splits int64
	for round := 0; round < 12; round++ {
		e := &splitPanicEngine{sumEngine: *newSumEngine(x, true)}
		r := x.Submit(e, RunOpts{}, &span{0, 4000})
		r.Wait(nil, nil)
		select {
		case <-r.Done():
		default:
			t.Fatalf("round %d: run with panicking Split never completed", round)
		}
		if e.splitCalls.Load() > 0 {
			splits++
			if _, _, ok := r.PanicInfo(); !ok {
				t.Fatalf("round %d: Split panicked but nothing latched", round)
			}
		}
	}
	if splits == 0 {
		t.Fatal("no round reached the Split hook; the lock-release path went unexercised")
	}
	queuesDrained(t, x)
	// The deques are provably unlocked: a full run still completes.
	after := newSumEngine(x, true)
	ar := x.Submit(after, RunOpts{}, &span{0, 3000})
	ar.Wait(nil, nil)
	if sum, _, _, _ := after.totals(); sum != rangeSum(3000) {
		t.Fatalf("post-split-panic run: sum = %d, want %d", sum, rangeSum(3000))
	}
}

// stealPanicEngine panics in NoteSteal (pure accounting); the steal itself
// must still succeed and the run must still terminate.
type stealPanicEngine struct {
	sumEngine
	noteCalls atomic.Int64
}

func (e *stealPanicEngine) Split(int, any) any { return nil } // force wholesale steals
func (e *stealPanicEngine) NoteSteal(thief int) {
	e.noteCalls.Add(1)
	panic("steal-accounting bomb")
}

// TestPanicInNoteStealContained: a NoteSteal panic latches the run without
// wedging the thief or leaking the stolen frame.
func TestPanicInNoteStealContained(t *testing.T) {
	x := New(8)
	defer x.Close()
	var notes int64
	for round := 0; round < 12; round++ {
		e := &stealPanicEngine{sumEngine: *newSumEngine(x, true)}
		r := x.Submit(e, RunOpts{}, &span{0, 4000})
		r.Wait(nil, nil)
		select {
		case <-r.Done():
		default:
			t.Fatalf("round %d: run with panicking NoteSteal never completed", round)
		}
		if e.noteCalls.Load() > 0 {
			notes++
			if _, _, ok := r.PanicInfo(); !ok {
				t.Fatalf("round %d: NoteSteal panicked but nothing latched", round)
			}
		}
	}
	if notes == 0 {
		t.Fatal("no round reached the NoteSteal hook")
	}
	queuesDrained(t, x)
}
