// Package bounds implements the extremal analysis of §3 of the paper:
// the maximum number of α-maximal cliques an uncertain graph on n vertices
// can contain is exactly f(n, α) = C(n, ⌊n/2⌋) for every 0 < α < 1
// (Theorem 1), in contrast to the Moon–Moser bound 3^{n/3} for
// deterministic graphs. It provides exact big-integer binomials, the
// Lemma 1 extremal construction, and the Stirling-order estimate behind
// Observation 5's Ω(√n·2^n) output lower bound.
package bounds

import (
	"math"
	"math/big"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Binomial returns C(n, k) exactly.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// MaxAlphaMaximalCliques returns f(n, α) = C(n, ⌊n/2⌋), the tight bound of
// Theorem 1 for 0 < α < 1 and n ≥ 2. (For α = 1 the Moon–Moser bound
// applies instead; see MoonMoserBound.)
func MaxAlphaMaximalCliques(n int) *big.Int {
	return Binomial(n, n/2)
}

// MoonMoserBound returns the deterministic (α = 1) maximum number of
// maximal cliques on n ≥ 2 vertices as a big integer.
func MoonMoserBound(n int) *big.Int {
	if n <= 0 {
		return big.NewInt(0)
	}
	if n == 1 {
		return big.NewInt(1)
	}
	pow3 := func(k int) *big.Int {
		return new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(k)), nil)
	}
	switch n % 3 {
	case 0:
		return pow3(n / 3)
	case 1:
		return new(big.Int).Mul(big.NewInt(4), pow3((n-4)/3))
	default:
		return new(big.Int).Mul(big.NewInt(2), pow3((n-2)/3))
	}
}

// CentralBinomialEstimate returns the Stirling approximation
// C(n,⌊n/2⌋) ≈ 2^n / √(πn/2), the Θ(2^n/√n) growth rate quoted in
// Observation 5 of the paper.
func CentralBinomialEstimate(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Exp2(float64(n)) / math.Sqrt(math.Pi*float64(n)/2)
}

// Extremal is the Lemma 1 construction realizing the f(n, α) bound, plus the
// α threshold at which to enumerate it.
type Extremal struct {
	Graph *uncertain.Graph
	// Alpha is the enumeration threshold: every ⌊n/2⌋-subset has clique
	// probability ≥ Alpha and every larger subset falls below it.
	Alpha float64
	// CliqueSize is ⌊n/2⌋, the size of every α-maximal clique.
	CliqueSize int
	// ExpectedCount is C(n, ⌊n/2⌋).
	ExpectedCount *big.Int
}

// NewExtremal builds the extremal uncertain graph on n ≥ 3 vertices with
// uniform edge probability q ∈ (0,1): the complete graph where every edge
// has probability q.
//
// Lemma 1 uses the threshold α = q^κ with κ = C(⌊n/2⌋, 2), making each
// ⌊n/2⌋-subset an α-clique with probability exactly α, while any
// (⌊n/2⌋+1)-subset has probability α·q^{⌊n/2⌋} < α. To keep the boundary
// comparison robust against floating-point rounding (MULE multiplies edge
// probabilities in search order, the definition in any order), the returned
// Alpha is q^κ relaxed downward by a relative 1e-9 — far above
// α·q^{⌊n/2⌋} for any q bounded away from 1, so the construction's clique
// family is unchanged.
func NewExtremal(n int, q float64) Extremal {
	if n < 3 {
		panic("bounds: extremal construction requires n >= 3")
	}
	if q <= 0 || q >= 1 {
		panic("bounds: q must be in (0,1)")
	}
	k := n / 2
	kappa := k * (k - 1) / 2
	alpha := 1.0
	for i := 0; i < kappa; i++ {
		alpha *= q
	}
	alpha *= 1 - 1e-9
	b := uncertain.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			// Cannot fail: distinct in-range vertices, valid q.
			_ = b.AddEdge(u, v, q)
		}
	}
	return Extremal{
		Graph:         b.Build(),
		Alpha:         alpha,
		CliqueSize:    k,
		ExpectedCount: MaxAlphaMaximalCliques(n),
	}
}
