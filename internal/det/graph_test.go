package det

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph returns an Erdős–Rényi G(n,p) graph for tests.
func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 7}} {
		if err := b.AddEdge(e[0], e[1]); err == nil {
			t.Fatalf("expected error for edge %v", e)
		}
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {0, 1}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBasicAccessors(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {2, 3}})
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 1 {
		t.Errorf("unexpected degrees %d %d", g.Degree(0), g.Degree(3))
	}
	if !reflect.DeepEqual(g.Neighbors(0), []int{1, 2}) {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	if !g.HasEdge(1, 0) || g.HasEdge(1, 2) || g.HasEdge(-1, 0) || g.HasEdge(0, 9) {
		t.Error("HasEdge answers wrong")
	}
}

func TestIsClique(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if !g.IsClique([]int{0, 1, 2}) {
		t.Error("{0,1,2} should be a clique")
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Error("{0,1,3} should not be a clique")
	}
	if !g.IsClique([]int{2}) || !g.IsClique(nil) {
		t.Error("singletons and empty set are cliques")
	}
}

func TestIsMaximalClique(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if !g.IsMaximalClique([]int{0, 1, 2}) {
		t.Error("{0,1,2} should be maximal")
	}
	if g.IsMaximalClique([]int{0, 1}) {
		t.Error("{0,1} extends to {0,1,2}")
	}
	if !g.IsMaximalClique([]int{2, 3}) {
		t.Error("{2,3} should be maximal")
	}
	if g.IsMaximalClique([]int{1, 3}) {
		t.Error("{1,3} is not even a clique")
	}
}

func TestDegeneracyOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(n, 0.3, rng)
		order, d := g.DegeneracyOrder()
		if len(order) != n {
			t.Fatalf("order has %d vertices, want %d", len(order), n)
		}
		seen := make([]bool, n)
		for _, v := range order {
			if seen[v] {
				t.Fatal("vertex repeated in order")
			}
			seen[v] = true
		}
		// Defining property: each vertex has ≤ d neighbors later in the order.
		rank := make([]int, n)
		for i, v := range order {
			rank[v] = i
		}
		for _, v := range order {
			later := 0
			for _, w := range g.Neighbors(v) {
				if rank[w] > rank[v] {
					later++
				}
			}
			if later > d {
				t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, later, d)
			}
		}
	}
}

func TestDegeneracyKnownValues(t *testing.T) {
	if _, d := Complete(6).DegeneracyOrder(); d != 5 {
		t.Errorf("K6 degeneracy = %d, want 5", d)
	}
	if _, d := Path(10).DegeneracyOrder(); d != 1 {
		t.Errorf("P10 degeneracy = %d, want 1", d)
	}
	if _, d := Cycle(10).DegeneracyOrder(); d != 2 {
		t.Errorf("C10 degeneracy = %d, want 2", d)
	}
	if _, d := NewBuilder(5).Build().DegeneracyOrder(); d != 0 {
		t.Errorf("empty graph degeneracy = %d, want 0", d)
	}
}

func TestComplement(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}})
	c := g.Complement()
	if c.NumEdges() != 5 {
		t.Fatalf("complement edges = %d, want 5", c.NumEdges())
	}
	if c.HasEdge(0, 1) || !c.HasEdge(2, 3) {
		t.Fatal("complement adjacency wrong")
	}
	// Complement of complement is the original.
	cc := c.Complement()
	if cc.NumEdges() != g.NumEdges() || !cc.HasEdge(0, 1) {
		t.Fatal("double complement differs from original")
	}
}
