package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// denseUncertain builds a G(n, p) uncertain graph with high edge
// probabilities — the dense-neighborhood shape the bitset kernel targets.
func denseUncertain(n int, p float64, seed int64) *uncertain.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := uncertain.NewBuilder(n)
	for _, e := range gen.GNP(n, p, rng) {
		_ = b.AddEdge(e[0], e[1], 0.85+0.14*rng.Float64())
	}
	return b.Build()
}

// TestIntersectModesEquivalentRandom is the 50-random-graph equivalence
// suite with the bitset path forced on and forced off: every intersect mode
// on every engine must produce the canonical clique set of the adaptive
// serial run.
func TestIntersectModesEquivalentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(36)
		g := randomDyadic(n, 0.3+0.5*rng.Float64(), rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := mustCollect(t, g, alpha, Config{})
		for _, mode := range []IntersectMode{IntersectSorted, IntersectBitset} {
			for _, cfg := range []Config{
				{Intersect: mode},
				{Intersect: mode, Workers: 4},
				{Intersect: mode, Workers: 3, Parallel: ParallelTopLevel},
				{Intersect: mode, MinSize: 3},
			} {
				got := mustCollect(t, g, alpha, cfg)
				if cfg.MinSize >= 2 {
					want2 := filterBySize(want, cfg.MinSize)
					if len(got) != len(want2) || (len(want2) > 0 && !reflect.DeepEqual(got, want2)) {
						t.Fatalf("trial %d (n=%d α=%v) mode %v cfg %+v diverged", trial, n, alpha, mode, cfg)
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (n=%d α=%v) mode %v cfg %+v diverged\ngot  %v\nwant %v",
						trial, n, alpha, mode, cfg, got, want)
				}
			}
		}
	}
}

// TestForcedBitsetActuallyRoutes pins that IntersectBitset is not silently
// equivalent to the sorted kernels: on a graph with any intersection work
// at all, the forced mode must report bitset-kernel hits.
func TestForcedBitsetActuallyRoutes(t *testing.T) {
	g := denseUncertain(60, 0.5, 1)
	_, stats, err := CollectWith(g, 0.3, Config{Intersect: IntersectBitset})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsetOps == 0 {
		t.Fatal("forced bitset mode reported no bitset intersections")
	}
	_, stats, err = CollectWith(g, 0.3, Config{Intersect: IntersectSorted})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsetOps != 0 {
		t.Fatal("sorted mode reported bitset intersections")
	}
}

// TestAdaptiveBitsetTriggersOnDense checks the density heuristic end to
// end: a dense G(n, 0.45) graph routes real work through the bitset kernel
// under the default adaptive policy, and the output matches the sorted
// kernels exactly.
func TestAdaptiveBitsetTriggersOnDense(t *testing.T) {
	g := denseUncertain(170, 0.5, 7)
	alpha := 0.45
	want := mustCollect(t, g, alpha, Config{Intersect: IntersectSorted})
	var stats Stats
	var got [][]int
	got, stats, err := CollectWith(g, alpha, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsetOps == 0 {
		t.Fatal("adaptive policy never used the bitset kernel on a dense graph")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("adaptive bitset run diverged from the sorted kernels")
	}
	// The parallel engines share the read-only index.
	gotPar, pstats, err := CollectWith(g, alpha, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pstats.BitsetOps == 0 {
		t.Fatal("parallel adaptive run never used the bitset kernel")
	}
	if !reflect.DeepEqual(gotPar, want) {
		t.Fatal("parallel adaptive bitset run diverged")
	}
}

// TestBitAdjacencyConstruction covers the index policy gates.
func TestBitAdjacencyConstruction(t *testing.T) {
	g := denseUncertain(100, 0.8, 3)
	if b := buildBitAdjacency(g, IntersectSorted); b != nil {
		t.Fatal("sorted mode must not build an index")
	}
	b := buildBitAdjacency(g, IntersectBitset)
	if b == nil {
		t.Fatal("forced mode built no index")
	}
	for u := 0; u < g.NumVertices(); u++ {
		row, _ := g.Adjacency(u)
		words := b.row(int32(u))
		if g.Degree(u) > 0 && words == nil {
			t.Fatalf("forced mode left row %d unmirrored", u)
		}
		count := 0
		for _, v := range row {
			if words[v>>6]&(1<<(uint32(v)&63)) == 0 {
				t.Fatalf("row %d missing neighbor %d in bit mirror", u, v)
			}
			count++
		}
		set := 0
		for _, w := range words {
			for ; w != 0; w &= w - 1 {
				set++
			}
		}
		if set != count {
			t.Fatalf("row %d mirror has %d bits, want %d", u, set, count)
		}
	}
	// Adaptive mode only mirrors rows long enough to matter.
	sparse := randomDyadic(50, 0.1, rand.New(rand.NewSource(5)))
	if b := buildBitAdjacency(sparse, IntersectAdaptive); b != nil {
		t.Fatal("adaptive mode mirrored rows of a sparse graph")
	}
	if b := buildBitAdjacency(g, IntersectAdaptive); b == nil {
		t.Fatal("adaptive mode skipped a dense graph")
	}
	// nil receiver behaves as the empty index.
	var nilIdx *bitAdjacency
	if nilIdx.row(0) != nil || nilIdx.checkoutMask() != nil {
		t.Fatal("nil index must behave as empty")
	}
	nilIdx.release() // must be a no-op, not a panic
}

// TestFilterPreservesVerticesAndSortOrder is the prefilter-rebuild
// regression: the CSR rebuild must keep the vertex count and hand back
// strictly ascending rows, for random inputs and for inputs the filter
// mangles heavily.
func TestFilterPreservesVerticesAndSortOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := randomDyadic(10+rng.Intn(30), 0.2+0.6*rng.Float64(), rng)
		for _, minSize := range []int{3, 4, 6} {
			fg := mustFilter(t, g, minSize)
			if fg.NumVertices() != g.NumVertices() {
				t.Fatalf("filter changed vertex count: %d → %d", g.NumVertices(), fg.NumVertices())
			}
			for u := 0; u < fg.NumVertices(); u++ {
				row, probs := fg.Adjacency(u)
				if len(row) != len(probs) {
					t.Fatalf("row %d lanes diverge", u)
				}
				if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
					t.Fatalf("filtered row %d not sorted: %v", u, row)
				}
				for i := 1; i < len(row); i++ {
					if row[i] == row[i-1] {
						t.Fatalf("filtered row %d has duplicate neighbor %d", u, row[i])
					}
				}
				// Surviving edges keep their original probability.
				for i, v := range row {
					if p, ok := g.Prob(u, int(v)); !ok || p != probs[i] {
						t.Fatalf("edge {%d,%d} prob changed: %v vs %v", u, v, probs[i], p)
					}
				}
			}
		}
	}
}
