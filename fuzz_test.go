package mule_test

import (
	"context"
	"errors"
	"math"
	"testing"

	mule "github.com/uncertain-graphs/mule"
)

// FuzzFromEdges drives graph construction with arbitrary (n, edge-triple)
// inputs and asserts the validation contract of the typed sentinel errors:
// every rejection wraps exactly one of ErrVertexRange / ErrSelfLoop /
// ErrProbRange, every acceptance round-trips through the graph's accessors,
// and the classification matches a from-scratch predicate.
func FuzzFromEdges(f *testing.F) {
	f.Add(4, 0, 1, 0.5, 2, 3, 0.9)
	f.Add(4, 0, 0, 0.5, 1, 2, 0.5)        // self-loop
	f.Add(3, -1, 2, 0.5, 0, 1, 0.5)       // negative endpoint
	f.Add(3, 0, 7, 0.5, 0, 1, 0.5)        // endpoint ≥ n
	f.Add(3, 0, 1, 0.0, 1, 2, 0.5)        // zero probability
	f.Add(3, 0, 1, 1.5, 1, 2, 0.5)        // probability > 1
	f.Add(3, 0, 1, math.NaN(), 1, 2, 1.0) // NaN probability
	f.Add(3, 0, 1, 0.5, 1, 0, 0.7)        // duplicate edge (reversed)
	f.Add(0, 0, 1, 0.5, 1, 2, 0.5)        // empty vertex set
	f.Add(2, 0, 1, 1e-300, 0, 1, 0.5)     // tiny but valid probability
	f.Fuzz(func(t *testing.T, n, u1, v1 int, p1 float64, u2, v2 int, p2 float64) {
		if n < 0 || n > 1000 {
			return
		}
		edges := []mule.Edge{{U: u1, V: v1, P: p1}, {U: u2, V: v2, P: p2}}
		g, err := mule.FromEdges(n, edges)
		if err != nil {
			if !errors.Is(err, mule.ErrVertexRange) &&
				!errors.Is(err, mule.ErrSelfLoop) &&
				!errors.Is(err, mule.ErrProbRange) &&
				!errors.Is(err, mule.ErrDuplicateEdge) {
				t.Fatalf("FromEdges(%d, %v) returned untyped error %v", n, edges, err)
			}
			// The sentinel must match the first offending check.
			if want := firstError(n, edges); !errors.Is(err, want) {
				t.Fatalf("FromEdges(%d, %v) = %v, want sentinel %v", n, edges, err, want)
			}
			return
		}
		if want := firstError(n, edges); want != nil {
			t.Fatalf("FromEdges(%d, %v) accepted input that violates %v", n, edges, want)
		}
		if g.NumVertices() != n {
			t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), n)
		}
		if g.NumEdges() != 2 {
			t.Fatalf("NumEdges = %d, want 2 (distinct valid edges)", g.NumEdges())
		}
		for _, e := range edges {
			p, ok := g.Prob(e.U, e.V)
			if !ok || p != e.P {
				t.Fatalf("Prob(%d,%d) = (%v,%v), want (%v,true)", e.U, e.V, p, ok, e.P)
			}
		}
	})
}

// firstError reimplements the documented validation order from scratch:
// edges are checked in sequence, each for self-loop, then vertex range,
// then probability, then duplication. It returns the sentinel the library
// must report, nil if the input is valid.
func firstError(n int, edges []mule.Edge) error {
	type key struct{ u, v int }
	seen := map[key]bool{}
	for _, e := range edges {
		if e.U == e.V {
			return mule.ErrSelfLoop
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return mule.ErrVertexRange
		}
		if math.IsNaN(e.P) || e.P <= 0 || e.P > 1 {
			return mule.ErrProbRange
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[key{u, v}] {
			return mule.ErrDuplicateEdge
		}
		seen[key{u, v}] = true
	}
	return nil
}

// FuzzBipartiteFromEdges drives bipartite graph construction with arbitrary
// (nL, nR, edge-triple) inputs and asserts the validation contract: every
// rejection wraps exactly one of ErrVertexRange / ErrProbRange /
// ErrDuplicateEdge (bipartite edges have no self-loop concept), every
// acceptance round-trips through the graph's accessors, and the
// classification matches a from-scratch predicate — the mirror of
// FuzzFromEdges for the biclique surface.
func FuzzBipartiteFromEdges(f *testing.F) {
	f.Add(3, 3, 0, 1, 0.5, 2, 2, 0.9)
	f.Add(3, 3, -1, 2, 0.5, 0, 1, 0.5)          // negative left endpoint
	f.Add(3, 3, 0, 7, 0.5, 0, 1, 0.5)           // right endpoint ≥ nR
	f.Add(3, 3, 0, 1, 0.0, 1, 2, 0.5)           // zero probability
	f.Add(3, 3, 0, 1, 1.5, 1, 2, 0.5)           // probability > 1
	f.Add(3, 3, 0, 1, math.NaN(), 1, 2, 1.0)    // NaN probability
	f.Add(3, 3, 0, 1, 0.5, 0, 1, 0.7)           // duplicate edge
	f.Add(0, 0, 0, 1, 0.5, 1, 2, 0.5)           // empty sides
	f.Add(2, 2, 0, 0, 1e-300, 1, 1, 0.5)        // tiny but valid probability
	f.Add(1000, 1000, 999, 999, 1.0, 0, 0, 1.0) // boundary endpoints
	f.Fuzz(func(t *testing.T, nL, nR, l1, r1 int, p1 float64, l2, r2 int, p2 float64) {
		if nL < 0 || nL > 1000 || nR < 0 || nR > 1000 {
			return
		}
		edges := []mule.BipartiteEdge{{L: l1, R: r1, P: p1}, {L: l2, R: r2, P: p2}}
		g, err := mule.BipartiteFromEdges(nL, nR, edges)
		if err != nil {
			if !errors.Is(err, mule.ErrVertexRange) &&
				!errors.Is(err, mule.ErrProbRange) &&
				!errors.Is(err, mule.ErrDuplicateEdge) {
				t.Fatalf("BipartiteFromEdges(%d, %d, %v) returned untyped error %v", nL, nR, edges, err)
			}
			if want := firstBipartiteError(nL, nR, edges); !errors.Is(err, want) {
				t.Fatalf("BipartiteFromEdges(%d, %d, %v) = %v, want sentinel %v", nL, nR, edges, err, want)
			}
			return
		}
		if want := firstBipartiteError(nL, nR, edges); want != nil {
			t.Fatalf("BipartiteFromEdges(%d, %d, %v) accepted input that violates %v", nL, nR, edges, want)
		}
		if g.NumLeft() != nL || g.NumRight() != nR {
			t.Fatalf("sides = (%d, %d), want (%d, %d)", g.NumLeft(), g.NumRight(), nL, nR)
		}
		if g.NumEdges() != 2 {
			t.Fatalf("NumEdges = %d, want 2 (distinct valid edges)", g.NumEdges())
		}
		for _, e := range edges {
			p, ok := g.Prob(e.L, e.R)
			if !ok || p != e.P {
				t.Fatalf("Prob(%d,%d) = (%v,%v), want (%v,true)", e.L, e.R, p, ok, e.P)
			}
		}
	})
}

// firstBipartiteError reimplements the documented bipartite validation
// order from scratch: edges are checked in sequence, each for left range,
// then right range, then probability, then duplication.
func firstBipartiteError(nL, nR int, edges []mule.BipartiteEdge) error {
	type key struct{ l, r int }
	seen := map[key]bool{}
	for _, e := range edges {
		if e.L < 0 || e.L >= nL || e.R < 0 || e.R >= nR {
			return mule.ErrVertexRange
		}
		if math.IsNaN(e.P) || e.P <= 0 || e.P > 1 {
			return mule.ErrProbRange
		}
		if seen[key{e.L, e.R}] {
			return mule.ErrDuplicateEdge
		}
		seen[key{e.L, e.R}] = true
	}
	return nil
}

// FuzzBipartiteBuilderAddEdge checks the BipartiteBuilder path directly,
// including the AddEdge/UpsertEdge duplicate split — the mirror of
// FuzzBuilderAddEdge.
func FuzzBipartiteBuilderAddEdge(f *testing.F) {
	f.Add(5, 4, 0, 1, 0.5)
	f.Add(5, 4, -2, 1, 0.5)
	f.Add(5, 4, 0, 9, 2.0)
	f.Add(5, 4, 4, 3, 1.0)
	f.Fuzz(func(t *testing.T, nL, nR, l, r int, p float64) {
		if nL < 0 || nL > 1000 || nR < 0 || nR > 1000 {
			return
		}
		b := mule.NewBipartiteBuilder(nL, nR)
		err := b.AddEdge(l, r, p)
		if want := firstBipartiteError(nL, nR, []mule.BipartiteEdge{{L: l, R: r, P: p}}); want != nil {
			if !errors.Is(err, want) {
				t.Fatalf("AddEdge(%d,%d,%v) = %v, want sentinel %v", l, r, p, err, want)
			}
			return
		}
		if err != nil {
			t.Fatalf("AddEdge(%d,%d,%v) rejected valid edge: %v", l, r, p, err)
		}
		// A second add of the same edge must be a typed duplicate error,
		// while UpsertEdge overwrites.
		if err := b.AddEdge(l, r, p); !errors.Is(err, mule.ErrDuplicateEdge) {
			t.Fatalf("duplicate AddEdge = %v, want wrapped ErrDuplicateEdge", err)
		}
		if err := b.UpsertEdge(l, r, p/2+0.1); err != nil {
			t.Fatalf("UpsertEdge on existing edge: %v", err)
		}
		if b.NumEdges() != 1 {
			t.Fatalf("NumEdges = %d, want 1", b.NumEdges())
		}
	})
}

// FuzzBuilderAddEdge checks the Builder path directly, including the
// AddEdge/UpsertEdge duplicate split.
func FuzzBuilderAddEdge(f *testing.F) {
	f.Add(5, 0, 1, 0.5)
	f.Add(5, 1, 1, 0.5)
	f.Add(5, -2, 1, 0.5)
	f.Add(5, 0, 9, 2.0)
	f.Fuzz(func(t *testing.T, n, u, v int, p float64) {
		if n < 0 || n > 1000 {
			return
		}
		b := mule.NewBuilder(n)
		err := b.AddEdge(u, v, p)
		if want := firstError(n, []mule.Edge{{U: u, V: v, P: p}}); want != nil {
			if !errors.Is(err, want) {
				t.Fatalf("AddEdge(%d,%d,%v) = %v, want sentinel %v", u, v, p, err, want)
			}
			return
		}
		if err != nil {
			t.Fatalf("AddEdge(%d,%d,%v) rejected valid edge: %v", u, v, p, err)
		}
		// A second add of the same edge must be a typed duplicate error,
		// while UpsertEdge overwrites.
		if err := b.AddEdge(v, u, p); !errors.Is(err, mule.ErrDuplicateEdge) {
			t.Fatalf("duplicate AddEdge = %v, want wrapped ErrDuplicateEdge", err)
		}
		if err := b.UpsertEdge(u, v, p/2+0.1); err != nil {
			t.Fatalf("UpsertEdge on existing edge: %v", err)
		}
		if b.NumEdges() != 1 {
			t.Fatalf("NumEdges = %d, want 1", b.NumEdges())
		}
	})
}

// FuzzDensestClusterOptions drives the two PR-10 query constructors with
// arbitrary option values and asserts their eager-validation contract:
// rejections wrap exactly the documented sentinel (ErrCentersRange for a
// bad k, ErrConfig for negative budgets/limits and out-of-scope options),
// and every accepted query runs to a coherent result count on a small path
// graph.
func FuzzDensestClusterOptions(f *testing.F) {
	f.Add(5, 2, int64(0), int64(0))
	f.Add(5, 0, int64(0), int64(0))   // centers omitted/zero
	f.Add(5, 9, int64(0), int64(0))   // centers > n
	f.Add(5, 2, int64(-1), int64(0))  // negative budget
	f.Add(5, 2, int64(0), int64(-1))  // negative limit
	f.Add(1, 1, int64(0), int64(0))   // singleton graph
	f.Add(50, 50, int64(0), int64(3)) // limit below k
	f.Fuzz(func(t *testing.T, n, centers int, budget, limit int64) {
		if n < 1 || n > 60 {
			return
		}
		b := mule.NewBuilder(n)
		for v := 1; v < n; v++ {
			if err := b.AddEdge(v-1, v, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build()
		ctx := context.Background()
		optsBad := budget < 0 || limit < 0
		centersBad := centers < 1 || centers > n

		dq, err := mule.NewDensestQuery(g, mule.WithBudget(budget), mule.WithLimit(limit))
		if optsBad {
			if !errors.Is(err, mule.ErrConfig) {
				t.Fatalf("NewDensestQuery(budget=%d, limit=%d) = %v, want wrapped ErrConfig", budget, limit, err)
			}
		} else if err != nil {
			t.Fatalf("NewDensestQuery(budget=%d, limit=%d) rejected valid options: %v", budget, limit, err)
		} else if cnt, err := dq.Count(ctx); err == nil {
			if cnt < 1 || cnt > int64(n) || (limit > 0 && cnt > limit) {
				t.Fatalf("densest Count = %d outside [1, min(n=%d, limit=%d)]", cnt, n, limit)
			}
		} else if !errors.Is(err, mule.ErrBudget) {
			t.Fatalf("densest Count on a path graph = %v, want nil or wrapped ErrBudget", err)
		}

		// Out-of-scope options are eager ErrConfig, never silently ignored.
		if _, err := mule.NewDensestQuery(g, mule.WithCenters(2)); !errors.Is(err, mule.ErrConfig) {
			t.Fatalf("WithCenters on densest = %v, want wrapped ErrConfig", err)
		}
		if _, err := mule.NewClusterQuery(g, mule.WithCenters(1), mule.WithGamma(0.5)); !errors.Is(err, mule.ErrConfig) {
			t.Fatalf("WithGamma on cluster = %v, want wrapped ErrConfig", err)
		}

		cq, err := mule.NewClusterQuery(g, mule.WithCenters(centers), mule.WithBudget(budget), mule.WithLimit(limit))
		switch {
		case optsBad || centersBad:
			if err == nil {
				t.Fatalf("NewClusterQuery(k=%d, budget=%d, limit=%d) accepted invalid options", centers, budget, limit)
			}
			if !errors.Is(err, mule.ErrConfig) && !errors.Is(err, mule.ErrCentersRange) {
				t.Fatalf("NewClusterQuery(k=%d, budget=%d, limit=%d) = %v, want a typed sentinel", centers, budget, limit, err)
			}
			if centersBad && !optsBad && !errors.Is(err, mule.ErrCentersRange) {
				t.Fatalf("NewClusterQuery(k=%d) = %v, want wrapped ErrCentersRange", centers, err)
			}
			if optsBad && !centersBad && !errors.Is(err, mule.ErrConfig) {
				t.Fatalf("NewClusterQuery(budget=%d, limit=%d) = %v, want wrapped ErrConfig", budget, limit, err)
			}
		case err != nil:
			t.Fatalf("NewClusterQuery(k=%d, budget=%d, limit=%d) rejected valid options: %v", centers, budget, limit, err)
		default:
			want := int64(centers)
			if limit > 0 && limit < want {
				want = limit
			}
			if cnt, err := cq.Count(ctx); err == nil {
				if cnt != want {
					t.Fatalf("cluster Count = %d, want %d (k=%d, limit=%d)", cnt, want, centers, limit)
				}
			} else if !errors.Is(err, mule.ErrBudget) {
				t.Fatalf("cluster Count on a path graph = %v, want nil or wrapped ErrBudget", err)
			}
		}
	})
}
