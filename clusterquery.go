package mule

import (
	"context"
	"fmt"
	"iter"

	"github.com/uncertain-graphs/mule/internal/ucluster"
)

// ClusterSet is one cell of a cluster query's partition: its center vertex,
// the members (ascending, center included), and the mean most-reliable-path
// connection probability of the members to the center.
type ClusterSet = ucluster.Cluster

// ClusterVisitor receives one cluster at a time, in ascending center order;
// returning false stops the report loop.
type ClusterVisitor = ucluster.Visitor

// ClusterStats reports the work performed by a clustering run.
type ClusterStats = ucluster.Stats

// ClusterQuery is a prepared k-center clustering of one uncertain graph,
// following Ceccarello et al. (arXiv 1612.06675): vertices partition around
// k center vertices maximizing the expected cluster connection probability,
// with the #P-hard exact reliability replaced by the exactly computable
// most-reliable-path probability (one Dijkstra sweep per center). Centers
// seed farthest-first and refine Lloyd-style until they fix. Build it with
// NewClusterQuery; it is immutable after construction and safe for
// concurrent use.
//
// The partition is a whole-graph property — the k centers span support
// components — so WithShards/WithAutoShard compose but do not change the
// execution shape: a sharded cluster run executes as a single whole-graph
// run (reported to WithShardProgress as one shard), exactly like the
// single-answer methods Query.Maximum and CoreQuery.Decompose ignore
// sharding. Like quasi-clique mining, the clustering runs to completion
// before anything is reported; Run, Stream, and WithLimit apply to the
// report loop, while cancellation and WithBudget abort the clustering
// itself mid-sweep.
type ClusterQuery struct {
	g         *Graph
	cfg       ucluster.Config
	limit     int64
	ten       tenancy
	shards    int // 0 = unsharded; see WithShards
	shardProg func(done, total int)
}

// NewClusterQuery prepares a k-center clustering of g. The center count
// comes from WithCenters and is required: it must lie in [1, NumVertices],
// and anything else — including the zero value from omitting WithCenters —
// is rejected here with a wrapped ErrCentersRange. A nil graph wraps
// ErrNilGraph. Applicable options: WithCenters, WithLimit, WithBudget, plus
// the shared execution options.
func NewClusterQuery(g *Graph, opts ...Option) (*ClusterQuery, error) {
	o, err := applyOptions(kindCluster, opts)
	if err != nil {
		return nil, err
	}
	ten, err := o.validateTenancy()
	if err != nil {
		return nil, err
	}
	shards, err := o.shardPlan()
	if err != nil {
		return nil, err
	}
	q, err := newClusterQuery(g, ucluster.Config{Centers: o.centers, Budget: o.cfg.Budget, Stall: o.stall}, o.limit)
	if err != nil {
		return nil, err
	}
	q.ten = ten
	q.shards = shards
	q.shardProg = o.shardProgress
	return q, nil
}

// newClusterQuery is the single constructor behind NewClusterQuery; all
// invariants are enforced here.
func newClusterQuery(g *Graph, cfg ucluster.Config, limit int64) (*ClusterQuery, error) {
	if limit < 0 {
		return nil, fmt.Errorf("mule: negative limit %d: %w", limit, ErrConfig)
	}
	if err := ucluster.Validate(g, cfg); err != nil {
		return nil, err
	}
	return &ClusterQuery{g: g, cfg: cfg, limit: limit}, nil
}

// run executes the clustering under the WithLimit bound.
func (q *ClusterQuery) run(ctx context.Context, visit ClusterVisitor) (stats ClusterStats, userStopped bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			stats.Status = StatusPanicked
			err = panicToError(v)
		}
	}()
	if q.shards != 0 {
		return q.runSharded(ctx, visit)
	}
	release, err := q.ten.admit(ctx, q.cfg.Budget)
	if err != nil {
		return ClusterStats{Status: StatusFailed}, false, err
	}
	defer release()
	stats, err = ucluster.RunContext(ctx, q.g, q.cfg, limitVisitor(visit, q.limit, &userStopped))
	return stats, userStopped, err
}

// runSharded satisfies the sharded-run hook: the partition is global, so
// the run executes whole-graph and reports a single shard to the progress
// callback. The answer is byte-identical to the unsharded run for every
// shard count, which is the WithShards contract.
func (q *ClusterQuery) runSharded(ctx context.Context, visit ClusterVisitor) (stats ClusterStats, userStopped bool, err error) {
	whole := *q
	whole.shards = 0
	d := shardDelivery{progress: q.shardProg}
	d.begin(1)
	stats, userStopped, err = whole.run(ctx, visit)
	if err == nil {
		d.shardDone()
	}
	return stats, userStopped, err
}

// Run performs the clustering and reports each cluster to visit in
// ascending center order (visit may be nil to only count; see
// ClusterStats.Emitted). The error contract matches Query.Run: wrapped
// context/budget causes for aborts, ErrStopped when visit returned false,
// nil for complete runs and WithLimit truncation.
func (q *ClusterQuery) Run(ctx context.Context, visit ClusterVisitor) (ClusterStats, error) {
	stats, userStopped, err := q.run(ctx, visit)
	if err != nil {
		return stats, err
	}
	if userStopped {
		return stats, fmt.Errorf("mule: %w", ErrStopped)
	}
	return stats, nil
}

// Collect materializes the partition in ascending center order.
func (q *ClusterQuery) Collect(ctx context.Context) ([]ClusterSet, error) {
	var out []ClusterSet
	_, _, err := q.run(ctx, func(c ClusterSet) bool {
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of clusters the query reports — the WithCenters
// k on a complete run, fewer under WithLimit.
func (q *ClusterQuery) Count(ctx context.Context) (int64, error) {
	stats, err := q.Run(ctx, nil)
	return stats.Emitted, err
}

// Stream returns the partition as a range-over-func stream with the same
// contract as Query.Cliques: each cluster is yielded with a nil error, an
// aborted run ends with one final (ClusterSet{}, err) pair, and breaking
// the loop stops the report immediately with nothing leaked. The clustering
// runs to completion when the first element is requested; clusters then
// stream in ascending center order.
func (q *ClusterQuery) Stream(ctx context.Context) iter.Seq2[ClusterSet, error] {
	return streamOf(func(emit func(ClusterSet) bool) error {
		_, _, err := q.run(ctx, emit)
		return err
	})
}
