package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// buildOrder computes the vertex renumbering for the requested strategy:
// the returned slice maps new vertex ID → old vertex ID.
func buildOrder(g *uncertain.Graph, ord Ordering, seed int64) ([]int, error) {
	n := g.NumVertices()
	order := make([]int, n)
	switch ord {
	case OrderNatural:
		for i := range order {
			order[i] = i
		}
	case OrderDegree:
		for i := range order {
			order[i] = i
		}
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			deg[v] = g.Degree(v)
		}
		stableSortBy(order, func(a, b int) bool {
			if deg[a] != deg[b] {
				return deg[a] < deg[b]
			}
			return a < b
		})
	case OrderDegeneracy:
		order = degeneracyOrder(g)
	case OrderRandom:
		rng := rand.New(rand.NewSource(seed))
		order = rng.Perm(n)
	default:
		return nil, fmt.Errorf("core: unknown ordering %v: %w", ord, ErrConfig)
	}
	return order, nil
}

func stableSortBy(a []int, less func(x, y int) bool) {
	sort.SliceStable(a, func(i, j int) bool { return less(a[i], a[j]) })
}

// degeneracyOrder computes a degeneracy ordering of the support graph with
// the standard bucket algorithm, O(n + m).
func degeneracyOrder(g *uncertain.Graph) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order := make([]int, 0, n)
	cur := 0
	for len(order) < n && cur <= maxDeg {
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		u := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[u] || deg[u] != cur {
			continue // stale bucket entry
		}
		removed[u] = true
		order = append(order, u)
		row, _ := g.Adjacency(u)
		for _, w := range row {
			v := int(w)
			if removed[v] {
				continue
			}
			deg[v]--
			buckets[deg[v]] = append(buckets[deg[v]], v)
			if deg[v] < cur {
				cur = deg[v]
			}
		}
	}
	return order
}
