// Densest: the two PR-10 lenses on one noisy community — the most-probable
// densest subgraph (Saha et al., arXiv 2212.08820) and k-center clustering
// by most-reliable-path connection probability (Ceccarello et al., arXiv
// 1612.06675) — contrasted with the clique lens they relax.
//
// The input plants a 7-member community whose internal edges are individually
// plausible (p ≈ 0.8) but collectively improbable (0.8^21 ≈ 0.9%), with one
// member attached by only half its ties. MULE's clique lens shatters such a
// community at useful thresholds; the densest-subgraph lens recovers it as
// the expected-density champion with an exact realization probability, and
// the clustering lens groups it around one center without any threshold at
// all.
//
// Run with: go run ./examples/densest
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	mule "github.com/uncertain-graphs/mule"
)

const n = 24

func main() {
	ctx := context.Background()
	g := buildCommunityGraph()
	fmt.Printf("graph: %d vertices, %d possible edges\n", g.NumVertices(), g.NumEdges())
	fmt.Println("planted community: vertices 0-6 (vertex 6 attached by only 3 of 6 ties)")

	// 1. The clique lens: the full community is never an α-clique at any
	// usable threshold, so MULE reports fragments.
	fmt.Println("\n--- α-maximal cliques (MULE) ---")
	for _, alpha := range []float64{0.5, 0.1} {
		q, err := mule.NewQuery(g, alpha)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := q.Run(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("α = %-4g  %4d maximal cliques, largest has %d vertices\n",
			alpha, stats.Emitted, stats.MaxCliqueSize)
	}

	// 2. The densest-subgraph lens needs no threshold: peel to a candidate
	// family, score each candidate with the exact probability that it
	// realizes the champion density d̂ in a sampled world, report best first.
	fmt.Println("\n--- most-probable densest subgraph ---")
	dq, err := mule.NewDensestQuery(g)
	if err != nil {
		log.Fatal(err)
	}
	var cands []mule.DenseSubgraph
	dstats, err := dq.Run(ctx, func(c mule.DenseSubgraph) bool {
		cands = append(cands, c)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidates from %d peel steps; champion expected density d̂ = %.3f\n",
		len(cands), dstats.PeelSteps, dstats.BestDensity)
	for i, c := range cands {
		if i == 3 {
			fmt.Printf("  … %d more\n", len(cands)-i)
			break
		}
		fmt.Printf("  %v\n    expected density %.3f, P[realizes ⌈d̂·|S|⌉ edges] = %.3f\n",
			c.Vertices, c.ExpectedDensity, c.Probability)
	}

	// 3. The clustering lens partitions every vertex — community, noise,
	// isolated alike — around k centers by most-reliable-path probability.
	fmt.Println("\n--- k-center clustering (k = 4) ---")
	cq, err := mule.NewClusterQuery(g, mule.WithCenters(4))
	if err != nil {
		log.Fatal(err)
	}
	var clusters []mule.ClusterSet
	cstats, err := cq.Run(ctx, func(c mule.ClusterSet) bool {
		clusters = append(clusters, c)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sweeps, %d refinement rounds, converged=%v\n",
		cstats.Sweeps, cstats.Rounds, cstats.Converged)
	for _, c := range clusters {
		fmt.Printf("  center %2d: %2d members, mean connection probability %.3f\n    %v\n",
			c.Center, len(c.Members), c.Probability, c.Members)
	}

	// 4. The same two queries compose with every chassis option — a budget
	// that aborts the peel early, a limit on reported candidates, sharding.
	fmt.Println("\n--- composition: WithLimit(1) picks just the winner ---")
	top, err := mule.NewDensestQuery(g, mule.WithLimit(1))
	if err != nil {
		log.Fatal(err)
	}
	winner, err := top.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most probable densest subgraph: %v (P = %.3f)\n",
		winner[0].Vertices, winner[0].Probability)
}

// buildCommunityGraph plants the 7-community inside sparse background noise.
func buildCommunityGraph() *mule.Graph {
	rng := rand.New(rand.NewSource(7))
	b := mule.NewBuilder(n)
	// Community core: vertices 0-5 fully connected with strong edges.
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if err := b.AddEdge(u, v, 0.75+rng.Float64()*0.2); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Vertex 6: attached to only half the community.
	for _, v := range []int{0, 1, 2} {
		if err := b.AddEdge(6, v, 0.75+rng.Float64()*0.2); err != nil {
			log.Fatal(err)
		}
	}
	// Background noise.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if v < 7 && u < 7 {
				continue
			}
			if rng.Float64() < 0.08 {
				if err := b.UpsertEdge(u, v, 0.2+rng.Float64()*0.5); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}
