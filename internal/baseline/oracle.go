package baseline

import (
	"math/bits"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// This file holds the brute-force oracles the test suite pins the densest
// and clustering miners against. Each oracle recomputes the same quantity as
// the production engine through a structurally different algorithm —
// exhaustive subset enumeration instead of greedy peeling, divide-and-conquer
// polynomial products instead of the in-place DP, Floyd–Warshall closure
// instead of per-center Dijkstra — so an agreement is evidence, not an echo.

// ExpectedDensity returns the expected density of the subgraph induced by
// set: the sum of internal edge probabilities over the vertex count. An
// empty set has density 0.
func ExpectedDensity(g *uncertain.Graph, set []int) float64 {
	if len(set) == 0 {
		return 0
	}
	member := make(map[int]bool, len(set))
	for _, v := range set {
		member[v] = true
	}
	sum := 0.0
	for _, u := range set {
		row, probs := g.Adjacency(u)
		for i, v := range row {
			if int(v) > u && member[int(v)] {
				sum += probs[i]
			}
		}
	}
	return sum / float64(len(set))
}

// DensestExact maximizes expected density over every non-empty vertex
// subset by exhaustive enumeration — feasible only for small graphs (the
// loop is Θ(2ⁿ·m)) and intended purely as a test oracle. Ties resolve to
// the subset visited first (ascending bitmask order).
func DensestExact(g *uncertain.Graph) (set []int, density float64) {
	n := g.NumVertices()
	if n > 24 {
		panic("baseline: DensestExact limited to 24 vertices")
	}
	bestMask, best := 0, -1.0
	verts := make([]int, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		verts = verts[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, v)
			}
		}
		if d := ExpectedDensity(g, verts); d > best {
			bestMask, best = mask, d
		}
	}
	set = make([]int, 0, bits.OnesCount(uint(bestMask)))
	for v := 0; v < n; v++ {
		if bestMask&(1<<v) != 0 {
			set = append(set, v)
		}
	}
	return set, best
}

// TailAtLeast returns Pr[X ≥ k] where X is the Poisson-binomial sum of
// independent Bernoulli trials with the given success probabilities. It
// multiplies the per-trial polynomials (1-p) + p·x by divide and conquer —
// a different evaluation order and algorithm than the engine's in-place DP,
// so the two agree only up to floating-point tolerance.
func TailAtLeast(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	dist := pbDist(probs)
	tail := 0.0
	for j := k; j < len(dist); j++ {
		tail += dist[j]
	}
	return tail
}

// pbDist returns the full Poisson-binomial distribution of probs as the
// coefficients of ∏ᵢ ((1-pᵢ) + pᵢ·x).
func pbDist(probs []float64) []float64 {
	if len(probs) == 0 {
		return []float64{1}
	}
	if len(probs) == 1 {
		return []float64{1 - probs[0], probs[0]}
	}
	mid := len(probs) / 2
	return polyMul(pbDist(probs[:mid]), pbDist(probs[mid:]))
}

func polyMul(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// InternalEdgeProbs gathers the probabilities of the edges induced by set,
// in an unspecified order (the Poisson-binomial distribution is invariant
// under permutation of its trials).
func InternalEdgeProbs(g *uncertain.Graph, set []int) []float64 {
	member := make(map[int]bool, len(set))
	for _, v := range set {
		member[v] = true
	}
	var probs []float64
	for _, u := range set {
		row, ps := g.Adjacency(u)
		for i, v := range row {
			if int(v) > u && member[int(v)] {
				probs = append(probs, ps[i])
			}
		}
	}
	return probs
}

// Reliability returns the all-pairs most-reliable-path probability matrix
// of g — R[u][v] is the maximum over u–v paths of the product of edge
// probabilities, with R[u][u] = 1 — via the max-product Floyd–Warshall
// closure. O(n³); a test oracle for the engine's per-center Dijkstra.
func Reliability(g *uncertain.Graph) [][]float64 {
	n := g.NumVertices()
	r := make([][]float64, n)
	for u := 0; u < n; u++ {
		r[u] = make([]float64, n)
		r[u][u] = 1
		row, probs := g.Adjacency(u)
		for i, v := range row {
			if probs[i] > r[u][v] {
				r[u][v] = probs[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		for u := 0; u < n; u++ {
			ruk := r[u][k]
			if ruk == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if p := ruk * r[k][v]; p > r[u][v] {
					r[u][v] = p
				}
			}
		}
	}
	return r
}
