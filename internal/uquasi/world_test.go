package uquasi

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func TestWorldProbExactCertainGraph(t *testing.T) {
	// Certain triangle: it is a γ-quasi-clique in the single possible world
	// for every γ.
	g, err := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 1, V: 2, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []float64{0.1, 0.5, 1} {
		p, err := WorldProbExact(g, []int{0, 1, 2}, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if p != 1 {
			t.Errorf("γ=%v: exact probability %v, want 1", gamma, p)
		}
	}
}

func TestWorldProbExactHandComputed(t *testing.T) {
	// Single uncertain edge {0,1} with p = 0.25. At γ ≤ 1 the pair is a
	// quasi-clique exactly when the edge is present.
	g, err := uncertain.FromEdges(2, []uncertain.Edge{{U: 0, V: 1, P: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := WorldProbExact(g, []int{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Fatalf("exact probability %v, want 0.25", p)
	}

	// Triangle with p = 0.5 each, γ = 0.5: each vertex needs degree ≥ 1,
	// which holds for the complete world (1/8) and the three two-edge
	// worlds (3/8): total 1/2.
	tri, err := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err = WorldProbExact(tri, []int{0, 1, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Fatalf("triangle exact probability %v, want 0.5", p)
	}
	// γ = 1 needs all three edges: 1/8.
	p, err = WorldProbExact(tri, []int{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.125 {
		t.Fatalf("triangle γ=1 exact probability %v, want 0.125", p)
	}
}

func TestWorldProbExactErrors(t *testing.T) {
	g := uncertain.NewBuilder(30).Build()
	if _, err := WorldProbExact(g, []int{0}, 0.5); err == nil {
		t.Error("singleton accepted")
	}
	if _, err := WorldProbExact(g, []int{0, 1}, 0); err == nil {
		t.Error("gamma 0 accepted")
	}
	if _, err := WorldProbExact(g, []int{0, 1}, 1.5); err == nil {
		t.Error("gamma 1.5 accepted")
	}
	// Build a set with too many induced edges.
	b := uncertain.NewBuilder(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			if err := b.AddEdge(u, v, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	dense := b.Build()
	if _, err := WorldProbExact(dense, []int{0, 1, 2, 3, 4, 5, 6, 7}, 0.5); err == nil {
		t.Error("28 induced edges accepted beyond the exact limit")
	}
}

func TestWorldProbMCMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		g := randomDyadic(6, 0.7, rng)
		set := []int{0, 1, 2, 3}
		gamma := []float64{0.5, 0.75}[trial%2]
		exact, err := WorldProbExact(g, set, gamma)
		if err != nil {
			t.Fatal(err)
		}
		est, err := WorldProbMC(g, set, gamma, 60000, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		// Standard error ≤ 0.5/sqrt(60000) ≈ 0.002; allow 5 sigma.
		if math.Abs(est-exact) > 0.011 {
			t.Fatalf("trial %d: MC %v vs exact %v", trial, est, exact)
		}
	}
}

func TestWorldProbMCErrors(t *testing.T) {
	g := uncertain.NewBuilder(4).Build()
	if _, err := WorldProbMC(g, []int{0, 1}, 0.5, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := WorldProbMC(g, []int{0}, 0.5, 10, 1); err == nil {
		t.Error("singleton accepted")
	}
	if _, err := WorldProbMC(g, []int{0, 1}, -0.5, 10, 1); err == nil {
		t.Error("negative gamma accepted")
	}
}

// The expected-degree condition is the first-moment relaxation: for sets
// whose world probability is high, the expected-degree test must also pass
// (E[deg] ≥ γ(s−1) whenever P[all degrees ≥ γ(s−1)] is large enough that
// each vertex's expected degree clears the bar). The converse fails in
// general; this test documents the direction that does hold on a concrete
// family.
func TestExpectedDegreeVsWorldProbability(t *testing.T) {
	// Certain 4-clique minus one edge, all present edges certain: S is a
	// 2/3-quasi-clique in every world.
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 1}, {U: 0, V: 2, P: 1}, {U: 0, V: 3, P: 1},
		{U: 1, V: 2, P: 1}, {U: 1, V: 3, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := []int{0, 1, 2, 3}
	gamma := 2.0 / 3
	p, err := WorldProbExact(g, set, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("world probability %v, want 1", p)
	}
	if !IsExpectedQuasiClique(g, set, gamma) {
		t.Fatal("first-moment test fails where the world test is certain")
	}
}
