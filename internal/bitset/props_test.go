package bitset

import (
	"math/rand"
	"testing"
)

// The bitset package is kernel-load-bearing since the density-adaptive
// intersection routes dense nodes through word-parallel AND over Set words.
// These property tests drive long random operation sequences against a
// map[int]bool model, so every exported operation — including the Words
// view the kernel reads — stays bit-for-bit faithful to set semantics.

// modelCheck verifies s against the model exhaustively over the universe.
func modelCheck(t *testing.T, step int, s *Set, model map[int]bool) {
	t.Helper()
	count := 0
	for v := range model {
		count++
		if !s.Contains(v) {
			t.Fatalf("step %d: model has %d, set does not", step, v)
		}
	}
	if got := s.Count(); got != count {
		t.Fatalf("step %d: Count = %d, model has %d", step, got, count)
	}
	if s.Empty() != (count == 0) {
		t.Fatalf("step %d: Empty = %v with %d elements", step, s.Empty(), count)
	}
	for _, v := range s.Slice() {
		if !model[v] {
			t.Fatalf("step %d: set has %d, model does not", step, v)
		}
	}
	// Words must agree with Contains bit for bit, with no stray bits at or
	// beyond capacity.
	for wi, w := range s.Words() {
		for b := 0; b < 64; b++ {
			v := wi*64 + b
			bit := w&(1<<uint(b)) != 0
			if v >= s.Capacity() {
				if bit {
					t.Fatalf("step %d: stray bit %d beyond capacity %d", step, v, s.Capacity())
				}
				continue
			}
			if bit != model[v] {
				t.Fatalf("step %d: word bit %d = %v, model = %v", step, v, bit, model[v])
			}
		}
	}
}

func TestRandomOpsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		model := map[int]bool{}
		for step := 0; step < 400; step++ {
			v := rng.Intn(n)
			switch rng.Intn(6) {
			case 0, 1:
				s.Add(v)
				model[v] = true
			case 2:
				s.Remove(v)
				delete(model, v)
			case 3:
				// NextAfter must return the smallest model element ≥ v.
				want := -1
				for u := v; u < n; u++ {
					if model[u] {
						want = u
						break
					}
				}
				if got := s.NextAfter(v); got != want {
					t.Fatalf("trial %d step %d: NextAfter(%d) = %d, want %d", trial, trial, v, got, want)
				}
			case 4:
				// ForEach must visit exactly the model, ascending.
				prev := -1
				s.ForEach(func(u int) bool {
					if u <= prev {
						t.Fatalf("ForEach not ascending: %d after %d", u, prev)
					}
					if !model[u] {
						t.Fatalf("ForEach visited %d not in model", u)
					}
					prev = u
					return true
				})
			case 5:
				s.Clear()
				model = map[int]bool{}
			}
		}
		modelCheck(t, trial, s, model)
	}
}

// TestAlgebraMatchesModel drives the two-set operations (the kernel's AND
// lives under IntersectWith) against model set algebra.
func TestAlgebraMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
				ma[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
				mb[i] = true
			}
		}
		inter := a.Clone()
		inter.IntersectWith(b)
		union := a.Clone()
		union.UnionWith(b)
		diff := a.Clone()
		diff.DifferenceWith(b)
		wantInter, wantUnion, wantDiff := map[int]bool{}, map[int]bool{}, map[int]bool{}
		for v := range ma {
			wantUnion[v] = true
			if mb[v] {
				wantInter[v] = true
			} else {
				wantDiff[v] = true
			}
		}
		for v := range mb {
			wantUnion[v] = true
		}
		modelCheck(t, trial, inter, wantInter)
		modelCheck(t, trial, union, wantUnion)
		modelCheck(t, trial, diff, wantDiff)
		if got := a.IntersectionCount(b); got != len(wantInter) {
			t.Fatalf("IntersectionCount = %d, want %d", got, len(wantInter))
		}
		if a.Intersects(b) != (len(wantInter) > 0) {
			t.Fatal("Intersects disagrees with IntersectionCount")
		}
		if diff.Intersects(b) {
			t.Fatal("difference still intersects the subtrahend")
		}
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) || !a.SubsetOf(union) {
			t.Fatal("subset relations violated")
		}
	}
}
