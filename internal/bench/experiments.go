package bench

import (
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sort"

	"github.com/uncertain-graphs/mule/internal/bounds"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/stats"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the corresponding paper artifact shows
	Run   func(cfg Config, w io.Writer) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{
			ID:    "table1",
			Title: "Table 1: input graphs",
			Paper: "inventory of the evaluation inputs (name, category, |V|, |E|)",
			Run:   runTable1,
		},
		{
			ID:    "figure1",
			Title: "Figure 1: MULE vs DFS-NOIP runtime",
			Paper: "MULE beats DFS-NOIP everywhere; gap grows to orders of magnitude at small α",
			Run:   runFigure1,
		},
		{
			ID:    "figure2",
			Title: "Figure 2: runtime vs α",
			Paper: "runtime drops sharply as α grows (both graph families)",
			Run:   runFigure2,
		},
		{
			ID:    "figure3",
			Title: "Figure 3: number of α-maximal cliques vs α",
			Paper: "clique count drops sharply as α grows",
			Run:   runFigure3,
		},
		{
			ID:    "figure4",
			Title: "Figure 4: runtime vs output size",
			Paper: "runtime is near-proportional to the number of emitted cliques",
			Run:   runFigure4,
		},
		{
			ID:    "figure5",
			Title: "Figure 5: LARGE-MULE runtime vs size threshold",
			Paper: "runtime collapses as t grows (e.g. DBLP: 76797s for all cliques vs 32s at t=3)",
			Run:   runFigure5,
		},
		{
			ID:    "figure6",
			Title: "Figure 6: number of size-≥t α-maximal cliques vs t",
			Paper: "output size drops by orders of magnitude as t grows",
			Run:   runFigure6,
		},
		{
			ID:    "bound",
			Title: "Theorem 1: extremal count f(n,α) = C(n, ⌊n/2⌋)",
			Paper: "matching upper/lower bound on the number of α-maximal cliques",
			Run:   runBound,
		},
		{
			ID:    "ablation",
			Title: "Ablations: pruning, ordering, parallelism",
			Paper: "design-choice measurements beyond the paper",
			Run:   runAblation,
		},
		{
			ID:    "parallel",
			Title: "Parallel scaling: work stealing vs top-level fan-out",
			Paper: "beyond the paper: speedup on a skewed workload where one top-level branch owns >99% of the search",
			Run:   runParallelScaling,
		},
		{
			ID:    "kernel",
			Title: "Kernel: ns/op, allocs/op, B/op across engines",
			Paper: "beyond the paper: allocation/runtime trajectory of the enumeration kernel (BENCH_kernel.json)",
			Run:   runKernel,
		},
		{
			ID:    "extensions",
			Title: "Extensions: bicliques, quasi-cliques, trusses, cores",
			Paper: "the future-work dense substructures of §6, measured on planted workloads",
			Run:   runExtensions,
		},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	t := NewTable("Table 1: input graphs (paper sizes vs synthesized sizes)",
		"graph", "category", "paper |V|", "paper |E|", "built |V|", "built |E|", "mean p")
	dblpScale := cfg.DBLPScale
	if cfg.Quick {
		dblpScale = 0.01
	}
	for _, d := range gen.Table1(dblpScale) {
		if cfg.Quick && (d.Name == "BA6000" || d.Name == "BA7000" || d.Name == "BA8000" || d.Name == "BA9000") {
			continue // the family is represented by its endpoints in quick mode
		}
		g := d.Build(cfg.Seed)
		s := uncertain.ComputeStats(g)
		t.Addf(d.Name, d.Category, d.PaperN, d.PaperM, s.Vertices, s.Edges,
			fmt.Sprintf("%.3f", s.MeanProb))
	}
	return t.Render(w)
}

func runFigure1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	graphs := Figure1Graphs(cfg)
	for _, alpha := range Figure1Alphas {
		t := NewTable(fmt.Sprintf("Figure 1 (α=%g): DFS-NOIP vs MULE", alpha),
			"graph", "DFS-NOIP", "MULE", "speedup", "cliques")
		for _, ng := range graphs {
			noip := TimedNOIP(ng.G, alpha, cfg)
			mule, err := TimedMULE(ng.G, alpha, cfg, core.Config{})
			if err != nil {
				return err
			}
			speedup := "-"
			if mule.Finished && noip.Finished && mule.Elapsed > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(noip.Elapsed)/float64(mule.Elapsed))
			} else if mule.Finished && !noip.Finished && mule.Elapsed > 0 {
				speedup = fmt.Sprintf(">%.1fx", float64(noip.Elapsed)/float64(mule.Elapsed))
			}
			t.Add(ng.Name, formatRun(noip), formatRun(mule), speedup,
				fmt.Sprintf("%d", mule.Cliques))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func formatRun(r RunResult) string {
	if !r.Finished {
		return "> " + stats.Seconds(r.Elapsed) + " (budget)"
	}
	return stats.Seconds(r.Elapsed)
}

func sweepTable(title string, graphs []NamedGraph, cfg Config, w io.Writer,
	cell func(g *uncertain.Graph, alpha float64) (string, error)) error {
	header := []string{"graph"}
	for _, a := range AlphaSweep {
		header = append(header, fmt.Sprintf("α=%g", a))
	}
	t := NewTable(title, header...)
	for _, ng := range graphs {
		row := []string{ng.Name}
		for _, a := range AlphaSweep {
			c, err := cell(ng.G, a)
			if err != nil {
				return err
			}
			row = append(row, c)
		}
		t.Add(row...)
	}
	return t.Render(w)
}

func runFigure2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	timeCell := func(g *uncertain.Graph, alpha float64) (string, error) {
		r, err := TimedMULE(g, alpha, cfg, core.Config{})
		if err != nil {
			return "", err
		}
		return formatRun(r), nil
	}
	if err := sweepTable("Figure 2(a): MULE runtime vs α — random (BA) graphs",
		RandomGraphs(cfg), cfg, w, timeCell); err != nil {
		return err
	}
	return sweepTable("Figure 2(b): MULE runtime vs α — semi-synthetic and real graphs",
		SemiSyntheticGraphs(cfg), cfg, w, timeCell)
}

func runFigure3(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	countCell := func(g *uncertain.Graph, alpha float64) (string, error) {
		r, err := TimedMULE(g, alpha, cfg, core.Config{})
		if err != nil {
			return "", err
		}
		if !r.Finished {
			return fmt.Sprintf("> %d", r.Cliques), nil
		}
		return fmt.Sprintf("%d", r.Cliques), nil
	}
	if err := sweepTable("Figure 3(a): #α-maximal cliques vs α — random (BA) graphs",
		RandomGraphs(cfg), cfg, w, countCell); err != nil {
		return err
	}
	return sweepTable("Figure 3(b): #α-maximal cliques vs α — semi-synthetic and real graphs",
		SemiSyntheticGraphs(cfg), cfg, w, countCell)
}

func runFigure4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	t := NewTable("Figure 4: runtime vs output size — random (BA) graphs",
		"graph", "α", "cliques", "runtime", "µs/clique")
	var sizes, times []float64
	for _, ng := range RandomGraphs(cfg) {
		for _, alpha := range Figure4Alphas {
			r, err := TimedMULE(ng.G, alpha, cfg, core.Config{})
			if err != nil {
				return err
			}
			if !r.Finished || r.Cliques == 0 {
				continue
			}
			perClique := float64(r.Elapsed.Microseconds()) / float64(r.Cliques)
			t.Add(ng.Name, fmt.Sprintf("%g", alpha), fmt.Sprintf("%d", r.Cliques),
				stats.Seconds(r.Elapsed), fmt.Sprintf("%.2f", perClique))
			sizes = append(sizes, float64(r.Cliques))
			times = append(times, r.Elapsed.Seconds())
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Pearson correlation (output size vs runtime): r = %.4f\n\n",
		stats.Pearson(sizes, times))
	return err
}

// figure56Alphas returns the per-graph α grids of Figures 5 and 6: the BA
// and ca-GrQc panels sweep small thresholds, the DBLP panel sweeps large
// ones (its co-authorship probabilities are mostly ≤ 1-e^{-k/10}).
func figure56Alphas(name string) []float64 {
	if name == "DBLP" {
		return []float64{0.9, 0.5, 0.1}
	}
	return []float64{0.2, 0.01, 0.0005, 0.0001}
}

var figure56Thresholds = []int{2, 3, 4, 5, 6, 7, 8, 9}

func runFigure5(cfg Config, w io.Writer) error {
	return runFigure56(cfg, w, 5, func(r RunResult) string { return formatRun(r) })
}

func runFigure6(cfg Config, w io.Writer) error {
	return runFigure56(cfg, w, 6, func(r RunResult) string {
		if !r.Finished {
			return fmt.Sprintf("> %d", r.Cliques)
		}
		return fmt.Sprintf("%d", r.Cliques)
	})
}

func runFigure56(cfg Config, w io.Writer, figNum int, cell func(RunResult) string) error {
	cfg = cfg.withDefaults()
	what := "runtime"
	if figNum == 6 {
		what = "#cliques(size ≥ t)"
	}
	for _, ng := range LargeCliqueGraphs(cfg) {
		header := []string{"t"}
		alphas := figure56Alphas(ng.Name)
		for _, a := range alphas {
			header = append(header, fmt.Sprintf("α=%g", a))
		}
		t := NewTable(fmt.Sprintf("Figure %d (%s): LARGE-MULE %s vs size threshold", figNum, ng.Name, what), header...)
		for _, minSize := range figure56Thresholds {
			row := []string{fmt.Sprintf("%d", minSize)}
			for _, alpha := range alphas {
				r, err := TimedMULE(ng.G, alpha, cfg, core.Config{MinSize: minSize})
				if err != nil {
					return err
				}
				row = append(row, cell(r))
			}
			t.Add(row...)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func runBound(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	maxN := 16
	if cfg.Quick {
		maxN = 12
	}
	t := NewTable("Theorem 1: α-maximal cliques of the extremal construction",
		"n", "C(n,⌊n/2⌋)", "enumerated", "match", "Moon–Moser (α=1)")
	for n := 4; n <= maxN; n++ {
		ex := bounds.NewExtremal(n, 0.5)
		count, err := core.Count(ex.Graph, ex.Alpha)
		if err != nil {
			return err
		}
		match := "yes"
		if ex.ExpectedCount.Cmp(big.NewInt(count)) != 0 {
			match = "NO"
		}
		t.Addf(n, ex.ExpectedCount, count, match, bounds.MoonMoserBound(n))
	}
	return t.Render(w)
}

func runAblation(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := 5000
	if cfg.Quick {
		n = 1200
	}
	g := gen.BA(n, cfg.Seed)
	alphas := []float64{0.01, 0.0005}

	t := NewTable("Ablation: MULE variants on "+baName(n),
		"variant", "α", "runtime", "cliques", "search calls")
	run := func(name string, alpha float64, c core.Config) error {
		r, err := TimedMULE(g, alpha, cfg, c)
		if err != nil {
			return err
		}
		t.Add(name, fmt.Sprintf("%g", alpha), formatRun(r),
			fmt.Sprintf("%d", r.Cliques), fmt.Sprintf("%d", r.Stats.Calls))
		return nil
	}
	for _, alpha := range alphas {
		if err := run("MULE (natural order)", alpha, core.Config{}); err != nil {
			return err
		}
		if err := run("MULE (no α-pruning)", alpha, core.Config{SkipPrune: true}); err != nil {
			return err
		}
		if err := run("MULE (degeneracy order)", alpha, core.Config{Ordering: core.OrderDegeneracy}); err != nil {
			return err
		}
		if err := run("MULE (degree order)", alpha, core.Config{Ordering: core.OrderDegree}); err != nil {
			return err
		}
		for _, workers := range parallelWorkerGrid(cfg) {
			if err := run(fmt.Sprintf("MULE (work-steal x%d)", workers), alpha, core.Config{Workers: workers}); err != nil {
				return err
			}
			if err := run(fmt.Sprintf("MULE (top-level x%d)", workers), alpha,
				core.Config{Workers: workers, Parallel: core.ParallelTopLevel}); err != nil {
				return err
			}
		}
		hash := timedHashMULE(g, alpha, cfg)
		t.Add("MULE (hash adjacency)", fmt.Sprintf("%g", alpha), formatRun(hash),
			fmt.Sprintf("%d", hash.Cliques), "-")
		noip := TimedNOIP(g, alpha, cfg)
		t.Add("DFS-NOIP", fmt.Sprintf("%g", alpha), formatRun(noip),
			fmt.Sprintf("%d", noip.Cliques), "-")
	}
	return t.Render(w)
}

// parallelWorkerGrid returns the worker counts measured by the parallel
// scaling experiment: 2, 4, and the configured maximum (cfg.Workers when
// set, else NumCPU), deduplicated and ascending.
func parallelWorkerGrid(cfg Config) []int {
	maxW := cfg.Workers
	if maxW < 2 {
		maxW = runtime.NumCPU()
	}
	grid := []int{}
	for _, w := range []int{2, 4, maxW} {
		if w < 2 || w > maxW {
			continue
		}
		dup := false
		for _, g := range grid {
			if g == w {
				dup = true
			}
		}
		if !dup {
			grid = append(grid, w)
		}
	}
	sort.Ints(grid)
	return grid
}

// runParallelScaling measures serial MULE against both parallel engines on
// the skewed hub workload (where the top-level fan-out starves) and on a
// Barabási–Albert graph (a conventional power-law input). One row per
// engine × worker count, with speedup relative to the serial run of the
// same graph.
func runParallelScaling(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	type workload struct {
		ng    NamedGraph
		alpha float64
	}
	baN := 5000
	if cfg.Quick {
		baN = 800
	}
	loads := []workload{
		{SkewedCliqueGraph(cfg), SkewedAlpha},
		{NamedGraph{baName(baN), gen.BA(baN, cfg.Seed)}, 0.001},
	}
	t := NewTable(fmt.Sprintf("Parallel scaling (GOMAXPROCS=%d): work stealing vs top-level fan-out", runtime.GOMAXPROCS(0)),
		"graph", "engine", "workers", "runtime", "speedup", "cliques", "steals", "splits")
	for _, ld := range loads {
		serial, err := TimedMULE(ld.ng.G, ld.alpha, cfg, core.Config{})
		if err != nil {
			return err
		}
		t.Add(ld.ng.Name, "serial", "1", formatRun(serial), "1.00x",
			fmt.Sprintf("%d", serial.Cliques), "-", "-")
		for _, workers := range parallelWorkerGrid(cfg) {
			for _, engine := range []core.ParallelMode{core.ParallelTopLevel, core.ParallelWorkStealing} {
				r, err := TimedMULE(ld.ng.G, ld.alpha, cfg, core.Config{Workers: workers, Parallel: engine})
				if err != nil {
					return err
				}
				speedup := "-"
				if r.Finished && serial.Finished && r.Elapsed > 0 {
					speedup = fmt.Sprintf("%.2fx", float64(serial.Elapsed)/float64(r.Elapsed))
				}
				t.Add(ld.ng.Name, engine.String(), fmt.Sprintf("%d", workers), formatRun(r), speedup,
					fmt.Sprintf("%d", r.Cliques),
					fmt.Sprintf("%d", r.Stats.Steals), fmt.Sprintf("%d", r.Stats.Splits))
			}
		}
	}
	return t.Render(w)
}
