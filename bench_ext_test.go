// Benchmarks for the future-work extensions (paper §6): maximal
// α-bicliques, expected γ-quasi-cliques, (k,η)-trusses and (k,η)-cores,
// plus top-k selection over α-maximal cliques. These artifacts go beyond
// the paper's evaluation; cmd/experiments -exp extensions prints the same
// measurements as tables.
package mule_test

import (
	"testing"

	"github.com/uncertain-graphs/mule/internal/bench"
	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/dynamic"
	"github.com/uncertain-graphs/mule/internal/topk"
	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uquasi"
	"github.com/uncertain-graphs/mule/internal/utruss"
)

// BenchmarkExtensionBicliques enumerates maximal α-bicliques on the planted
// affinity workload across thresholds.
func BenchmarkExtensionBicliques(b *testing.B) {
	g := bench.AffinityBipartite(200, 150, 6, 1)
	for _, alpha := range []float64{0.5, 0.2} {
		alpha := alpha
		b.Run("alpha="+ftoa(alpha), func(b *testing.B) {
			var emitted int64
			for i := 0; i < b.N; i++ {
				st, err := ubiclique.Enumerate(g, alpha, nil)
				if err != nil {
					b.Fatal(err)
				}
				emitted = st.Emitted
			}
			b.ReportMetric(float64(emitted), "bicliques")
		})
	}
}

// BenchmarkExtensionQuasi mines maximal expected γ-quasi-cliques on planted
// communities.
func BenchmarkExtensionQuasi(b *testing.B) {
	g := bench.CommunityGraph(150, 8, 7, 1)
	for _, gamma := range []float64{0.5, 0.75} {
		gamma := gamma
		b.Run("gamma="+ftoa(gamma), func(b *testing.B) {
			var sets int
			for i := 0; i < b.N; i++ {
				out, err := uquasi.Collect(g, uquasi.Config{Gamma: gamma, MinSize: 4})
				if err != nil {
					b.Fatal(err)
				}
				sets = len(out)
			}
			b.ReportMetric(float64(sets), "sets")
		})
	}
}

// BenchmarkExtensionTruss runs the full η-truss decomposition on the
// ca-GrQc-like quick workload.
func BenchmarkExtensionTruss(b *testing.B) {
	graphs := named(b, "fig1", func() []bench.NamedGraph { return bench.Figure1Graphs(benchCfg) })
	g := pick(graphs, "ca-GrQc").G
	b.Run("decompose", func(b *testing.B) {
		var edges int
		for i := 0; i < b.N; i++ {
			dec, err := utruss.Decompose(g, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			edges = len(dec)
		}
		b.ReportMetric(float64(edges), "edges")
	})
	b.Run("k4-truss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := utruss.Truss(g, 4, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionCore runs the (k,η)-core decomposition on the same
// workload for comparison with the truss.
func BenchmarkExtensionCore(b *testing.B) {
	graphs := named(b, "fig1", func() []bench.NamedGraph { return bench.Figure1Graphs(benchCfg) })
	g := pick(graphs, "ca-GrQc").G
	for i := 0; i < b.N; i++ {
		if _, err := ucore.Decompose(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTopK measures top-k selection against full enumeration
// cost on the wiki-vote-like workload.
func BenchmarkExtensionTopK(b *testing.B) {
	graphs := named(b, "fig1", func() []bench.NamedGraph { return bench.Figure1Graphs(benchCfg) })
	g := pick(graphs, "wiki-vote").G
	for _, k := range []int{10, 1000} {
		k := k
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := topk.ByProb(g, 0.01, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionDynamic compares one incremental edge update against
// full re-enumeration on a BA workload — the maintenance win of
// internal/dynamic.
func BenchmarkExtensionDynamic(b *testing.B) {
	random := named(b, "random", func() []bench.NamedGraph { return bench.RandomGraphs(benchCfg) })
	g := random[0].G
	alpha := 0.01
	b.Run("incremental-update", func(b *testing.B) {
		m, err := dynamic.New(g, alpha)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate the probability of one hub edge between two values.
			p := 0.9
			if i%2 == 1 {
				p = 0.5
			}
			if _, err := m.SetEdge(0, 1, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Enumerate(g, alpha, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// pick returns the named workload from a family, failing loudly when the
// family definition changes.
func pick(graphs []bench.NamedGraph, name string) bench.NamedGraph {
	for _, ng := range graphs {
		if ng.Name == name {
			return ng
		}
	}
	panic("workload " + name + " missing from family")
}
