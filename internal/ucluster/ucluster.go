// Package ucluster implements k-center clustering of uncertain graphs,
// after Ceccarello et al. ("Clustering Uncertain Graphs", arXiv
// 1612.06675): partition the vertices around k center vertices so that the
// expected connection probability between each vertex and its cluster
// center is maximized. Exact s–t reliability is #P-hard, so — as in the
// paper's practical instantiation — the connection probability is the
// most-reliable-path probability (the maximum over paths of the product of
// edge probabilities), computable exactly by a Dijkstra sweep per center.
//
// Centers are seeded farthest-first on the connection metric (the first
// center is the maximum-expected-degree vertex; each next center is the
// vertex worst-connected to the chosen set) and then refined Lloyd-style:
// each cluster re-centers on its member with the largest expected degree
// into the cluster, sweeps re-run from the new centers, and vertices
// re-assign, until the centers fix or MaxRounds elapses. Every choice
// breaks ties toward the smallest vertex ID, so runs are deterministic.
package ucluster

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Config tunes a clustering run.
type Config struct {
	// Centers is the number of clusters k; required, in [1, NumVertices].
	Centers int
	// MaxRounds caps the Lloyd-style refinement rounds after seeding;
	// 0 selects the default (8), negative is rejected.
	MaxRounds int
	// Budget, when > 0, bounds the number of center sweeps (one
	// most-reliable-path Dijkstra per center per round, seeding included —
	// the charged work unit) before aborting with core.ErrBudget.
	Budget int64
	// Stall, when > 0, arms the stall watchdog (see core.RunControl).
	Stall time.Duration
}

// defaultMaxRounds bounds refinement when Config.MaxRounds is zero.
const defaultMaxRounds = 8

// sweepPollInterval is how many Dijkstra pops pass between zero-charge
// run-control polls inside one sweep, keeping cancellation latency bounded
// on large components without charging the budget (sweeps are the unit).
const sweepPollInterval = 256

// Stats reports the work performed by a clustering run.
type Stats struct {
	Status    core.RunStatus // how the run ended
	Sweeps    int64          // most-reliable-path sweeps (the charged work unit)
	Rounds    int64          // refinement rounds that re-swept the centers
	Emitted   int64          // clusters reported to the visitor
	Converged bool           // centers fixed before MaxRounds elapsed
}

// Cluster is one cell of the partition: its center vertex, the members
// (ascending, center included), and the mean most-reliable-path connection
// probability of the members to the center (the center contributes 1;
// vertices unreachable from every center join the first cluster with 0).
type Cluster struct {
	Center      int
	Members     []int
	Probability float64
}

// Visitor receives one cluster at a time, in ascending center order.
// Returning false stops the report loop.
type Visitor func(Cluster) bool

// Validate checks the (graph, config) pair every entry point accepts,
// wrapping the first violation around the matching sentinel. The zero
// Centers from an omitted WithCenters is rejected here (core.ErrCentersRange).
func Validate(g *uncertain.Graph, cfg Config) error {
	if g == nil {
		return fmt.Errorf("ucluster: %w", core.ErrNilGraph)
	}
	if cfg.Centers < 1 || cfg.Centers > g.NumVertices() {
		return fmt.Errorf("ucluster: centers %d outside [1,%d]: %w", cfg.Centers, g.NumVertices(), core.ErrCentersRange)
	}
	if cfg.MaxRounds < 0 {
		return fmt.Errorf("ucluster: negative MaxRounds %d: %w", cfg.MaxRounds, core.ErrConfig)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("ucluster: negative Budget %d: %w", cfg.Budget, core.ErrConfig)
	}
	if cfg.Stall < 0 {
		return fmt.Errorf("ucluster: negative Stall %v: %w", cfg.Stall, core.ErrConfig)
	}
	return nil
}

// finish records the terminal status on stats and formats the abort error.
func finish(ctl *core.RunControl, stats *Stats, visitorStopped bool) error {
	stats.Status = ctl.Status(visitorStopped)
	err := ctl.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("ucluster: clustering aborted after %d center sweeps: %w", stats.Sweeps, err)
}

// pqItem is one max-heap entry of the reliability Dijkstra.
type pqItem struct {
	v int32
	p float64
}

// maxPQ orders by descending probability, ties by ascending vertex ID, so
// the sweep's relaxation order — and therefore its float results — is
// deterministic.
type maxPQ []pqItem

func (q maxPQ) Len() int { return len(q) }
func (q maxPQ) Less(i, j int) bool {
	if q[i].p != q[j].p {
		return q[i].p > q[j].p
	}
	return q[i].v < q[j].v
}
func (q maxPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *maxPQ) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *maxPQ) Pop() any     { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// sweeper holds the per-run Dijkstra state and run control.
type sweeper struct {
	g     *uncertain.Graph
	conn  []float64
	pq    maxPQ
	stats *Stats
	ctl   *core.RunControl
}

// sweep computes the most-reliable-path probability from src to every
// vertex into s.conn, charging one budget unit. It reports false when the
// run control aborted.
func (s *sweeper) sweep(src int) bool {
	s.stats.Sweeps++
	if s.ctl.Poll(1) {
		return false
	}
	for i := range s.conn {
		s.conn[i] = 0
	}
	s.conn[src] = 1
	s.pq = append(s.pq[:0], pqItem{int32(src), 1})
	tick := sweepPollInterval
	for len(s.pq) > 0 {
		it := heap.Pop(&s.pq).(pqItem)
		if it.p < s.conn[it.v] {
			continue // stale entry superseded by a better path
		}
		tick--
		if tick <= 0 {
			tick = sweepPollInterval
			if s.ctl.Poll(0) {
				return false
			}
		}
		row, probs := s.g.Adjacency(int(it.v))
		for j, w := range row {
			if np := it.p * probs[j]; np > s.conn[w] {
				s.conn[w] = np
				heap.Push(&s.pq, pqItem{w, np})
			}
		}
	}
	return true
}

// assignment is the mutable partition state: per-vertex owning center index
// and best connection probability.
type assignment struct {
	owner []int // index into the centers slice; -1 = unreached
	best  []float64
}

// reset clears the partition before a fresh round of sweeps.
func (a *assignment) reset() {
	for i := range a.owner {
		a.owner[i] = -1
		a.best[i] = 0
	}
}

// sweepCenters runs one sweep per center in order, folding each into the
// assignment (strictly better connection wins; equal keeps the earlier
// center; every center owns itself). It reports false on abort.
func (s *sweeper) sweepCenters(centers []int, a *assignment) bool {
	for idx, c := range centers {
		a.owner[c] = idx
		a.best[c] = 1
		if !s.sweep(c) {
			return false
		}
		for u := range a.owner {
			if s.conn[u] > a.best[u] {
				a.best[u] = s.conn[u]
				a.owner[u] = idx
			}
		}
		a.owner[c] = idx // the self-connection of 1 is never beaten strictly
		a.best[c] = 1
	}
	return true
}

// recenter picks each cluster's new center: the member with the largest
// expected degree into its own cluster (the cheap deterministic medoid
// proxy), ties toward the smallest ID. Clusters are never empty — every
// center owns itself — so the result has the same length, with distinct
// entries.
func recenter(g *uncertain.Graph, centers []int, a *assignment) []int {
	bestScore := make([]float64, len(centers))
	bestV := make([]int, len(centers))
	for i := range bestScore {
		bestScore[i] = -1
		bestV[i] = centers[i]
	}
	for u := 0; u < len(a.owner); u++ {
		cu := a.owner[u]
		if cu < 0 {
			continue
		}
		score := 0.0
		row, probs := g.Adjacency(u)
		for j, w := range row {
			if a.owner[w] == cu {
				score += probs[j]
			}
		}
		if score > bestScore[cu] {
			bestScore[cu] = score
			bestV[cu] = u
		}
	}
	return bestV
}

func sameCenters(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunContext clusters g under ctx: seed k centers farthest-first, refine
// Lloyd-style until the centers fix or MaxRounds elapses, then report each
// cluster to visit in ascending center order (visit may be nil to only
// count). Like the quasi-clique miner, the partition needs global
// knowledge, so the clustering runs to completion before the report loop.
// A visitor returning false stops the report (StatusStopped, nil error);
// context, budget, and stall aborts return an error wrapping the cause.
func RunContext(ctx context.Context, g *uncertain.Graph, cfg Config, visit Visitor) (Stats, error) {
	var stats Stats
	if err := Validate(g, cfg); err != nil {
		return stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	n := g.NumVertices()
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = defaultMaxRounds
	}
	s := &sweeper{g: g, conn: make([]float64, n), stats: &stats, ctl: ctl}
	a := &assignment{owner: make([]int, n), best: make([]float64, n)}
	a.reset()

	// Farthest-first seeding: start from the maximum-expected-degree vertex,
	// then repeatedly add the vertex worst-connected to the chosen set (a
	// vertex in an uncovered component has connection 0 and is taken first,
	// so centers spread across components before they subdivide one).
	centers := make([]int, 0, cfg.Centers)
	isCenter := make([]bool, n)
	first, firstDeg := 0, -1.0
	for u := 0; u < n; u++ {
		if d := g.ExpectedDegree(u); d > firstDeg {
			first, firstDeg = u, d
		}
	}
	seed := func(c int) bool {
		idx := len(centers)
		centers = append(centers, c)
		isCenter[c] = true
		a.owner[c] = idx
		a.best[c] = 1
		if !s.sweep(c) {
			return false
		}
		for u := range a.owner {
			if s.conn[u] > a.best[u] {
				a.best[u] = s.conn[u]
				a.owner[u] = idx
			}
		}
		a.owner[c] = idx
		a.best[c] = 1
		return true
	}
	if !seed(first) {
		return stats, finish(ctl, &stats, false)
	}
	for len(centers) < cfg.Centers {
		next, worst := -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if !isCenter[u] && a.best[u] < worst {
				next, worst = u, a.best[u]
			}
		}
		if !seed(next) {
			return stats, finish(ctl, &stats, false)
		}
	}

	// Lloyd-style refinement: re-center, re-sweep, re-assign, until fixed.
	for round := 0; round < maxRounds; round++ {
		next := recenter(g, centers, a)
		if sameCenters(next, centers) {
			stats.Converged = true
			break
		}
		centers = next
		a.reset()
		if !s.sweepCenters(centers, a) {
			return stats, finish(ctl, &stats, false)
		}
		stats.Rounds++
	}

	// Vertices unreachable from every center (probability 0 everywhere)
	// join the first cluster so the result is a true partition.
	for u := range a.owner {
		if a.owner[u] < 0 {
			a.owner[u] = 0
		}
	}
	members := make([][]int, len(centers))
	sums := make([]float64, len(centers))
	for u := 0; u < n; u++ {
		idx := a.owner[u]
		members[idx] = append(members[idx], u)
		sums[idx] += a.best[u]
	}
	clusters := make([]Cluster, len(centers))
	for idx, c := range centers {
		clusters[idx] = Cluster{Center: c, Members: members[idx], Probability: sums[idx] / float64(len(members[idx]))}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Center < clusters[j].Center })
	visitorStopped := false
	for _, c := range clusters {
		stats.Emitted++
		if visit != nil && !visit(c) {
			visitorStopped = true
			break
		}
	}
	return stats, finish(ctl, &stats, visitorStopped)
}

// CollectContext materializes the partition in ascending center order.
func CollectContext(ctx context.Context, g *uncertain.Graph, cfg Config) ([]Cluster, Stats, error) {
	var out []Cluster
	stats, err := RunContext(ctx, g, cfg, func(c Cluster) bool {
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}
