// Package utruss computes (k,η)-truss decompositions of an uncertain graph
// — a third entry in the paper's future-work list of dense substructures
// (§6), following the probabilistic-truss line of Huang, Lu and Lakshmanan.
//
// In a deterministic graph the support of an edge e = {u,v} in a subgraph H
// is the number of triangles of H through e, and the k-truss is the maximal
// subgraph whose every edge has support ≥ k−2. In an uncertain graph the
// support of e within H becomes a random variable: for each common neighbor
// w of u and v in H, the wedge {u,w},{v,w} is present with probability
// q_w = p(u,w)·p(v,w), and wedges over distinct w share no edges, so they
// are independent. The support therefore follows a Poisson-binomial
// distribution whose tail P[supp ≥ t] is computed exactly by dynamic
// programming (no sampling involved).
//
// For k ≥ 2 and η ∈ (0, 1], the (k,η)-truss of G is the maximal edge
// subgraph H such that every edge e ∈ H satisfies
//
//	P[supp_H(e) ≥ k−2] ≥ η.
//
// The condition is monotone under edge removal (removing edges never raises
// another edge's support distribution), so the family of qualifying
// subgraphs is union-closed and the maximal one is unique; Truss computes it
// by iterative peeling, and Decompose assigns every edge its η-truss number
// (the largest k whose truss retains it) by peeling level by level.
//
// Support probabilities are conditional on the edge e itself: they quantify
// how well e's neighborhood supports it, independently of e's own existence
// probability, which is the convention that makes the k=2 floor exact
// (P[supp ≥ 0] = 1, so the (2,η)-truss is all of E for every η).
package utruss

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// EdgeTruss reports the η-truss number of one edge.
type EdgeTruss struct {
	U, V  int // endpoints, U < V
	Truss int // largest k such that the (k,η)-truss contains the edge; ≥ 2
}

// Config tunes a truss computation.
type Config struct {
	// Budget, when > 0, bounds the number of support-probability
	// evaluations (the Poisson-binomial tail DPs that dominate the cost)
	// the run may perform before aborting with core.ErrBudget.
	Budget int64
	// Stall, when > 0, arms the stall watchdog: a run whose progress beacon
	// (stamped by every run-control poll) does not advance for this long is
	// aborted with an error wrapping core.ErrStalled.
	Stall time.Duration
}

// Stats reports the work performed by a truss computation.
type Stats struct {
	Status   core.RunStatus // how the run ended (complete, stopped, canceled, …)
	Checks   int64          // support-probability evaluations (tail DPs)
	Removed  int64          // edges peeled across all levels
	Emitted  int64          // edges reported with a final truss number
	MaxTruss int            // largest truss number seen (Decompose paths)
}

// Visitor receives one edge with its final η-truss number, in peel order
// (level by level; within a level, deterministic queue order). Returning
// false stops the computation early.
type Visitor func(EdgeTruss) bool

// abortCheckInterval is how many support-probability evaluations pass
// between run-control polls. Each evaluation is a full Poisson-binomial DP
// — far heavier than a clique search node — so the cadence is finer than
// the clique kernel's 1024-node interval.
const abortCheckInterval = 64

// graphState is the mutable peeling state over one uncertain graph.
type graphState struct {
	g       *uncertain.Graph
	alive   map[[2]int32]bool
	stats   *Stats
	ctl     *core.RunControl
	tick    int
	stopped bool
}

// countCheck accounts one support-probability evaluation and polls the run
// control on the interval; it returns true when the run must unwind.
func (s *graphState) countCheck() bool {
	s.stats.Checks++
	s.tick--
	if s.tick > 0 {
		return false
	}
	s.tick = abortCheckInterval
	if s.ctl.Poll(abortCheckInterval) {
		s.stopped = true
		return true
	}
	return false
}

func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

func newGraphState(g *uncertain.Graph, stats *Stats, ctl *core.RunControl) *graphState {
	s := &graphState{
		g:     g,
		alive: make(map[[2]int32]bool, g.NumEdges()),
		stats: stats,
		ctl:   ctl,
		tick:  abortCheckInterval,
	}
	for _, e := range g.Edges() {
		s.alive[edgeKey(e.U, e.V)] = true
	}
	return s
}

// wedgeProbs lists q_w = p(u,w)·p(v,w) for every common neighbor w of u and
// v whose wedge edges are both alive.
func (s *graphState) wedgeProbs(u, v int) []float64 {
	rowU, prU := s.g.Adjacency(u)
	rowV, prV := s.g.Adjacency(v)
	var qs []float64
	i, j := 0, 0
	for i < len(rowU) && j < len(rowV) {
		switch {
		case rowU[i] < rowV[j]:
			i++
		case rowU[i] > rowV[j]:
			j++
		default:
			w := int(rowU[i])
			if w != u && w != v &&
				s.alive[edgeKey(u, w)] && s.alive[edgeKey(v, w)] {
				qs = append(qs, prU[i]*prV[j])
			}
			i++
			j++
		}
	}
	return qs
}

// tailProb returns P[X ≥ t] for X a sum of independent Bernoulli(qs[i]).
// The DP keeps P[X = 0..t−1] and accumulates the overflow mass at ≥ t,
// costing O(len(qs)·t).
func tailProb(qs []float64, t int) float64 {
	if t <= 0 {
		return 1
	}
	if len(qs) < t {
		return 0
	}
	// dp[j] = P[X = j] over the prefix processed so far, for j < t.
	dp := make([]float64, t)
	dp[0] = 1
	atLeast := 0.0
	for _, q := range qs {
		// Mass moving from t−1 to t leaves the tracked range.
		atLeast += dp[t-1] * q
		for j := t - 1; j >= 1; j-- {
			dp[j] = dp[j]*(1-q) + dp[j-1]*q
		}
		dp[0] *= 1 - q
	}
	return atLeast
}

// SupportProb returns P[supp_G(e) ≥ t] for the edge {u,v} of g, with the
// whole graph as the ambient subgraph. It errors if {u,v} is not a possible
// edge or t is negative.
func SupportProb(g *uncertain.Graph, u, v int, t int) (float64, error) {
	if g == nil {
		return 0, fmt.Errorf("utruss: %w", core.ErrNilGraph)
	}
	if t < 0 {
		return 0, fmt.Errorf("utruss: negative support threshold %d: %w", t, core.ErrConfig)
	}
	if u < 0 || u >= g.NumVertices() || v < 0 || v >= g.NumVertices() {
		return 0, fmt.Errorf("utruss: edge {%d,%d} outside [0,%d): %w", u, v, g.NumVertices(), uncertain.ErrVertexRange)
	}
	if !g.HasEdge(u, v) {
		return 0, fmt.Errorf("utruss: {%d,%d} is not a possible edge", u, v)
	}
	var stats Stats
	s := newGraphState(g, &stats, core.NewRunControl(context.Background(), 0))
	return tailProb(s.wedgeProbs(u, v), t), nil
}

// peel removes, to fixpoint, every alive edge whose support probability at
// threshold t falls below eta, and returns the removed edges.
func (s *graphState) peel(t int, eta float64) [][2]int32 {
	var removed [][2]int32
	// Seed the work queue with every alive edge.
	queue := make([][2]int32, 0, len(s.alive))
	inQueue := make(map[[2]int32]bool, len(s.alive))
	for k, ok := range s.alive {
		if ok {
			queue = append(queue, k)
			inQueue[k] = true
		}
	}
	// Deterministic processing order for reproducible stats; the fixpoint
	// itself is order-independent.
	sort.Slice(queue, func(i, j int) bool {
		if queue[i][0] != queue[j][0] {
			return queue[i][0] < queue[j][0]
		}
		return queue[i][1] < queue[j][1]
	})
	for len(queue) > 0 {
		if s.stopped {
			return removed
		}
		k := queue[0]
		queue = queue[1:]
		inQueue[k] = false
		if !s.alive[k] {
			continue
		}
		u, v := int(k[0]), int(k[1])
		if s.countCheck() {
			return removed
		}
		if tailProb(s.wedgeProbs(u, v), t) >= eta {
			continue
		}
		// e fails: remove it and re-check the edges of every triangle it
		// participated in.
		s.alive[k] = false
		s.stats.Removed++
		removed = append(removed, k)
		for _, q := range s.triangleEdges(u, v) {
			if s.alive[q] && !inQueue[q] {
				queue = append(queue, q)
				inQueue[q] = true
			}
		}
	}
	return removed
}

// triangleEdges returns the alive edges {u,w} and {v,w} over common alive
// neighbors w — exactly the edges whose support distribution changes when
// {u,v} is removed.
func (s *graphState) triangleEdges(u, v int) [][2]int32 {
	rowU, _ := s.g.Adjacency(u)
	rowV, _ := s.g.Adjacency(v)
	var out [][2]int32
	i, j := 0, 0
	for i < len(rowU) && j < len(rowV) {
		switch {
		case rowU[i] < rowV[j]:
			i++
		case rowU[i] > rowV[j]:
			j++
		default:
			w := int(rowU[i])
			uw, vw := edgeKey(u, w), edgeKey(v, w)
			if s.alive[uw] && s.alive[vw] {
				out = append(out, uw, vw)
			}
			i++
			j++
		}
	}
	return out
}

// Validate checks the (graph, eta, config) triple every decomposition entry
// point accepts, returning the first violation wrapped around the matching
// sentinel (core.ErrNilGraph, core.ErrEtaRange, core.ErrConfig). The k of a
// specific truss level is validated by TrussContext (core.ErrKRange).
func Validate(g *uncertain.Graph, eta float64, cfg Config) error {
	return validateTrussArgs(g, 2, eta, cfg)
}

func validateTrussArgs(g *uncertain.Graph, k int, eta float64, cfg Config) error {
	if g == nil {
		return fmt.Errorf("utruss: %w", core.ErrNilGraph)
	}
	if k < 2 {
		return fmt.Errorf("utruss: k = %d below 2: %w", k, core.ErrKRange)
	}
	if !(eta > 0 && eta <= 1) { // also rejects NaN
		return fmt.Errorf("utruss: eta %v outside (0,1]: %w", eta, core.ErrEtaRange)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("utruss: negative Budget %d: %w", cfg.Budget, core.ErrConfig)
	}
	if cfg.Stall < 0 {
		return fmt.Errorf("utruss: negative Stall %v: %w", cfg.Stall, core.ErrConfig)
	}
	return nil
}

// finish records the terminal status on stats and formats the abort error.
func finish(ctl *core.RunControl, stats *Stats, visitorStopped bool) error {
	stats.Status = ctl.Status(visitorStopped)
	err := ctl.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("utruss: truss computation aborted after %d support checks: %w", stats.Checks, err)
}

// Truss returns the (k,η)-truss of g: the unique maximal subgraph whose
// every edge e satisfies P[supp(e) ≥ k−2] ≥ η within the subgraph. The
// result preserves g's vertex set; only edges are removed.
func Truss(g *uncertain.Graph, k int, eta float64) (*uncertain.Graph, error) {
	tr, _, err := TrussContext(context.Background(), g, k, eta, Config{})
	return tr, err
}

// TrussContext is Truss under ctx and explicit configuration: the peeling
// loop polls the shared run-control block every abortCheckInterval support
// checks, so a canceled context, an expired deadline, or an exhausted
// Config.Budget aborts the computation with an error wrapping the cause and
// Stats.Status recording the terminal state.
func TrussContext(ctx context.Context, g *uncertain.Graph, k int, eta float64, cfg Config) (*uncertain.Graph, Stats, error) {
	var stats Stats
	if err := validateTrussArgs(g, k, eta, cfg); err != nil {
		return nil, stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return nil, stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	s := newGraphState(g, &stats, ctl)
	s.peel(k-2, eta)
	if err := finish(ctl, &stats, false); err != nil {
		return nil, stats, err
	}
	tr, err := s.export()
	return tr, stats, err
}

// export materializes the alive edges as an uncertain graph.
func (s *graphState) export() (*uncertain.Graph, error) {
	b := uncertain.NewBuilder(s.g.NumVertices())
	for _, e := range s.g.Edges() {
		if s.alive[edgeKey(e.U, e.V)] {
			if err := b.AddEdge(e.U, e.V, e.P); err != nil {
				return nil, fmt.Errorf("utruss: rebuilding truss: %w", err)
			}
		}
	}
	return b.Build(), nil
}

// RunContext performs the η-truss decomposition under ctx, streaming every
// edge with its final truss number to visit as the peeling discovers it:
// edges removed while enforcing the (k,η)-truss condition have truss number
// k−1, which is final the moment they are peeled, so the visitor fires in
// peel order (level by level) without waiting for the full decomposition.
// visit may be nil to only count. A visitor returning false stops the
// peeling early (StatusStopped, nil error); a context or budget abort
// returns an error wrapping the cause.
func RunContext(ctx context.Context, g *uncertain.Graph, eta float64, cfg Config, visit Visitor) (Stats, error) {
	var stats Stats
	if err := validateTrussArgs(g, 2, eta, cfg); err != nil {
		return stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	s := newGraphState(g, &stats, ctl)
	// Peel level by level; each removed edge's truss number is final.
	alive := len(s.alive)
	visitorStopped := false
	for k := 3; alive > 0 && !s.stopped && !visitorStopped; k++ {
		removed := s.peel(k-2, eta)
		alive -= len(removed)
		for _, e := range removed {
			// A level's removals are emitted as a batch, so poll the
			// control (at zero charge) between yields too — a consumer
			// canceling mid-stream must not have to wait for the next
			// level's support checks to be noticed.
			if s.stopped || ctl.Poll(0) {
				s.stopped = true
				break
			}
			et := EdgeTruss{U: int(e[0]), V: int(e[1]), Truss: k - 1}
			stats.Emitted++
			if et.Truss > stats.MaxTruss {
				stats.MaxTruss = et.Truss
			}
			if visit != nil && !visit(et) {
				visitorStopped = true
				break
			}
		}
	}
	return stats, finish(ctl, &stats, visitorStopped)
}

// Decompose assigns every edge of g its η-truss number: the largest k such
// that the (k,η)-truss contains the edge. Edges are returned sorted by
// (U, V). Every edge has truss number ≥ 2, the trivial level.
func Decompose(g *uncertain.Graph, eta float64) ([]EdgeTruss, error) {
	dec, _, err := DecomposeContext(context.Background(), g, eta, Config{})
	return dec, err
}

// DecomposeContext is Decompose under ctx and explicit configuration,
// additionally returning the run's Stats.
func DecomposeContext(ctx context.Context, g *uncertain.Graph, eta float64, cfg Config) ([]EdgeTruss, Stats, error) {
	var out []EdgeTruss
	stats, err := RunContext(ctx, g, eta, cfg, func(e EdgeTruss) bool {
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out, stats, nil
}

// MaxTruss returns the largest k for which the (k,η)-truss of g is
// non-empty, or 0 for an edgeless graph.
func MaxTruss(g *uncertain.Graph, eta float64) (int, error) {
	_, stats, err := DecomposeContext(context.Background(), g, eta, Config{})
	if err != nil {
		return 0, err
	}
	return stats.MaxTruss, nil
}
