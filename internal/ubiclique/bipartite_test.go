package ubiclique

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(3, 2)
	cases := []struct {
		name    string
		l, r    int
		p       float64
		wantErr bool
	}{
		{"valid", 0, 0, 0.5, false},
		{"left negative", -1, 0, 0.5, true},
		{"left too large", 3, 0, 0.5, true},
		{"right negative", 0, -1, 0.5, true},
		{"right too large", 0, 2, 0.5, true},
		{"probability zero", 1, 0, 0, true},
		{"probability negative", 1, 0, -0.25, true},
		{"probability above one", 1, 0, 1.5, true},
		{"probability NaN", 1, 0, math.NaN(), true},
		{"probability one ok", 1, 0, 1, false},
		{"duplicate", 0, 0, 0.25, true},
	}
	for _, tc := range cases {
		err := b.AddEdge(tc.l, tc.r, tc.p)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: AddEdge(%d,%d,%v) error = %v, wantErr = %v",
				tc.name, tc.l, tc.r, tc.p, err, tc.wantErr)
		}
	}
}

func TestUpsertEdgeReplaces(t *testing.T) {
	b := NewBuilder(2, 2)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.UpsertEdge(0, 1, 0.75); err != nil {
		t.Fatal(err)
	}
	if b.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after upsert, want 1", b.NumEdges())
	}
	g := b.Build()
	if p, ok := g.Prob(0, 1); !ok || p != 0.75 {
		t.Fatalf("Prob(0,1) = %v,%v; want 0.75,true", p, ok)
	}
}

func TestFromEdgesAndAccessors(t *testing.T) {
	g, err := FromEdges(3, 2, []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.25},
		{L: 1, R: 0, P: 1},
		{L: 2, R: 1, P: 0.125},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLeft() != 3 || g.NumRight() != 2 || g.NumEdges() != 4 {
		t.Fatalf("sizes = %d,%d,%d; want 3,2,4", g.NumLeft(), g.NumRight(), g.NumEdges())
	}
	if d := g.DegreeLeft(0); d != 2 {
		t.Errorf("DegreeLeft(0) = %d, want 2", d)
	}
	if d := g.DegreeRight(0); d != 2 {
		t.Errorf("DegreeRight(0) = %d, want 2", d)
	}
	if d := g.DegreeRight(1); d != 2 {
		t.Errorf("DegreeRight(1) = %d, want 2", d)
	}
	if got := g.LeftNeighbors(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("LeftNeighbors(0) = %v, want [0 1]", got)
	}
	if got := g.RightNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("RightNeighbors(1) = %v, want [0 2]", got)
	}
	if g.HasEdge(1, 1) {
		t.Error("HasEdge(1,1) = true for missing edge")
	}
	if p, ok := g.Prob(2, 1); !ok || p != 0.125 {
		t.Errorf("Prob(2,1) = %v,%v; want 0.125,true", p, ok)
	}
	if _, ok := g.Prob(-1, 0); ok {
		t.Error("Prob(-1,0) reported an edge")
	}
	if _, ok := g.Prob(0, 5); ok {
		t.Error("Prob(0,5) reported an edge")
	}
}

func TestFromEdgesRejectsBadEdge(t *testing.T) {
	if _, err := FromEdges(2, 2, []Edge{{L: 0, R: 0, P: 0.5}, {L: 0, R: 0, P: 0.5}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := FromEdges(2, 2, []Edge{{L: 5, R: 0, P: 0.5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	want := []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.25},
		{L: 1, R: 1, P: 1},
	}
	g, err := FromEdges(2, 2, want)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Edges()[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBicliqueProbHandComputed(t *testing.T) {
	// Complete bipartite 2x2 with probabilities 1/2, 1/4, 1/2, 1.
	g, err := FromEdges(2, 2, []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.25},
		{L: 1, R: 0, P: 0.5},
		{L: 1, R: 1, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		A, B []int
		want float64
	}{
		{nil, nil, 1},                        // empty product
		{[]int{0}, nil, 1},                   // no cross pairs
		{[]int{0}, []int{0}, 0.5},            // single edge
		{[]int{0}, []int{0, 1}, 0.125},       // 0.5 * 0.25
		{[]int{0, 1}, []int{0}, 0.25},        // 0.5 * 0.5
		{[]int{0, 1}, []int{0, 1}, 1.0 / 16}, // all four edges
	}
	for _, tc := range cases {
		if got := g.BicliqueProb(tc.A, tc.B); got != tc.want {
			t.Errorf("BicliqueProb(%v,%v) = %v, want %v", tc.A, tc.B, got, tc.want)
		}
	}
}

func TestBicliqueProbMissingPairIsZero(t *testing.T) {
	g, err := FromEdges(2, 2, []Edge{{L: 0, R: 0, P: 0.5}, {L: 1, R: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.BicliqueProb([]int{0, 1}, []int{0}); got != 0 {
		t.Fatalf("BicliqueProb with missing pair = %v, want 0", got)
	}
	if g.IsAlphaBiclique([]int{0, 1}, []int{0, 1}, 0.0001) {
		t.Fatal("pair with missing cross edge accepted as α-biclique")
	}
}

func TestIsAlphaBicliqueRequiresBothSides(t *testing.T) {
	g, err := FromEdges(1, 1, []Edge{{L: 0, R: 0, P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsAlphaBiclique([]int{0}, nil, 0.5) {
		t.Error("empty right side accepted")
	}
	if g.IsAlphaBiclique(nil, []int{0}, 0.5) {
		t.Error("empty left side accepted")
	}
	if !g.IsAlphaBiclique([]int{0}, []int{0}, 0.5) {
		t.Error("single certain edge rejected")
	}
}

func TestIsAlphaMaximalBicliqueHandComputed(t *testing.T) {
	// l0 connects to r0 (0.5) and r1 (0.5); l1 connects to r0 (0.25).
	g, err := FromEdges(2, 2, []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.5},
		{L: 1, R: 0, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// At α = 0.25: ({0},{0,1}) has probability 0.25 and cannot grow
	// (adding l1 needs edge (1,1) which is absent).
	if !g.IsAlphaMaximalBiclique([]int{0}, []int{0, 1}, 0.25) {
		t.Error("({0},{0,1}) should be 0.25-maximal")
	}
	// ({0},{0}) extends to ({0},{0,1}) at 0.25, so it is not maximal.
	if g.IsAlphaMaximalBiclique([]int{0}, []int{0}, 0.25) {
		t.Error("({0},{0}) should extend on the right")
	}
	// ({0,1},{0}) has probability 0.125 < 0.25.
	if g.IsAlphaMaximalBiclique([]int{0, 1}, []int{0}, 0.25) {
		t.Error("({0,1},{0}) is below threshold")
	}
	// At α = 0.125 it qualifies and is maximal (adding r1 needs (1,1)).
	if !g.IsAlphaMaximalBiclique([]int{0, 1}, []int{0}, 0.125) {
		t.Error("({0,1},{0}) should be 0.125-maximal")
	}
}

func TestPruneAlpha(t *testing.T) {
	g, err := FromEdges(2, 2, []Edge{
		{L: 0, R: 0, P: 0.5},
		{L: 0, R: 1, P: 0.1},
		{L: 1, R: 1, P: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := g.PruneAlpha(0.25)
	if p.NumEdges() != 2 {
		t.Fatalf("pruned graph has %d edges, want 2", p.NumEdges())
	}
	if p.HasEdge(0, 1) {
		t.Fatal("edge below threshold survived pruning")
	}
	if p.NumLeft() != 2 || p.NumRight() != 2 {
		t.Fatal("pruning changed the vertex sets")
	}
}

func TestZeroSidedGraphs(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {0, 3}, {3, 0}} {
		g := NewBuilder(dims[0], dims[1]).Build()
		if g.NumEdges() != 0 {
			t.Fatalf("(%d,%d): edges appeared from nowhere", dims[0], dims[1])
		}
		n, err := Count(g, 0.5)
		if err != nil {
			t.Fatalf("(%d,%d): %v", dims[0], dims[1], err)
		}
		if n != 0 {
			t.Fatalf("(%d,%d): %d bicliques on a graph missing a side", dims[0], dims[1], n)
		}
	}
}

// randomBipartite builds a bipartite G(nL, nR, density) graph with dyadic
// probabilities so every threshold comparison in cross-implementation tests
// is float-exact.
func randomBipartite(nL, nR int, density float64, rng *rand.Rand) *Bipartite {
	b := NewBuilder(nL, nR)
	vals := []float64{1, 0.5, 0.25, 0.125}
	for l := 0; l < nL; l++ {
		for r := 0; r < nR; r++ {
			if rng.Float64() < density {
				_ = b.AddEdge(l, r, vals[rng.Intn(len(vals))])
			}
		}
	}
	return b.Build()
}

func TestProbLookupMatchesEdgeList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomBipartite(8, 6, 0.5, rng)
	seen := 0
	for _, e := range g.Edges() {
		p, ok := g.Prob(e.L, e.R)
		if !ok || p != e.P {
			t.Fatalf("Prob(%d,%d) = %v,%v; edge list says %v", e.L, e.R, p, ok, e.P)
		}
		seen++
	}
	if seen != g.NumEdges() {
		t.Fatalf("edge list has %d entries, graph reports %d", seen, g.NumEdges())
	}
}
