// Package udensest implements most-probable densest-subgraph mining on
// uncertain graphs, following the peel-then-score recipe of Saha et al.
// ("Most Probable Densest Subgraphs", arXiv 2212.08820): a greedy
// min-expected-degree peeling builds a small family of candidate subgraphs
// (Charikar's argument gives the family's best member a 2-approximation of
// the maximum expected density), and each candidate is then scored with the
// exact probability — under the independent-edge model — that it realizes
// the family's champion density in a sampled world.
//
// The peeling runs per support component (a densest subgraph never spans
// two components: the density of a disjoint union is at most the larger of
// the parts' densities), recording a candidate each time the suffix density
// strictly improves on the best seen so far within that component. The
// candidate family is therefore identical whether the graph is mined whole
// or component-sharded, which is what lets WithShards keep its
// same-answer contract at the query layer.
package udensest

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Config tunes a densest-subgraph mining run.
type Config struct {
	// Budget, when > 0, bounds the number of peel steps (vertex removals,
	// the charged work unit) before the run aborts with core.ErrBudget.
	// Charged in batches of the poll interval, so runs can overshoot
	// slightly.
	Budget int64
	// Stall, when > 0, arms the stall watchdog: a run whose progress beacon
	// does not advance for this long is aborted wrapping core.ErrStalled.
	Stall time.Duration
}

// Stats reports the work performed by a densest-subgraph run.
type Stats struct {
	Status      core.RunStatus // how the run ended
	PeelSteps   int64          // vertices peeled (the charged work unit)
	Scored      int64          // candidates given an exact probability score
	Emitted     int64          // candidates reported to the visitor
	Candidates  int            // size of the candidate prefix family
	BestDensity float64        // champion expected density d̂ across the family
}

// Candidate is one member of the peel family: a vertex set, its expected
// density (sum of internal edge probabilities over the vertex count), and
// the exact probability that its realized internal edge count reaches
// ⌈d̂·|S|⌉ edges, where d̂ is the family's best expected density. The
// candidate maximizing that probability is the most probable densest
// subgraph of the family. Vertices is sorted ascending and caller-owned.
type Candidate struct {
	Vertices        []int
	ExpectedDensity float64
	Probability     float64
}

// Visitor receives one scored candidate at a time, best first (descending
// Probability, ties by descending ExpectedDensity, then smaller size, then
// lexicographic vertices). Returning false stops the report loop.
type Visitor func(Candidate) bool

// abortCheckInterval is how many peel steps (or scoring-DP columns) pass
// between run-control polls. A peel step is a linear min-scan plus neighbor
// updates — heavier than a clique search node — so the cadence matches
// ucore's 64 rather than the kernel's 1024.
const abortCheckInterval = 64

// Validate checks the (graph, config) pair every entry point accepts,
// wrapping the first violation around the matching sentinel.
func Validate(g *uncertain.Graph, cfg Config) error {
	if g == nil {
		return fmt.Errorf("udensest: %w", core.ErrNilGraph)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("udensest: negative Budget %d: %w", cfg.Budget, core.ErrConfig)
	}
	if cfg.Stall < 0 {
		return fmt.Errorf("udensest: negative Stall %v: %w", cfg.Stall, core.ErrConfig)
	}
	return nil
}

// finish records the terminal status on stats and formats the abort error.
func finish(ctl *core.RunControl, stats *Stats, visitorStopped bool) error {
	stats.Status = ctl.Status(visitorStopped)
	err := ctl.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("udensest: densest-subgraph mining aborted after %d peel steps: %w", stats.PeelSteps, err)
}

// peeler carries the mutable peel state shared across components.
type peeler struct {
	adj     []map[int32]float64
	expDeg  []float64
	removed []bool
	stats   *Stats
	ctl     *core.RunControl
	tick    int
}

// countStep accounts one peel step and polls the run control on the
// interval; it returns true when the run must unwind.
func (p *peeler) countStep() bool {
	p.stats.PeelSteps++
	p.tick--
	if p.tick > 0 {
		return false
	}
	p.tick = abortCheckInterval
	return p.ctl.Poll(abortCheckInterval)
}

// newPeeler builds the mutable adjacency state for the whole graph once;
// components consume disjoint slices of it.
func newPeeler(g *uncertain.Graph, stats *Stats, ctl *core.RunControl) *peeler {
	n := g.NumVertices()
	p := &peeler{
		adj:     make([]map[int32]float64, n),
		expDeg:  make([]float64, n),
		removed: make([]bool, n),
		stats:   stats,
		ctl:     ctl,
		tick:    abortCheckInterval,
	}
	for u := 0; u < n; u++ {
		row, probs := g.Adjacency(u)
		p.adj[u] = make(map[int32]float64, len(row))
		sum := 0.0
		for i, v := range row {
			p.adj[u][v] = probs[i]
			sum += probs[i]
		}
		p.expDeg[u] = sum
	}
	return p
}

// peelComponent peels one component to exhaustion, appending a candidate
// each time the suffix density strictly improves. It reports false when the
// run control aborted mid-peel.
func (p *peeler) peelComponent(comp []int, cands *[]Candidate) bool {
	// W is the expected internal edge count of the surviving suffix; every
	// accumulation below runs in a fixed (ascending-ID, then peel) order so
	// the float results are bit-identical between whole-graph and
	// per-component-shard runs.
	W := 0.0
	for _, u := range comp {
		W += p.expDeg[u]
	}
	W /= 2
	order := make([]int, 0, len(comp))
	best := -1.0
	type mark struct {
		idx     int
		density float64
	}
	var marks []mark
	for remaining := len(comp); remaining > 0; remaining-- {
		if density := W / float64(remaining); density > best {
			best = density
			marks = append(marks, mark{len(order), density})
		}
		// Select the minimum-expected-degree survivor; comp is ascending, so
		// the strict < breaks ties toward the smallest ID.
		bestV, bestDeg := -1, math.Inf(1)
		for _, v := range comp {
			if !p.removed[v] && p.expDeg[v] < bestDeg {
				bestV, bestDeg = v, p.expDeg[v]
			}
		}
		if p.countStep() {
			return false
		}
		p.removed[bestV] = true
		order = append(order, bestV)
		for w, pw := range p.adj[bestV] {
			if p.removed[w] {
				continue
			}
			p.expDeg[w] -= pw
			delete(p.adj[w], int32(bestV))
		}
		W -= bestDeg
		p.adj[bestV] = nil
	}
	for _, m := range marks {
		verts := append([]int(nil), order[m.idx:]...)
		sort.Ints(verts)
		*cands = append(*cands, Candidate{Vertices: verts, ExpectedDensity: m.density})
	}
	if best > p.stats.BestDensity {
		p.stats.BestDensity = best
	}
	return true
}

// peelAll peels every component of g, returning the unscored candidate
// family (components in smallest-member order, candidates in discovery
// order within each). ok is false when the run control aborted.
func peelAll(g *uncertain.Graph, stats *Stats, ctl *core.RunControl) (cands []Candidate, ok bool) {
	p := newPeeler(g, stats, ctl)
	for _, comp := range g.Components() {
		if !p.peelComponent(comp, &cands) {
			return nil, false
		}
	}
	stats.Candidates = len(cands)
	return cands, true
}

// BestDensity returns the family's champion expected density d̂ (0 for an
// empty family).
func BestDensity(cands []Candidate) float64 {
	best := 0.0
	for _, c := range cands {
		if c.ExpectedDensity > best {
			best = c.ExpectedDensity
		}
	}
	return best
}

// isSubsetSorted reports whether a ⊆ b for ascending-sorted slices.
func isSubsetSorted(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// scoreChain scores one nested peel chain (chain[0] ⊃ chain[1] ⊃ …, the
// suffixes of one component's peel order) with a single incremental
// Poisson-binomial DP. Walking the chain smallest candidate first, each
// vertex's internal edges enter the distribution exactly once, and a
// candidate's Pr[X ≥ ⌈d̂·|S|⌉] is read off the distribution the moment its
// vertex set is complete. A whole chain therefore costs one O(m²) DP — m
// the largest member's edge count — where rescoring every candidate from
// scratch cost O(|chain|·m²) and made large peel families (hundreds of
// near-full suffixes on a preferential-attachment graph) the dominant term
// of the run. Run-control polls are woven through the edge loop so a
// deadline or cancellation aborts mid-score; ok is false on abort. Nothing
// is charged against the budget — peel steps are the budgeted unit.
func scoreChain(g *uncertain.Graph, chain []Candidate, dstar float64, stats *Stats, ctl *core.RunControl) bool {
	member := make(map[int]bool, len(chain[0].Vertices))
	dist := []float64{1} // dist[j] = Pr[exactly j internal edges realized]
	tick := abortCheckInterval
	for i := len(chain) - 1; i >= 0; i-- {
		for _, v := range chain[i].Vertices {
			if member[v] {
				continue
			}
			member[v] = true
			row, probs := g.Adjacency(v)
			for r, w := range row {
				if int(w) == v || !member[int(w)] {
					continue
				}
				tick--
				if tick <= 0 {
					tick = abortCheckInterval
					if ctl.Poll(0) {
						return false
					}
				}
				p := probs[r]
				dist = append(dist, 0)
				for j := len(dist) - 1; j >= 1; j-- {
					dist[j] = dist[j]*(1-p) + dist[j-1]*p
				}
				dist[0] *= 1 - p
			}
		}
		k := int(math.Ceil(dstar*float64(len(chain[i].Vertices)) - 1e-9))
		tail := 0.0
		switch {
		case k <= 0:
			tail = 1
		case k >= len(dist):
			tail = 0
		default:
			for j := k; j < len(dist); j++ {
				tail += dist[j]
			}
		}
		chain[i].Probability = tail
		stats.Scored++
	}
	return true
}

// scoreAll fills every candidate's Probability: the exact chance its
// realized edge count reaches ⌈dstar·|S|⌉. Candidates arrive as
// concatenated nested chains — one per peeled component — and the chain
// boundaries are re-detected here with the subset test rather than carried
// alongside, so the sharded driver's completion-order concatenation scores
// through the same code as the serial path (disjoint components can never
// pass the subset test, so a boundary is never missed). It reports false on
// a mid-score abort.
func scoreAll(g *uncertain.Graph, cands []Candidate, dstar float64, stats *Stats, ctl *core.RunControl) bool {
	for start := 0; start < len(cands); {
		end := start + 1
		for end < len(cands) && isSubsetSorted(cands[end].Vertices, cands[end-1].Vertices) {
			end++
		}
		if !scoreChain(g, cands[start:end], dstar, stats, ctl) {
			return false
		}
		start = end
	}
	return true
}

// SortCandidates orders a family canonically: descending Probability, then
// descending ExpectedDensity, then smaller size, then lexicographic
// vertices. The head of the sorted family is the most probable densest
// subgraph.
func SortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Probability != b.Probability {
			return a.Probability > b.Probability
		}
		if a.ExpectedDensity != b.ExpectedDensity {
			return a.ExpectedDensity > b.ExpectedDensity
		}
		if len(a.Vertices) != len(b.Vertices) {
			return len(a.Vertices) < len(b.Vertices)
		}
		for x := range a.Vertices {
			if a.Vertices[x] != b.Vertices[x] {
				return a.Vertices[x] < b.Vertices[x]
			}
		}
		return false
	})
}

// RunContext mines the candidate family of g under ctx — peel every
// component, score the family against its champion density, sort — and
// reports each scored candidate to visit in canonical order (visit may be
// nil to only count). Like the quasi-clique miner, the answer needs global
// knowledge, so the mining runs to completion before the report loop; the
// WithLimit analogue therefore lives in the caller's visitor. A visitor
// returning false stops the report (StatusStopped, nil error); context,
// budget, and stall aborts return an error wrapping the cause.
func RunContext(ctx context.Context, g *uncertain.Graph, cfg Config, visit Visitor) (Stats, error) {
	var stats Stats
	if err := Validate(g, cfg); err != nil {
		return stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) { // fail fast on an already-dead context
		return stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	cands, ok := peelAll(g, &stats, ctl)
	if !ok {
		return stats, finish(ctl, &stats, false)
	}
	if !scoreAll(g, cands, BestDensity(cands), &stats, ctl) {
		return stats, finish(ctl, &stats, false)
	}
	SortCandidates(cands)
	visitorStopped := false
	for _, c := range cands {
		stats.Emitted++
		if visit != nil && !visit(c) {
			visitorStopped = true
			break
		}
	}
	return stats, finish(ctl, &stats, visitorStopped)
}

// CollectContext materializes the scored candidate family in canonical
// order.
func CollectContext(ctx context.Context, g *uncertain.Graph, cfg Config) ([]Candidate, Stats, error) {
	var out []Candidate
	stats, err := RunContext(ctx, g, cfg, func(c Candidate) bool {
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// PeelContext runs only the peel phase, returning the unscored candidate
// family. The component-sharded driver uses it to mine each component
// independently before a single global scoring pass (the score threshold d̂
// is a whole-family property).
func PeelContext(ctx context.Context, g *uncertain.Graph, cfg Config) ([]Candidate, Stats, error) {
	var stats Stats
	if err := Validate(g, cfg); err != nil {
		return nil, stats, err
	}
	ctl := core.NewRunControl(ctx, cfg.Budget)
	if ctl.Poll(0) {
		return nil, stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	cands, ok := peelAll(g, &stats, ctl)
	if !ok {
		return nil, stats, finish(ctl, &stats, false)
	}
	return cands, stats, finish(ctl, &stats, false)
}

// ScoreContext runs only the scoring phase against an externally supplied
// champion density, mutating each candidate's Probability in place. The
// candidates' vertex IDs must be valid in g (the sharded driver passes the
// parent graph: a component's internal edges are the same set either way).
// Budget is not charged — scoring is poll-only — but cancellation,
// deadlines, and the stall watchdog apply.
func ScoreContext(ctx context.Context, g *uncertain.Graph, cands []Candidate, dstar float64, cfg Config) (Stats, error) {
	var stats Stats
	if err := Validate(g, cfg); err != nil {
		return stats, err
	}
	ctl := core.NewRunControl(ctx, 0)
	if ctl.Poll(0) {
		return stats, finish(ctl, &stats, false)
	}
	defer ctl.ArmStall(cfg.Stall)()
	if !scoreAll(g, cands, dstar, &stats, ctl) {
		return stats, finish(ctl, &stats, false)
	}
	return stats, finish(ctl, &stats, false)
}
