// Command ugen generates uncertain graphs: the paper's Table 1 dataset
// synthesizers or parameterized random topologies with pluggable probability
// assigners.
//
// Usage:
//
//	ugen -dataset BA5000 -seed 7 -out ba5000.ug
//	ugen -dataset wiki-vote -out wiki.ugb
//	ugen -topology ba -n 2000 -m 10 -probs uniform -out ba2000.ug
//	ugen -topology gnp -n 500 -p 0.01 -probs const:0.8 -out gnp.ug
//	ugen -topology hk -n 3000 -m 5 -pt 0.7 -probs beta:2:5 -out hk.ug
//	ugen -topology affinity -n 800 -nright 600 -blocks 25 -out aff.ubg
//	ugen -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/uncertain-graphs/mule/internal/bench"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/graphio"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ugen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ugen", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "", "named Table 1 dataset (see -list)")
		topology = fs.String("topology", "", "random topology: ba|gnp|gnm|ws|hk|affinity (bipartite)")
		n        = fs.Int("n", 1000, "vertices (topology mode; left side for affinity)")
		nRight   = fs.Int("nright", 750, "right-side vertices (affinity)")
		blocks   = fs.Int("blocks", 20, "planted cohorts (affinity)")
		m        = fs.Int("m", 5, "edges per vertex (ba/hk) or total edges (gnm)")
		p        = fs.Float64("p", 0.01, "edge probability (gnp)")
		pt       = fs.Float64("pt", 0.5, "triad-formation probability (hk)")
		k        = fs.Int("k", 6, "ring-lattice degree (ws)")
		beta     = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		probs    = fs.String("probs", "uniform", "probability assigner: uniform|const:P|dyadic|beta:A:B")
		seed     = fs.Int64("seed", 1, "generator seed")
		scale    = fs.Float64("dblp-scale", 0.05, "DBLP dataset scale (1.0 = full 685k authors)")
		out      = fs.String("out", "", "output file (.ug text, .ugb binary; required unless -list)")
		list     = fs.Bool("list", false, "list named datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range gen.Table1(*scale) {
			fmt.Printf("%-16s %-38s |V|=%-8d |E|=%d\n", d.Name, d.Category, d.PaperN, d.PaperM)
		}
		return nil
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("missing -out")
	}

	if *topology == "affinity" {
		// Bipartite planted-cohort workload; written in the .ubg text format
		// that cmd/dense -mode bicliques reads.
		bg := bench.AffinityBipartite(*n, *nRight, *blocks, *seed)
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graphio.WriteBipartiteText(f, bg); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s: bipartite %dx%d, %d edges\n",
			*out, bg.NumLeft(), bg.NumRight(), bg.NumEdges())
		return nil
	}

	var g *uncertain.Graph
	switch {
	case *dataset != "":
		d, ok := findDataset(*dataset, *scale)
		if !ok {
			return fmt.Errorf("unknown dataset %q (try -list)", *dataset)
		}
		g = d.Build(*seed)
	case *topology != "":
		pf, err := parseProbs(*probs)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		edges, err := buildTopology(*topology, *n, *m, *p, *pt, *k, *beta, rng)
		if err != nil {
			return err
		}
		g, err = gen.BuildUncertain(*n, edges, pf, rng)
		if err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("need -dataset or -topology")
	}

	if err := graphio.SaveFile(*out, g); err != nil {
		return err
	}
	s := uncertain.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, s)
	return nil
}

func findDataset(name string, scale float64) (gen.Dataset, bool) {
	for _, d := range gen.Table1(scale) {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return gen.Dataset{}, false
}

func buildTopology(kind string, n, m int, p, pt float64, k int, beta float64, rng *rand.Rand) ([][2]int, error) {
	switch kind {
	case "ba":
		return gen.BarabasiAlbert(n, m, rng), nil
	case "gnp":
		return gen.GNP(n, p, rng), nil
	case "gnm":
		return gen.GNM(n, m, rng), nil
	case "ws":
		return gen.WattsStrogatz(n, k, beta, rng), nil
	case "hk":
		return gen.HolmeKim(n, m, pt, rng), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func parseProbs(s string) (gen.ProbFunc, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "uniform":
		return gen.UniformProb(), nil
	case "dyadic":
		return gen.DyadicProb(3), nil
	case "const":
		if len(parts) != 2 {
			return nil, fmt.Errorf("const needs a value, e.g. const:0.8")
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad const probability %q", parts[1])
		}
		return gen.ConstProb(v), nil
	case "beta":
		if len(parts) != 3 {
			return nil, fmt.Errorf("beta needs two shapes, e.g. beta:2:5")
		}
		a, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad beta shape %q", parts[1])
		}
		b, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad beta shape %q", parts[2])
		}
		return gen.BetaProb(a, b), nil
	default:
		return nil, fmt.Errorf("unknown probability assigner %q", s)
	}
}
