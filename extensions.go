package mule

import (
	"context"
	"errors"

	"github.com/uncertain-graphs/mule/internal/dynamic"
	"github.com/uncertain-graphs/mule/internal/topk"
	"github.com/uncertain-graphs/mule/internal/ubiclique"
	"github.com/uncertain-graphs/mule/internal/ucore"
	"github.com/uncertain-graphs/mule/internal/uquasi"
	"github.com/uncertain-graphs/mule/internal/utruss"
)

// This file exposes the dense-substructure extensions the paper's
// conclusion (§6) names as future work — bicliques, quasi-cliques, trusses
// and cores over uncertain graphs — together with top-k selection over
// α-maximal cliques (the Zou et al. problem of §1.2 recast against
// Definition 4).
//
// The primary surface is the prepared-query API of extquery.go
// (NewBicliqueQuery, NewQuasiQuery, NewTrussQuery, NewCoreQuery) plus the
// context-aware Maintainer methods; the flat functions below survive as
// deprecated wrappers funneled through the same constructors, with their
// exact historical behavior on valid inputs (rejections now uniformly wrap
// the typed sentinels — per-function notes call out the one case where
// that tightens what was previously accepted).

// --- Maximal α-bicliques (uncertain bipartite graphs) ---

// Bipartite is an immutable uncertain bipartite graph; build one with
// NewBipartiteBuilder or BipartiteFromEdges.
type Bipartite = ubiclique.Bipartite

// BipartiteBuilder accumulates probabilistic cross edges for a Bipartite.
type BipartiteBuilder = ubiclique.Builder

// BipartiteEdge is one probabilistic cross edge (left L, right R,
// probability P).
type BipartiteEdge = ubiclique.Edge

// Biclique is one materialized α-maximal biclique.
type Biclique = ubiclique.Biclique

// BicliqueVisitor receives each α-maximal biclique (sides sorted, reused
// between calls); returning false stops the enumeration.
type BicliqueVisitor = ubiclique.Visitor

// BicliqueConfig tunes biclique enumeration (per-side size minima, node
// budget, invariant checking).
//
// Deprecated: BicliqueConfig survives for the legacy EnumerateBicliquesWith
// entry point. New code should build a BicliqueQuery with NewBicliqueQuery
// and the WithSides / WithBudget options.
type BicliqueConfig = ubiclique.Config

// BicliqueStats reports the work performed by a biclique enumeration run,
// including its terminal Status.
type BicliqueStats = ubiclique.Stats

// NewBipartiteBuilder returns a builder for an uncertain bipartite graph
// with the given side sizes.
func NewBipartiteBuilder(nLeft, nRight int) *BipartiteBuilder {
	return ubiclique.NewBuilder(nLeft, nRight)
}

// BipartiteFromEdges builds an uncertain bipartite graph from an edge list.
func BipartiteFromEdges(nLeft, nRight int, edges []BipartiteEdge) (*Bipartite, error) {
	return ubiclique.FromEdges(nLeft, nRight, edges)
}

// runLegacyBicliques executes a BicliqueConfig-shaped run through the query
// layer with the historical callback contract: a visitor returning false is
// a successful early stop, not an error.
func runLegacyBicliques(ctx context.Context, g *Bipartite, alpha float64, visit BicliqueVisitor, cfg BicliqueConfig) (BicliqueStats, error) {
	q, err := newBicliqueQuery(g, alpha, cfg, 0)
	if err != nil {
		return BicliqueStats{}, err
	}
	stats, err := q.Run(ctx, visit)
	if errors.Is(err, ErrStopped) {
		err = nil
	}
	return stats, err
}

// EnumerateBicliques enumerates every α-maximal biclique of g with the
// MULE-style search of internal/ubiclique.
//
// Deprecated: use NewBicliqueQuery(g, alpha) and BicliqueQuery.Run, which
// honors a context and composes with the cross-cutting query options.
func EnumerateBicliques(g *Bipartite, alpha float64, visit BicliqueVisitor) (BicliqueStats, error) {
	return runLegacyBicliques(context.Background(), g, alpha, visit, BicliqueConfig{})
}

// EnumerateBicliquesWith runs biclique enumeration with explicit
// configuration.
//
// Deprecated: use NewBicliqueQuery(g, alpha, WithSides(minL, minR), …) and
// BicliqueQuery.Run.
func EnumerateBicliquesWith(g *Bipartite, alpha float64, visit BicliqueVisitor, cfg BicliqueConfig) (BicliqueStats, error) {
	return runLegacyBicliques(context.Background(), g, alpha, visit, cfg)
}

// EnumerateBicliquesContext is EnumerateBicliquesWith under ctx: the search
// polls the context on a node-count interval, exactly like Query runs, and
// returns an error wrapping context.Canceled or context.DeadlineExceeded if
// it fires mid-run.
//
// Deprecated: use NewBicliqueQuery and BicliqueQuery.Run, whose run methods
// all take a context.
func EnumerateBicliquesContext(ctx context.Context, g *Bipartite, alpha float64, visit BicliqueVisitor, cfg BicliqueConfig) (BicliqueStats, error) {
	return runLegacyBicliques(ctx, g, alpha, visit, cfg)
}

// CollectBicliques returns all α-maximal bicliques in canonical order.
//
// Deprecated: use NewBicliqueQuery(g, alpha) and BicliqueQuery.Collect.
func CollectBicliques(g *Bipartite, alpha float64) ([]Biclique, error) {
	q, err := newBicliqueQuery(g, alpha, BicliqueConfig{}, 0)
	if err != nil {
		return nil, err
	}
	return q.Collect(context.Background())
}

// --- Maximal expected γ-quasi-cliques ---

// QuasiConfig tunes quasi-clique mining (γ, size bounds, node budget).
//
// Deprecated: QuasiConfig survives for the legacy CollectQuasiCliques entry
// point. New code should build a QuasiQuery with NewQuasiQuery and the
// WithGamma / WithMinSize / WithMaxSize / WithBudget options.
type QuasiConfig = uquasi.Config

// QuasiStats reports the work performed by a quasi-clique mining run,
// including its terminal Status.
type QuasiStats = uquasi.Stats

// CollectQuasiCliques mines all maximal expected γ-quasi-cliques: vertex
// sets in which every member's expected degree into the set is at least
// γ·(|set|−1) and that no proper superset satisfies. cfg.Gamma must lie in
// [0.5, 1].
//
// Deprecated: use NewQuasiQuery(g, WithGamma(γ)) and QuasiQuery.Collect,
// which honors a context and composes with the cross-cutting query options.
func CollectQuasiCliques(g *Graph, cfg QuasiConfig) ([][]int, error) {
	q, err := newQuasiQuery(g, cfg, 0)
	if err != nil {
		return nil, err
	}
	return q.Collect(context.Background())
}

// IsExpectedQuasiClique reports whether set satisfies the expected-degree
// γ-quasi-clique condition.
func IsExpectedQuasiClique(g *Graph, set []int, gamma float64) bool {
	return uquasi.IsExpectedQuasiClique(g, set, gamma)
}

// QuasiCliqueWorldProb returns the exact probability that a sampled world
// induces a deterministic γ-quasi-clique on set (possible-world semantics;
// exponential in the number of induced edges, capped at 24).
func QuasiCliqueWorldProb(g *Graph, set []int, gamma float64) (float64, error) {
	return uquasi.WorldProbExact(g, set, gamma)
}

// QuasiCliqueWorldProbMC estimates the same probability by Monte-Carlo
// sampling.
func QuasiCliqueWorldProbMC(g *Graph, set []int, gamma float64, samples int, seed int64) (float64, error) {
	return uquasi.WorldProbMC(g, set, gamma, samples, seed)
}

// --- (k,η)-trusses ---

// EdgeTruss reports the η-truss number of one edge.
type EdgeTruss = utruss.EdgeTruss

// Truss returns the (k,η)-truss of g: the unique maximal subgraph whose
// every edge has probability ≥ η of being supported by at least k−2
// triangles within the subgraph.
//
// Deprecated: use NewTrussQuery(g, eta) and TrussQuery.Truss(ctx, k), which
// honors a context and composes with WithBudget.
func Truss(g *Graph, k int, eta float64) (*Graph, error) {
	q, err := newTrussQuery(g, eta, utruss.Config{}, 0)
	if err != nil {
		return nil, err
	}
	return q.Truss(context.Background(), k)
}

// TrussDecompose assigns every edge its η-truss number.
//
// Deprecated: use NewTrussQuery(g, eta) and TrussQuery.Collect (or Stream,
// which yields edges in peel order as the decomposition discovers them).
func TrussDecompose(g *Graph, eta float64) ([]EdgeTruss, error) {
	q, err := newTrussQuery(g, eta, utruss.Config{}, 0)
	if err != nil {
		return nil, err
	}
	return q.Collect(context.Background())
}

// TrussSupportProb returns P[supp(e) ≥ t] for edge {u,v}: the exact
// Poisson-binomial tail over the wedges through the edge.
func TrussSupportProb(g *Graph, u, v, t int) (float64, error) {
	return utruss.SupportProb(g, u, v, t)
}

// --- (k,η)-cores ---

// CoreDecomposition holds η-core numbers for every vertex.
type CoreDecomposition = ucore.Decomposition

// CoreDecompose computes the (k,η)-core decomposition of g.
//
// Deprecated: use NewCoreQuery(g, eta) and CoreQuery.Decompose (or Stream,
// which yields vertices in peel order), which honors a context and composes
// with WithBudget.
func CoreDecompose(g *Graph, eta float64) (CoreDecomposition, error) {
	q, err := newCoreQuery(g, eta, ucore.Config{}, 0)
	if err != nil {
		return CoreDecomposition{}, err
	}
	return q.Decompose(context.Background())
}

// Core returns the vertices of the (k,η)-core of g. One validation
// tightening vs the historical implementation: a negative k — previously a
// degenerate all-vertices query — now reports a wrapped ErrKRange, like
// the query method.
//
// Deprecated: use NewCoreQuery(g, eta) and CoreQuery.Core(ctx, k).
func Core(g *Graph, k int, eta float64) ([]int, error) {
	q, err := newCoreQuery(g, eta, ucore.Config{}, 0)
	if err != nil {
		return nil, err
	}
	return q.Core(context.Background(), k)
}

// --- Dynamic maintenance of α-maximal cliques ---

// Maintainer keeps the set of α-maximal cliques in sync across edge
// updates, re-enumerating only the neighborhoods the change can affect.
// SetEdgeContext, RemoveEdgeContext, and Apply take a context.Context and
// return the clique-set diff plus per-operation MaintainerStats; Stream
// ranges over the current clique set.
type Maintainer = dynamic.Maintainer

// CliqueDiff reports the clique-set change caused by one edge update.
type CliqueDiff = dynamic.Diff

// EdgeUpdate is one element of a Maintainer.Apply batch: set edge {U,V} to
// probability P, or remove it when Remove is true.
type EdgeUpdate = dynamic.EdgeUpdate

// MaintainerStats reports maintainer work: cumulative totals from
// Maintainer.Stats, or one operation's work (with its terminal Status) from
// the context-aware update methods.
type MaintainerStats = dynamic.Stats

// NewMaintainer builds a dynamic maintainer seeded with a full MULE
// enumeration of g at threshold alpha. Subsequent updates mutate the graph
// and return exact clique-set diffs.
func NewMaintainer(g *Graph, alpha float64) (*Maintainer, error) {
	return dynamic.New(g, alpha)
}

// NewMaintainerContext is NewMaintainer under ctx: the seeding enumeration
// — a full graph-sized MULE run, the expensive part of construction — is
// cancellable and deadline-bounded like any Query run.
func NewMaintainerContext(ctx context.Context, g *Graph, alpha float64) (*Maintainer, error) {
	return dynamic.NewContext(ctx, g, alpha)
}

// --- Top-k α-maximal cliques ---

// ScoredClique is one α-maximal clique with its clique probability.
type ScoredClique = topk.ScoredClique

// TopKCriterion selects the ranking used by Query.TopK.
type TopKCriterion = topk.Criterion

// Rankings for Query.TopK.
const (
	// ByProb ranks by clique probability, highest first (ties: larger
	// cliques, then lexicographically smaller vertex sets).
	ByProb = topk.CriterionProb
	// BySize ranks by clique size, largest first (ties: higher probability,
	// then lexicographically smaller vertex sets).
	BySize = topk.CriterionSize
)

// TopKByProb returns the k α-maximal cliques with the highest clique
// probability (descending; ties by size then lexicographic order).
//
// Deprecated: use NewQuery(g, alpha) and Query.TopK(ctx, k, ByProb), which
// honors a context and composes with the other query options.
func TopKByProb(g *Graph, alpha float64, k int) ([]ScoredClique, error) {
	return topk.ByProb(g, alpha, k)
}

// TopKBySize returns the k largest α-maximal cliques (descending; ties by
// probability then lexicographic order).
//
// Deprecated: use NewQuery(g, alpha) and Query.TopK(ctx, k, BySize).
func TopKBySize(g *Graph, alpha float64, k int) ([]ScoredClique, error) {
	return topk.BySize(g, alpha, k)
}
