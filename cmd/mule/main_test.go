package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uncertain-graphs/mule/internal/graphio"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.ug")
	if err := graphio.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEnumerate(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-alpha", "0.125", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 cliques, got %d: %q", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "0 1 2") || !strings.Contains(out.String(), "2 3") {
		t.Fatalf("missing cliques in output: %q", out.String())
	}
	// Probability column is the first field.
	if !strings.HasPrefix(lines[0], "0.125\t") && !strings.HasPrefix(lines[1], "0.125\t") {
		t.Fatalf("expected a clique with probability 0.125: %q", out.String())
	}
}

func TestRunCount(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-alpha", "0.125", "-count", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "2" {
		t.Fatalf("count output %q, want 2", out.String())
	}
}

func TestRunTopK(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-alpha", "0.125", "-top", "1", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("top-1 printed %d lines", len(lines))
	}
	// Highest probability maximal clique is {2,3} at 0.25.
	if !strings.Contains(lines[0], "2 3") {
		t.Fatalf("top-1 = %q, want clique {2,3}", lines[0])
	}
}

func TestRunMinSize(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-alpha", "0.125", "-minsize", "3", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "0 1 2") {
		t.Fatalf("minsize=3 output %q", out.String())
	}
}

func TestRunOrderingsAndWorkers(t *testing.T) {
	path := writeTestGraph(t)
	for _, ord := range []string{"natural", "degree", "degeneracy", "random"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-alpha", "0.125", "-order", ord, "-workers", "2", "-count", "-quiet"}, &out); err != nil {
			t.Fatalf("order %s: %v", ord, err)
		}
		if strings.TrimSpace(out.String()) != "2" {
			t.Fatalf("order %s: count %q", ord, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in should fail")
	}
	if err := run([]string{"-in", "/nonexistent/file.ug"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-alpha", "7"}, &out); err == nil {
		t.Error("bad alpha should fail")
	}
	if err := run([]string{"-in", path, "-order", "bogus"}, &out); err == nil {
		t.Error("bad ordering should fail")
	}
}

func TestMainSmoke(t *testing.T) {
	// Ensure the os.Stdout path compiles and runs through run().
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-alpha", "0.5", "-quiet"}, os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestRunProfiles(t *testing.T) {
	path := writeTestGraph(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-alpha", "0.125", "-count", "-quiet",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// The -top path exits through a different return; it must still write
	// the heap profile.
	mem2 := filepath.Join(dir, "mem2.pb.gz")
	if err := run([]string{"-in", path, "-alpha", "0.125", "-top", "1", "-quiet",
		"-memprofile", mem2}, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem2); err != nil || fi.Size() == 0 {
		t.Fatalf("top-k path did not write the heap profile: %v", err)
	}
}
