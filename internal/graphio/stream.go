package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// ErrFormat is the sentinel wrapped by every parse error the streaming
// reader produces: malformed lines, bad magic, truncated records, gzip
// garbage, implausible headers. Errors returned by the caller's EdgeFunc
// propagate unchanged; everything else from ScanEdges matches
// errors.Is(err, ErrFormat).
var ErrFormat = errors.New("graphio: malformed input")

// EdgeFunc receives one probabilistic edge per call during a streaming scan.
// Returning a non-nil error aborts the scan and surfaces that error verbatim.
type EdgeFunc func(u, v int, p float64) error

// Header describes what a scan learned about the input's shape.
type Header struct {
	// Vertices is the graph's vertex count: the declared count when the
	// input carries one (text directive, binary header, JSON field),
	// otherwise max endpoint + 1.
	Vertices int
	// Declared reports whether Vertices came from the input rather than
	// being inferred from endpoints.
	Declared bool
	// Edges is the number of edges delivered to the EdgeFunc.
	Edges int64
}

// maxEndpoint bounds vertex IDs accepted from any format so downstream CSR
// indices (int32) cannot overflow.
const maxEndpoint = 1<<31 - 1

// ScanEdges parses a graph from r edge by edge without materializing an edge
// list, sniffing gzip compression and the three formats (binary "UGRF"
// magic, leading '{' JSON, otherwise text) exactly like Load. Edges reach fn
// in input order; validation here is purely syntactic (self-loops, duplicate
// edges, and out-of-range probabilities are the graph builder's concern).
// Binary header counts are validated against the remaining input size when r
// is seekable, and against the declared edge count otherwise, so a corrupt
// header cannot demand an arbitrarily large allocation from a consumer that
// trusts the returned Header.
func ScanEdges(r io.Reader, fn EdgeFunc) (Header, error) {
	remaining := remainingBytes(r)
	br := bufio.NewReaderSize(r, 64*1024)
	if head, err := br.Peek(2); err == nil && [2]byte(head) == gzipMagic {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return Header{}, fmt.Errorf("graphio: opening gzip stream: %v: %w", err, ErrFormat)
		}
		defer zr.Close()
		// The decompressed size is unknown, so the binary path falls back to
		// trusting (and bounding) the declared edge count.
		remaining = -1
		br = bufio.NewReaderSize(zr, 64*1024)
	}
	if head, err := br.Peek(4); err == nil && [4]byte(head) == binaryMagic {
		return scanBinary(br, remaining, fn)
	}
	if head, err := br.Peek(1); err == nil && head[0] == '{' {
		return scanJSON(br, fn)
	}
	return scanText(br, fn)
}

// remainingBytes reports how many bytes of r are left to read, or -1 when r
// is not seekable (or seeking fails).
func remainingBytes(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

func scanText(r io.Reader, fn EdgeFunc) (Header, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	h := Header{Vertices: -1}
	maxV := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "vertices" {
			if len(fields) != 2 {
				return h, fmt.Errorf("graphio: line %d: malformed vertices directive: %w", line, ErrFormat)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return h, fmt.Errorf("graphio: line %d: bad vertex count %q: %w", line, fields[1], ErrFormat)
			}
			h.Vertices, h.Declared = v, true
			continue
		}
		if len(fields) != 3 {
			return h, fmt.Errorf("graphio: line %d: want 'u v p', got %q: %w", line, text, ErrFormat)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return h, fmt.Errorf("graphio: line %d: bad vertex %q: %w", line, fields[0], ErrFormat)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return h, fmt.Errorf("graphio: line %d: bad vertex %q: %w", line, fields[1], ErrFormat)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return h, fmt.Errorf("graphio: line %d: bad probability %q: %w", line, fields[2], ErrFormat)
		}
		if u < 0 || v < 0 || u > maxEndpoint || v > maxEndpoint {
			return h, fmt.Errorf("graphio: line %d: vertex out of range: %w", line, ErrFormat)
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		h.Edges++
		if err := fn(u, v, p); err != nil {
			return h, err
		}
	}
	if err := sc.Err(); err != nil {
		return h, fmt.Errorf("graphio: %v: %w", err, ErrFormat)
	}
	if !h.Declared {
		h.Vertices = maxV + 1
	}
	if maxV >= h.Vertices {
		return h, fmt.Errorf("graphio: edge endpoint %d exceeds declared vertex count %d: %w", maxV, h.Vertices, ErrFormat)
	}
	return h, nil
}

func scanBinary(r io.Reader, remaining int64, fn EdgeFunc) (Header, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Header{}, fmt.Errorf("graphio: reading magic: %v: %w", err, ErrFormat)
	}
	if magic != binaryMagic {
		return Header{}, fmt.Errorf("graphio: bad magic %q: %w", magic, ErrFormat)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Header{}, fmt.Errorf("graphio: reading header: %v: %w", err, ErrFormat)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != binaryVersion {
		return Header{}, fmt.Errorf("graphio: unsupported version %d: %w", version, ErrFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	m := binary.LittleEndian.Uint64(hdr[12:20])
	if n > 1<<31 || m > 1<<33 {
		return Header{}, fmt.Errorf("graphio: implausible header n=%d m=%d: %w", n, m, ErrFormat)
	}
	// With a known input size, the declared edge count must fit in the bytes
	// that are actually present (24-byte header + 16 bytes per record) —
	// a corrupt count fails here instead of after a giant allocation.
	if remaining >= 0 && int64(m) > (remaining-24)/16 {
		return Header{}, fmt.Errorf("graphio: header declares %d edges but input holds at most %d: %w", m, max((remaining-24)/16, 0), ErrFormat)
	}
	// Structural clamp on the vertex count: a graph with far more vertices
	// than 2m+slack is almost all isolated vertices, and a corrupt header
	// could otherwise demand a multi-GiB CSR for a tiny file (the gzip path
	// has no reliable size to check against).
	if n > 2*m+(1<<20) {
		return Header{}, fmt.Errorf("graphio: implausible header: %d vertices for %d edges: %w", n, m, ErrFormat)
	}
	h := Header{Vertices: int(n), Declared: true}
	maxV := -1
	var rec [16]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return h, fmt.Errorf("graphio: edge %d: %v: %w", i, err, ErrFormat)
		}
		u := int(binary.LittleEndian.Uint32(rec[0:4]))
		v := int(binary.LittleEndian.Uint32(rec[4:8]))
		p := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		h.Edges++
		if err := fn(u, v, p); err != nil {
			return h, err
		}
	}
	if maxV >= h.Vertices {
		return h, fmt.Errorf("graphio: edge endpoint %d exceeds declared vertex count %d: %w", maxV, h.Vertices, ErrFormat)
	}
	return h, nil
}

func jsonErr(err error) error {
	return fmt.Errorf("graphio: decoding JSON: %v: %w", err, ErrFormat)
}

func scanJSON(r io.Reader, fn EdgeFunc) (Header, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	h := Header{Vertices: 0, Declared: true}
	maxV := -1
	tok, err := dec.Token()
	if err != nil {
		return h, jsonErr(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return h, fmt.Errorf("graphio: decoding JSON: expected an object: %w", ErrFormat)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return h, jsonErr(err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "vertices":
			var v int
			if err := dec.Decode(&v); err != nil {
				return h, jsonErr(err)
			}
			if v < 0 {
				return h, fmt.Errorf("graphio: negative vertex count %d: %w", v, ErrFormat)
			}
			h.Vertices = v
		case "edges":
			tok, err := dec.Token()
			if err != nil {
				return h, jsonErr(err)
			}
			if tok == nil {
				continue // "edges": null means no edges
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				return h, fmt.Errorf("graphio: decoding JSON: edges must be an array: %w", ErrFormat)
			}
			for dec.More() {
				var e jsonEdge
				if err := dec.Decode(&e); err != nil {
					return h, jsonErr(err)
				}
				if e.U < 0 || e.V < 0 || e.U > maxEndpoint || e.V > maxEndpoint {
					return h, fmt.Errorf("graphio: JSON edge %d: vertex out of range: %w", h.Edges, ErrFormat)
				}
				if e.U > maxV {
					maxV = e.U
				}
				if e.V > maxV {
					maxV = e.V
				}
				h.Edges++
				if err := fn(e.U, e.V, e.P); err != nil {
					return h, err
				}
			}
			if _, err := dec.Token(); err != nil { // closing ']'
				return h, jsonErr(err)
			}
		default:
			return h, fmt.Errorf("graphio: decoding JSON: unknown field %q: %w", key, ErrFormat)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return h, jsonErr(err)
	}
	if maxV >= h.Vertices {
		return h, fmt.Errorf("graphio: JSON edge endpoint %d exceeds vertex count %d: %w", maxV, h.Vertices, ErrFormat)
	}
	return h, nil
}

// replayScan adapts r to the replayable two-pass contract of
// uncertain.FromEdgeScanner. Seekable readers rewind and re-parse — nothing
// but the finished CSR is ever resident. Non-seekable readers spool the
// decoded edges on the first pass (~20 bytes/edge, far below the adjacency-
// map builder this replaces) and replay the spool.
func replayScan(r io.Reader, scan func(io.Reader, EdgeFunc) (Header, error)) func(EdgeFunc) (Header, error) {
	if s, ok := r.(io.ReadSeeker); ok {
		if pos, err := s.Seek(0, io.SeekCurrent); err == nil {
			return func(fn EdgeFunc) (Header, error) {
				if _, err := s.Seek(pos, io.SeekStart); err != nil {
					return Header{}, fmt.Errorf("graphio: rewinding input: %w", err)
				}
				return scan(s, fn)
			}
		}
	}
	var sp spool
	scanned := false
	return func(fn EdgeFunc) (Header, error) {
		if scanned {
			return sp.replay(fn)
		}
		h, err := scan(r, func(u, v int, p float64) error {
			sp.add(u, v, p)
			return fn(u, v, p)
		})
		if err == nil {
			scanned = true
			sp.hdr = h
		}
		return h, err
	}
}

// spool buffers decoded edges in struct-of-arrays form for replay.
type spool struct {
	us, vs []int32
	ps     []float64
	hdr    Header
}

func (s *spool) add(u, v int, p float64) {
	s.us = append(s.us, int32(u))
	s.vs = append(s.vs, int32(v))
	s.ps = append(s.ps, p)
}

func (s *spool) replay(fn EdgeFunc) (Header, error) {
	for i := range s.us {
		if err := fn(int(s.us[i]), int(s.vs[i]), s.ps[i]); err != nil {
			return s.hdr, err
		}
	}
	return s.hdr, nil
}

// buildGraph drives uncertain.FromEdgeScanner over a replayable scan,
// producing the sorted CSR directly.
func buildGraph(scan func(EdgeFunc) (Header, error)) (*uncertain.Graph, Header, error) {
	var hdr Header
	g, err := uncertain.FromEdgeScanner(func(emit func(int, int, float64) error) (int, error) {
		h, err := scan(EdgeFunc(emit))
		if err != nil {
			return 0, err
		}
		hdr = h
		return h.Vertices, nil
	})
	if err != nil {
		return nil, hdr, err
	}
	return g, hdr, nil
}

// OpenCSR streams the graph at path into its final CSR form, reopening the
// file for each of the two build passes so peak memory is the finished CSR
// plus one int32 per vertex — never an edge list or adjacency map. Format
// and compression are sniffed from content like Load.
func OpenCSR(path string) (*uncertain.Graph, Header, error) {
	return buildGraph(func(fn EdgeFunc) (Header, error) {
		return scanFile(path, fn)
	})
}

func scanFile(path string, fn EdgeFunc) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return ScanEdges(f, fn)
}

// unionFind is a union-by-min disjoint-set forest: every root is the
// smallest member of its set, so component IDs assigned by scanning vertices
// in ascending order match the smallest-member ordering used by
// Graph.ShardByComponent and Components.
type unionFind struct{ parent []int32 }

func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, int32(len(u.parent)))
	}
}

func (u *unionFind) find(v int) int {
	r := v
	for int(u.parent[r]) != r {
		r = int(u.parent[r])
	}
	for int(u.parent[v]) != v {
		u.parent[v], v = int32(r), int(u.parent[v])
	}
	return r
}

func (u *unionFind) union(a, b int) {
	hi := a
	if b > hi {
		hi = b
	}
	u.grow(hi + 1)
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		u.parent[rb] = int32(ra)
	} else {
		u.parent[ra] = int32(rb)
	}
}

// dsuChunkEdges is the edge-chunk granularity of the parallel labeling pass:
// big enough that handing a chunk to a worker costs far less than decoding
// it, small enough that peak buffered memory (one chunk per worker plus the
// one being filled) stays trivial next to the O(vertices) forests.
const dsuChunkEdges = 1 << 15

// maxScanWorkers caps the labeling workers; the decode is a single sequential
// stream, so a handful of union workers is enough to keep up with it.
const maxScanWorkers = 8

// scanComponentForest streams the file once and unions every edge into a
// disjoint-set forest. With multiple CPUs the decode stays sequential (it is
// one file) but the union work is chunked out to workers, each with a
// private forest, merged once at the end; union-by-min makes the merged
// forest identical to the sequential one regardless of chunk scheduling.
// Peak memory stays O(vertices) per worker plus a few bounded edge chunks.
func scanComponentForest(path string) (Header, *unionFind, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > maxScanWorkers {
		workers = maxScanWorkers
	}
	if workers < 2 {
		var uf unionFind
		hdr, err := scanFile(path, func(u, v int, p float64) error {
			uf.union(u, v)
			return nil
		})
		return hdr, &uf, err
	}

	chunks := make(chan []int32, workers)
	pool := sync.Pool{New: func() any { return make([]int32, 0, 2*dsuChunkEdges) }}
	forests := make([]*unionFind, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(uf *unionFind) {
			defer wg.Done()
			for c := range chunks {
				for i := 0; i < len(c); i += 2 {
					uf.union(int(c[i]), int(c[i+1]))
				}
				pool.Put(c[:0])
			}
		}(func() *unionFind { forests[w] = new(unionFind); return forests[w] }())
	}

	buf := pool.Get().([]int32)
	hdr, err := scanFile(path, func(u, v int, p float64) error {
		buf = append(buf, int32(u), int32(v))
		if len(buf) >= 2*dsuChunkEdges {
			chunks <- buf
			buf = pool.Get().([]int32)
		}
		return nil
	})
	if len(buf) > 0 {
		chunks <- buf
	}
	close(chunks)
	wg.Wait()
	if err != nil {
		return hdr, nil, err
	}

	master := forests[0]
	for _, f := range forests[1:] {
		for v := range f.parent {
			if p := int(f.parent[v]); p != v {
				master.union(v, p) // union grows the master as needed
			}
		}
	}
	return hdr, master, nil
}

// ScanComponentBatches mines the support components of the graph at path
// without ever materializing the whole CSR: a union-find pass labels
// components, a counting pass sizes them, and then consecutive components
// (in smallest-member order, matching ShardByComponent) are greedily packed
// into batches of at most maxEdges edges — a single component larger than
// maxEdges gets a batch to itself; maxEdges <= 0 means one batch for
// everything. Each batch is built by re-scanning the file with a component
// filter and handed to fn as a standalone graph whose vertex i corresponds
// to newToOld[i] in the file's ID space (ascending, so canonical orderings
// survive the mapping). Peak memory is O(vertices) bookkeeping plus the
// largest batch's CSR. A non-nil error from fn aborts the iteration and is
// returned verbatim.
func ScanComponentBatches(path string, maxEdges int, fn func(batch *uncertain.Graph, newToOld []int) error) error {
	hdr, uf, err := scanComponentForest(path)
	if err != nil {
		return err
	}
	n := hdr.Vertices
	uf.grow(n)
	comp := make([]int32, n)
	count := 0
	for v := 0; v < n; v++ {
		if r := uf.find(v); r == v {
			comp[v] = int32(count)
			count++
		} else {
			comp[v] = comp[r] // r < v: union-by-min roots are minimal
		}
	}
	if count == 0 {
		return nil
	}
	edgesPer := make([]int64, count)
	if _, err := scanFile(path, func(u, v int, p float64) error {
		if u >= n {
			return fmt.Errorf("graphio: input changed between passes: %w", ErrFormat)
		}
		edgesPer[comp[u]]++
		return nil
	}); err != nil {
		return err
	}

	oldToNew := make([]int32, n)
	for start := 0; start < count; {
		end := start + 1
		sum := edgesPer[start]
		for end < count && (maxEdges <= 0 || sum+edgesPer[end] <= int64(maxEdges)) {
			sum += edgesPer[end]
			end++
		}
		lo, hi := int32(start), int32(end)
		var newToOld []int
		for v := 0; v < n; v++ {
			if c := comp[v]; c >= lo && c < hi {
				oldToNew[v] = int32(len(newToOld))
				newToOld = append(newToOld, v)
			}
		}
		g, err := uncertain.FromEdgeScanner(func(emit func(u, v int, p float64) error) (int, error) {
			_, err := scanFile(path, func(u, v int, p float64) error {
				if u >= n || v >= n {
					return fmt.Errorf("graphio: input changed between passes: %w", ErrFormat)
				}
				if c := comp[u]; c < lo || c >= hi {
					return nil
				}
				return emit(int(oldToNew[u]), int(oldToNew[v]), p)
			})
			return len(newToOld), err
		})
		if err != nil {
			return err
		}
		if err := fn(g, newToOld); err != nil {
			return err
		}
		start = end
	}
	return nil
}
