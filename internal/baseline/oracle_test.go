package baseline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// TestTailAtLeastMatchesEnumeration checks the divide-and-conquer
// Poisson-binomial tail against exhaustive 2^m world enumeration, the one
// computation whose correctness is self-evident.
func TestTailAtLeastMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(10)
		probs := make([]float64, m)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		for k := 0; k <= m+1; k++ {
			want := 0.0
			for mask := 0; mask < 1<<m; mask++ {
				p, count := 1.0, 0
				for i := 0; i < m; i++ {
					if mask&(1<<i) != 0 {
						p *= probs[i]
						count++
					} else {
						p *= 1 - probs[i]
					}
				}
				if count >= k {
					want += p
				}
			}
			got := TailAtLeast(probs, k)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d m=%d k=%d: TailAtLeast = %g, enumeration = %g", trial, m, k, got, want)
			}
		}
	}
}

// TestReliabilityHandComputed pins the Floyd–Warshall closure on a path
// with a weaker parallel shortcut.
func TestReliabilityHandComputed(t *testing.T) {
	g, err := uncertain.FromEdges(5, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.5},
		{U: 0, V: 3, P: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := Reliability(g)
	cases := []struct {
		u, v int
		want float64
	}{
		{0, 0, 1}, {0, 1, 0.5}, {0, 2, 0.25},
		{0, 3, 0.2},  // the direct 0.2 edge beats the 0.125 path
		{1, 3, 0.25}, // via 2, not via 0 (0.5·0.2 = 0.1)
		{0, 4, 0}, {4, 4, 1}, // vertex 4 is isolated
	}
	for _, c := range cases {
		if got := r[c.u][c.v]; math.Abs(got-c.want) > 1e-15 {
			t.Fatalf("R[%d][%d] = %g, want %g", c.u, c.v, got, c.want)
		}
		if got := r[c.v][c.u]; math.Abs(got-c.want) > 1e-15 {
			t.Fatalf("R[%d][%d] = %g, want %g (symmetry)", c.v, c.u, got, c.want)
		}
	}
}

// TestDensestExactHandComputed: a 0.9-triangle with a weak pendant edge has
// the bare triangle as its densest subgraph (density 2.7/3 = 0.9).
func TestDensestExactHandComputed(t *testing.T) {
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9}, {U: 0, V: 2, P: 0.9},
		{U: 2, V: 3, P: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	set, density := DensestExact(g)
	if !reflect.DeepEqual(set, []int{0, 1, 2}) {
		t.Fatalf("set = %v, want [0 1 2]", set)
	}
	if math.Abs(density-0.9) > 1e-15 {
		t.Fatalf("density = %g, want 0.9", density)
	}
	if d := ExpectedDensity(g, []int{0, 1, 2, 3}); math.Abs(d-2.8/4) > 1e-15 {
		t.Fatalf("full-graph density = %g, want 0.7", d)
	}
}
