package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// mustFilter runs the shared-neighborhood prefilter, failing the test on a
// rebuild error (the CSR assembly is infallible for well-formed inputs, so
// any error is a filter bug).
func mustFilter(t *testing.T, g *uncertain.Graph, minSize int) *uncertain.Graph {
	t.Helper()
	fg, err := sharedNeighborhoodFilter(g, minSize)
	if err != nil {
		t.Fatalf("sharedNeighborhoodFilter(t=%d): %v", minSize, err)
	}
	return fg
}

// filterBySize keeps cliques with at least t vertices.
func filterBySize(cliques [][]int, t int) [][]int {
	var out [][]int
	for _, c := range cliques {
		if len(c) >= t {
			out = append(out, c)
		}
	}
	return out
}

// LARGE-MULE must produce exactly the size-≥t subset of MULE's output
// (Lemma 13).
func TestLargeMULEMatchesFilteredMULE(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(20)
		g := randomDyadic(n, 0.5, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		all := mustCollect(t, g, alpha, Config{})
		for _, minSize := range []int{2, 3, 4, 5} {
			want := filterBySize(all, minSize)
			got := mustCollect(t, g, alpha, Config{MinSize: minSize, CheckInvariants: true})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d α=%v t=%d:\nLARGE = %v\nwant  = %v",
					trial, n, alpha, minSize, got, want)
			}
		}
	}
}

func TestLargeMULEOnPlantedCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	edges, planted := gen.PlantedCliques(80, 4, 7, 0.03, rng)
	g, err := gen.BuildUncertain(80, edges, gen.ConstProb(0.9), rng)
	if err != nil {
		t.Fatal(err)
	}
	// α low enough that a 7-clique of 0.9-edges (0.9^21 ≈ 0.109) qualifies.
	alpha := 0.1
	got := mustCollect(t, g, alpha, Config{MinSize: 7})
	// Every planted clique must appear inside some emitted clique of size ≥ 7
	// (planted cliques can merge if they overlap heavily, so containment is
	// the right check — and with clq ≥ α they cannot be split).
	for _, want := range planted {
		found := false
		for _, c := range got {
			if containsAll(c, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("planted clique %v not found in LARGE-MULE output %v", want, got)
		}
	}
}

func containsAll(haystack, needle []int) bool {
	set := make(map[int]bool, len(haystack))
	for _, v := range haystack {
		set[v] = true
	}
	for _, v := range needle {
		if !set[v] {
			return false
		}
	}
	return true
}

func TestLargeMULESizePruningActuallyPrunes(t *testing.T) {
	g := randomDyadic(40, 0.3, rand.New(rand.NewSource(333)))
	full, err := Enumerate(g, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	large, err := EnumerateWith(g, 0.25, nil, Config{MinSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if large.Calls >= full.Calls {
		t.Fatalf("LARGE-MULE made %d calls, plain MULE %d — pruning ineffective", large.Calls, full.Calls)
	}
	if large.SizePruned == 0 {
		t.Fatal("SizePruned = 0; expected cut branches")
	}
}

func TestSharedNeighborhoodFilterSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(444))
	for trial := 0; trial < 30; trial++ {
		g := randomDyadic(12+rng.Intn(10), 0.5, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		for _, minSize := range []int{3, 4, 5} {
			// The filter must never lose a size-≥t α-maximal clique: compare
			// against plain MULE + size filter.
			want := filterBySize(mustCollect(t, g, alpha, Config{}), minSize)
			pg := g.PruneAlpha(alpha)
			fg := mustFilter(t, pg, minSize)
			got := filterBySize(mustCollect(t, fg, alpha, Config{}), minSize)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("filter lost cliques: t=%d α=%v\nfiltered = %v\nwant     = %v",
					minSize, alpha, got, want)
			}
		}
	}
}

func TestSharedNeighborhoodFilterRemovesHopelessEdges(t *testing.T) {
	// A long path has no triangles: for t=3 every edge dies.
	b := uncertain.NewBuilder(10)
	for u := 0; u+1 < 10; u++ {
		_ = b.AddEdge(u, u+1, 0.9)
	}
	g := b.Build()
	fg := mustFilter(t, g, 3)
	if fg.NumEdges() != 0 {
		t.Fatalf("path filtered for t=3 kept %d edges", fg.NumEdges())
	}
	// t=2 is vacuous.
	if fg2 := mustFilter(t, g, 2); fg2.NumEdges() != g.NumEdges() {
		t.Fatal("t=2 filter should be identity")
	}
}

func TestSharedNeighborhoodFilterIterates(t *testing.T) {
	// Two triangles sharing a vertex plus a tail: K4 requires t=4; removing
	// edges cascades. Build K4 with a pendant triangle: vertices 0-3 complete,
	// triangle {3,4,5}.
	b := uncertain.NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			_ = b.AddEdge(u, v, 0.9)
		}
	}
	_ = b.AddEdge(3, 4, 0.9)
	_ = b.AddEdge(3, 5, 0.9)
	_ = b.AddEdge(4, 5, 0.9)
	g := b.Build()
	fg := mustFilter(t, g, 4)
	// The pendant triangle cannot be part of a 4-clique; only K4 survives.
	if fg.NumEdges() != 6 {
		t.Fatalf("filter kept %d edges, want the 6 K4 edges", fg.NumEdges())
	}
	for _, e := range fg.Edges() {
		if e.U > 3 || e.V > 3 {
			t.Fatalf("edge %v outside K4 survived", e)
		}
	}
}

func TestLargeMULEMinSizeOne(t *testing.T) {
	// MinSize 0/1 are plain MULE.
	g := randomDyadic(12, 0.5, rand.New(rand.NewSource(555)))
	want := mustCollect(t, g, 0.25, Config{})
	for _, ms := range []int{0, 1} {
		if got := mustCollect(t, g, 0.25, Config{MinSize: ms}); !reflect.DeepEqual(got, want) {
			t.Fatalf("MinSize=%d diverged from plain MULE", ms)
		}
	}
}

func TestLargeMULEParallelAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(666))
	g := randomDyadic(25, 0.5, rng)
	want := mustCollect(t, g, 0.125, Config{MinSize: 4})
	got := mustCollect(t, g, 0.125, Config{MinSize: 4, Workers: 4, Ordering: OrderDegeneracy})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel + ordered LARGE-MULE diverged")
	}
}
