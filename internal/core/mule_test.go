package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/baseline"
	"github.com/uncertain-graphs/mule/internal/det"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// dyadicAlphas are threshold values that are powers of two; combined with
// DyadicProb edge probabilities every clique-probability comparison in these
// tests is exact in float64.
var dyadicAlphas = []float64{0.5, 0.25, 0.125, 0.0625, 0.03125}

// randomDyadic builds a G(n, density) uncertain graph with power-of-two
// probabilities.
func randomDyadic(n int, density float64, rng *rand.Rand) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	pf := gen.DyadicProb(3)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				_ = b.AddEdge(u, v, pf(rng, u, v))
			}
		}
	}
	return b.Build()
}

func mustCollect(t *testing.T, g *uncertain.Graph, alpha float64, cfg Config) [][]int {
	t.Helper()
	out, _, err := CollectWith(g, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// --- Soundness and completeness against the brute-force oracle ---

func TestMULEMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	densities := []float64{0.2, 0.4, 0.6, 0.9}
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(9)
		g := randomDyadic(n, densities[trial%len(densities)], rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := baseline.BruteForce(g, alpha)
		got := mustCollect(t, g, alpha, Config{CheckInvariants: true})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, α=%v):\nMULE  = %v\nbrute = %v\ngraph = %v",
				trial, n, alpha, got, want, g.Edges())
		}
	}
}

func TestMULEMatchesDFSNOIP(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(20)
		g := randomDyadic(n, 0.4, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := baseline.CollectNOIP(g, alpha)
		got := mustCollect(t, g, alpha, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, α=%v): MULE and DFS-NOIP disagree\nMULE = %v\nNOIP = %v",
				trial, n, alpha, got, want)
		}
	}
}

// At α = 1 only p(e)=1 edges matter and α-maximal cliques are exactly the
// deterministic maximal cliques of that subgraph.
func TestMULEAlphaOneMatchesBronKerbosch(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		g := randomDyadic(n, 0.6, rng)
		db := det.NewBuilder(n)
		for _, e := range g.Edges() {
			if e.P == 1 {
				if err := db.AddEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := det.CollectMaximalCliques(db.Build())
		got := mustCollect(t, g, 1.0, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("α=1 mismatch: MULE %v vs Bron–Kerbosch %v", got, want)
		}
	}
}

// --- Known answers on hand-built graphs ---

func TestMULEHandComputed(t *testing.T) {
	// Triangle {0,1,2} all p=0.5 plus pendant {2,3} with p=0.25.
	g, err := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		alpha float64
		want  [][]int
	}{
		// clq(triangle) = 0.125.
		{0.125, [][]int{{0, 1, 2}, {2, 3}}},
		// Triangle fails; its edges are maximal; {2,3} still qualifies.
		{0.25, [][]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}},
		// Pendant edge fails too; vertex 3 becomes an isolated singleton.
		{0.3, [][]int{{0, 1}, {0, 2}, {1, 2}, {3}}},
		// Everything fails: four singletons.
		{0.6, [][]int{{0}, {1}, {2}, {3}}},
	}
	for _, c := range cases {
		got := mustCollect(t, g, c.alpha, Config{CheckInvariants: true})
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("α=%v: got %v, want %v", c.alpha, got, c.want)
		}
	}
}

func TestMULESingletonAndEmptyGraphs(t *testing.T) {
	// No vertices: nothing is emitted.
	empty := uncertain.NewBuilder(0).Build()
	if got := mustCollect(t, empty, 0.5, Config{}); len(got) != 0 {
		t.Fatalf("empty graph emitted %v", got)
	}
	// Isolated vertices: every singleton is α-maximal.
	iso := uncertain.NewBuilder(3).Build()
	want := [][]int{{0}, {1}, {2}}
	if got := mustCollect(t, iso, 0.5, Config{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("isolated vertices: got %v, want %v", got, want)
	}
}

func TestMULEProbabilitiesReported(t *testing.T) {
	g, _ := uncertain.FromEdges(3, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5},
	})
	var probs []float64
	_, err := Enumerate(g, 0.125, func(c []int, p float64) bool {
		probs = append(probs, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || probs[0] != 0.125 {
		t.Fatalf("probs = %v, want [0.125]", probs)
	}
}

func TestMULEVisitorEarlyStop(t *testing.T) {
	g := randomDyadic(15, 0.5, rand.New(rand.NewSource(7)))
	count := 0
	stats, err := Enumerate(g, 0.25, func([]int, float64) bool {
		count++
		return count < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("visited %d cliques after early stop, want 4", count)
	}
	if stats.Emitted != 4 {
		t.Fatalf("stats.Emitted = %d, want 4", stats.Emitted)
	}
}

// --- Configuration validation ---

func TestEnumerateValidation(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	if _, err := Enumerate(nil, 0.5, nil); err == nil {
		t.Error("nil graph should fail")
	}
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := Enumerate(g, alpha, nil); err == nil {
			t.Errorf("alpha=%v should fail", alpha)
		}
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{MinSize: -1}); err == nil {
		t.Error("negative MinSize should fail")
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{Workers: -2}); err == nil {
		t.Error("negative Workers should fail")
	}
	if _, err := EnumerateWith(g, 0.5, nil, Config{Ordering: Ordering(99)}); err == nil {
		t.Error("unknown ordering should fail")
	}
}

// --- Observation 3: α-pruning does not change the output ---

func TestSkipPruneEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 25; trial++ {
		g := randomDyadic(4+rng.Intn(10), 0.6, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		pruned := mustCollect(t, g, alpha, Config{})
		unpruned := mustCollect(t, g, alpha, Config{SkipPrune: true, CheckInvariants: true})
		if !reflect.DeepEqual(pruned, unpruned) {
			t.Fatalf("Observation 3 violated at α=%v", alpha)
		}
	}
}

// --- Orderings: every strategy yields the same clique set ---

func TestOrderingsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 20; trial++ {
		g := randomDyadic(6+rng.Intn(14), 0.5, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := mustCollect(t, g, alpha, Config{Ordering: OrderNatural})
		for _, ord := range []Ordering{OrderDegree, OrderDegeneracy, OrderRandom} {
			got := mustCollect(t, g, alpha, Config{Ordering: ord, Seed: int64(trial), CheckInvariants: true})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ordering %v changed output (trial %d, α=%v)", ord, trial, alpha)
			}
		}
	}
}

func TestOrderingString(t *testing.T) {
	for ord, want := range map[Ordering]string{
		OrderNatural: "natural", OrderDegree: "degree",
		OrderDegeneracy: "degeneracy", OrderRandom: "random", Ordering(42): "Ordering(42)",
	} {
		if got := ord.String(); got != want {
			t.Errorf("Ordering.String() = %q, want %q", got, want)
		}
	}
}

// --- Parallel driver equivalence ---

func TestParallelEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 15; trial++ {
		g := randomDyadic(10+rng.Intn(20), 0.4, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := mustCollect(t, g, alpha, Config{})
		for _, workers := range []int{2, 4, 8} {
			got := mustCollect(t, g, alpha, Config{Workers: workers})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d changed output (trial %d)", workers, trial)
			}
		}
	}
}

func TestParallelStats(t *testing.T) {
	g := randomDyadic(30, 0.4, rand.New(rand.NewSource(8)))
	serial, err := Enumerate(g, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	var par Stats
	par, err = EnumerateWith(g, 0.25, nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Emitted != serial.Emitted {
		t.Fatalf("parallel emitted %d, serial %d", par.Emitted, serial.Emitted)
	}
	if par.Calls != serial.Calls {
		t.Fatalf("parallel calls %d, serial %d (tree shape must match)", par.Calls, serial.Calls)
	}
}

func TestParallelEarlyStop(t *testing.T) {
	g := randomDyadic(40, 0.4, rand.New(rand.NewSource(9)))
	count := 0
	_, err := EnumerateWith(g, 0.25, func([]int, float64) bool {
		count++
		return count < 5
	}, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if count < 5 {
		t.Fatalf("early stop fired after %d cliques, want ≥ 5", count)
	}
}

// --- Stats sanity ---

func TestStatsShape(t *testing.T) {
	g, _ := uncertain.FromEdges(4, []uncertain.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.25},
	})
	stats, err := Enumerate(g, 0.125, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != 2 {
		t.Fatalf("Emitted = %d, want 2", stats.Emitted)
	}
	if stats.MaxCliqueSize != 3 || stats.MaxDepth != 3 {
		t.Fatalf("MaxCliqueSize/MaxDepth = %d/%d, want 3/3", stats.MaxCliqueSize, stats.MaxDepth)
	}
	if stats.Calls < 3 {
		t.Fatalf("Calls = %d, implausibly few", stats.Calls)
	}
	if stats.PrunedEdges != 0 {
		t.Fatalf("PrunedEdges = %d, want 0 at α=0.125", stats.PrunedEdges)
	}
	// At α=0.3 the pendant 0.25 edge must be pruned away.
	stats, _ = Enumerate(g, 0.3, nil)
	if stats.PrunedEdges != 1 {
		t.Fatalf("PrunedEdges = %d, want 1 at α=0.3", stats.PrunedEdges)
	}
}

func TestCount(t *testing.T) {
	g := randomDyadic(20, 0.4, rand.New(rand.NewSource(10)))
	cliques := mustCollect(t, g, 0.25, Config{})
	n, err := Count(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(cliques) {
		t.Fatalf("Count = %d, Collect found %d", n, len(cliques))
	}
}

// --- Every emitted clique is genuinely α-maximal (soundness on larger
// graphs where brute force is infeasible) ---

func TestSoundnessOnLargerGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	g := randomDyadic(60, 0.25, rng)
	for _, alpha := range []float64{0.5, 0.125, 0.03125} {
		checked := 0
		_, err := Enumerate(g, alpha, func(c []int, p float64) bool {
			if !g.IsAlphaMaximalClique(c, alpha) {
				t.Fatalf("emitted non-maximal %v at α=%v", c, alpha)
			}
			if got := g.CliqueProb(c); got != p {
				t.Fatalf("reported prob %v, true %v", p, got)
			}
			checked++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if checked == 0 {
			t.Fatalf("no cliques emitted at α=%v", alpha)
		}
	}
}

// --- Uniform (non-dyadic) probabilities: MULE vs NOIP still agree because
// both use the same comparison discipline on identical products ---

func TestUniformProbabilitiesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7)
		b := uncertain.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					_ = b.AddEdge(u, v, 1-rng.Float64())
				}
			}
		}
		g := b.Build()
		// α chosen away from any product boundary with overwhelming
		// probability (continuous values).
		alpha := 0.05 + 0.4*rng.Float64()
		want := baseline.BruteForce(g, alpha)
		got := mustCollect(t, g, alpha, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("uniform-prob trial %d: mismatch", trial)
		}
	}
}
