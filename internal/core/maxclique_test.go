package core

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

// Reference: the maximum size over the full enumeration.
func maxCliqueRef(t *testing.T, g *uncertain.Graph, alpha float64) int {
	t.Helper()
	best := 0
	_, err := Enumerate(g, alpha, func(c []int, _ float64) bool {
		if len(c) > best {
			best = len(c)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return best
}

func TestMaximumCliqueMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(20)
		g := randomDyadic(n, 0.5, rng)
		alpha := dyadicAlphas[rng.Intn(len(dyadicAlphas))]
		want := maxCliqueRef(t, g, alpha)
		got, prob, err := MaximumClique(g, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("trial %d: MaximumClique size %d, enumeration max %d", trial, len(got), want)
		}
		if want > 0 {
			if !g.IsAlphaClique(got, alpha) {
				t.Fatalf("returned set %v is not an α-clique", got)
			}
			if g.CliqueProb(got) != prob {
				t.Fatalf("reported probability %v, true %v", prob, g.CliqueProb(got))
			}
		}
	}
}

func TestMaximumCliqueEdgeCases(t *testing.T) {
	// Empty graph.
	got, prob, err := MaximumClique(uncertain.NewBuilder(0).Build(), 0.5)
	if err != nil || len(got) != 0 || prob != 1 {
		t.Fatalf("empty graph: %v %v %v", got, prob, err)
	}
	// Isolated vertices: best is a singleton.
	got, _, err = MaximumClique(uncertain.NewBuilder(3).Build(), 0.5)
	if err != nil || len(got) != 1 {
		t.Fatalf("isolated: %v %v", got, err)
	}
	// Validation.
	if _, _, err := MaximumClique(nil, 0.5); err == nil {
		t.Error("nil graph should fail")
	}
	if _, _, err := MaximumClique(uncertain.NewBuilder(1).Build(), 0); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestMaximumCliqueAlphaShrinksSize(t *testing.T) {
	// On a complete dyadic graph, a higher α must not give a larger clique.
	b := uncertain.NewBuilder(10)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			_ = b.AddEdge(u, v, 0.5)
		}
	}
	g := b.Build()
	prev := 11
	for _, alpha := range []float64{0.0001, 0.01, 0.125, 0.5} {
		got, _, err := MaximumClique(g, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > prev {
			t.Fatalf("max clique grew from %d to %d as α rose to %v", prev, len(got), alpha)
		}
		prev = len(got)
	}
}

func BenchmarkMaximumClique(b *testing.B) {
	g := randomDyadic(120, 0.3, rand.New(rand.NewSource(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaximumClique(g, 0.0625); err != nil {
			b.Fatal(err)
		}
	}
}
