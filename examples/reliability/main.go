// Reliable subgraphs versus α-cliques: the contrast the paper's related-work
// section draws (§1.2). Reliable-subgraph mining (Hintsanen & Toivonen; Jin
// et al.) finds vertex sets that are CONNECTED with high probability — but
// such sets can be sparse (a star is perfectly reliable with zero clique
// probability). An α-clique demands full pairwise connection, a much
// stronger notion of cohesion.
//
// This example quantifies the gap on a planted-community graph: for each
// α-maximal clique and for some loose connected neighborhoods, it compares
// connectivity reliability against clique probability.
//
// Run with: go run ./examples/reliability
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/possible"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	edges, planted := gen.PlantedCliques(120, 3, 6, 0.04, rng)
	g, err := gen.BuildUncertain(120, edges, gen.UniformRangeProb(0.6, 0.95), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted-community graph: %d vertices, %d edges, 3 planted 6-cliques\n\n",
		g.NumVertices(), g.NumEdges())

	ctx := context.Background()
	const alpha = 0.05
	const samples = 20000
	fmt.Printf("top α-maximal cliques (α=%.2f): clique probability vs connectivity reliability\n", alpha)
	q, err := mule.NewQuery(g, alpha)
	if err != nil {
		log.Fatal(err)
	}
	scored, err := q.TopK(ctx, 6, mule.BySize)
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range scored {
		if len(sc.Vertices) < 4 {
			continue
		}
		rel := possible.ConnectedProbMC(g, sc.Vertices, samples, rng)
		fmt.Printf("  %v\n    P[clique] = %.4f   P[connected] = %.4f\n",
			sc.Vertices, sc.Prob, rel)
	}

	// A star-shaped neighborhood: reliable but nothing like a clique.
	hub, best := -1, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > best {
			hub, best = v, d
		}
	}
	nbrs := g.Neighbors(hub)
	if len(nbrs) > 5 {
		nbrs = nbrs[:5]
	}
	star := append([]int{hub}, nbrs...)
	rel := possible.ConnectedProbMC(g, star, samples, rng)
	clq := mule.CliqueProb(g, star)
	fmt.Printf("\nhub neighborhood %v (a near-star):\n", star)
	fmt.Printf("    P[clique] = %.4f   P[connected] = %.4f\n", clq, rel)
	fmt.Println("\nreliable ≠ cohesive: reliability stays high for sparse sets, while")
	fmt.Println("the α-clique requirement collapses to 0 the moment a pair is missing.")

	if _, maxP, err := q.Maximum(ctx); err == nil {
		fmt.Printf("\nlargest α-clique probability at α=%.2f: %.4f\n", alpha, maxP)
	}

	// Verify one planted clique is recovered among the α-maximal cliques.
	for _, want := range planted {
		if mule.CliqueProb(g, want) >= alpha {
			fmt.Printf("planted clique %v has clique probability %.4f (≥ α, recovered)\n",
				want, mule.CliqueProb(g, want))
			break
		}
	}
}
