package core

import (
	"sync"
	"sync/atomic"
)

// runTopLevel is the legacy parallel driver (ParallelTopLevel): it fans only
// the top-level branches of the search out across workers. It predates the
// work-stealing engine in worksteal.go and is kept because it is the natural
// comparison point: on skewed inputs where one top-level subtree dominates,
// this driver degenerates to serial execution while work stealing keeps
// subdividing the heavy branch.
//
// Soundness: at the root C = ∅, the branch for vertex u receives
// I_u = {(w, p(u,w)) : w ∈ Γ(u), w > u, p(u,w) ≥ α} and
// X_u = {(x, p(u,x)) : x ∈ Γ(u), x < u, p(u,x) ≥ α}, both of which depend
// only on u — not on how much of the loop has already run — because the
// root's X accumulates exactly the vertices smaller than u. Top-level
// subtrees are therefore mutually independent and can run concurrently;
// every deeper level keeps the sequential left-to-right dependency through
// X and stays inside one worker.
func (e *enumerator) runTopLevel(workers int) {
	n := e.g.NumVertices()
	s := &wsShared{visit: e.visit}
	locals := make([]Stats, workers)

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(local *enumerator) {
			defer wg.Done()
			for {
				u := next.Add(1)
				if int(u) >= n || s.stop.Load() {
					return
				}
				local.branch(int32(u))
				if local.stopped {
					return // the wrapped visitor has already latched s.stop
				}
			}
		}(e.workerClone(&locals[i], s))
	}
	wg.Wait()
	for i := range locals {
		e.stats.merge(&locals[i])
	}
	e.stopped = s.stop.Load()
	// The root call itself is accounted once, as in the serial driver.
	e.stats.Calls++
}

// branch runs the top-level iteration for vertex u: it reproduces exactly
// the state the serial loop would pass to the recursive call for u.
func (e *enumerator) branch(u int32) {
	row, probs := e.g.Adjacency(int(u))
	var I, X []entry
	for i, w := range row {
		p := probs[i]
		if p < e.alpha {
			continue // only reachable with SkipPrune
		}
		if w > u {
			I = append(I, entry{w, p})
		} else {
			X = append(X, entry{w, p})
		}
	}
	e.stats.CandidateOps += int64(len(I))
	e.stats.WitnessOps += int64(len(X))
	C := make([]int32, 0, len(I)+1)
	C = append(C, u)
	if e.minSize >= 2 && len(C)+len(I) < e.minSize {
		e.stats.SizePruned++
		return
	}
	e.recurse(C, 1, I, X)
}

// merge folds o into s. All fields are sums or maxes, so merging per-worker
// stats in ascending worker order yields a deterministic aggregate.
func (s *Stats) merge(o *Stats) {
	s.Calls += o.Calls
	s.Emitted += o.Emitted
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.CandidateOps += o.CandidateOps
	s.WitnessOps += o.WitnessOps
	s.PrunedEdges += o.PrunedEdges
	s.SizePruned += o.SizePruned
	s.FilterRemoved += o.FilterRemoved
	s.Steals += o.Steals
	s.Splits += o.Splits
}
