package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/uncertain-graphs/mule/internal/core"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "long-header", "c")
	tb.Add("1", "2")
	tb.Addf(10, "x", 3.5)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "long-header") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// All data lines share the header's column alignment width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator not aligned with header:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "x", "y")
	tb.Add("1", "2")
	tb.Add("a,b", "c")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n\"a,b\",c\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.DBLPScale == 0 || c.Budget == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestWorkloadBuildersQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 3}
	if got := Figure1Graphs(cfg); len(got) != 4 {
		t.Fatalf("Figure1Graphs: %d graphs", len(got))
	}
	if got := RandomGraphs(cfg); len(got) != 6 {
		t.Fatalf("RandomGraphs: %d graphs", len(got))
	}
	if got := SemiSyntheticGraphs(cfg); len(got) != 6 {
		t.Fatalf("SemiSyntheticGraphs: %d graphs", len(got))
	}
	if got := LargeCliqueGraphs(cfg); len(got) != 3 {
		t.Fatalf("LargeCliqueGraphs: %d graphs", len(got))
	}
	for _, ng := range RandomGraphs(cfg) {
		if ng.G.NumVertices() == 0 || ng.G.NumEdges() == 0 {
			t.Fatalf("%s built empty", ng.Name)
		}
	}
}

func TestTimedMULEHonorsBudget(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Budget: time.Millisecond}
	g := RandomGraphs(cfg)[0].G
	r, err := TimedMULE(g, 0.0001, cfg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Either it legitimately finished within a millisecond (fast machine,
	// small graph) or it must be flagged unfinished.
	if !r.Finished && r.Elapsed < time.Millisecond {
		t.Fatal("unfinished run reported implausibly short elapsed time")
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	ids := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := Lookup("figure4"); !ok {
		t.Fatal("figure4 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id should not resolve")
	}
}

// Smoke-run every experiment in quick mode with a small budget; this is the
// end-to-end test that the harness can regenerate every paper artifact.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test in -short mode")
	}
	// KernelOnce keeps the kernel sweep to one iteration per cell so the
	// smoke test stays fast; the checked-in trajectory uses full benchtime.
	cfg := Config{Quick: true, Seed: 1, Budget: 20 * time.Second, KernelOnce: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}
