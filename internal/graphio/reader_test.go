package graphio

import (
	"bytes"
	"compress/gzip"
	"testing"

	"github.com/uncertain-graphs/mule/internal/ubiclique"
)

// TestLoadFromReader pins the reader-based entry point the server uses to
// ingest request bodies: Load must decode every format Load­File does, from a
// plain in-memory reader, with and without gzip compression.
func TestLoadFromReader(t *testing.T) {
	g := randomGraph(20, 0.3, 7)

	encoders := map[string]func(*testing.T) []byte{
		"text": func(t *testing.T) []byte {
			var buf bytes.Buffer
			if err := WriteText(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		"binary": func(t *testing.T) []byte {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		"json": func(t *testing.T) []byte {
			var buf bytes.Buffer
			if err := WriteJSON(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
	}
	for name, enc := range encoders {
		t.Run(name, func(t *testing.T) {
			raw := enc(t)
			got, err := Load(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !graphsEqual(g, got) {
				t.Fatal("Load round trip mismatch")
			}

			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			if _, err := zw.Write(raw); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			got, err = Load(bytes.NewReader(zbuf.Bytes()))
			if err != nil {
				t.Fatalf("Load(gzip): %v", err)
			}
			if !graphsEqual(g, got) {
				t.Fatal("Load(gzip) round trip mismatch")
			}
		})
	}
}

// TestLoadBipartiteFromReader is the bipartite analogue.
func TestLoadBipartiteFromReader(t *testing.T) {
	b := ubiclique.NewBuilder(3, 4)
	for _, e := range []struct {
		l, r int
		p    float64
	}{{0, 0, 0.5}, {0, 2, 0.75}, {1, 1, 1}, {2, 3, 0.25}} {
		if err := b.AddEdge(e.l, e.r, e.p); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteBipartiteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	got, err := LoadBipartite(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadBipartite: %v", err)
	}
	if got.NumLeft() != g.NumLeft() || got.NumRight() != g.NumRight() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: got %d/%d/%d, want %d/%d/%d",
			got.NumLeft(), got.NumRight(), got.NumEdges(), g.NumLeft(), g.NumRight(), g.NumEdges())
	}

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = LoadBipartite(bytes.NewReader(zbuf.Bytes()))
	if err != nil {
		t.Fatalf("LoadBipartite(gzip): %v", err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("gzip round trip lost edges: got %d, want %d", got.NumEdges(), g.NumEdges())
	}
}
