package uncertain

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// scanOf adapts a fixed edge list (with declared vertex count) to an
// EdgeScan.
func scanOf(n int, edges []Edge) EdgeScan {
	return func(emit func(u, v int, p float64) error) (int, error) {
		for _, e := range edges {
			if err := emit(e.U, e.V, e.P); err != nil {
				return 0, err
			}
		}
		return n, nil
	}
}

func randomEdges(rng *rand.Rand, n int, density float64) []Edge {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				edges = append(edges, Edge{U: u, V: v, P: 0.05 + 0.95*rng.Float64()})
			}
		}
	}
	return edges
}

func TestFromEdgeScannerMatchesFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		edges := randomEdges(rng, n, rng.Float64())
		want, err := FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges: %v", err)
		}
		got, err := FromEdgeScanner(scanOf(n, edges))
		if err != nil {
			t.Fatalf("FromEdgeScanner: %v", err)
		}
		if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("shape mismatch: got %d/%d want %d/%d",
				got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
		}
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("edge sets differ")
		}
	}
}

func TestFromEdgeScannerInfersVertexCount(t *testing.T) {
	g, err := FromEdgeScanner(scanOf(-1, []Edge{{U: 0, V: 5, P: 0.5}}))
	if err != nil {
		t.Fatalf("FromEdgeScanner: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("inferred %d vertices, want 6", g.NumVertices())
	}
}

func TestFromEdgeScannerErrors(t *testing.T) {
	cases := []struct {
		name string
		n    int
		e    Edge
		want error
	}{
		{"self loop", 3, Edge{U: 1, V: 1, P: 0.5}, ErrSelfLoop},
		{"negative endpoint", 3, Edge{U: -1, V: 1, P: 0.5}, ErrVertexRange},
		{"endpoint beyond count", 3, Edge{U: 0, V: 7, P: 0.5}, ErrVertexRange},
		{"zero probability", 3, Edge{U: 0, V: 1, P: 0}, ErrProbRange},
		{"probability above one", 3, Edge{U: 0, V: 1, P: 1.5}, ErrProbRange},
	}
	for _, tc := range cases {
		if _, err := FromEdgeScanner(scanOf(tc.n, []Edge{tc.e})); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	dup := []Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 0, P: 0.5}}
	if _, err := FromEdgeScanner(scanOf(2, dup)); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge: got %v, want ErrDuplicateEdge", err)
	}
}

func TestFromEdgeScannerUnstableScan(t *testing.T) {
	pass := 0
	unstable := func(emit func(u, v int, p float64) error) (int, error) {
		pass++
		if pass == 1 {
			if err := emit(0, 1, 0.5); err != nil {
				return 0, err
			}
		}
		// Second pass emits nothing.
		return 2, nil
	}
	if _, err := FromEdgeScanner(unstable); err == nil {
		t.Fatal("unstable scan accepted")
	}
}

// randomComponents builds a graph of several random connected components
// with interleaved vertex IDs, returning the graph.
func randomComponents(rng *rand.Rand, t *testing.T) *Graph {
	t.Helper()
	parts := 1 + rng.Intn(6)
	sizes := make([]int, parts)
	n := 0
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(10)
		n += sizes[i]
	}
	// Scatter component members across the ID space with a random
	// permutation so remapping is non-trivial.
	perm := rng.Perm(n)
	b := NewBuilder(n)
	at := 0
	for _, sz := range sizes {
		ids := perm[at : at+sz]
		at += sz
		for j := 1; j < sz; j++ { // spanning tree keeps the part connected
			k := rng.Intn(j)
			if err := b.AddEdge(ids[j], ids[k], 0.1+0.9*rng.Float64()); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
		for extra := rng.Intn(sz + 1); extra > 0; extra-- {
			j, k := rng.Intn(sz), rng.Intn(sz)
			if j != k {
				_ = b.UpsertEdge(ids[j], ids[k], 0.1+0.9*rng.Float64())
			}
		}
	}
	return b.Build()
}

func TestShardByComponentMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		g := randomComponents(rng, t)
		comps := g.Components()
		var shards []Shard
		for sh := range g.ShardByComponent() {
			shards = append(shards, sh)
		}
		if len(shards) != len(comps) {
			t.Fatalf("trial %d: %d shards, %d components", trial, len(shards), len(comps))
		}
		if n := g.NumComponents(); n != len(comps) {
			t.Fatalf("trial %d: NumComponents %d, want %d", trial, n, len(comps))
		}
		for i, sh := range shards {
			if sh.ID != i {
				t.Fatalf("trial %d: shard %d has ID %d", trial, i, sh.ID)
			}
			if !reflect.DeepEqual(sh.NewToOld, comps[i]) {
				t.Fatalf("trial %d shard %d: NewToOld %v, want %v", trial, i, sh.NewToOld, comps[i])
			}
			// Every shard edge must map back to a parent edge with the same
			// probability, and counts must agree with the induced subgraph.
			for _, e := range sh.G.Edges() {
				ou, ov := sh.NewToOld[e.U], sh.NewToOld[e.V]
				p, ok := g.Prob(ou, ov)
				if !ok || p != e.P {
					t.Fatalf("trial %d shard %d: edge {%d,%d} maps to {%d,%d} prob %v ok=%v want %v",
						trial, i, e.U, e.V, ou, ov, p, ok, e.P)
				}
			}
			ind, _, err := g.InducedSubgraph(comps[i])
			if err != nil {
				t.Fatalf("InducedSubgraph: %v", err)
			}
			if sh.G.NumEdges() != ind.NumEdges() || sh.G.NumVertices() != ind.NumVertices() {
				t.Fatalf("trial %d shard %d: shape %d/%d, induced %d/%d",
					trial, i, sh.G.NumVertices(), sh.G.NumEdges(), ind.NumVertices(), ind.NumEdges())
			}
		}
	}
}

func TestShardByComponentEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomComponents(rng, t)
	want := g.NumComponents()
	if want < 2 {
		t.Skip("single component draw")
	}
	seen := 0
	for range g.ShardByComponent() {
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("early break yielded %d shards", seen)
	}
}

func ExampleGraph_ShardByComponent() {
	b := NewBuilder(5)
	_ = b.AddEdge(0, 2, 0.9)
	_ = b.AddEdge(1, 4, 0.8)
	g := b.Build()
	for sh := range g.ShardByComponent() {
		fmt.Println(sh.ID, sh.NewToOld, sh.G.NumEdges())
	}
	// Output:
	// 0 [0 2] 1
	// 1 [1 4] 1
	// 2 [3] 0
}
