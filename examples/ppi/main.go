// Protein-complex mining: the motivating application of the paper. Protein-
// protein interaction networks are inherently uncertain (interaction
// detection is error-prone), and an α-maximal clique is a candidate protein
// complex — a set of proteins that all pairwise interact with probability at
// least α.
//
// This example mines a synthetic fruit-fly-scale PPI network (same size and
// confidence profile as the paper's STRING/BioGRID input; see DESIGN.md §3),
// sweeps the confidence threshold, and reports the most probable larger
// complexes.
//
// Run with: go run ./examples/ppi
package main

import (
	"fmt"
	"log"

	mule "github.com/uncertain-graphs/mule"
	"github.com/uncertain-graphs/mule/internal/gen"
	"github.com/uncertain-graphs/mule/internal/topk"
	"github.com/uncertain-graphs/mule/internal/uncertain"
)

func main() {
	g := gen.PPILike(42)
	s := uncertain.ComputeStats(g)
	fmt.Printf("synthetic PPI network: %s\n\n", s)

	// How the threshold shapes the candidate-complex catalog.
	fmt.Println("complexes (α-maximal cliques, size ≥ 2) vs confidence threshold:")
	for _, alpha := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		var count, largest int64
		_, err := mule.EnumerateLarge(g, alpha, 2, func(c []int, _ float64) bool {
			count++
			if int64(len(c)) > largest {
				largest = int64(len(c))
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α = %.2f: %6d candidate complexes, largest has %d proteins\n",
			alpha, count, largest)
	}

	// The ten most reliable multi-protein complexes at a permissive α.
	const alpha = 0.2
	fmt.Printf("\nmost reliable complexes at α = %.2f:\n", alpha)
	scored, err := topk.ByProb(g, alpha, 50)
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, sc := range scored {
		if len(sc.Vertices) < 3 {
			continue // singletons/pairs are not interesting complexes
		}
		fmt.Printf("  proteins %v  P[all interact] = %.4f\n", sc.Vertices, sc.Prob)
		printed++
		if printed == 10 {
			break
		}
	}
	if printed == 0 {
		fmt.Println("  (no complexes with ≥ 3 proteins at this threshold)")
	}
}
