package graphio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mule/internal/uncertain"
)

type scannedEdge struct {
	U, V int
	P    float64
}

func collectScan(t *testing.T, data []byte) (Header, []scannedEdge) {
	t.Helper()
	var edges []scannedEdge
	h, err := ScanEdges(bytes.NewReader(data), func(u, v int, p float64) error {
		edges = append(edges, scannedEdge{u, v, p})
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEdges: %v", err)
	}
	return h, edges
}

func testGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(6)
	for _, e := range []struct {
		u, v int
		p    float64
	}{{0, 1, 0.5}, {1, 2, 0.25}, {3, 4, 0.75}} {
		if err := b.AddEdge(e.u, e.v, e.p); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestScanEdgesAllFormats(t *testing.T) {
	g := testGraph(t)
	writers := map[string]func(*bytes.Buffer){
		"text":   func(b *bytes.Buffer) { _ = WriteText(b, g) },
		"binary": func(b *bytes.Buffer) { _ = WriteBinary(b, g) },
		"json":   func(b *bytes.Buffer) { _ = WriteJSON(b, g) },
	}
	for name, write := range writers {
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			write(&buf)
			data := buf.Bytes()
			label := name
			if compress {
				var zbuf bytes.Buffer
				zw := gzip.NewWriter(&zbuf)
				_, _ = zw.Write(data)
				_ = zw.Close()
				data = zbuf.Bytes()
				label += "+gzip"
			}
			h, edges := collectScan(t, data)
			if h.Vertices != 6 || !h.Declared || h.Edges != 3 {
				t.Errorf("%s: header %+v", label, h)
			}
			want := []scannedEdge{{0, 1, 0.5}, {1, 2, 0.25}, {3, 4, 0.75}}
			if !reflect.DeepEqual(edges, want) {
				t.Errorf("%s: edges %v, want %v", label, edges, want)
			}
		}
	}
}

func TestScanEdgesInfersVertexCount(t *testing.T) {
	h, edges := collectScan(t, []byte("0 4 0.5\n"))
	if h.Vertices != 5 || h.Declared || h.Edges != 1 || len(edges) != 1 {
		t.Fatalf("header %+v edges %v", h, edges)
	}
}

func TestScanEdgesCallbackErrorPropagates(t *testing.T) {
	sentinel := errors.New("stop here")
	_, err := ScanEdges(bytes.NewReader([]byte("0 1 0.5\n1 2 0.5\n")), func(u, v int, p float64) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the callback's own error", err)
	}
	if errors.Is(err, ErrFormat) {
		t.Fatal("callback error must not be wrapped in ErrFormat")
	}
}

func TestScanEdgesMalformedInputs(t *testing.T) {
	cases := map[string][]byte{
		"bad fields":           []byte("0 1\n"),
		"bad vertex":           []byte("a b 0.5\n"),
		"bad probability":      []byte("0 1 x\n"),
		"negative endpoint":    []byte("-1 2 0.5\n"),
		"bad directive":        []byte("vertices\n"),
		"negative count":       []byte("vertices -1\n"),
		"endpoint beyond":      []byte("vertices 2\n0 5 0.5\n"),
		"gzip garbage":         append([]byte{0x1f, 0x8b}, []byte("not gzip at all")...),
		"binary truncated":     []byte("UGRF\x01\x00"),
		"binary bad version":   append([]byte("UGRF"), bytes.Repeat([]byte{0xff}, 20)...),
		"json unknown field":   []byte(`{"vertices": 2, "edgez": []}`),
		"json negative count":  []byte(`{"vertices": -1, "edges": []}`),
		"json truncated":       []byte(`{"vertices": 2, "edges": [{"u":0,`),
		"json edge beyond":     []byte(`{"vertices": 1, "edges": [{"u":0,"v":3,"p":0.5}]}`),
		"json edges not array": []byte(`{"edges": 7}`),
	}
	for name, data := range cases {
		_, err := ScanEdges(bytes.NewReader(data), func(u, v int, p float64) error { return nil })
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: error %v does not wrap ErrFormat", name, err)
		}
	}
}

// TestBinaryHeaderClampedAgainstInputSize is the corrupt-header guard: a
// header declaring billions of edges over a tiny seekable input must fail up
// front (wrapping ErrFormat) instead of looping over missing records.
func TestBinaryHeaderClampedAgainstInputSize(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("UGRF")
	_ = binary.Write(&buf, binary.LittleEndian, binaryVersion)
	_ = binary.Write(&buf, binary.LittleEndian, uint64(10))    // n
	_ = binary.Write(&buf, binary.LittleEndian, uint64(1<<32)) // m: absurd for a 24-byte file
	_, err := ScanEdges(bytes.NewReader(buf.Bytes()), func(u, v int, p float64) error { return nil })
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
	if _, rerr := ReadBinary(bytes.NewReader(buf.Bytes())); rerr == nil {
		t.Fatal("ReadBinary accepted a header larger than the input")
	}
}

// TestBinaryHeaderVertexClamp: a vertex count wildly beyond what the edge
// count could touch is rejected before any allocation sized by it.
func TestBinaryHeaderVertexClamp(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("UGRF")
	_ = binary.Write(&buf, binary.LittleEndian, binaryVersion)
	_ = binary.Write(&buf, binary.LittleEndian, uint64(1<<30)) // n: ~1 billion vertices
	_ = binary.Write(&buf, binary.LittleEndian, uint64(0))     // m: no edges
	_, err := ScanEdges(bytes.NewReader(buf.Bytes()), func(u, v int, p float64) error { return nil })
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

func TestOpenCSRMatchesLoadFile(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	for _, name := range []string{"g.ug", "g.ugb", "g.json", "g.ugb.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		got, hdr, err := OpenCSR(path)
		if err != nil {
			t.Fatalf("OpenCSR(%s): %v", name, err)
		}
		if hdr.Vertices != g.NumVertices() || hdr.Edges != int64(g.NumEdges()) {
			t.Errorf("%s: header %+v", name, hdr)
		}
		want, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if !reflect.DeepEqual(got.Edges(), want.Edges()) || got.NumVertices() != want.NumVertices() {
			t.Errorf("%s: OpenCSR and LoadFile disagree", name)
		}
	}
}

// nonSeeker hides any Seek method so the spool replay path is exercised.
type nonSeeker struct{ r *bytes.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestLoadNonSeekableUsesSpool(t *testing.T) {
	g := testGraph(t)
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return WriteText(b, g) },
		func(b *bytes.Buffer) error { return WriteBinary(b, g) },
		func(b *bytes.Buffer) error { return WriteJSON(b, g) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(nonSeeker{bytes.NewReader(buf.Bytes())})
		if err != nil {
			t.Fatalf("Load(non-seekable): %v", err)
		}
		if !reflect.DeepEqual(got.Edges(), g.Edges()) {
			t.Fatal("non-seekable load mismatch")
		}
	}
}

// buildComponentFile writes a multi-component graph to disk and returns the
// path plus the in-memory original.
func buildComponentFile(t *testing.T, rng *rand.Rand, dir string) (string, *uncertain.Graph) {
	t.Helper()
	parts := 2 + rng.Intn(5)
	var n int
	sizes := make([]int, parts)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(8)
		n += sizes[i]
	}
	b := uncertain.NewBuilder(n)
	base := 0
	for _, sz := range sizes {
		for j := 1; j < sz; j++ {
			if err := b.AddEdge(base+j, base+rng.Intn(j), 0.1+0.9*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		base += sz
	}
	g := b.Build()
	path := filepath.Join(dir, "comps.ugb")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestScanComponentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	dir := t.TempDir()
	for trial := 0; trial < 15; trial++ {
		path, g := buildComponentFile(t, rng, dir)
		for _, maxEdges := range []int{0, 1, 3, 1 << 20} {
			var covered []int
			totalEdges := 0
			err := ScanComponentBatches(path, maxEdges, func(batch *uncertain.Graph, newToOld []int) error {
				if batch.NumVertices() != len(newToOld) {
					t.Fatalf("batch shape %d vs map %d", batch.NumVertices(), len(newToOld))
				}
				for _, e := range batch.Edges() {
					ou, ov := newToOld[e.U], newToOld[e.V]
					p, ok := g.Prob(ou, ov)
					if !ok || p != e.P {
						t.Fatalf("batch edge {%d,%d} does not map back", e.U, e.V)
					}
					totalEdges++
				}
				covered = append(covered, newToOld...)
				return nil
			})
			if err != nil {
				t.Fatalf("trial %d maxEdges %d: %v", trial, maxEdges, err)
			}
			if totalEdges != g.NumEdges() {
				t.Fatalf("trial %d maxEdges %d: %d edges covered, want %d", trial, maxEdges, totalEdges, g.NumEdges())
			}
			// Components are laid out contiguously here, so batch order by
			// smallest member means covered must be exactly 0..n-1 in order.
			if len(covered) != g.NumVertices() {
				t.Fatalf("trial %d: covered %d vertices, want %d", trial, len(covered), g.NumVertices())
			}
			for i, v := range covered {
				if v != i {
					t.Fatalf("trial %d maxEdges %d: covered[%d] = %d", trial, maxEdges, i, v)
				}
			}
		}
	}
}

func TestScanComponentBatchesCallbackError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	path, _ := buildComponentFile(t, rng, dir)
	sentinel := errors.New("abort batches")
	err := ScanComponentBatches(path, 1, func(batch *uncertain.Graph, newToOld []int) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want callback error", err)
	}
}

func TestScanComponentBatchesMissingFile(t *testing.T) {
	err := ScanComponentBatches(filepath.Join(t.TempDir(), "nope.ug"), 0, func(*uncertain.Graph, []int) error { return nil })
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("got %v, want not-exist", err)
	}
}

// FuzzScanEdges: whatever bytes arrive — malformed text, truncated binary,
// gzip garbage, half a JSON document — the streaming reader must never
// panic, and every failure must wrap the typed ErrFormat sentinel.
func FuzzScanEdges(f *testing.F) {
	g := mustGraph()
	var text, bin, js bytes.Buffer
	_ = WriteText(&text, g)
	_ = WriteBinary(&bin, g)
	_ = WriteJSON(&js, g)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	_, _ = zw.Write(bin.Bytes())
	_ = zw.Close()
	f.Add(text.Bytes())
	f.Add(bin.Bytes())
	f.Add(js.Bytes())
	f.Add(gz.Bytes())
	f.Add(bin.Bytes()[:len(bin.Bytes())/2])
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte("vertices 3\n0 1 0.5\n"))
	f.Add([]byte(`{"vertices": 2, "edges": [{"u":0,"v":1,"p":0.5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ScanEdges(bytes.NewReader(data), func(u, v int, p float64) error { return nil })
		if err != nil && !errors.Is(err, ErrFormat) {
			t.Fatalf("error %v does not wrap ErrFormat", err)
		}
	})
}

func mustGraph() *uncertain.Graph {
	b := uncertain.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(2, 3, 0.25)
	return b.Build()
}
