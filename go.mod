module github.com/uncertain-graphs/mule

go 1.23
